//! Diagnostics: the [`Finding`] type, human-readable rendering, and the
//! hand-rolled JSON report written to `results/json/analyze.json`
//! (mirroring the emitter style in `nbl-sim`'s `report` module — no
//! serde, stable key order).

use std::fmt::Write as _;

/// One lint finding with a span-accurate location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable lint ID (`no-panic`, `determinism`, `exhaustiveness`,
    /// `event-guard`, `doc-coverage`, `bad-allow`, `allowlist`).
    pub lint: &'static str,
    /// Repo-relative file path with `/` separators.
    pub file: String,
    /// 1-based line (0 for file-level findings such as ledger gaps
    /// against a whole consumer surface).
    pub line: u32,
    /// 1-based column (0 when not meaningful).
    pub col: u32,
    /// The item the finding is about — the flagged token, enum variant,
    /// or undocumented pub item name. This is the key the allowlist
    /// matches against.
    pub item: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// `file:line:col: [lint] message` rendering.
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file, self.lint, self.message)
        } else {
            format!(
                "{}:{}:{}: [{}] {}",
                self.file, self.line, self.col, self.lint, self.message
            )
        }
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The `analyze.json` report: summary counts plus every finding.
pub fn analyze_json(
    findings: &[Finding],
    files_scanned: usize,
    allows_used: usize,
    allowlist_entries: usize,
) -> String {
    let mut per_lint: Vec<(&'static str, usize)> = Vec::new();
    for f in findings {
        match per_lint.iter_mut().find(|(l, _)| *l == f.lint) {
            Some((_, n)) => *n += 1,
            None => per_lint.push((f.lint, 1)),
        }
    }
    per_lint.sort_by_key(|&(l, _)| l);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"kind\": \"analyze\",\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"findings_total\": {},", findings.len());
    let _ = writeln!(out, "  \"allows_used\": {allows_used},");
    let _ = writeln!(out, "  \"allowlist_entries\": {allowlist_entries},");
    out.push_str("  \"per_lint\": {");
    for (i, (lint, n)) in per_lint.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}: {n}", json_str(lint));
    }
    if per_lint.is_empty() {
        out.push_str("},\n");
    } else {
        out.push_str("\n  },\n");
    }
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"item\": {}, \"message\": {}}}",
            json_str(f.lint),
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.item),
            json_str(&f.message)
        );
    }
    if findings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(lint: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            col: 3,
            item: "unwrap".to_string(),
            message: "msg with \"quotes\"".to_string(),
        }
    }

    #[test]
    fn render_includes_span_and_id() {
        let d = f("no-panic", "crates/core/src/x.rs", 7);
        assert_eq!(
            d.render(),
            "crates/core/src/x.rs:7:3: [no-panic] msg with \"quotes\""
        );
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let j = analyze_json(
            &[f("no-panic", "a.rs", 1), f("determinism", "b.rs", 2)],
            10,
            3,
            4,
        );
        assert!(j.contains("\"kind\": \"analyze\""));
        assert!(j.contains("\"findings_total\": 2"));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"no-panic\": 1"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn empty_report_is_valid() {
        let j = analyze_json(&[], 0, 0, 0);
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"per_lint\": {}"));
    }
}
