//! A small hand-rolled Rust lexer: comment- and string-aware, with byte
//! spans, built for lint scanning rather than compilation.
//!
//! The lexer understands exactly what the lints need to never misfire
//! inside non-code text: line and (nested) block comments, plain and raw
//! string literals (any `#` count, with `b`/`c` prefixes), char literals
//! vs. lifetimes, and numeric literals. Everything else is an identifier
//! or a single punctuation character. It does not attempt to parse — the
//! syntactic questions the lints ask (attribute spans, call nesting,
//! enum bodies) are answered over the token stream in [`crate::scan`].

/// The token classes the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `r#ident` forms, span covers the
    /// whole raw identifier).
    Ident,
    /// A lifetime (`'a`, `'static`) — split out so the char-literal rule
    /// cannot swallow the following code.
    Lifetime,
    /// A string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `c"…"`, etc.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal.
    Num,
    /// A comment; `doc` is `true` for `///`, `//!`, `/**` and `/*!`.
    Comment {
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// Any other single character (`{`, `(`, `.`, `!`, …).
    Punct,
}

/// One token with its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first character.
    pub off: usize,
    /// Byte length.
    pub len: usize,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.off..self.off + self.len]
    }

    /// `true` if this token is the identifier `word` in `src`.
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == word
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, src: &str, c: char) -> bool {
        self.kind == TokKind::Punct && self.text(src).starts_with(c)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into tokens (whitespace dropped, comments kept).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = Vec::with_capacity(n / 4);
    let mut i = 0;
    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < n && (b[i + 1] == b'/' || b[i + 1] == b'*') {
            let start = i;
            if b[i + 1] == b'/' {
                // `///` or `//!` are docs, but `////…` is an ordinary
                // comment (rustdoc's rule).
                let doc = (src[i..].starts_with("///") && !src[i..].starts_with("////"))
                    || src[i..].starts_with("//!");
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                out.push(Token {
                    kind: TokKind::Comment { doc },
                    off: start,
                    len: i - start,
                });
            } else {
                let doc = (src[i..].starts_with("/**") && !src[i..].starts_with("/***"))
                    || src[i..].starts_with("/*!");
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: TokKind::Comment { doc },
                    off: start,
                    len: i - start,
                });
            }
            continue;
        }
        // Raw / prefixed string literals: r"…", r#"…"#, b"…", br#"…"#,
        // c"…", and the raw-identifier escape r#ident.
        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            let word = &src[i..j];
            let prefix_ok = matches!(word, "r" | "b" | "br" | "rb" | "c" | "cr");
            if prefix_ok && j < n && (b[j] == b'"' || b[j] == b'#') {
                let raw = word.contains('r');
                if b[j] == b'#' && !raw {
                    // `b#` is not a literal prefix; fall through to ident.
                } else if b[j] == b'#' {
                    // r#"…"# raw string, or r#ident.
                    let mut hashes = 0usize;
                    let mut k = j;
                    while k < n && b[k] == b'#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && b[k] == b'"' {
                        i = scan_raw_string(src, k, hashes);
                        out.push(Token {
                            kind: TokKind::Str,
                            off: start,
                            len: i - start,
                        });
                        continue;
                    }
                    if word == "r" && hashes == 1 && k < n && is_ident_start(b[k]) {
                        let mut m = k;
                        while m < n && is_ident_continue(b[m]) {
                            m += 1;
                        }
                        out.push(Token {
                            kind: TokKind::Ident,
                            off: start,
                            len: m - start,
                        });
                        i = m;
                        continue;
                    }
                    // `r#` followed by something else: emit ident, retry.
                } else if raw {
                    // r"…" with zero hashes.
                    i = scan_raw_string(src, j, 0);
                    out.push(Token {
                        kind: TokKind::Str,
                        off: start,
                        len: i - start,
                    });
                    continue;
                } else {
                    // b"…" / c"…": escaped like a plain string.
                    i = scan_string(src, j);
                    out.push(Token {
                        kind: TokKind::Str,
                        off: start,
                        len: i - start,
                    });
                    continue;
                }
            }
            if prefix_ok && j < n && b[j] == b'\'' && word.contains('b') {
                // b'x' byte literal.
                i = scan_char(src, j);
                out.push(Token {
                    kind: TokKind::Char,
                    off: start,
                    len: i - start,
                });
                continue;
            }
            out.push(Token {
                kind: TokKind::Ident,
                off: start,
                len: j - start,
            });
            i = j;
            continue;
        }
        // Plain strings.
        if c == b'"' {
            let start = i;
            i = scan_string(src, i);
            out.push(Token {
                kind: TokKind::Str,
                off: start,
                len: i - start,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let start = i;
            if i + 1 < n && b[i + 1] == b'\\' {
                i = scan_char(src, i);
                out.push(Token {
                    kind: TokKind::Char,
                    off: start,
                    len: i - start,
                });
            } else if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                out.push(Token {
                    kind: TokKind::Char,
                    off: start,
                    len: 3,
                });
                i += 3;
            } else {
                // Lifetime: consume the ident part.
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.push(Token {
                    kind: TokKind::Lifetime,
                    off: start,
                    len: j - start,
                });
                i = j;
            }
            continue;
        }
        // Numbers (ranges like `0..9` must not swallow the dots).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n
                && (is_ident_continue(b[j])
                    || (b[j] == b'.'
                        && j + 1 < n
                        && b[j + 1].is_ascii_digit()
                        && !src[start..j].contains('.')))
            {
                j += 1;
            }
            out.push(Token {
                kind: TokKind::Num,
                off: start,
                len: j - start,
            });
            i = j;
            continue;
        }
        // Everything else: one punctuation character.
        out.push(Token {
            kind: TokKind::Punct,
            off: i,
            len: 1,
        });
        i += 1;
    }
    out
}

/// Scans a plain (escape-aware) string starting at the opening quote;
/// returns the offset just past the closing quote.
fn scan_string(src: &str, open: usize) -> usize {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = open + 1;
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Scans a raw string whose opening quote is at `open` with `hashes`
/// leading `#`s; returns the offset just past the closing delimiter.
fn scan_raw_string(src: &str, open: usize, hashes: usize) -> usize {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = open + 1;
    while i < n {
        if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < n && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    n
}

/// Scans a char/byte literal starting at the opening quote; returns the
/// offset just past the closing quote.
fn scan_char(src: &str, open: usize) -> usize {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = open + 1;
    while i < n {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let ks = kinds("let x = 42 + y_2;");
        assert_eq!(ks[0], (TokKind::Ident, "let".into()));
        assert_eq!(ks[2], (TokKind::Punct, "=".into()));
        assert_eq!(ks[3], (TokKind::Num, "42".into()));
        assert_eq!(ks[5], (TokKind::Ident, "y_2".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        // `panic!` inside the string must not surface as an ident.
        let ks = kinds(r#"let s = "panic!(\"no\")";"#);
        assert!(ks.iter().all(|(k, t)| *k != TokKind::Ident || t != "panic"));
        assert!(ks.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let src = r###"let s = r#"unwrap() " inside"#; x"###;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unwrap")));
        assert_eq!(ks.last().map(|(_, t)| t.as_str()), Some("x"));
    }

    #[test]
    fn char_vs_lifetime() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Char && t == "'\\n'"));
    }

    #[test]
    fn comments_nest_and_doc_flag() {
        let ks = kinds("/// doc\n// plain\n/* a /* b */ c */ x //! inner");
        assert_eq!(ks[0].0, TokKind::Comment { doc: true });
        assert_eq!(ks[1].0, TokKind::Comment { doc: false });
        assert_eq!(ks[2].0, TokKind::Comment { doc: false });
        assert_eq!(ks[3], (TokKind::Ident, "x".into()));
        assert_eq!(ks[4].0, TokKind::Comment { doc: true });
    }

    #[test]
    fn raw_identifiers() {
        let ks = kinds("let r#type = 1;");
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn ranges_are_not_floats() {
        let ks = kinds("for i in 0..10 {}");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
        assert!(!ks.iter().any(|(k, t)| *k == TokKind::Num && t == "3.5"));
    }
}
