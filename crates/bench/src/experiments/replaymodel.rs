//! Processor-model sensitivity: miss CPI for eqntott under the stalling
//! single-issue pipeline, the dual-issue pipeline, and the replaying
//! speculative pipeline (XiangShan-style replay causes), sweeping model ×
//! MSHR configuration × the paper's six load latencies. The paper's
//! machine stalls the pipeline on the first use of a pending register;
//! this exhibit asks whether its mc/fc/no-restrict *ranking* survives on
//! a pipeline that instead issues loads speculatively and replays them on
//! bank conflicts, store-forward failures, and dcache NACKs — and shows
//! where the replaying pipeline's stall cycles go, per cause. No paper
//! figure plots it.

use super::{engine, program, write_csv, write_json, ExhibitError, RunScale, LATENCIES};
use nbl_sim::config::{HwConfig, ProcessorKind, SimConfig};
use nbl_sim::report;
use nbl_sim::sweep::ModelSweep;
use std::io::Write;

/// Benchmark shown: eqntott, whose pointer-chasing loads exercise every
/// replay cause (conflicting banks, store-to-load forwarding, NACKs on
/// the one-register configuration).
const BENCHMARK: &str = "eqntott";

/// MSHR organizations compared: a single conventional register, a
/// two-register file with four targets each, and the unlimited bound.
fn configs() -> Vec<HwConfig> {
    vec![HwConfig::Mc(1), HwConfig::Fc(2), HwConfig::NoRestrict]
}

/// Configuration labels ordered best-first (lowest MCPI) for `model` at
/// the sweep's largest latency.
fn ranking(sweep: &ModelSweep, model: &str) -> Option<Vec<String>> {
    let m = sweep.models.iter().position(|x| x == model)?;
    let i = sweep.latencies.len().checked_sub(1)?;
    let row = &sweep.rows[m][i];
    let mut order: Vec<usize> = (0..row.len()).collect();
    order.sort_by(|&a, &b| row[a].mcpi.total_cmp(&row[b].mcpi));
    Some(order.iter().map(|&j| sweep.configs[j].clone()).collect())
}

/// Prints the per-configuration model tables, the per-cause replay
/// attribution, and the best-first config ranking under each pipeline;
/// writes `replaymodel.csv` / `replaymodel.json`. Deterministic.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let p = program(BENCHMARK, scale)?;
    let models = ProcessorKind::ALL;
    let sweep = engine()
        .model_sweep(&p, &base, &models, &configs(), &LATENCIES)
        .map_err(|e| ExhibitError::new(format!("{BENCHMARK} model sweep"), e))?;
    let _ = writeln!(
        out,
        "== Processor-model sensitivity: {BENCHMARK}, stalling vs replaying pipelines =="
    );
    let _ = writeln!(out, "{}", report::model_mcpi_table(&sweep));
    let _ = writeln!(out, "{}", report::replay_attribution_table(&sweep));
    let max_lat = LATENCIES[LATENCIES.len() - 1];
    for model in &sweep.models {
        if let Some(order) = ranking(&sweep, model) {
            let _ = writeln!(
                out,
                "ranking at lat={max_lat} [{model}]: {} (best first)",
                order.join(" < ")
            );
        }
    }
    let _ = writeln!(out);
    write_csv("replaymodel", &report::model_sweep_csv(&sweep))?;
    write_json("replaymodel", &report::model_sweep_json(&sweep))
}
