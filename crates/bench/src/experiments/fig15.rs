//! Figure 15: baseline miss CPI for su2cor, with the per-set fetch-limit
//! curves (`fs=1`, `fs=2`) added to the usual seven — the paper's
//! in-cache-MSHR-storage study.

use super::{engine, program, write_csv, write_json, ExhibitError, RunScale, LATENCIES};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::report;
use std::io::Write;

/// The nine configurations of Fig. 15.
pub fn configs() -> Vec<HwConfig> {
    let mut c = HwConfig::baseline_seven();
    c.insert(3, HwConfig::Fs(1));
    c.insert(4, HwConfig::Fs(2));
    c
}

/// Prints the Fig. 15 sweep.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let p = program("su2cor", scale)?;
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let sweep = engine()
        .latency_sweep(&p, &base, &configs(), &LATENCIES)
        .map_err(|e| ExhibitError::new("su2cor @ Fig. 15 latencies", e))?;
    let _ = writeln!(
        out,
        "== Figure 15: baseline miss CPI for su2cor (with fs= curves) =="
    );
    let _ = writeln!(out, "{}", report::mcpi_vs_latency_table(&sweep));
    let _ = writeln!(out, "{}", report::mcpi_vs_latency_chart(&sweep));
    write_csv("fig15", &report::latency_sweep_csv(&sweep))?;
    write_json("fig15", &report::latency_sweep_json(&sweep))
}
