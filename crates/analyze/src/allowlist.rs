//! The burn-down allowlist (`scripts/analyze-allow.toml`): pre-existing
//! findings carried as explicit debt. The file is hand-parsed (line
//! oriented, `[[allow]]` tables with `key = "value"` pairs — no external
//! TOML dependency) and can only shrink: any entry that no longer matches
//! a live finding is itself reported as a stale-entry finding, so the
//! file cannot accumulate dead weight, and new findings are never
//! silently absorbed (they must be fixed or get a reasoned inline
//! `nbl-allow`).

use crate::lints::known_lint;
use crate::report::Finding;
use std::path::Path;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint ID the entry suppresses.
    pub lint: String,
    /// Repo-relative file the finding lives in.
    pub file: String,
    /// The finding's `item` key (e.g. the undocumented pub item name).
    pub item: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub src_line: u32,
}

/// Parse result: entries plus any syntax/validity findings.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Parsed entries in file order.
    pub entries: Vec<AllowEntry>,
    /// Malformed-entry findings (unknown lint, missing keys, bad syntax).
    pub findings: Vec<Finding>,
}

/// Loads and parses the allowlist at `path` (repo-relative `rel` used in
/// diagnostics). A missing file is an empty allowlist.
pub fn load(path: &Path, rel: &str) -> Allowlist {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Allowlist::default();
    };
    parse(&text, rel)
}

/// Parses allowlist text.
pub fn parse(text: &str, rel: &str) -> Allowlist {
    let mut out = Allowlist::default();
    let mut current: Option<(AllowEntry, u32)> = None;
    let flush = |current: &mut Option<(AllowEntry, u32)>, out: &mut Allowlist| {
        if let Some((entry, line)) = current.take() {
            if entry.lint.is_empty() || entry.file.is_empty() || entry.item.is_empty() {
                out.findings.push(Finding {
                    lint: "allowlist",
                    file: rel.to_string(),
                    line,
                    col: 1,
                    item: entry.item.clone(),
                    message: "allowlist entry needs `lint`, `file` and `item` keys".to_string(),
                });
            } else if !known_lint(&entry.lint) {
                out.findings.push(Finding {
                    lint: "allowlist",
                    file: rel.to_string(),
                    line,
                    col: 1,
                    item: entry.lint.clone(),
                    message: format!("allowlist entry names unknown lint `{}`", entry.lint),
                });
            } else {
                out.entries.push(entry);
            }
        }
    };
    for (i, raw) in text.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            flush(&mut current, &mut out);
            current = Some((
                AllowEntry {
                    lint: String::new(),
                    file: String::new(),
                    item: String::new(),
                    src_line: lineno,
                },
                lineno,
            ));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            out.findings.push(Finding {
                lint: "allowlist",
                file: rel.to_string(),
                line: lineno,
                col: 1,
                item: line.to_string(),
                message: "unrecognized allowlist line (expected `[[allow]]` or `key = \"value\"`)"
                    .to_string(),
            });
            continue;
        };
        let key = key.trim();
        let value = value.trim().trim_matches('"').to_string();
        match (&mut current, key) {
            (Some((e, _)), "lint") => e.lint = value,
            (Some((e, _)), "file") => e.file = value,
            (Some((e, _)), "item") => e.item = value,
            _ => {
                out.findings.push(Finding {
                    lint: "allowlist",
                    file: rel.to_string(),
                    line: lineno,
                    col: 1,
                    item: key.to_string(),
                    message: format!("unexpected allowlist key `{key}`"),
                });
            }
        }
    }
    flush(&mut current, &mut out);
    out
}

/// Applies the allowlist: findings matched by an entry are suppressed;
/// entries that matched nothing become stale-entry findings (the
/// burn-down contract — the file may only shrink). Returns the surviving
/// findings plus the count of entries actually used.
pub fn apply(allow: &Allowlist, findings: Vec<Finding>, rel: &str) -> (Vec<Finding>, usize) {
    let mut used = vec![false; allow.entries.len()];
    let mut kept = Vec::with_capacity(findings.len());
    for f in findings {
        let hit = allow
            .entries
            .iter()
            .position(|e| e.lint == f.lint && e.file == f.file && e.item == f.item);
        match hit {
            Some(i) => used[i] = true,
            None => kept.push(f),
        }
    }
    let used_count = used.iter().filter(|u| **u).count();
    for (i, e) in allow.entries.iter().enumerate() {
        if !used[i] {
            kept.push(Finding {
                lint: "allowlist",
                file: rel.to_string(),
                line: e.src_line,
                col: 1,
                item: e.item.clone(),
                message: format!(
                    "stale allowlist entry ({} / {} / {}) matches no current finding — \
                     delete it; the allowlist only burns down",
                    e.lint, e.file, e.item
                ),
            });
        }
    }
    (kept, used_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Carried doc-coverage debt.
[[allow]]
lint = "doc-coverage"
file = "crates/core/src/x.rs"
item = "thing"

[[allow]]
lint = "doc-coverage"
file = "crates/mem/src/y.rs"
item = "other"
"#;

    fn finding(file: &str, item: &str) -> Finding {
        Finding {
            lint: "doc-coverage",
            file: file.to_string(),
            line: 1,
            col: 1,
            item: item.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries() {
        let a = parse(SAMPLE, "scripts/analyze-allow.toml");
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.entries[0].item, "thing");
    }

    #[test]
    fn unknown_lint_is_reported() {
        let a = parse(
            "[[allow]]\nlint = \"nope\"\nfile = \"f\"\nitem = \"i\"\n",
            "allow.toml",
        );
        assert_eq!(a.entries.len(), 0);
        assert_eq!(a.findings.len(), 1);
        assert!(a.findings[0].message.contains("unknown lint"));
    }

    #[test]
    fn matched_entries_suppress_stale_entries_surface() {
        let a = parse(SAMPLE, "allow.toml");
        let (kept, used) = apply(
            &a,
            vec![finding("crates/core/src/x.rs", "thing")],
            "allow.toml",
        );
        assert_eq!(used, 1);
        // The matched finding is gone; the unmatched entry is now stale.
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint, "allowlist");
        assert!(kept[0].message.contains("stale"));
    }

    #[test]
    fn unmatched_findings_survive() {
        let a = parse("", "allow.toml");
        let (kept, used) = apply(&a, vec![finding("f.rs", "i")], "allow.toml");
        assert_eq!(used, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint, "doc-coverage");
    }
}
