//! Token-level structure over a lexed file: `#[cfg(test)]` / `#[test]`
//! region detection, `nbl-allow` suppression directives, and the small
//! syntactic queries the lints share (attribute spans, matching braces,
//! enclosing-call callees).

use crate::lexer::{lex, TokKind, Token};
use crate::source::SourceFile;

/// An inline `// nbl-allow(<id>): reason` suppression directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The lint ID inside the parentheses.
    pub id: String,
    /// The reason text after the colon (trimmed; may be empty, which is
    /// itself reported by the `bad-allow` meta-lint).
    pub reason: String,
    /// 1-based line the directive appears on.
    pub line: u32,
    /// Byte offset of the directive within its comment, for diagnostics.
    pub off: usize,
}

/// A lexed file plus the structural facts lints query.
pub struct Scan<'a> {
    /// The underlying source file.
    pub file: &'a SourceFile,
    /// The token stream (comments included).
    pub tokens: Vec<Token>,
    /// Byte ranges covered by `#[cfg(test)]` items and `#[test]` fns.
    test_ranges: Vec<(usize, usize)>,
    /// All `nbl-allow` directives found in comments.
    pub allows: Vec<AllowDirective>,
}

impl<'a> Scan<'a> {
    /// Lexes `file` and computes test regions and allow directives.
    pub fn new(file: &'a SourceFile) -> Scan<'a> {
        let tokens = lex(&file.text);
        let test_ranges = find_test_ranges(&file.text, &tokens);
        let allows = find_allows(file, &tokens);
        Scan {
            file,
            tokens,
            test_ranges,
            allows,
        }
    }

    /// The file's source text.
    pub fn src(&self) -> &str {
        &self.file.text
    }

    /// Whether byte offset `off` falls inside test-only code.
    pub fn in_test(&self, off: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| off >= a && off < b)
    }

    /// Whether a finding of `lint` at 1-based `line` is suppressed by an
    /// `nbl-allow` directive on the same line or the line directly above.
    /// Directives with an empty reason do not suppress (they are reported
    /// by `bad-allow` instead, so a reasonless allow never hides anything).
    pub fn is_allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.id == lint && !a.reason.is_empty() && (a.line == line || a.line + 1 == line))
    }

    /// The callee identifier of the innermost call expression enclosing
    /// the token at index `idx`, if any. Walks backwards balancing
    /// parentheses; gives up at a `{`, `}` or `;` outside any call.
    pub fn enclosing_callee(&self, idx: usize) -> Option<&str> {
        let mut depth = 0i32;
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let t = self.tokens[i];
            if matches!(t.kind, TokKind::Comment { .. }) {
                continue;
            }
            if t.kind == TokKind::Punct {
                match t.text(self.src()) {
                    ")" | "]" => depth += 1,
                    "(" | "[" => {
                        if depth == 0 {
                            // Opening of the enclosing group: callee is the
                            // ident immediately before the `(`.
                            if t.is_punct(self.src(), '(') && i > 0 {
                                let prev = self.tokens[i - 1];
                                if prev.kind == TokKind::Ident {
                                    return Some(prev.text(self.src()));
                                }
                            }
                            return None;
                        }
                        depth -= 1;
                    }
                    "{" | "}" | ";" if depth == 0 => {
                        return None;
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

/// Parses `nbl-allow(<id>): reason` directives out of comment tokens.
fn find_allows(file: &SourceFile, tokens: &[Token]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokKind::Comment { .. }) {
            continue;
        }
        let text = t.text(&file.text);
        let mut search = 0;
        while let Some(rel) = text[search..].find("nbl-allow(") {
            let at = search + rel;
            let after = at + "nbl-allow(".len();
            let Some(close) = text[after..].find(')') else {
                break;
            };
            let id = text[after..after + close].trim().to_string();
            let mut rest = &text[after + close + 1..];
            let reason = if let Some(stripped) = rest.trim_start().strip_prefix(':') {
                rest = stripped;
                rest.trim().trim_end_matches("*/").trim().to_string()
            } else {
                String::new()
            };
            out.push(AllowDirective {
                id,
                reason,
                line: file.line_of(t.off + at),
                off: t.off + at,
            });
            search = after + close + 1;
        }
    }
    out
}

/// Finds the byte ranges of items annotated `#[cfg(test)]` (typically
/// `mod tests { … }`) and of `#[test]` / `#[proptest]`-style test fns.
fn find_test_ranges(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct(src, '#') {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test_attr)) = parse_attr(src, tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        // Skip any further attribute groups between this one and the item.
        let mut j = attr_end;
        while j < tokens.len() && tokens[j].is_punct(src, '#') {
            match parse_attr(src, tokens, j) {
                Some((end, _)) => j = end,
                None => break,
            }
        }
        // The annotated item runs to its matching close brace (or to the
        // terminating `;` for brace-less forms like `mod tests;`).
        let start = tokens[i].off;
        let mut end = src.len();
        let mut k = j;
        while k < tokens.len() {
            let t = tokens[k];
            if t.is_punct(src, '{') {
                end = match_brace(src, tokens, k)
                    .map(|ci| tokens[ci].off + 1)
                    .unwrap_or(src.len());
                break;
            }
            if t.is_punct(src, ';') {
                end = t.off + 1;
                break;
            }
            k += 1;
        }
        ranges.push((start, end));
        i = j;
    }
    ranges
}

/// Parses the attribute group starting at token `i` (which must be `#`).
/// Returns `(index_past_group, is_test_marker)` where the marker is true
/// for `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` and similar —
/// i.e. any attribute whose path is `test` or whose `cfg(...)` mentions
/// the bare ident `test`.
fn parse_attr(src: &str, tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    let mut j = i + 1;
    // Inner attributes `#![…]` also get skipped (never test markers here).
    if j < tokens.len() && tokens[j].is_punct(src, '!') {
        j += 1;
    }
    if j >= tokens.len() || !tokens[j].is_punct(src, '[') {
        return None;
    }
    let close = match_bracket(src, tokens, j)?;
    let inner = &tokens[j + 1..close];
    let mut is_test = false;
    if let Some(first) = inner.first() {
        if first.is_ident(src, "test") && inner.len() == 1 {
            is_test = true;
        } else if first.is_ident(src, "cfg") {
            is_test = inner.iter().any(|t| t.is_ident(src, "test"));
        }
    }
    Some((close + 1, is_test))
}

/// Index of the `]` matching the `[` at token `open`.
fn match_bracket(src: &str, tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(src, '[') {
            depth += 1;
        } else if t.is_punct(src, ']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at token `open`.
pub fn match_brace(src: &str, tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(src, '{') {
            depth += 1;
        } else if t.is_punct(src, '}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn scan(text: &str) -> (SourceFile, Vec<Token>) {
        let f = SourceFile::from_text(Path::new("/r"), Path::new("/r/x.rs"), text.to_string());
        let t = lex(&f.text);
        (f, t)
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let (f, _) = scan(src);
        let s = Scan::new(&f);
        let helper_off = src.find("helper").unwrap();
        let live_off = src.find("live").unwrap();
        let after_off = src.find("after").unwrap();
        assert!(s.in_test(helper_off));
        assert!(!s.in_test(live_off));
        assert!(!s.in_test(after_off));
    }

    #[test]
    fn test_fn_with_extra_attrs() {
        let src = "#[test]\n#[ignore]\nfn t() { body(); }\nfn live() {}\n";
        let (f, _) = scan(src);
        let s = Scan::new(&f);
        assert!(s.in_test(src.find("body").unwrap()));
        assert!(!s.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod m { fn inner() {} }\n";
        let (f, _) = scan(src);
        let s = Scan::new(&f);
        assert!(s.in_test(src.find("inner").unwrap()));
    }

    #[test]
    fn allow_directive_parses() {
        let src = "let x = 1; // nbl-allow(no-panic): chunks_exact guarantees 8 bytes\n";
        let (f, _) = scan(src);
        let s = Scan::new(&f);
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].id, "no-panic");
        assert_eq!(s.allows[0].reason, "chunks_exact guarantees 8 bytes");
        assert!(s.is_allowed("no-panic", 1));
        assert!(!s.is_allowed("determinism", 1));
    }

    #[test]
    fn allow_above_covers_next_line() {
        let src = "// nbl-allow(determinism): fixed-seed hasher\nuse std::collections::HashMap;\n";
        let (f, _) = scan(src);
        let s = Scan::new(&f);
        assert!(s.is_allowed("determinism", 2));
        assert!(!s.is_allowed("determinism", 3));
    }

    #[test]
    fn empty_reason_does_not_suppress() {
        let src = "x.unwrap(); // nbl-allow(no-panic)\ny.unwrap(); // nbl-allow(no-panic):   \n";
        let (f, _) = scan(src);
        let s = Scan::new(&f);
        assert_eq!(s.allows.len(), 2);
        assert!(s.allows.iter().all(|a| a.reason.is_empty()));
        assert!(!s.is_allowed("no-panic", 1));
        assert!(!s.is_allowed("no-panic", 2));
    }

    #[test]
    fn enclosing_callee_finds_emit() {
        let src = "fn f(&mut self) { self.emit(MemEvent::Issued { a: 1 }); }";
        let (f, t) = scan(src);
        let s = Scan::new(&f);
        let idx = t.iter().position(|t| t.is_ident(src, "MemEvent")).unwrap();
        assert_eq!(s.enclosing_callee(idx), Some("emit"));
    }

    #[test]
    fn enclosing_callee_none_at_statement_level() {
        let src = "fn f() { let e = MemEvent::Issued; }";
        let (f, t) = scan(src);
        let s = Scan::new(&f);
        let idx = t.iter().position(|t| t.is_ident(src, "MemEvent")).unwrap();
        assert_eq!(s.enclosing_callee(idx), None);
    }
}
