//! # nbl-sim — simulation driver and experiment infrastructure
//!
//! Glues the substrates together into the paper's experimental setup:
//!
//! * [`config`] — the named hardware configurations of the paper's figure
//!   legends (`mc=0 + wma`, `mc=N`, `fc=N`, `fs=N`, in-cache, targets,
//!   "no restrict") and complete [`config::SimConfig`]s;
//! * [`driver`] — compile-and-run of one workload under one configuration,
//!   producing a [`driver::RunResult`] with every metric the paper plots
//!   (MCPI, stall breakdown, miss rates, in-flight histograms);
//! * [`sweep`] — configuration × latency and configuration × penalty
//!   sweeps with compilation shared across configurations;
//! * [`report`] — fixed-width text rendering in the shape of the paper's
//!   figures and tables.

pub mod config;
pub mod driver;
pub mod report;
pub mod sweep;

pub use config::{HwConfig, IssueWidth, SimConfig};
pub use driver::{run_compiled, run_dual, run_program, DualRunResult, RunResult};
pub use sweep::{latency_sweep, penalty_sweep, LatencySweep, PenaltySweep};
