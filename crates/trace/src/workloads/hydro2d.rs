//! `hydro2d` — 2-D hydrodynamical Navier-Stokes solver (SPEC92 CFP).
//!
//! Galactic-jet simulation sweeping many large state arrays with stencil
//! updates. Streaming like tomcatv, but each point needs more arrays and
//! more arithmetic, so the absolute MCPI is the second-highest in the
//! suite while the overlap headroom is moderate (Fig. 13: 0.708 blocking
//! → 0.189 unrestricted).

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

const GRID_ELEMS: u64 = 40 * 1024; // 320 KB per array

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("hydro2d");
    let stream = |i: u64, off: u64| AddrPattern::Strided {
        base: layout::region(i, off),
        elem_bytes: 8,
        stride: 1,
        length: GRID_ELEMS,
    };
    let ro = pb.pattern(stream(0, 0));
    let vx = pb.pattern(stream(1, 96));
    let vy = pb.pattern(stream(2, 1120));
    let pr = pb.pattern(stream(3, 2144));
    let en = pb.pattern(stream(4, 3168));
    let ro_out = pb.pattern(stream(5, 4192));
    let en_out = pb.pattern(stream(6, 5216));

    // One stencil update: five state arrays in, two out, a flux chain.
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    let r = b.load(ro, RegClass::Fp, LoadFormat::DOUBLE);
    let u = b.load(vx, RegClass::Fp, LoadFormat::DOUBLE);
    let v = b.load(vy, RegClass::Fp, LoadFormat::DOUBLE);
    let p = b.load(pr, RegClass::Fp, LoadFormat::DOUBLE);
    let e = b.load(en, RegClass::Fp, LoadFormat::DOUBLE);
    let f1 = b.alu(RegClass::Fp, Some(r), Some(u));
    let f2 = b.alu(RegClass::Fp, Some(v), Some(p));
    let f3 = b.alu(RegClass::Fp, Some(f1), Some(f2));
    let f4 = b.alu(RegClass::Fp, Some(f3), Some(e));
    let f5 = b.alu_chain(RegClass::Fp, f4, 5);
    // The second flux consumes the first (the corrector step), limiting ILP.
    let g1 = b.alu(RegClass::Fp, Some(f5), Some(p));
    let g2 = b.alu(RegClass::Fp, Some(g1), Some(u));
    let g3 = b.alu_chain(RegClass::Fp, g2, 4);
    b.store(ro_out, Some(f5));
    b.store(en_out, Some(g3));
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let stencil = b.finish();

    let trips = scale.trips(23);
    pb.run(stencil, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_in_two_out_streaming() {
        let p = build(Scale::quick());
        let (loads, stores, _) = p.blocks[0].op_mix();
        assert_eq!(loads, 5);
        assert_eq!(stores, 2);
        assert_eq!(p.patterns.len(), 7);
    }
}
