//! Fixture surface: exercises Lru, Fifo, Random and TreePlru — but not
//! the newly added variant.
