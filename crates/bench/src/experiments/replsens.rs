//! Replacement-policy sensitivity: miss CPI for eqntott on a 4-way
//! associative 8 KB cache, sweeping replacement policy (LRU, FIFO,
//! random, tree-PLRU) × MSHR configuration × the paper's six load
//! latencies. The paper's baseline cache is direct-mapped, where every
//! policy is degenerate; this exhibit asks how much the Fig. 13-style
//! MSHR tradeoffs shift when the set-associative victim choice is in
//! play. No paper figure plots it directly.

use super::{engine, program, write_csv, write_json, ExhibitError, RunScale, LATENCIES};
use nbl_core::geometry::CacheGeometry;
use nbl_core::tag_array::ReplacementKind;
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::report;
use std::io::Write;

/// Benchmark shown: eqntott, whose pointer-chasing misses are the most
/// replacement-sensitive of the four workloads.
const BENCHMARK: &str = "eqntott";

/// MSHR organizations compared: a single conventional register, a
/// two-register file with four targets each, and the unlimited bound.
fn configs() -> Vec<HwConfig> {
    vec![HwConfig::Mc(1), HwConfig::Fc(2), HwConfig::NoRestrict]
}

/// Prints the per-configuration policy tables and writes
/// `replsens.csv` / `replsens.json`. Deterministic, including the
/// random policy (fixed SplitMix64 seed).
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let geom = CacheGeometry::new(8 * 1024, 32, 4)
        .map_err(|e| ExhibitError::new("replsens geometry", e))?;
    let base = SimConfig::baseline(HwConfig::NoRestrict).with_geometry(geom);
    let p = program(BENCHMARK, scale)?;
    let sweep = engine()
        .replacement_sweep(&p, &base, &ReplacementKind::all(), &configs(), &LATENCIES)
        .map_err(|e| ExhibitError::new(format!("{BENCHMARK} replacement sweep"), e))?;
    let _ = writeln!(
        out,
        "== Replacement-policy sensitivity: {BENCHMARK}, 4-way 8KB cache =="
    );
    let _ = writeln!(out, "{}", report::replacement_mcpi_table(&sweep));
    write_csv("replsens", &report::replacement_sweep_csv(&sweep))?;
    write_json("replsens", &report::replacement_sweep_json(&sweep))
}
