//! Fixture ledger declaration: `Clock` is deliberately unwired.

/// Replacement-policy selector (fixture copy).
pub enum ReplacementKind {
    /// Least recently used.
    Lru,
    /// First in, first out.
    Fifo,
    /// Seeded random.
    Random,
    /// Tree pseudo-LRU.
    TreePlru,
    /// Added but not wired through any consumer surface.
    Clock,
}
