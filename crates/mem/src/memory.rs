//! The fully pipelined main-memory model of the paper's §3.1.
//!
//! "To avoid stalls induced by the main memory, the main memory is assumed
//! to be fully pipelined. Hence, regardless of other memory activity, a
//! constant number of cycles is required to fetch a cache line from the
//! memory into the cache."
//!
//! With the paper's constant latency, fetches complete in issue order; the
//! two-level-hierarchy extension issues fetches with *per-fetch* latency
//! ([`PipelinedMemory::issue_fetch_after`] — an L2 hit returns sooner than
//! an earlier L2 miss), so completions are kept in a min-heap ordered by
//! completion time (ties broken by issue order).

use nbl_core::types::{BlockAddr, Cycle};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Errors from the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// `next_completion` / `advance_to_next_fill` was called with no fetch
    /// outstanding.
    NoFetchOutstanding,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::NoFetchOutstanding => write!(f, "no fetch outstanding"),
        }
    }
}

impl std::error::Error for MemoryError {}

/// A completed fetch, ready to be filled into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedFetch {
    /// The block whose data has arrived.
    pub block: BlockAddr,
    /// The cycle at which the data arrived.
    pub at: Cycle,
}

/// Fully pipelined, constant-latency main memory.
///
/// # Examples
///
/// ```
/// use nbl_mem::memory::PipelinedMemory;
/// use nbl_core::types::{BlockAddr, Cycle};
///
/// let mut mem = PipelinedMemory::new(16);
/// mem.issue_fetch(BlockAddr(7), Cycle(100));
/// mem.issue_fetch(BlockAddr(8), Cycle(101)); // pipelined: overlaps freely
/// assert_eq!(mem.drain_ready(Cycle(115)).count(), 0);
/// let ready: Vec<_> = mem.drain_ready(Cycle(117)).collect();
/// assert_eq!(ready.len(), 2);
/// assert_eq!(ready[0].at, Cycle(116));
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedMemory {
    miss_penalty: u32,
    /// Minimum cycles between successive fetch *completions*: 0 models the
    /// paper's fully pipelined memory; larger values model a
    /// bandwidth-limited bus (ablation only).
    issue_gap: u32,
    last_ready: Cycle,
    /// Min-heap by (completion time, issue sequence).
    in_flight: BinaryHeap<Reverse<(Cycle, u64, BlockAddr)>>,
    next_seq: u64,
}

impl PipelinedMemory {
    /// Creates a memory with the given miss penalty (cycles to fill a line;
    /// paper baseline: 16).
    ///
    /// # Panics
    ///
    /// Panics if `miss_penalty` is zero.
    pub fn new(miss_penalty: u32) -> PipelinedMemory {
        PipelinedMemory::with_gap(miss_penalty, 0)
    }

    /// Creates a bandwidth-limited memory: successive fetch completions are
    /// at least `issue_gap` cycles apart. `issue_gap = 0` reproduces the
    /// paper's fully pipelined assumption.
    ///
    /// # Panics
    ///
    /// Panics if `miss_penalty` is zero.
    pub fn with_gap(miss_penalty: u32, issue_gap: u32) -> PipelinedMemory {
        assert!(miss_penalty > 0, "a miss penalty of zero is not a miss");
        PipelinedMemory {
            miss_penalty,
            issue_gap,
            last_ready: Cycle::ZERO,
            in_flight: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Miss penalty for a line of `line_bytes` under the paper's §5.2
    /// pipelined memory: 14 cycles for the first 16 bytes, 2 cycles per
    /// additional 16 bytes. (16-byte lines → 14; 32-byte lines → 16;
    /// 64-byte lines → 20.)
    pub fn penalty_for_line(line_bytes: u32) -> u32 {
        assert!(line_bytes >= 16 && line_bytes.is_power_of_two());
        14 + 2 * (line_bytes / 16 - 1)
    }

    /// The configured miss penalty.
    #[inline]
    pub fn miss_penalty(&self) -> u32 {
        self.miss_penalty
    }

    /// Clears all in-flight state while keeping the heap's allocation for
    /// reuse by the next run on this worker.
    pub fn reset(&mut self) {
        self.in_flight.clear();
        self.last_ready = Cycle::ZERO;
        self.next_seq = 0;
    }

    /// Launches a fetch of `block` at time `now`; its data arrives at
    /// `now + miss_penalty`.
    ///
    /// Returns the completion time.
    pub fn issue_fetch(&mut self, block: BlockAddr, now: Cycle) -> Cycle {
        self.issue_fetch_after(block, now, self.miss_penalty)
    }

    /// Launches a fetch that completes after `latency` cycles instead of
    /// the configured default — the two-level-hierarchy extension, where an
    /// L2 hit returns sooner than an L2 miss (and may complete *before*
    /// fetches issued earlier).
    ///
    /// Returns the completion time.
    pub fn issue_fetch_after(&mut self, block: BlockAddr, now: Cycle, latency: u32) -> Cycle {
        let mut at = now.plus(u64::from(latency));
        if self.issue_gap > 0 {
            let earliest = self.last_ready.plus(u64::from(self.issue_gap));
            if earliest > at {
                at = earliest;
            }
        }
        if at > self.last_ready {
            self.last_ready = at;
        }
        self.in_flight.push(Reverse((at, self.next_seq, block)));
        self.next_seq += 1;
        at
    }

    /// Number of fetches in flight.
    #[inline]
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// Completion time of the earliest outstanding fetch.
    ///
    /// # Errors
    ///
    /// [`MemoryError::NoFetchOutstanding`] if the pipe is empty.
    pub fn next_completion(&self) -> Result<Cycle, MemoryError> {
        self.in_flight
            .peek()
            .map(|Reverse((at, _, _))| *at)
            .ok_or(MemoryError::NoFetchOutstanding)
    }

    /// Removes and returns every fetch that has completed by `now`
    /// (inclusive), in completion order.
    pub fn drain_ready(&mut self, now: Cycle) -> DrainReady<'_> {
        DrainReady { memory: self, now }
    }

    /// Removes and returns the earliest outstanding fetch regardless of the
    /// current time — used when the processor must stall until *some* fetch
    /// completes.
    ///
    /// # Errors
    ///
    /// [`MemoryError::NoFetchOutstanding`] if the pipe is empty.
    pub fn pop_next(&mut self) -> Result<CompletedFetch, MemoryError> {
        self.in_flight
            .pop()
            .map(|Reverse((at, _, block))| CompletedFetch { block, at })
            .ok_or(MemoryError::NoFetchOutstanding)
    }
}

/// Draining iterator returned by [`PipelinedMemory::drain_ready`].
#[derive(Debug)]
pub struct DrainReady<'a> {
    memory: &'a mut PipelinedMemory,
    now: Cycle,
}

impl Iterator for DrainReady<'_> {
    type Item = CompletedFetch;

    fn next(&mut self) -> Option<CompletedFetch> {
        let Reverse((at, _, _)) = *self.memory.in_flight.peek()?;
        if at <= self.now {
            self.memory.pop_next().ok()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency() {
        let mut m = PipelinedMemory::new(16);
        assert_eq!(m.issue_fetch(BlockAddr(1), Cycle(0)), Cycle(16));
        assert_eq!(m.issue_fetch(BlockAddr(2), Cycle(5)), Cycle(21));
        assert_eq!(m.outstanding(), 2);
        assert_eq!(m.next_completion(), Ok(Cycle(16)));
    }

    #[test]
    fn drain_respects_time() {
        let mut m = PipelinedMemory::new(4);
        m.issue_fetch(BlockAddr(1), Cycle(0)); // ready at 4
        m.issue_fetch(BlockAddr(2), Cycle(1)); // ready at 5
        m.issue_fetch(BlockAddr(3), Cycle(9)); // ready at 13
        let drained: Vec<_> = m.drain_ready(Cycle(5)).collect();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].block, BlockAddr(1));
        assert_eq!(drained[1].block, BlockAddr(2));
        assert_eq!(m.outstanding(), 1);
        assert!(m.drain_ready(Cycle(12)).next().is_none());
        assert_eq!(m.drain_ready(Cycle(13)).next().unwrap().block, BlockAddr(3));
    }

    #[test]
    fn pop_next_for_stalls() {
        let mut m = PipelinedMemory::new(16);
        assert_eq!(m.pop_next(), Err(MemoryError::NoFetchOutstanding));
        assert_eq!(m.next_completion(), Err(MemoryError::NoFetchOutstanding));
        m.issue_fetch(BlockAddr(9), Cycle(3));
        let f = m.pop_next().unwrap();
        assert_eq!(
            f,
            CompletedFetch {
                block: BlockAddr(9),
                at: Cycle(19)
            }
        );
        assert_eq!(m.outstanding(), 0);
    }

    #[test]
    fn variable_latency_completes_out_of_order() {
        let mut m = PipelinedMemory::new(30);
        m.issue_fetch(BlockAddr(1), Cycle(0)); // L2 miss: ready at 30
        m.issue_fetch_after(BlockAddr(2), Cycle(1), 6); // L2 hit: ready at 7
        assert_eq!(m.next_completion(), Ok(Cycle(7)));
        let first = m.pop_next().unwrap();
        assert_eq!(
            first,
            CompletedFetch {
                block: BlockAddr(2),
                at: Cycle(7)
            }
        );
        let second = m.pop_next().unwrap();
        assert_eq!(
            second,
            CompletedFetch {
                block: BlockAddr(1),
                at: Cycle(30)
            }
        );
    }

    #[test]
    fn equal_completion_times_keep_issue_order() {
        let mut m = PipelinedMemory::new(10);
        m.issue_fetch(BlockAddr(5), Cycle(0));
        m.issue_fetch_after(BlockAddr(6), Cycle(5), 5); // also ready at 10
        assert_eq!(m.pop_next().unwrap().block, BlockAddr(5));
        assert_eq!(m.pop_next().unwrap().block, BlockAddr(6));
    }

    #[test]
    fn issue_gap_serializes_completions() {
        let mut m = PipelinedMemory::with_gap(16, 8);
        assert_eq!(m.issue_fetch(BlockAddr(1), Cycle(0)), Cycle(16));
        // Back-to-back issues complete at least 8 cycles apart.
        assert_eq!(m.issue_fetch(BlockAddr(2), Cycle(1)), Cycle(24));
        assert_eq!(m.issue_fetch(BlockAddr(3), Cycle(2)), Cycle(32));
        // A fetch issued long after idle is unaffected.
        assert_eq!(m.issue_fetch(BlockAddr(4), Cycle(100)), Cycle(116));
    }

    #[test]
    fn zero_gap_is_fully_pipelined() {
        let mut m = PipelinedMemory::with_gap(16, 0);
        assert_eq!(m.issue_fetch(BlockAddr(1), Cycle(0)), Cycle(16));
        assert_eq!(m.issue_fetch(BlockAddr(2), Cycle(1)), Cycle(17));
    }

    #[test]
    fn line_size_penalties_match_paper_section_5_2() {
        assert_eq!(PipelinedMemory::penalty_for_line(16), 14);
        assert_eq!(PipelinedMemory::penalty_for_line(32), 16);
        assert_eq!(PipelinedMemory::penalty_for_line(64), 20);
    }

    #[test]
    #[should_panic(expected = "not a miss")]
    fn zero_penalty_rejected() {
        let _ = PipelinedMemory::new(0);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            MemoryError::NoFetchOutstanding.to_string(),
            "no fetch outstanding"
        );
    }
}
