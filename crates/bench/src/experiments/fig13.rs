//! Figure 13 (table): baseline MCPI for all 18 SPEC92 stand-ins at
//! scheduled load latency 10, under mc=0 / mc=1 / mc=2 / fc=1 / fc=2 and
//! the unrestricted cache, with ratios to the unrestricted MCPI.

use super::{engine, programs_for, ExhibitError, RunScale};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::RunResult;
use nbl_sim::report;
use nbl_trace::ir::Program;
use nbl_trace::workloads::ALL;
use std::io::Write;

/// All 18 rows — the full 18 × 6 grid as one flat pool invocation, each
/// benchmark compiled once (at latency 10) for all six configurations.
pub fn grid(scale: RunScale) -> Result<Vec<(&'static str, Vec<RunResult>)>, ExhibitError> {
    let programs = programs_for(&ALL, scale)?;
    let configs = HwConfig::table13_six();
    let nc = configs.len();
    let jobs: Vec<(&Program, SimConfig)> = programs
        .iter()
        .flat_map(|p| {
            configs
                .iter()
                .map(move |hw| (p, SimConfig::baseline(hw.clone())))
        })
        .collect();
    let results = engine()
        .run_many(&jobs)
        .map_err(|e| ExhibitError::new("Fig. 13 grid over all 18 benchmarks", e))?;
    let mut iter = results.into_iter();
    Ok(ALL
        .iter()
        .map(|name| (*name, iter.by_ref().take(nc).collect()))
        .collect())
}

/// Prints the Fig. 13 table.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let _ = writeln!(
        out,
        "== Figure 13: baseline MCPI for 18 benchmarks (latency 10) =="
    );
    let _ = writeln!(
        out,
        "{:>10} {:>7} {:>5} {:>7} {:>5} {:>7} {:>5} {:>7} {:>5} {:>7} {:>5} {:>7}",
        "bench", "mc=0", "r", "mc=1", "r", "mc=2", "r", "fc=1", "r", "fc=2", "r", "inf"
    );
    for (name, results) in grid(scale)? {
        let _ = writeln!(out, "{}", report::fig13_row(name, &results));
    }
    let _ = writeln!(out);
    Ok(())
}
