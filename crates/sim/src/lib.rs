//! # nbl-sim — simulation driver and experiment infrastructure
//!
//! Glues the substrates together into the paper's experimental setup:
//!
//! * [`config`] — the named hardware configurations of the paper's figure
//!   legends (`mc=0 + wma`, `mc=N`, `fc=N`, `fs=N`, in-cache, targets,
//!   "no restrict") and complete [`config::SimConfig`]s;
//! * [`driver`] — compile-and-run of one workload under one configuration,
//!   producing a [`driver::RunResult`] with every metric the paper plots
//!   (MCPI, stall breakdown, miss rates, in-flight histograms);
//! * [`sweep`] — configuration × latency and configuration × penalty
//!   sweeps with compilation shared across configurations, serially or on
//!   the parallel [`sweep::SweepEngine`];
//! * [`pool`] — the scoped-thread job pool behind the parallel sweeps
//!   (`NBL_THREADS` overrides the worker count);
//! * [`compile_cache`] — exactly-once compilation per `(benchmark,
//!   latency)` pair, shared by reference across configurations and sweeps;
//! * [`tape_cache`] — exactly-once recording of each compiled pair's
//!   dynamic instruction stream into a flat [`nbl_trace::tape::TraceTape`],
//!   replayed (instead of re-interpreted) at every grid point, with a byte
//!   budget and idle-tape eviction;
//! * [`store`] — the tiered artifact store behind both caches: a
//!   content-addressed, versioned, checksummed on-disk tier
//!   (`results/store/`) that persists tapes and [`driver::RunResult`]s
//!   across processes, with quarantine-and-re-record corruption handling
//!   and the incremental-sweep fast path;
//! * [`telemetry`] — process-wide counters of simulated work, for
//!   throughput reporting;
//! * [`report`] — fixed-width text rendering in the shape of the paper's
//!   figures and tables.

/// Exactly-once compilation cache shared across sweep grid points.
pub mod compile_cache;
/// The experiment configuration space (Fig. 13 machine configs et al.).
pub mod config;
/// Single-run driver: build the machine, run a benchmark, collect results.
pub mod driver;
/// Scoped-thread job pool with input-ordered placement for sweeps.
pub mod pool;
/// Fixed-width tables and hand-rolled JSON emitters for every exhibit.
pub mod report;
/// The tiered artifact store: memory caches over a content-addressed,
/// checksummed on-disk artifact directory.
pub mod store;
/// The parallel sweep engine (latency / penalty / grid / replacement /
/// processor model).
pub mod sweep;
/// Record-once/replay-many trace-tape cache beside the compile cache.
pub mod tape_cache;
/// Process-wide atomic counters surfaced in the throughput table.
pub mod telemetry;

pub use compile_cache::{CacheStats, CompileCache};
pub use config::{HwConfig, IssueWidth, ProcessorKind, SimConfig};
pub use driver::{
    run_compiled, run_compiled_interpreted, run_compiled_traced, run_dual, run_dual_cached,
    run_dual_compiled, run_dual_compiled_interpreted, run_dual_tape, run_program,
    run_program_cached, run_program_traced, run_tape, run_tape_fused, run_tape_probed,
    DualRunResult, RunResult, SimError,
};
pub use pool::{available_threads, JobPanic, JobPool};
pub use store::{
    configure_store, store_settings, ArtifactError, ArtifactStore, DiskTier, StoreSettings,
    StoreStats,
};
pub use sweep::{
    latency_sweep, penalty_sweep, LatencySweep, ModelSweep, PenaltySweep, SweepEngine,
};
pub use tape_cache::{TapeCache, TapeStats};
pub use telemetry::{Telemetry, TelemetrySnapshot};
