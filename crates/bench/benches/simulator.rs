//! Microbenchmarks: throughput of the simulator's hot paths.
//!
//! These are engineering benchmarks for the simulator itself (the paper
//! reproduction lives in the `figures` binary); they guard against
//! regressions that would make the 3700-simulation-scale studies painful.
//!
//! The harness is a deliberately small std-only timer (median of N
//! timed batches after warmup) so the workspace builds with no external
//! dependencies. Run with `cargo bench -p nbl-bench`; pass a substring
//! argument to select benchmarks by name.

use nbl_core::cache::{CacheConfig, LockupFreeCache};
use nbl_core::geometry::CacheGeometry;
use nbl_core::limit::Limit;
use nbl_core::mshr::inverted::InvertedConfig;
use nbl_core::mshr::{MshrConfig, RegisterFileConfig, TargetPolicy};
use nbl_core::types::{Addr, Dest, LoadFormat, PhysReg};
use nbl_sched::compile::compile;
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::run_compiled;
use nbl_trace::workloads::{build, Scale};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over batches of `batch` iterations: 2 warmup batches, then
/// `samples` timed ones; reports the median per-iteration time.
fn bench(name: &str, filter: Option<&str>, batch: u64, f: &mut dyn FnMut()) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    const SAMPLES: usize = 7;
    for _ in 0..2 * batch {
        f();
    }
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = per_iter[SAMPLES / 2];
    let (value, unit) = if median < 1e-6 {
        (median * 1e9, "ns")
    } else if median < 1e-3 {
        (median * 1e6, "µs")
    } else {
        (median * 1e3, "ms")
    };
    println!("{name:<44} {value:>9.2} {unit}/iter");
}

fn cache_hit_path(filter: Option<&str>) {
    let mut cache = LockupFreeCache::new(CacheConfig::baseline(MshrConfig::Inverted(
        InvertedConfig::typical(),
    )));
    // Warm one line.
    cache.access_load(Addr(0x1000), Dest::Reg(PhysReg::int(1)), LoadFormat::WORD);
    cache.fill(cache.block_of(Addr(0x1000)));
    bench(
        "cache_hit_path/direct_mapped",
        filter,
        1_000_000,
        &mut || {
            black_box(cache.access_load(
                black_box(Addr(0x1008)),
                Dest::Reg(PhysReg::int(2)),
                LoadFormat::WORD,
            ));
        },
    );

    // The fully associative geometry of Fig. 10: 256 ways, where the tag
    // probe is the hot linear scan the indexed lookup replaces.
    let mut cfg = CacheConfig::baseline(MshrConfig::Inverted(InvertedConfig::typical()));
    cfg.geometry = CacheGeometry::fully_associative(8 * 1024, 32).expect("valid geometry");
    let mut fa = LockupFreeCache::new(cfg);
    for i in 0..256u64 {
        let a = Addr(i * 32);
        fa.access_load(a, Dest::Reg(PhysReg::int(1)), LoadFormat::WORD);
        fa.fill(fa.block_of(a));
    }
    let mut i = 0u64;
    bench(
        "cache_hit_path/fully_associative",
        filter,
        1_000_000,
        &mut || {
            i = (i + 1) % 256;
            black_box(fa.access_load(
                black_box(Addr(i * 32)),
                Dest::Reg(PhysReg::int(2)),
                LoadFormat::WORD,
            ));
        },
    );
}

fn mshr_miss_fill_cycle(filter: Option<&str>) {
    let organizations: Vec<(&str, MshrConfig)> = vec![
        (
            "register_fc2",
            MshrConfig::Register(RegisterFileConfig {
                entries: Limit::Finite(2),
                targets: TargetPolicy::explicit(Limit::Unlimited),
                max_outstanding_misses: Limit::Unlimited,
                max_fetches_per_set: Limit::Unlimited,
            }),
        ),
        ("inverted", MshrConfig::Inverted(InvertedConfig::typical())),
        (
            "incache",
            MshrConfig::InCache {
                targets: TargetPolicy::explicit(Limit::Unlimited),
                read_extra_cycles: 0,
            },
        ),
    ];
    for (name, mshr) in organizations {
        let mut cache = LockupFreeCache::new(CacheConfig::baseline(mshr));
        let mut addr = 0u64;
        bench(
            &format!("mshr_miss_fill/{name}"),
            filter,
            200_000,
            &mut || {
                addr = addr.wrapping_add(0x2040);
                let a = Addr(addr & 0xff_ffff);
                let r = cache.access_load(a, Dest::Reg(PhysReg::int(3)), LoadFormat::WORD);
                black_box(r);
                black_box(cache.fill(cache.block_of(a)));
            },
        );
    }
}

fn compile_throughput(filter: Option<&str>) {
    for name in ["doduc", "fpppp", "tomcatv"] {
        let p = build(name, Scale::quick()).unwrap();
        bench(&format!("compile/{name}"), filter, 50, &mut || {
            black_box(compile(&p, black_box(10)).unwrap());
        });
    }
}

fn end_to_end_simulation(filter: Option<&str>) {
    for (label, hw) in [
        ("blocking", HwConfig::Mc0),
        ("hit_under_miss", HwConfig::Mc(1)),
        ("unrestricted", HwConfig::NoRestrict),
    ] {
        let p = build("doduc", Scale::quick()).unwrap();
        let compiled = compile(&p, 10).unwrap();
        let cfg = SimConfig::baseline(hw);
        bench(&format!("simulate_40k/{label}"), filter, 10, &mut || {
            black_box(run_compiled("doduc", &compiled, &cfg).unwrap());
        });
    }
    // Fully associative geometry: stresses the cache-lookup path the
    // flattened tag store + block index optimize.
    let p = build("xlisp", Scale::quick()).unwrap();
    let compiled = compile(&p, 10).unwrap();
    let cfg = SimConfig::baseline(HwConfig::NoRestrict)
        .with_geometry(CacheGeometry::fully_associative(8 * 1024, 32).expect("valid geometry"));
    bench(
        "simulate_40k/fully_associative_xlisp",
        filter,
        10,
        &mut || {
            black_box(run_compiled("xlisp", &compiled, &cfg).unwrap());
        },
    );
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let filter = args.first().map(String::as_str);
    cache_hit_path(filter);
    mshr_miss_fill_cycle(filter);
    compile_throughput(filter);
    end_to_end_simulation(filter);
}
