//! `compress` — LZW text compression (SPEC92 CINT).
//!
//! The inner loop hashes the (prefix, char) pair and probes a 64 KB code
//! table: the probe address depends on the hash, and the *next* iteration
//! depends on the probe result — a dependent gather chain. Non-blocking
//! hardware beyond hit-under-miss is useless here (Fig. 13: `mc=1` =
//! 0.354 vs unrestricted 0.348).
//!
//! Model: sequential input-byte loads (mostly hitting), a hash ALU chain,
//! a dependent probe into a large gather region, and table update stores.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("compress");
    // Input text: byte stream (one line serves 32 loads).
    let input = pb.pattern(AddrPattern::Strided {
        base: layout::region(0, 0),
        elem_bytes: 1,
        stride: 1,
        length: 256 * 1024,
    });
    // Hash/code tables: 64 KB scattered probes.
    let htab = pb.pattern(AddrPattern::Gather {
        base: layout::region(1, 1024),
        elem_bytes: 8,
        length: 1152, // 9 KB
        seed: 0xc0de,
    });
    let codetab = pb.pattern(AddrPattern::Gather {
        base: layout::region(2, 3072),
        elem_bytes: 4,
        length: 1024, // 4 KB
        seed: 0xc0de + 7,
    });
    let output = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 2048),
        elem_bytes: 1,
        stride: 1,
        length: 128 * 1024,
    });

    let mut b = pb.block();
    let ent = b.carried(RegClass::Int); // current prefix code
    let ch = b.load(
        input,
        RegClass::Int,
        LoadFormat {
            size: nbl_core::types::AccessSize::B1,
            sign_extend: false,
        },
    );
    // Hash computation feeds the probe address: the probe is dependent.
    let h1 = b.alu(RegClass::Int, Some(ch), Some(ent));
    let h2 = b.alu(RegClass::Int, Some(h1), None);
    let h3 = b.alu(RegClass::Int, Some(h2), None);
    let probe = b.load_via(htab, h3, RegClass::Int, LoadFormat::DOUBLE);
    // The comparison result feeds next iteration's prefix.
    let eq = b.alu(RegClass::Int, Some(probe), Some(ent));
    b.branch(Some(eq));
    // Secondary probe (collision path) depends on the first.
    let reprobe = b.load_via(codetab, probe, RegClass::Int, LoadFormat::WORD);
    let nx = b.alu(RegClass::Int, Some(reprobe), Some(eq));
    b.alu_into(ent, Some(nx), None);
    // Table update + output emission.
    b.store(htab, Some(nx));
    b.store(output, Some(nx));
    let t = b.alu_chain(RegClass::Int, nx, 13);
    b.branch(Some(t));
    let lzw = b.finish();

    let trips = scale.trips(25);
    pb.run(lzw, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrOp;

    #[test]
    fn probes_are_dependent_loads() {
        let p = build(Scale::quick());
        let dependent_loads = p.blocks[0]
            .ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    IrOp::Load {
                        addr_src: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(dependent_loads, 2, "hash probe and collision reprobe");
        let (loads, stores, _) = p.blocks[0].op_mix();
        assert_eq!(loads, 3);
        assert_eq!(stores, 2);
    }
}
