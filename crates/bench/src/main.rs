//! `figures` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! cargo run -p nbl-bench --release -- all            # everything
//! cargo run -p nbl-bench --release -- fig5 fig13     # selected exhibits
//! cargo run -p nbl-bench --release -- all --quick    # smoke-scale
//! cargo run -p nbl-bench --release -- all --out results.txt
//! ```

mod experiments;

use experiments::RunScale;
use std::io::Write;

const USAGE: &str = "usage: figures <all | fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 compare ablations extensions ...> [--quick] [--out FILE] [--csv DIR]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = RunScale::Full;
    let mut out_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = RunScale::Quick,
            "--out" => out_path = it.next(),
            "--csv" => {
                let dir = it.next().expect("--csv needs a directory");
                experiments::enable_csv(dir.into());
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.iter().any(|w| w == "list") {
        println!("exhibits: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19");
        println!("extras:   compare (paper vs measured), ablations, extensions, all");
        println!("options:  --quick (smoke scale), --out FILE (tee), --csv DIR (sweep CSVs)");
        return;
    }
    if wanted.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let mut sinks: Vec<Box<dyn Write>> = vec![Box::new(std::io::stdout())];
    if let Some(path) = &out_path {
        sinks.push(Box::new(std::fs::File::create(path).expect("create output file")));
    }
    let mut out = Tee(sinks);

    if want("compare") {
        experiments::compare::run(&mut out, scale);
    }
    if want("fig4") {
        experiments::fig4::run(&mut out, scale);
    }
    // Figures 5–8 share the doduc baseline sweep.
    let needs_doduc_sweep = ["fig5", "fig7", "fig8"].iter().any(|f| want(f));
    let doduc_sweep =
        needs_doduc_sweep.then(|| experiments::figs_baseline::fig5(&mut out, scale));
    if want("fig6") {
        experiments::fig6::run(&mut out, scale);
    }
    if let Some(sweep) = &doduc_sweep {
        if want("fig7") {
            experiments::figs_baseline::fig7(&mut out, sweep);
        }
        if want("fig8") {
            experiments::figs_baseline::fig8(&mut out, sweep);
        }
    }
    if want("fig9") {
        experiments::figs_baseline::fig9(&mut out, scale);
    }
    if want("fig10") {
        experiments::figs_baseline::fig10(&mut out, scale);
    }
    if want("fig11") {
        experiments::figs_baseline::fig11(&mut out, scale);
    }
    if want("fig12") {
        experiments::figs_baseline::fig12(&mut out, scale);
    }
    if want("fig13") {
        experiments::fig13::run(&mut out, scale);
    }
    if want("fig14") {
        experiments::fig14::run(&mut out, scale);
    }
    if want("fig15") {
        experiments::fig15::run(&mut out, scale);
    }
    if want("fig16") {
        experiments::figs_baseline::fig16(&mut out, scale);
    }
    if want("fig17") {
        experiments::figs_baseline::fig17(&mut out, scale);
    }
    if want("fig18") {
        experiments::fig18::run(&mut out, scale);
    }
    if want("fig19") {
        experiments::fig19::run(&mut out, scale);
    }
    if want("ablations") {
        experiments::ablations::run(&mut out, scale);
    }
    if want("extensions") {
        experiments::extensions::run(&mut out, scale);
    }
}

/// Writes to every sink (stdout + optional file).
struct Tee(Vec<Box<dyn Write>>);

impl Write for Tee {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for s in &mut self.0 {
            s.write_all(buf)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        for s in &mut self.0 {
            s.flush()?;
        }
        Ok(())
    }
}
