//! The policy-parameterized tag array shared by every cache level.
//!
//! A [`TagArray`] owns exactly the state a cache's tag pipeline owns in
//! hardware: the valid/tag bits of every line, the resident-block index
//! used for high-associativity geometries, and the replacement metadata.
//! It answers *which line* — lookup, touch, install, evict — and nothing
//! else; miss tracking (MSHRs), write buffering and timing live in the
//! layers above. Both the L1 inside `LockupFreeCache` and the tag-only L2
//! of `nbl_mem::system` instantiate this one type, so there is a single
//! set-scan and a single eviction path in the workspace.
//!
//! Replacement is a plug-in: the [`ReplacementPolicy`](crate::tag_array::ReplacementPolicy) trait exposes the
//! on-hit / on-fill / on-evict hooks plus victim selection, and
//! [`ReplacementKind`] names the four shipped implementations — true LRU
//! (the paper's policy and the default), FIFO, seeded-random
//! (deterministic via the in-tree splitmix64), and tree-PLRU (the
//! pseudo-LRU bit tree real set-associative caches implement). With
//! [`ReplacementKind::Lru`] the array reproduces the pre-refactor
//! hardcoded LRU bit-for-bit — that equivalence is pinned by the 72
//! golden rows in `tests/refactor_equivalence.rs`.

use crate::geometry::CacheGeometry;
use crate::hash::FastMap;
use crate::rng::SplitMix64;
use crate::types::BlockAddr;
use std::fmt;

/// Default seed for [`ReplacementKind::Random`]: an arbitrary fixed
/// constant so two runs (and two machines) pick identical victims.
pub const DEFAULT_RANDOM_SEED: u64 = 0x6e62_6c5f_7261_6e64; // "nbl_rand"

/// The replacement policies a [`TagArray`] can be built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// True least-recently-used (per-line use stamps). The paper's policy
    /// and the workspace default.
    #[default]
    Lru,
    /// First-in-first-out: victim is the oldest *fill*, hits do not
    /// refresh a line.
    Fifo,
    /// Uniform-random victim from a [`SplitMix64`] stream seeded with the
    /// given value — fully deterministic for a fixed seed.
    Random {
        /// PRNG seed (use [`DEFAULT_RANDOM_SEED`] unless sweeping seeds).
        seed: u64,
    },
    /// Tree pseudo-LRU: one bit per internal node of a binary tree over
    /// the ways, as implemented by real set-associative caches.
    TreePlru,
}

impl ReplacementKind {
    /// Random replacement with the workspace's fixed default seed.
    pub fn random() -> ReplacementKind {
        ReplacementKind::Random {
            seed: DEFAULT_RANDOM_SEED,
        }
    }

    /// Short label for tables and CSV/JSON columns.
    pub fn label(&self) -> String {
        match self {
            ReplacementKind::Lru => "lru".into(),
            ReplacementKind::Fifo => "fifo".into(),
            ReplacementKind::Random { seed } if *seed == DEFAULT_RANDOM_SEED => "random".into(),
            ReplacementKind::Random { seed } => format!("random#{seed:x}"),
            ReplacementKind::TreePlru => "plru".into(),
        }
    }

    /// The four shipped policies (default seeds), the axis `figures
    /// replsens` sweeps.
    pub fn all() -> Vec<ReplacementKind> {
        vec![
            ReplacementKind::Lru,
            ReplacementKind::Fifo,
            ReplacementKind::random(),
            ReplacementKind::TreePlru,
        ]
    }
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Replacement-policy hooks a [`TagArray`] drives.
///
/// `set` is the set index and `way` the way within it. The array calls
/// [`ReplacementPolicy::victim`] only when every way of the set is valid;
/// invalid ways are always consumed first (in way order), exactly like
/// the pre-refactor cache.
pub trait ReplacementPolicy {
    /// A resident line was touched by a hit.
    fn on_hit(&mut self, set: u32, way: usize);
    /// A line was (re)filled into `way`.
    fn on_fill(&mut self, set: u32, way: usize);
    /// The line in `way` was evicted or invalidated.
    fn on_evict(&mut self, set: u32, way: usize);
    /// The way to evict next, given a full set. May mutate policy state
    /// (the random policy consumes its PRNG stream here).
    fn victim(&mut self, set: u32) -> usize;
}

/// True LRU: one monotonically increasing stamp per line. Stamps are
/// assigned in touch order, so the victim ordering is identical to the
/// pre-refactor `use_clock`/`last_use` scheme (which also ticked on
/// misses — ticks that never changed the relative order of touches).
#[derive(Debug, Clone)]
struct LruPolicy {
    ways: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl LruPolicy {
    fn new(sets: usize, ways: usize) -> LruPolicy {
        LruPolicy {
            ways,
            stamps: vec![0; sets * ways],
            clock: 0,
        }
    }

    #[inline]
    fn touch(&mut self, set: u32, way: usize) {
        self.clock += 1;
        self.stamps[set as usize * self.ways + way] = self.clock;
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_hit(&mut self, set: u32, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: u32, way: usize) {
        self.touch(set, way);
    }

    fn on_evict(&mut self, _set: u32, _way: usize) {}

    fn victim(&mut self, set: u32) -> usize {
        let base = set as usize * self.ways;
        let slice = &self.stamps[base..base + self.ways];
        // Min stamp, first way on ties — the pre-refactor scan order.
        let mut best = 0;
        for (w, &s) in slice.iter().enumerate() {
            if s < slice[best] {
                best = w;
            }
        }
        best
    }
}

/// FIFO: stamps are assigned on fill only, so hits never save a line.
#[derive(Debug, Clone)]
struct FifoPolicy {
    ways: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl FifoPolicy {
    fn new(sets: usize, ways: usize) -> FifoPolicy {
        FifoPolicy {
            ways,
            stamps: vec![0; sets * ways],
            clock: 0,
        }
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn on_hit(&mut self, _set: u32, _way: usize) {}

    fn on_fill(&mut self, set: u32, way: usize) {
        self.clock += 1;
        self.stamps[set as usize * self.ways + way] = self.clock;
    }

    fn on_evict(&mut self, _set: u32, _way: usize) {}

    fn victim(&mut self, set: u32) -> usize {
        let base = set as usize * self.ways;
        let slice = &self.stamps[base..base + self.ways];
        let mut best = 0;
        for (w, &s) in slice.iter().enumerate() {
            if s < slice[best] {
                best = w;
            }
        }
        best
    }
}

/// Seeded-random victim selection. The stream is consumed only by
/// [`ReplacementPolicy::victim`], so for a fixed seed the whole victim
/// sequence is a pure function of the access sequence.
#[derive(Debug, Clone)]
struct RandomPolicy {
    ways: usize,
    /// The seed the stream started from, kept so [`TagArray::reset`] can
    /// rewind the policy to its as-built state.
    seed: u64,
    rng: SplitMix64,
}

impl ReplacementPolicy for RandomPolicy {
    fn on_hit(&mut self, _set: u32, _way: usize) {}

    fn on_fill(&mut self, _set: u32, _way: usize) {}

    fn on_evict(&mut self, _set: u32, _way: usize) {}

    fn victim(&mut self, _set: u32) -> usize {
        self.rng.next_below(self.ways as u64) as usize
    }
}

/// Tree pseudo-LRU over a power-of-two number of ways ([`CacheGeometry`]
/// guarantees that): `ways - 1` bits per set, heap-indexed. Each bit
/// points toward the half holding the next victim; touching a way flips
/// every bit on its root path away from it, so a just-touched line is
/// never the victim.
#[derive(Debug, Clone)]
struct TreePlruPolicy {
    ways: usize,
    /// `(ways - 1)` bits per set, flattened.
    bits: Vec<bool>,
}

impl TreePlruPolicy {
    fn new(sets: usize, ways: usize) -> TreePlruPolicy {
        TreePlruPolicy {
            ways,
            bits: vec![false; sets * ways.saturating_sub(1)],
        }
    }

    #[inline]
    fn touch(&mut self, set: u32, way: usize) {
        let base = set as usize * (self.ways - 1);
        let (mut node, mut lo, mut hi) = (0usize, 0usize, self.ways);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Accessed the left half: next victim is on the right.
                self.bits[base + node] = true;
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.bits[base + node] = false;
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlruPolicy {
    fn on_hit(&mut self, set: u32, way: usize) {
        if self.ways > 1 {
            self.touch(set, way);
        }
    }

    fn on_fill(&mut self, set: u32, way: usize) {
        if self.ways > 1 {
            self.touch(set, way);
        }
    }

    fn on_evict(&mut self, _set: u32, _way: usize) {}

    fn victim(&mut self, set: u32) -> usize {
        if self.ways == 1 {
            return 0;
        }
        let base = set as usize * (self.ways - 1);
        let (mut node, mut lo, mut hi) = (0usize, 0usize, self.ways);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[base + node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }
}

/// Enum dispatch over the shipped policies: keeps [`TagArray`] `Clone` +
/// `Debug` and the per-access cost a jump, not a vtable load.
#[derive(Debug, Clone)]
enum Policy {
    Lru(LruPolicy),
    Fifo(FifoPolicy),
    Random(RandomPolicy),
    TreePlru(TreePlruPolicy),
}

impl Policy {
    fn new(kind: ReplacementKind, sets: usize, ways: usize) -> Policy {
        match kind {
            ReplacementKind::Lru => Policy::Lru(LruPolicy::new(sets, ways)),
            ReplacementKind::Fifo => Policy::Fifo(FifoPolicy::new(sets, ways)),
            ReplacementKind::Random { seed } => Policy::Random(RandomPolicy {
                ways,
                seed,
                rng: SplitMix64::new(seed),
            }),
            ReplacementKind::TreePlru => Policy::TreePlru(TreePlruPolicy::new(sets, ways)),
        }
    }
}

impl ReplacementPolicy for Policy {
    fn on_hit(&mut self, set: u32, way: usize) {
        match self {
            Policy::Lru(p) => p.on_hit(set, way),
            Policy::Fifo(p) => p.on_hit(set, way),
            Policy::Random(p) => p.on_hit(set, way),
            Policy::TreePlru(p) => p.on_hit(set, way),
        }
    }

    fn on_fill(&mut self, set: u32, way: usize) {
        match self {
            Policy::Lru(p) => p.on_fill(set, way),
            Policy::Fifo(p) => p.on_fill(set, way),
            Policy::Random(p) => p.on_fill(set, way),
            Policy::TreePlru(p) => p.on_fill(set, way),
        }
    }

    fn on_evict(&mut self, set: u32, way: usize) {
        match self {
            Policy::Lru(p) => p.on_evict(set, way),
            Policy::Fifo(p) => p.on_evict(set, way),
            Policy::Random(p) => p.on_evict(set, way),
            Policy::TreePlru(p) => p.on_evict(set, way),
        }
    }

    fn victim(&mut self, set: u32) -> usize {
        match self {
            Policy::Lru(p) => p.victim(set),
            Policy::Fifo(p) => p.victim(set),
            Policy::Random(p) => p.victim(set),
            Policy::TreePlru(p) => p.victim(set),
        }
    }
}

impl Policy {
    /// Rewinds the policy to its as-built state without releasing any
    /// backing storage (the metadata vectors are zeroed in place).
    fn reset(&mut self) {
        match self {
            Policy::Lru(p) => {
                p.stamps.fill(0);
                p.clock = 0;
            }
            Policy::Fifo(p) => {
                p.stamps.fill(0);
                p.clock = 0;
            }
            Policy::Random(p) => p.rng = SplitMix64::new(p.seed),
            Policy::TreePlru(p) => p.bits.fill(false),
        }
    }
}

/// One line's tag-pipeline state. Data values are never simulated (the
/// model is trace-driven, like the paper's).
#[derive(Debug, Clone, Copy)]
struct TagLine {
    valid: bool,
    tag: u64,
}

/// Read-only replacement state of one way, as reported by
/// [`TagArray::debug_ages`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayAge {
    /// The resident block, or `None` for an invalid way.
    pub block: Option<BlockAddr>,
    /// The policy's age/rank stamp for the way: the use stamp under
    /// [`ReplacementKind::Lru`] (larger = more recently used), the fill
    /// stamp under [`ReplacementKind::Fifo`] (larger = more recently
    /// filled), `None` for the stampless policies
    /// ([`ReplacementKind::Random`], [`ReplacementKind::TreePlru`]).
    pub stamp: Option<u64>,
}

/// Associativity above which lookups go through the block index instead
/// of scanning the set's tags. At 8 ways and below the scan is a handful
/// of contiguous compares and beats the hash.
const INDEXED_LOOKUP_MIN_WAYS: usize = 16;

/// A cache level's tag store: valid/tag bits, the resident-block index
/// for high-associativity geometries, and the replacement policy. See
/// the module docs.
///
/// # Examples
///
/// ```
/// use nbl_core::geometry::CacheGeometry;
/// use nbl_core::tag_array::{ReplacementKind, TagArray};
/// use nbl_core::types::BlockAddr;
///
/// let geom = CacheGeometry::new(64, 32, 2).unwrap(); // one 2-way set
/// let mut tags = TagArray::new(geom, ReplacementKind::Lru);
/// assert_eq!(tags.install(BlockAddr(0)), None);
/// assert_eq!(tags.install(BlockAddr(1)), None);
/// assert!(tags.touch(BlockAddr(0))); // 0 is now MRU
/// assert_eq!(tags.install(BlockAddr(2)), Some(BlockAddr(1)));
/// ```
#[derive(Debug, Clone)]
pub struct TagArray {
    geometry: CacheGeometry,
    ways: usize,
    /// Flattened tag store: set `s` occupies `lines[s*ways..(s+1)*ways]`.
    lines: Vec<TagLine>,
    /// Resident-block index (block → flat slot), maintained only when the
    /// linear set scan would cost more than a hash lookup (e.g. the fully
    /// associative geometry of Fig. 10: 256 tag compares per probe).
    index: Option<FastMap<BlockAddr, u32>>,
    policy: Policy,
}

impl TagArray {
    /// An all-invalid tag array over `geometry` with the given policy.
    pub fn new(geometry: CacheGeometry, replacement: ReplacementKind) -> TagArray {
        let ways = geometry.ways() as usize;
        let sets = geometry.num_sets() as usize;
        TagArray {
            geometry,
            ways,
            lines: vec![
                TagLine {
                    valid: false,
                    tag: 0
                };
                sets * ways
            ],
            index: (ways >= INDEXED_LOOKUP_MIN_WAYS).then(FastMap::default),
            policy: Policy::new(replacement, sets, ways),
        }
    }

    /// Rewinds the array to the all-invalid state [`TagArray::new`]
    /// produces — valid bits cleared, block index emptied, replacement
    /// metadata rewound — while keeping every heap allocation (line
    /// vector, index buckets, policy stamps) for reuse. The arena layer
    /// in `nbl-sim` leans on this to recycle whole processor instances
    /// across warm sweep runs without fresh allocations.
    pub fn reset(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
        if let Some(index) = &mut self.index {
            index.clear();
        }
        self.policy.reset();
    }

    /// The geometry this array was built over.
    #[inline]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Ways per set.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The flat `lines` range holding `set`.
    #[inline]
    fn set_slots(&self, set: u32) -> std::ops::Range<usize> {
        let start = set as usize * self.ways;
        start..start + self.ways
    }

    /// Reconstructs the block address resident in flat `slot`.
    #[inline]
    pub fn block_at(&self, slot: usize) -> BlockAddr {
        let set = (slot / self.ways) as u64;
        let set_bits = self.geometry.num_sets().trailing_zeros();
        BlockAddr((self.lines[slot].tag << set_bits) | set)
    }

    /// `true` if the line in `way` of `set` is valid.
    #[inline]
    pub fn is_valid(&self, set: u32, way: usize) -> bool {
        self.lines[set as usize * self.ways + way].valid
    }

    /// Read-only per-way age/rank inspection of `set` — the concrete
    /// state the static cache oracle's LRU/FIFO age bounds are
    /// property-tested against. One [`WayAge`] per way, in way order.
    ///
    /// Never mutates replacement state (in particular it does not consume
    /// the random policy's PRNG), so interleaving it with accesses cannot
    /// perturb a run. Direct-mapped arrays (`ways == 1`) skip policy
    /// bookkeeping on their fast paths, so their stamps stay at the
    /// as-built value of `0`; with one way per set the stamp carries no
    /// ordering information anyway.
    pub fn debug_ages(&self, set: u32) -> Vec<WayAge> {
        let range = self.set_slots(set);
        let start = range.start;
        range
            .map(|slot| {
                let way = slot - start;
                let line = self.lines[slot];
                let block = line.valid.then(|| self.block_at(slot));
                let stamp = match &self.policy {
                    Policy::Lru(p) => Some(p.stamps[set as usize * p.ways + way]),
                    Policy::Fifo(p) => Some(p.stamps[set as usize * p.ways + way]),
                    Policy::Random(_) | Policy::TreePlru(_) => None,
                };
                WayAge { block, stamp }
            })
            .collect()
    }

    /// Flat slot of `block` if resident: an O(1) index lookup for
    /// high-associativity geometries, a short tag scan otherwise. Pure —
    /// no replacement-state update.
    #[inline]
    pub fn find(&self, block: BlockAddr) -> Option<usize> {
        if let Some(index) = &self.index {
            return index.get(&block).map(|&s| s as usize);
        }
        let set = self.geometry.set_of_block(block);
        let tag = self.geometry.tag_of_block(block);
        let range = self.set_slots(set);
        self.lines[range.clone()]
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .map(|i| range.start + i)
    }

    /// `true` if `block` is resident.
    #[inline]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.find(block).is_some()
    }

    /// The pure-lookup half of [`TagArray::touch`]: flat slot of `block`
    /// if resident, with the same direct-mapped fast path, and no
    /// replacement-state update. `probe` followed by [`TagArray::note_hit`]
    /// on a `Some` result is exactly `touch` (which is implemented that
    /// way), so a shared lookup can be fanned out across fused
    /// configurations while the policy touch stays per-array.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> Option<usize> {
        self.probe_decoded(
            block,
            self.geometry.set_of_block(block),
            self.geometry.tag_of_block(block),
        )
    }

    /// [`TagArray::probe`] with the set index and tag already decoded
    /// (e.g. once per fused group via [`CacheGeometry::decode`]). The
    /// caller must have decoded them under this array's geometry.
    #[inline]
    pub fn probe_decoded(&self, block: BlockAddr, set: u32, tag: u64) -> Option<usize> {
        if self.ways == 1 {
            // Direct-mapped: the set's lone way is always the victim, so
            // no policy bookkeeping can affect any later decision and a
            // hit reduces to one tag compare. This is the hot path of
            // every access under the paper's baseline geometry.
            let line = &self.lines[set as usize];
            return (line.valid && line.tag == tag).then_some(set as usize);
        }
        if let Some(index) = &self.index {
            return index.get(&block).map(|&s| s as usize);
        }
        let range = self.set_slots(set);
        self.lines[range.clone()]
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .map(|i| range.start + i)
    }

    /// The state-update half of [`TagArray::touch`]: notifies the policy
    /// that the resident line in flat `slot` (as returned by
    /// [`TagArray::probe`]) was hit. A no-op for direct-mapped arrays,
    /// where the lone way is always the victim.
    #[inline]
    pub fn note_hit(&mut self, slot: usize) {
        if self.ways > 1 {
            let set = (slot / self.ways) as u32;
            self.policy.on_hit(set, slot % self.ways);
        }
    }

    /// Probes for `block`; on a hit, notifies the policy (LRU touch).
    /// Returns whether it hit. Exactly [`TagArray::probe`] followed by
    /// [`TagArray::note_hit`].
    pub fn touch(&mut self, block: BlockAddr) -> bool {
        match self.probe(block) {
            Some(slot) => {
                self.note_hit(slot);
                true
            }
            None => false,
        }
    }

    /// Direct-mapped resident check with pre-decoded set and tag: the
    /// monomorphic fused fast path. Callers must guarantee `ways == 1`
    /// (checked in debug builds); equivalent to [`TagArray::touch`] for
    /// such arrays, which never update replacement state on a hit.
    #[inline]
    pub fn hit_direct(&self, set: u32, tag: u64) -> bool {
        debug_assert_eq!(self.ways, 1, "hit_direct requires a direct-mapped array");
        let line = &self.lines[set as usize];
        line.valid && line.tag == tag
    }

    /// The policy's current victim way for `set` (which must be full for
    /// the answer to be meaningful). Consumes PRNG state under the random
    /// policy — an inspection hook for tests, not a pure getter.
    pub fn victim_way(&mut self, set: u32) -> usize {
        self.policy.victim(set)
    }

    /// The single eviction path: asks the policy for a victim in `set`
    /// (all ways valid), invalidates it, and returns its block address.
    /// Every eviction — L1 fill, L2 fill, in-cache MSHR victim claiming —
    /// funnels through here.
    fn evict(&mut self, set: u32) -> BlockAddr {
        let way = self.policy.victim(set);
        debug_assert!(way < self.ways, "policy victim out of range");
        let slot = set as usize * self.ways + way;
        debug_assert!(self.lines[slot].valid, "victim of a full set is valid");
        let block = self.block_at(slot);
        self.lines[slot].valid = false;
        if let Some(index) = &mut self.index {
            index.remove(&block);
        }
        self.policy.on_evict(set, way);
        block
    }

    /// Installs `block` (a fill reaching the tag array): reuses the
    /// resident slot on a refetch, else the first invalid way, else
    /// evicts the policy victim. Returns the evicted block, if any — the
    /// caller decides what eviction means (victim buffer, nothing).
    pub fn install(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let set = self.geometry.set_of_block(block);
        let tag = self.geometry.tag_of_block(block);
        if self.ways == 1 {
            // Direct-mapped: the set's lone way is the victim, so no
            // policy consultation (and no policy bookkeeping — see
            // [`TagArray::touch`]) is needed. The random policy's PRNG
            // stream is untouched, but `victim() % 1` never depended on
            // it anyway.
            let set_bits = self.geometry.num_sets().trailing_zeros();
            let line = &mut self.lines[set as usize];
            let evicted = (line.valid && line.tag != tag)
                .then(|| BlockAddr((line.tag << set_bits) | u64::from(set)));
            *line = TagLine { valid: true, tag };
            return evicted;
        }
        let range = self.set_slots(set);
        let (slot, evicted) = if let Some(s) = self.find(block) {
            (s, None) // refetch of a resident line (possible after races)
        } else if let Some(i) = self.lines[range.clone()].iter().position(|l| !l.valid) {
            (range.start + i, None)
        } else {
            let victim = self.evict(set);
            let way = self.policy_slot_of(victim, set);
            (way, Some(victim))
        };
        self.lines[slot] = TagLine { valid: true, tag };
        if let Some(index) = &mut self.index {
            index.insert(block, slot as u32);
        }
        self.policy.on_fill(set, slot % self.ways);
        evicted
    }

    /// Flat slot the just-evicted `victim` occupied (the first invalid
    /// way of its set — eviction leaves exactly one).
    #[inline]
    fn policy_slot_of(&self, _victim: BlockAddr, set: u32) -> usize {
        let range = self.set_slots(set);
        debug_assert!(
            self.lines[range.clone()].iter().any(|l| !l.valid),
            "evict() invalidated a way"
        );
        self.lines[range.clone()]
            .iter()
            .position(|l| !l.valid)
            .map_or(range.start, |i| range.start + i)
    }

    /// In-cache MSHR storage claims the victim line at miss time: if the
    /// set has a free way the fetch will land there and nothing happens;
    /// otherwise the policy victim is invalidated *now* (its storage
    /// becomes the MSHR) and returned.
    pub fn claim_for_transit(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let set = self.geometry.set_of_block(block);
        let range = self.set_slots(set);
        if self.lines[range].iter().any(|l| !l.valid) {
            return None;
        }
        Some(self.evict(set))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_way() -> CacheGeometry {
        CacheGeometry::new(64, 32, 2).unwrap() // a single 2-way set
    }

    fn four_way() -> CacheGeometry {
        CacheGeometry::new(128, 32, 4).unwrap() // a single 4-way set
    }

    #[test]
    fn lru_matches_the_legacy_ordering() {
        let mut t = TagArray::new(two_way(), ReplacementKind::Lru);
        assert_eq!(t.install(BlockAddr(0)), None);
        assert_eq!(t.install(BlockAddr(1)), None);
        // 0 is LRU: a third fill evicts it.
        assert_eq!(t.install(BlockAddr(2)), Some(BlockAddr(0)));
        // Touch 1, fill 3: victim must be 2.
        assert!(t.touch(BlockAddr(1)));
        assert_eq!(t.install(BlockAddr(3)), Some(BlockAddr(2)));
        assert!(t.contains(BlockAddr(1)) && t.contains(BlockAddr(3)));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut t = TagArray::new(two_way(), ReplacementKind::Fifo);
        t.install(BlockAddr(0));
        t.install(BlockAddr(1));
        // Touching 0 does not refresh it: it is still first-in.
        assert!(t.touch(BlockAddr(0)));
        assert_eq!(t.install(BlockAddr(2)), Some(BlockAddr(0)));
    }

    #[test]
    fn debug_ages_reports_blocks_and_stamp_order() {
        let mut t = TagArray::new(two_way(), ReplacementKind::Lru);
        t.install(BlockAddr(0));
        t.install(BlockAddr(1));
        assert!(t.touch(BlockAddr(0))); // 0 becomes most recent
        let ages = t.debug_ages(0);
        assert_eq!(ages.len(), 2);
        let of = |b: u64| {
            ages.iter()
                .find(|w| w.block == Some(BlockAddr(b)))
                .expect("resident")
        };
        assert!(
            of(0).stamp.expect("lru stamps") > of(1).stamp.expect("lru stamps"),
            "touched line must carry the younger stamp"
        );
        // PLRU keeps no stamps: the accessor reports residency only.
        let mut p = TagArray::new(four_way(), ReplacementKind::TreePlru);
        p.install(BlockAddr(7));
        let ages = p.debug_ages(0);
        assert_eq!(ages.iter().filter(|w| w.block.is_some()).count(), 1);
        assert!(ages.iter().all(|w| w.stamp.is_none()));
    }

    #[test]
    fn plru_never_evicts_the_just_touched_line() {
        let mut t = TagArray::new(four_way(), ReplacementKind::TreePlru);
        for b in 0..4u64 {
            assert_eq!(t.install(BlockAddr(b)), None);
        }
        for b in 0..4u64 {
            assert!(t.touch(BlockAddr(b)));
            let v = t.victim_way(0);
            let spared = t.find(BlockAddr(b)).unwrap();
            assert_ne!(v, spared, "victim way {v} is the just-touched line");
        }
    }

    #[test]
    fn random_is_replay_deterministic_and_in_range() {
        let mk = || TagArray::new(four_way(), ReplacementKind::Random { seed: 7 });
        let run = |mut t: TagArray| -> Vec<Option<BlockAddr>> {
            (0..32u64).map(|b| t.install(BlockAddr(b))).collect()
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a, b, "same seed, same victims");
        for e in a.into_iter().flatten() {
            assert!(e.0 < 32);
        }
        // A different seed is allowed to (and here does) diverge.
        let mut other = TagArray::new(four_way(), ReplacementKind::Random { seed: 8 });
        let c: Vec<Option<BlockAddr>> = (0..32u64).map(|b| other.install(BlockAddr(b))).collect();
        assert_ne!(b, c);
    }

    #[test]
    fn invalid_ways_fill_before_any_eviction() {
        for kind in ReplacementKind::all() {
            let mut t = TagArray::new(four_way(), kind);
            for b in 0..4u64 {
                assert_eq!(
                    t.install(BlockAddr(b)),
                    None,
                    "{kind}: no eviction while free"
                );
            }
            assert!(t.install(BlockAddr(9)).is_some(), "{kind}: full set evicts");
        }
    }

    #[test]
    fn claim_for_transit_prefers_free_ways() {
        for kind in ReplacementKind::all() {
            let mut t = TagArray::new(two_way(), kind);
            t.install(BlockAddr(0));
            assert_eq!(t.claim_for_transit(BlockAddr(5)), None, "{kind}");
            t.install(BlockAddr(1));
            let claimed = t.claim_for_transit(BlockAddr(5)).expect("full set claims");
            assert!(!t.contains(claimed), "{kind}: claimed line invalidated");
        }
    }

    #[test]
    fn indexed_lookup_agrees_with_scan() {
        // 16 ways crosses INDEXED_LOOKUP_MIN_WAYS: the index path must
        // behave identically to the scan path.
        let indexed = CacheGeometry::new(1024, 32, 16).unwrap();
        let scanned = CacheGeometry::new(256, 32, 8).unwrap();
        for geom in [indexed, scanned] {
            let mut t = TagArray::new(geom, ReplacementKind::Lru);
            let ways = t.ways() as u64;
            for b in 0..ways {
                t.install(BlockAddr(b * geom.num_sets()));
            }
            for b in 0..ways {
                assert!(t.touch(BlockAddr(b * geom.num_sets())));
            }
            let evicted = t.install(BlockAddr(ways * geom.num_sets())).unwrap();
            assert_eq!(evicted, BlockAddr(0), "LRU victim via either lookup path");
            assert!(!t.contains(BlockAddr(0)));
        }
    }

    #[test]
    fn reset_behaves_like_a_fresh_array_for_every_policy() {
        for kind in ReplacementKind::all() {
            let geom = four_way();
            let drive = |t: &mut TagArray| -> Vec<Option<BlockAddr>> {
                (0..12u64)
                    .map(|b| {
                        if b % 3 == 0 {
                            t.touch(BlockAddr(b / 2));
                        }
                        t.install(BlockAddr(b))
                    })
                    .collect()
            };
            let mut fresh = TagArray::new(geom, kind);
            let expected = drive(&mut fresh);
            let mut reused = TagArray::new(geom, kind);
            let _ = drive(&mut reused); // dirty it with a full pass
            reused.reset();
            assert_eq!(drive(&mut reused), expected, "{kind}: reset diverged");
        }
    }

    #[test]
    fn labels_and_defaults() {
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
        assert_eq!(ReplacementKind::Lru.label(), "lru");
        assert_eq!(ReplacementKind::random().label(), "random");
        assert_eq!(ReplacementKind::Random { seed: 0xab }.label(), "random#ab");
        assert_eq!(ReplacementKind::TreePlru.to_string(), "plru");
        assert_eq!(ReplacementKind::all().len(), 4);
    }

    #[test]
    fn direct_mapped_degenerates_for_every_policy() {
        let geom = CacheGeometry::direct_mapped(64, 32).unwrap();
        for kind in ReplacementKind::all() {
            let mut t = TagArray::new(geom, kind);
            t.install(BlockAddr(0));
            assert_eq!(t.install(BlockAddr(2)), Some(BlockAddr(0)), "{kind}");
            assert_eq!(t.install(BlockAddr(4)), Some(BlockAddr(2)), "{kind}");
        }
    }
}

/// Property suite for the probe-split lookup API, gated behind the
/// off-by-default `probe-prop` feature (run with
/// `cargo test -p nbl-core --features probe-prop`). The claim under
/// test: for any access sequence, any geometry, and every
/// [`ReplacementKind`], `probe` + [`TagArray::note_hit`] on a hit is
/// observationally equal to the fused [`TagArray::touch`] — same hit
/// answers, same evictions from [`TagArray::install`] and
/// [`TagArray::claim_for_transit`] (the eviction-while-fetch-outstanding
/// path), same resident sets — so a shared group probe cannot drift from
/// the per-core path. Uses the in-tree
/// [`SplitMix64`](crate::rng::SplitMix64) so the cases are deterministic
/// and the workspace stays dependency-free.
#[cfg(all(test, feature = "probe-prop"))]
mod probe_prop {
    use super::*;
    use crate::geometry::CacheGeometry;
    use crate::rng::SplitMix64;

    /// Every resident block of `t`, by flat slot — the observable tag
    /// state (policy state is compared behaviorally, by continuing the
    /// mirrored sequence).
    fn resident(t: &TagArray) -> Vec<(usize, BlockAddr)> {
        let sets = t.geometry().num_sets() as u32;
        let mut out = Vec::new();
        for set in 0..sets {
            for way in 0..t.ways() {
                if t.is_valid(set, way) {
                    let slot = set as usize * t.ways() + way;
                    out.push((slot, t.block_at(slot)));
                }
            }
        }
        out
    }

    /// Drives `ops` mirrored operations: array `a` uses the fused
    /// `touch`, array `b` the split `probe` + `note_hit`, with installs
    /// after misses and occasional `claim_for_transit` + deferred
    /// install modelling an eviction while the fetch is outstanding.
    fn drive_mirrored(geometry: CacheGeometry, kind: ReplacementKind, seed: u64, ops: usize) {
        let mut a = TagArray::new(geometry, kind);
        let mut b = TagArray::new(geometry, kind);
        let mut rng = SplitMix64::new(seed);
        // Working set ~2x the cache so sets fill and evictions are common.
        let universe = (geometry.num_lines() * 2).max(8);
        let mut outstanding: Vec<BlockAddr> = Vec::new();
        let label = kind.label();
        for step in 0..ops {
            let block = BlockAddr(rng.next_below(universe));
            let hit_a = a.touch(block);
            let hit_b = match b.probe(block) {
                Some(slot) => {
                    b.note_hit(slot);
                    true
                }
                None => false,
            };
            assert_eq!(hit_a, hit_b, "{label}: hit answers diverged at {step}");
            if !hit_a {
                if rng.next_below(4) == 0 {
                    // In-cache transit claim: the victim is evicted now,
                    // the fill lands later.
                    assert_eq!(
                        a.claim_for_transit(block),
                        b.claim_for_transit(block),
                        "{label}: transit victims diverged at {step}"
                    );
                    outstanding.push(block);
                } else {
                    assert_eq!(
                        a.install(block),
                        b.install(block),
                        "{label}: fill evictions diverged at {step}"
                    );
                }
            }
            // Drain an outstanding fetch about as often as one is made.
            if !outstanding.is_empty() && rng.next_below(4) == 0 {
                let idx = rng.next_below(outstanding.len() as u64) as usize;
                let fill = outstanding.swap_remove(idx);
                assert_eq!(
                    a.install(fill),
                    b.install(fill),
                    "{label}: outstanding-fill evictions diverged at {step}"
                );
            }
            if step % 64 == 0 {
                assert_eq!(
                    resident(&a),
                    resident(&b),
                    "{label}: tags diverged at {step}"
                );
            }
        }
        assert_eq!(resident(&a), resident(&b), "{label}: final tags diverged");
    }

    #[test]
    fn split_probe_matches_fused_touch_for_all_policies_and_geometries() {
        // Direct-mapped (the specialized kernel's shape), 2- and 4-way
        // set-associative, and fully associative 16-way (crosses
        // INDEXED_LOOKUP_MIN_WAYS, so the block-index path is mirrored
        // too).
        let geometries = [
            CacheGeometry::direct_mapped(512, 32).unwrap(),
            CacheGeometry::new(1024, 32, 2).unwrap(),
            CacheGeometry::new(1024, 32, 4).unwrap(),
            CacheGeometry::fully_associative(512, 32).unwrap(),
        ];
        for (gi, &geometry) in geometries.iter().enumerate() {
            for (ki, kind) in ReplacementKind::all().into_iter().enumerate() {
                drive_mirrored(geometry, kind, 0x9e37 + (gi * 17 + ki) as u64, 4096);
            }
        }
    }

    #[test]
    fn split_probe_matches_under_transit_heavy_sequences() {
        // A 2-way geometry with a tiny universe: almost every miss claims
        // a transit victim in a full set, hammering the
        // eviction-while-fetch-outstanding ordering.
        let geometry = CacheGeometry::new(256, 32, 2).unwrap();
        for (ki, kind) in ReplacementKind::all().into_iter().enumerate() {
            drive_mirrored(geometry, kind, 0x51ab + ki as u64, 8192);
        }
    }
}
