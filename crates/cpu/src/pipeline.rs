//! The single-issue, in-order processor model of the paper's §3.1.
//!
//! One instruction issues per cycle; every instruction has single-cycle
//! latency; the instruction cache is perfect and branches are perfectly
//! predicted — so the only stalls are data-miss induced, and the measured
//! stall cycles per instruction are exactly the paper's miss CPI.

use crate::core_engine::{Core, EngineConfig, EngineError};
use crate::issue::{IssueEngine, IssuePolicy};
use crate::stats::{CpuStats, InFlightSampler};
use nbl_core::cache::LockupFreeCache;
use nbl_core::inst::DynInst;
use nbl_core::types::Cycle;
use nbl_mem::system::MemorySystem;
use nbl_trace::tape::TraceTape;

/// The single-issue processor.
///
/// # Examples
///
/// ```
/// use nbl_cpu::pipeline::Processor;
/// use nbl_cpu::core_engine::EngineConfig;
/// use nbl_core::cache::CacheConfig;
/// use nbl_core::mshr::MshrConfig;
/// use nbl_core::mshr::inverted::InvertedConfig;
/// use nbl_core::inst::DynInst;
/// use nbl_core::types::{Addr, LoadFormat, PhysReg};
///
/// let mut cpu = Processor::new(EngineConfig::with_cache(CacheConfig::baseline(
///     MshrConfig::Inverted(InvertedConfig::typical()),
/// )));
/// cpu.step(&DynInst::load(Addr(0x100), PhysReg::int(1), LoadFormat::WORD)).unwrap();
/// cpu.step(&DynInst::alu(PhysReg::int(2), [Some(PhysReg::int(1)), None])).unwrap();
/// cpu.finish();
/// // The dependent use stalled for the miss penalty (16 - 1 issue cycle).
/// assert_eq!(cpu.stats().data_dep_stall_cycles, 15);
/// ```
#[derive(Debug, Clone)]
pub struct Processor {
    engine: IssueEngine,
}

impl Processor {
    /// Creates a processor at cycle zero with a cold cache.
    pub fn new(config: EngineConfig) -> Processor {
        Processor {
            engine: IssueEngine::new(config, IssuePolicy::SingleInOrder),
        }
    }

    /// Issues one instruction, resolving all of its stalls.
    ///
    /// # Errors
    ///
    /// [`EngineError`] if the engine had to wait on a fill that cannot
    /// arrive (a model invariant violation).
    pub fn step(&mut self, inst: &DynInst) -> Result<(), EngineError> {
        self.engine.push(*inst)
    }

    /// Runs an entire instruction stream.
    ///
    /// # Errors
    ///
    /// The first [`EngineError`] any instruction hits.
    pub fn run<I>(&mut self, stream: I) -> Result<(), EngineError>
    where
        I: IntoIterator<Item = DynInst>,
    {
        self.engine.run(stream)
    }

    /// Replays a recorded tape: the same drain → hazards → execute → tick
    /// sequence as [`Processor::step`] per entry, but driven straight off
    /// the tape's packed arrays — no [`DynInst`] is reconstructed, no
    /// script is re-interpreted. Produces bit-identical timing and stats to
    /// running the equivalent stream through [`Processor::run`].
    ///
    /// The loop is driven by the tape's barrier index
    /// ([`TraceTape::barriers`]): only a memory operation, or an entry
    /// touching a register whose most recent writer is a load, can stall
    /// or interact with the memory system. Everything between barriers is
    /// issued in bulk — one instruction and one cycle per entry — with
    /// the per-entry drain/hazard/execute machinery run only at the
    /// barriers themselves (each barrier drains pending fills first, so
    /// fills land exactly as they would have under per-entry draining:
    /// they carry their own timestamps). This is where the tape's
    /// wall-clock win over re-interpretation comes from.
    ///
    /// # Errors
    ///
    /// The first [`EngineError`] any entry hits.
    pub fn run_tape(&mut self, tape: &TraceTape) -> Result<(), EngineError> {
        self.engine.run_tape(tape)
    }

    /// Finalizes the run (drains outstanding fills, closes the sampler).
    pub fn finish(&mut self) {
        // The single-issue policy never buffers an instruction, so the
        // engine's finish has no failure path here.
        let flushed = self.engine.finish();
        debug_assert!(flushed.is_ok());
    }

    /// Returns the processor to its freshly-built state (cold cache, cycle
    /// zero, zero counters) while keeping internal allocations, so a
    /// pooled worker can be reused run-to-run without touching the heap.
    /// Results after a reset are bit-identical to a new processor's.
    pub fn reset(&mut self) {
        self.engine.reset();
    }

    /// Mutable access to the underlying engine, for the fused multi-config
    /// replay entry point ([`Core::replay_fused`]).
    pub fn core_mut(&mut self) -> &mut Core {
        self.engine.core_mut()
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.engine.now()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CpuStats {
        self.engine.stats()
    }

    /// The in-flight occupancy sampler.
    pub fn sampler(&self) -> &InFlightSampler {
        self.engine.sampler()
    }

    /// The data cache.
    pub fn cache(&self) -> &LockupFreeCache {
        self.engine.cache()
    }

    /// The memory system behind the port.
    pub fn memory(&self) -> &MemorySystem {
        self.engine.memory()
    }

    /// Starts recording miss-lifecycle events (see [`nbl_mem::event`]).
    pub fn enable_mem_tracing(&mut self, ring_capacity: usize) {
        self.engine.enable_mem_tracing(ring_capacity);
    }

    /// Stops tracing and returns the recorded trace, if any.
    pub fn take_mem_trace(&mut self) -> Option<nbl_mem::event::MemTrace> {
        self.engine.take_mem_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::cache::CacheConfig;
    use nbl_core::limit::Limit;
    use nbl_core::mshr::inverted::InvertedConfig;
    use nbl_core::mshr::{MshrConfig, RegisterFileConfig, TargetPolicy};
    use nbl_core::types::{Addr, LoadFormat, PhysReg};

    fn cpu(mshr: MshrConfig) -> Processor {
        Processor::new(EngineConfig::with_cache(CacheConfig::baseline(mshr)))
    }

    fn unrestricted() -> MshrConfig {
        MshrConfig::Inverted(InvertedConfig::typical())
    }

    fn mc1() -> MshrConfig {
        MshrConfig::Register(RegisterFileConfig {
            entries: Limit::Finite(1),
            targets: TargetPolicy::explicit(Limit::Finite(1)),
            max_outstanding_misses: Limit::Finite(1),
            max_fetches_per_set: Limit::Unlimited,
        })
    }

    /// A two-miss independent sequence: ld A; ld B; use A; use B.
    fn two_loads_two_uses() -> Vec<DynInst> {
        vec![
            DynInst::load(Addr(0x1000), PhysReg::int(1), LoadFormat::WORD),
            DynInst::load(Addr(0x2000), PhysReg::int(2), LoadFormat::WORD),
            DynInst::alu(PhysReg::int(3), [Some(PhysReg::int(1)), None]),
            DynInst::alu(PhysReg::int(4), [Some(PhysReg::int(2)), None]),
        ]
    }

    #[test]
    fn overlapping_misses_beat_hit_under_miss() {
        // Unrestricted: both misses overlap; total stall ≈ one penalty.
        let mut best = cpu(unrestricted());
        best.run(two_loads_two_uses()).unwrap();
        best.finish();
        // ld A cy0 (fill 16), ld B cy1 (fill 17), use A stalls 2..16,
        // use B issues at 17 with no stall.
        assert_eq!(best.stats().data_dep_stall_cycles, 14);
        assert_eq!(best.stats().total_stall_cycles(), 14);

        // mc=1: the second load structurally stalls until the first fill.
        let mut hum = cpu(mc1());
        hum.run(two_loads_two_uses()).unwrap();
        hum.finish();
        // ld A cy0 (fill 16); ld B stalls 1..16 then misses (fill 32);
        // use A at 17 (no stall); use B stalls 18..32.
        assert_eq!(hum.stats().structural_stall_cycles, 15);
        assert_eq!(hum.stats().data_dep_stall_cycles, 14);
        assert!(hum.stats().total_stall_cycles() > best.stats().total_stall_cycles());

        // Blocking: both misses serialize completely.
        let mut blk = cpu(MshrConfig::Blocking);
        blk.run(two_loads_two_uses()).unwrap();
        blk.finish();
        assert_eq!(blk.stats().blocking_stall_cycles, 32);
        assert!(blk.stats().total_stall_cycles() > hum.stats().total_stall_cycles());
    }

    #[test]
    fn mcpi_accounts_per_instruction() {
        let mut p = cpu(MshrConfig::Blocking);
        p.run(two_loads_two_uses()).unwrap();
        p.finish();
        assert_eq!(p.stats().instructions, 4);
        assert!((p.stats().mcpi() - 32.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_sees_overlap_only_when_hardware_allows() {
        let mut best = cpu(unrestricted());
        best.run(two_loads_two_uses()).unwrap();
        best.finish();
        assert_eq!(best.sampler().max_misses(), 2);
        assert_eq!(best.sampler().max_fetches(), 2);

        let mut hum = cpu(mc1());
        hum.run(two_loads_two_uses()).unwrap();
        hum.finish();
        assert_eq!(hum.sampler().max_misses(), 1);
    }

    #[test]
    fn tape_replay_matches_interpreted_run() {
        let stream: Vec<DynInst> = (0..40u64)
            .flat_map(|i| {
                [
                    DynInst::load(
                        Addr(i * 520), // distinct lines, recurring sets
                        PhysReg::int((i % 8) as u8),
                        LoadFormat::WORD,
                    ),
                    DynInst::alu(
                        PhysReg::int(10 + (i % 8) as u8),
                        [Some(PhysReg::int((i % 8) as u8)), None],
                    ),
                    DynInst::store(Addr(i * 520 + 4), Some(PhysReg::int(10 + (i % 8) as u8))),
                ]
            })
            .collect();
        let mut tape = TraceTape::with_capacity("t", 1, 0, stream.len());
        for inst in &stream {
            tape.push(*inst);
        }
        for mshr in [unrestricted(), mc1(), MshrConfig::Blocking] {
            let mut interpreted = cpu(mshr.clone());
            interpreted.run(stream.iter().copied()).unwrap();
            interpreted.finish();
            let mut replayed = cpu(mshr);
            replayed.run_tape(&tape).unwrap();
            replayed.finish();
            assert_eq!(replayed.now(), interpreted.now());
            assert_eq!(replayed.stats(), interpreted.stats());
            assert_eq!(
                replayed.cache().counters(),
                interpreted.cache().counters(),
                "replay must drive the memory system identically"
            );
        }
    }

    fn mixed_tape() -> TraceTape {
        let stream: Vec<DynInst> = (0..60u64)
            .flat_map(|i| {
                [
                    DynInst::load(Addr(i * 520), PhysReg::int((i % 8) as u8), LoadFormat::WORD),
                    DynInst::alu(
                        PhysReg::int(10 + (i % 8) as u8),
                        [Some(PhysReg::int((i % 8) as u8)), None],
                    ),
                    DynInst::alu(PhysReg::int(20), [None, None]),
                    DynInst::store(Addr(i * 520 + 4), Some(PhysReg::int(10 + (i % 8) as u8))),
                ]
            })
            .collect();
        let mut tape = TraceTape::with_capacity("t", 1, 0, stream.len());
        for inst in &stream {
            tape.push(*inst);
        }
        tape
    }

    #[test]
    fn reset_matches_a_fresh_processor_bit_for_bit() {
        let tape = mixed_tape();
        for mshr in [unrestricted(), mc1(), MshrConfig::Blocking] {
            let mut fresh = cpu(mshr.clone());
            fresh.run_tape(&tape).unwrap();
            fresh.finish();

            let mut reused = cpu(mshr);
            reused.run_tape(&tape).unwrap();
            reused.finish();
            reused.reset();
            reused.run_tape(&tape).unwrap();
            reused.finish();

            assert_eq!(reused.now(), fresh.now());
            assert_eq!(reused.stats(), fresh.stats());
            assert_eq!(reused.cache().counters(), fresh.cache().counters());
            assert_eq!(
                reused.sampler().max_misses(),
                fresh.sampler().max_misses(),
                "reset must clear sampler history"
            );
        }
    }

    #[test]
    fn fused_replay_matches_independent_replays_across_mixed_configs() {
        let tape = mixed_tape();
        let configs = [unrestricted(), mc1(), MshrConfig::Blocking];

        let mut solo: Vec<Processor> = configs.iter().map(|mshr| cpu(mshr.clone())).collect();
        for p in &mut solo {
            p.run_tape(&tape).unwrap();
            p.finish();
        }

        let mut fused: Vec<Processor> = configs.iter().map(|mshr| cpu(mshr.clone())).collect();
        {
            let mut cores: Vec<&mut Core> = fused.iter_mut().map(Processor::core_mut).collect();
            Core::replay_fused(&tape, &mut cores).unwrap();
        }
        for p in &mut fused {
            p.finish();
        }

        for (f, s) in fused.iter().zip(&solo) {
            assert_eq!(f.now(), s.now());
            assert_eq!(f.stats(), s.stats());
            assert_eq!(f.cache().counters(), s.cache().counters());
            assert_eq!(f.sampler().max_misses(), s.sampler().max_misses());
        }
    }

    #[test]
    fn run_of_hits_is_stall_free() {
        let mut p = cpu(mc1());
        // Touch a line (primary miss), let the fill land behind 16 ALU ops,
        // then hammer the resident line: pure hits, no further stalls.
        p.step(&DynInst::load(Addr(0), PhysReg::int(1), LoadFormat::WORD))
            .unwrap();
        for _ in 0..16 {
            p.step(&DynInst::alu(PhysReg::int(2), [None, None]))
                .unwrap();
        }
        let stalls_after_warmup = p.stats().total_stall_cycles();
        let before = p.now();
        for i in 0..20u64 {
            p.step(&DynInst::load(
                Addr(i % 32),
                PhysReg::int(3 + (i % 20) as u8),
                LoadFormat::WORD,
            ))
            .unwrap();
        }
        p.finish();
        assert_eq!(
            p.now().since(before),
            20,
            "hits cost exactly their issue cycle"
        );
        assert_eq!(p.stats().total_stall_cycles(), stalls_after_warmup);
    }
}
