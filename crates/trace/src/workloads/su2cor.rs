//! `su2cor` — quark-gluon lattice QCD (SPEC92 CFP).
//!
//! The real program walks several large lattice arrays in lock-step.
//! FORTRAN's habit of allocating arrays back-to-back at power-of-two sizes
//! makes corresponding elements of different arrays map to the *same*
//! direct-mapped cache set, so a single loop iteration produces several
//! conflicting fetches to one set — which is why the paper chose su2cor
//! for its per-set fetch-limit study (Fig. 15): `fs=1` costs 2.3× the
//! unrestricted MCPI at latency 10, `fs=2` only 1.3×.
//!
//! Model: two *aligned* gauge-field streams whose equal indices collide in
//! the baseline cache (every access to either misses and the two fetches
//! target the same set), plus two clean propagator streams and a
//! moderately sized staple table that mostly hits.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

const LATTICE_ELEMS: u64 = 48 * 1024; // 384 KB per array

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("su2cor");
    // Conflicting pair: identical alignment => same set for equal indices.
    let gauge_a = pb.pattern(AddrPattern::Strided {
        base: layout::region(0, 0),
        elem_bytes: 8,
        stride: 1,
        length: LATTICE_ELEMS,
    });
    let gauge_b = pb.pattern(AddrPattern::Strided {
        base: layout::region(1, 0),
        elem_bytes: 8,
        stride: 1,
        length: LATTICE_ELEMS,
    });
    // Clean streams at distinct alignments.
    let prop_a = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 2048),
        elem_bytes: 8,
        stride: 1,
        length: LATTICE_ELEMS,
    });
    let prop_b = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 4096 + 64),
        elem_bytes: 8,
        stride: 1,
        length: LATTICE_ELEMS,
    });
    // Small staple table, resident after the first lap.
    let staple = pb.pattern(AddrPattern::Strided {
        base: layout::region(4, 6144),
        elem_bytes: 8,
        stride: 1,
        length: 256, // 2 KB
    });
    let out = pb.pattern(AddrPattern::Strided {
        base: layout::region(5, 1024),
        elem_bytes: 8,
        stride: 1,
        length: LATTICE_ELEMS,
    });

    // Gauge update: the conflicting pair back to back, then the clean
    // streams, a staple reuse, and an SU(2) multiply chain.
    // Unrolled 2x: eight independent lattice loads per block give the
    // memory system several concurrent conflict fetches to hide.
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    for _ in 0..2 {
        let ga = b.load(gauge_a, RegClass::Fp, LoadFormat::DOUBLE);
        let gb = b.load(gauge_b, RegClass::Fp, LoadFormat::DOUBLE);
        let pa = b.load(prop_a, RegClass::Fp, LoadFormat::DOUBLE);
        let pc = b.load(prop_b, RegClass::Fp, LoadFormat::DOUBLE);
        let st = b.load(staple, RegClass::Fp, LoadFormat::DOUBLE);
        let m1 = b.alu(RegClass::Fp, Some(ga), Some(gb));
        let m2 = b.alu(RegClass::Fp, Some(pa), Some(pc));
        let m3 = b.alu(RegClass::Fp, Some(m1), Some(st));
        let m4 = b.alu(RegClass::Fp, Some(m2), Some(m3));
        let m5 = b.alu_chain(RegClass::Fp, m4, 9);
        // Independent second multiply for instruction-level parallelism.
        let n1 = b.alu(RegClass::Fp, Some(ga), Some(pa));
        let n2 = b.alu(RegClass::Fp, Some(gb), Some(pc));
        let n3 = b.alu(RegClass::Fp, Some(n1), Some(n2));
        let n4 = b.alu_chain(RegClass::Fp, n3, 6);
        b.store(out, Some(m5));
        b.store(out, Some(n4));
    }
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let update = b.finish();

    let trips = scale.trips(62);
    pb.run(update, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::geometry::CacheGeometry;
    use nbl_core::types::Addr;

    #[test]
    fn gauge_streams_collide_in_the_baseline_cache() {
        let p = build(Scale::quick());
        let geom = CacheGeometry::baseline();
        let (a, b) = match (&p.patterns[0], &p.patterns[1]) {
            (AddrPattern::Strided { base: a, .. }, AddrPattern::Strided { base: b, .. }) => {
                (*a, *b)
            }
            _ => panic!("expected strided gauge patterns"),
        };
        for i in [0u64, 8, 64, 4096] {
            assert_eq!(
                geom.set_of(Addr(a + i)),
                geom.set_of(Addr(b + i)),
                "equal lattice indices must map to equal sets"
            );
        }
    }

    #[test]
    fn block_mix() {
        let p = build(Scale::quick());
        let (loads, stores, other) = p.blocks[0].op_mix();
        assert_eq!(loads, 10);
        assert_eq!(stores, 4);
        assert!(other >= 30);
    }
}
