//! Cross-process stable content fingerprints for the artifact store.
//!
//! The in-memory caches key their slots with whatever hasher is fastest,
//! because those keys die with the process. The on-disk artifact store
//! (DESIGN.md §16) inverts that requirement: a tape or run result written
//! by one process must be found by the *next* process, and by a process
//! on another machine sharing the `results/store/` directory — so the key
//! fingerprint must be a pure, documented function of the hashed content.
//! `std`'s `DefaultHasher` deliberately refuses that contract (its
//! algorithm is unspecified and may change between releases), and
//! [`FastHasher`](crate::hash::FastHasher) optimizes a different job
//! (table-index diffusion on trusted keys).
//!
//! [`StableHasher`] is the workspace's *defined* hash: splitmix64-style
//! mixing over little-endian 64-bit words with explicit length tagging,
//! pinned by [`FINGERPRINT_VERSION`] and by unit tests on literal
//! expected values. Changing the mixing (or the `Hash` layout of a
//! fingerprinted type) is a format break: bump the version, and the
//! store's content-addressed filenames — which embed the version — stop
//! aliasing artifacts written under the old scheme.
//!
//! Determinism caveats inherited from `std::hash::Hash` implementations:
//! fingerprints hash *values*, never addresses or iteration order of
//! unordered containers, and the workloads/configs fingerprinted here
//! derive `Hash` over plain data (strings, integers, enums), which the
//! derive visits in declaration order.

// nbl-allow(determinism): this module *defines* the stable hash the store's keys rely on
use std::hash::{Hash, Hasher};

/// Version of the fingerprint scheme. Embedded in every content-addressed
/// artifact filename; bump when [`StableHasher`]'s mixing or finalization
/// changes so old store entries are missed (and re-derived) instead of
/// misread.
pub const FINGERPRINT_VERSION: u32 = 1;

/// splitmix64's increment: the fingerprint's odd diffusion constant.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64's finalization multipliers.
const MIX_A: u64 = 0xbf58_476d_1ce4_e5b9;
const MIX_B: u64 = 0x94d0_49bb_1331_11eb;

/// The splitmix64 output function: a full-avalanche bijection on `u64`.
#[inline]
fn splitmix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(MIX_A);
    let z = (z ^ (z >> 27)).wrapping_mul(MIX_B);
    z ^ (z >> 31)
}

/// A deterministic, cross-process, cross-platform hasher with a pinned
/// algorithm: every absorbed 64-bit word passes through one splitmix64
/// round chained onto the running state. Byte streams absorb as
/// little-endian words with the stream length folded in, so the value is
/// independent of the writing machine's endianness and of how callers
/// chunk their writes only insofar as `Hash` implementations themselves
/// are stable (the standard `Hash` contract).
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A hasher seeded with the scheme version, so a version bump changes
    /// every fingerprint.
    pub fn new() -> StableHasher {
        StableHasher {
            state: splitmix(u64::from(FINGERPRINT_VERSION).wrapping_mul(GAMMA)),
        }
    }

    /// Absorbs one 64-bit word.
    #[inline]
    fn absorb(&mut self, word: u64) {
        self.state = splitmix(self.state.wrapping_add(GAMMA) ^ word);
    }
}

impl Hasher for StableHasher {
    #[inline]
    fn finish(&self) -> u64 {
        splitmix(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Little-endian words; the tail word carries the residue length in
        // its top byte so [1] and [1, 0] absorb differently.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.absorb(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.absorb(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
        self.absorb(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.absorb(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.absorb(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.absorb(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.absorb(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.absorb(n as u64);
        self.absorb((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        // usize widths differ across platforms; absorb as u64 so a 32-bit
        // and a 64-bit process agree on the fingerprint.
        self.absorb(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.write_u8(n as u8);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.write_u16(n as u16);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.write_u32(n as u32);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.absorb(n as u64);
    }
}

/// The stable fingerprint of any `Hash` value: what the artifact store's
/// content-addressed keys are derived from.
pub fn fingerprint_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// The stable checksum of a byte buffer (the tape codec's integrity
/// check): the same mixing as [`fingerprint_of`], applied to the raw
/// stream without `Hash`'s length prefix conventions.
pub fn checksum_bytes(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_values_do_not_drift() {
        // Literal expected values: if these change, the mixing changed,
        // and FINGERPRINT_VERSION must be bumped (DESIGN.md §16).
        assert_eq!(fingerprint_of(&0u64), 0xb49a_b477_bb86_85e2);
        assert_eq!(fingerprint_of(&1u64), 0xcd1d_3bc7_a429_3e71);
        assert_eq!(fingerprint_of("doduc"), 0xfa65_767d_2a86_7b51);
        assert_eq!(checksum_bytes(b""), 0xb49a_b477_bb86_85e2);
        assert_eq!(checksum_bytes(b"nbl"), 0x9a3b_2491_2062_419c);
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        let vals: Vec<u64> = (0..4096u64).map(|v| fingerprint_of(&v)).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vals.len(), "trivial collisions");
    }

    #[test]
    fn byte_stream_tail_is_length_tagged() {
        assert_ne!(checksum_bytes(&[1]), checksum_bytes(&[1, 0]));
        assert_ne!(checksum_bytes(&[0; 8]), checksum_bytes(&[0; 16]));
    }

    #[test]
    fn tuples_and_strings_are_stable_per_call() {
        let key = ("eqntott".to_string(), 10u32, 0xdead_beefu64);
        assert_eq!(fingerprint_of(&key), fingerprint_of(&key));
        let other = ("eqntott".to_string(), 6u32, 0xdead_beefu64);
        assert_ne!(fingerprint_of(&key), fingerprint_of(&other));
    }

    #[test]
    fn usize_hashes_as_u64() {
        let mut a = StableHasher::new();
        a.write_usize(42);
        let mut b = StableHasher::new();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
