//! Figure 18 (table): MCPI as a function of the miss penalty for tomcatv
//! at scheduled load latency 10 — penalties 4, 8, 16, 32, 64, 128 under
//! the seven legend configurations. The paper's point: blocking MCPI is
//! linear in the penalty; non-blocking MCPI is strongly super-linear
//! because overlap capacity exhausts.

use super::paper::{FIG18, FIG18_PENALTIES};
use super::{engine, program, write_csv, write_json, ExhibitError, RunScale};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::report;
use std::io::Write;

/// The miss penalties the paper sweeps.
pub const PENALTIES: [u32; 6] = [4, 8, 16, 32, 64, 128];

/// Prints the Fig. 18 table.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let p = program("tomcatv", scale)?;
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let sweep = engine()
        .penalty_sweep(&p, &base, &HwConfig::baseline_seven(), &PENALTIES)
        .map_err(|e| ExhibitError::new("tomcatv @ Fig. 18 penalties", e))?;
    let _ = writeln!(
        out,
        "== Figure 18: MCPI vs miss penalty for tomcatv (latency 10) =="
    );
    let _ = writeln!(out, "{}", report::mcpi_vs_penalty_table(&sweep));
    write_csv("fig18", &report::penalty_sweep_csv(&sweep))?;
    write_json("fig18", &report::penalty_sweep_json(&sweep))?;
    // The paper's numbers, for side-by-side comparison.
    let _ = writeln!(out, "paper's Fig. 18 (same layout):");
    let _ = write!(out, "{:>14}", "config");
    for p in FIG18_PENALTIES {
        let _ = write!(out, "{p:>10}");
    }
    let _ = writeln!(out);
    for (config, row) in FIG18 {
        let _ = write!(out, "{config:>14}");
        for v in row {
            let _ = write!(out, "{v:>10.3}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    Ok(())
}
