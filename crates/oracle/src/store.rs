//! Persisted oracle verdicts: a small content-addressed side-store next
//! to the simulator's artifact store.
//!
//! One file per analyzed cell, keyed by the stable fingerprint of
//! `(ORACLE_FORMAT_VERSION, tape fingerprint, geometry, replacement,
//! window, write_allocate, hw label)` — the inputs the analyzer
//! consumes *plus* the hardware configuration the cross-check replayed
//! against. The hw label matters even when two configurations share a
//! fill window (`fc=2` and `no restrict` do): the analysis is identical
//! but the simulator's observed outcomes are not, and a verdict vouches
//! for the cross-check, not just the analysis. A key collision across
//! distinct cells would require a fingerprint collision. Files use the same defensive codec discipline
//! as the simulator's store (`DESIGN.md` §16): magic + version header,
//! little-endian fields, trailing [`checksum_bytes`] checksum,
//! tmp-write + atomic rename on publish, and degrade-to-`None` (force a
//! re-analysis) on any read anomaly rather than trusting a damaged
//! record.
//!
//! The store is deliberately independent of the simulator's
//! `DiskTier` — oracle verdicts are *about* tapes, not artifacts the
//! sweeps consume, and keeping them out of `StoreStats` keeps the
//! store's accounting invariants untouched.

use crate::domain::Coverage;
use crate::OracleConfig;
use nbl_core::fingerprint::{checksum_bytes, fingerprint_of};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version of the verdict file format; embedded in the key fingerprint
/// *and* the file header, so a format change both misses old files and
/// refuses to misread them.
pub const ORACLE_FORMAT_VERSION: u32 = 1;

/// Magic prefix of every verdict file.
const MAGIC: &[u8; 4] = b"NBLO";

/// A persisted per-cell verdict: what the analyzer concluded and
/// whether the cross-check agreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellVerdict {
    /// Classification counts from the analyzer walk.
    pub coverage: Coverage,
    /// Number of cross-check violations observed (0 on a sound pass).
    pub violations: u64,
}

/// Directory-backed store of [`CellVerdict`]s.
#[derive(Debug, Clone)]
pub struct OracleStore {
    dir: PathBuf,
}

impl OracleStore {
    /// Opens (creating if needed) a verdict store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(dir: &Path) -> std::io::Result<OracleStore> {
        fs::create_dir_all(dir)?;
        Ok(OracleStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The content-addressed key of one cell. `hw_label` names the
    /// hardware configuration the cross-check replays against; it is
    /// part of the key because the verdict certifies the cross-check,
    /// which depends on the simulator's behavior under that config even
    /// when the abstract analysis does not.
    pub fn key(tape_fingerprint: u64, cfg: &OracleConfig, hw_label: &str) -> u64 {
        fingerprint_of(&(
            ORACLE_FORMAT_VERSION,
            tape_fingerprint,
            cfg.geometry,
            cfg.replacement,
            cfg.window,
            cfg.write_allocate,
            hw_label,
        ))
    }

    fn path_of(&self, key: u64) -> PathBuf {
        self.dir
            .join(format!("oracle-v{ORACLE_FORMAT_VERSION}-{key:016x}.nbo"))
    }

    /// Loads a previously persisted verdict, or `None` when absent or
    /// damaged in any way (wrong magic/version/length/checksum) — the
    /// caller re-analyzes, which is always safe.
    pub fn load(&self, key: u64) -> Option<CellVerdict> {
        let bytes = fs::read(self.path_of(key)).ok()?;
        decode(&bytes)
    }

    /// Persists `verdict` under `key` via tmp-write + rename, so a
    /// concurrent reader never observes a half-written file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; the store directory is left
    /// without a (possibly partial) published file on error.
    pub fn save(&self, key: u64, verdict: &CellVerdict) -> std::io::Result<()> {
        let bytes = encode(verdict);
        let path = self.path_of(key);
        let tmp = self.dir.join(format!("tmp-{key:016x}.partial"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode(v: &CellVerdict) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 + 5 * 8 + 8);
    out.extend_from_slice(MAGIC);
    push_u32(&mut out, ORACLE_FORMAT_VERSION);
    push_u64(&mut out, v.coverage.accesses);
    push_u64(&mut out, v.coverage.must_hit);
    push_u64(&mut out, v.coverage.must_miss);
    push_u64(&mut out, v.coverage.unknown);
    push_u64(&mut out, v.violations);
    let sum = checksum_bytes(&out);
    push_u64(&mut out, sum);
    out
}

fn decode(bytes: &[u8]) -> Option<CellVerdict> {
    const LEN: usize = 4 + 4 + 5 * 8 + 8;
    if bytes.len() != LEN {
        return None;
    }
    let (body, sum) = bytes.split_at(LEN - 8);
    if checksum_bytes(body) != u64::from_le_bytes(sum.try_into().ok()?) {
        return None;
    }
    if &body[..4] != MAGIC {
        return None;
    }
    let word_u32 = |at: usize| -> u32 { u32::from_le_bytes(body[at..at + 4].try_into().unwrap()) };
    let word = |at: usize| -> u64 { u64::from_le_bytes(body[at..at + 8].try_into().unwrap()) };
    if word_u32(4) != ORACLE_FORMAT_VERSION {
        return None;
    }
    let coverage = Coverage {
        accesses: word(8),
        must_hit: word(16),
        must_miss: word(24),
        unknown: word(32),
    };
    if coverage.must_hit + coverage.must_miss + coverage.unknown != coverage.accesses {
        return None;
    }
    Some(CellVerdict {
        coverage,
        violations: word(40),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict() -> CellVerdict {
        CellVerdict {
            coverage: Coverage {
                accesses: 100,
                must_hit: 60,
                must_miss: 30,
                unknown: 10,
            },
            violations: 0,
        }
    }

    #[test]
    fn roundtrip_and_damage_rejection() {
        let v = verdict();
        let bytes = encode(&v);
        assert_eq!(decode(&bytes), Some(v));
        // Any single-byte flip must be rejected, not misread.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(decode(&bad), None, "flip at byte {i} accepted");
        }
        assert_eq!(decode(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn store_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("nbo-test-{}", std::process::id()));
        let store = OracleStore::open(&dir).unwrap();
        let key = 0xdead_beef_u64;
        assert_eq!(store.load(key), None);
        store.save(key, &verdict()).unwrap();
        assert_eq!(store.load(key), Some(verdict()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
