//! Cache geometry: size, line size and associativity, plus the address
//! arithmetic (set index / tag extraction) derived from them.

use crate::types::{Addr, BlockAddr};
use std::fmt;

/// Errors produced when constructing an invalid [`CacheGeometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// A parameter was zero or not a power of two.
    NotPowerOfTwo(&'static str, u64),
    /// `associativity * line_bytes` exceeds the total size.
    TooAssociative { ways: u32, sets_would_be: u64 },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo(what, v) => {
                write!(f, "{what} must be a nonzero power of two, got {v}")
            }
            GeometryError::TooAssociative {
                ways,
                sets_would_be,
            } => {
                write!(f, "associativity {ways} leaves {sets_would_be} sets")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// The shape of a cache: total capacity, line size and associativity.
///
/// The paper's baseline is an 8 KB direct-mapped cache with 32-byte lines
/// ([`CacheGeometry::baseline`]); §5 varies the size (64 KB) and line size
/// (16 B), and Fig. 10 uses a fully associative cache.
///
/// # Examples
///
/// ```
/// use nbl_core::geometry::CacheGeometry;
///
/// let g = CacheGeometry::baseline();
/// assert_eq!(g.num_sets(), 256);
/// assert_eq!(g.line_bytes(), 32);
/// assert_eq!(g.words_per_line(8), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u32,
    ways: u32,
    block_bits: u32,
    set_bits: u32,
}

impl CacheGeometry {
    /// Creates a geometry after validating all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any parameter is zero or not a power of
    /// two, or if the associativity exceeds the number of lines.
    pub fn new(
        size_bytes: u64,
        line_bytes: u32,
        ways: u32,
    ) -> Result<CacheGeometry, GeometryError> {
        if size_bytes == 0 || !size_bytes.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo("cache size", size_bytes));
        }
        if line_bytes == 0 || !line_bytes.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo(
                "line size",
                u64::from(line_bytes),
            ));
        }
        if ways == 0 || !ways.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo(
                "associativity",
                u64::from(ways),
            ));
        }
        let lines = size_bytes / u64::from(line_bytes);
        if u64::from(ways) > lines {
            return Err(GeometryError::TooAssociative {
                ways,
                sets_would_be: 0,
            });
        }
        let sets = lines / u64::from(ways);
        Ok(CacheGeometry {
            size_bytes,
            line_bytes,
            ways,
            block_bits: line_bytes.trailing_zeros(),
            set_bits: sets.trailing_zeros(),
        })
    }

    /// Direct-mapped geometry, the common case in the paper.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] from [`CacheGeometry::new`].
    pub fn direct_mapped(size_bytes: u64, line_bytes: u32) -> Result<CacheGeometry, GeometryError> {
        CacheGeometry::new(size_bytes, line_bytes, 1)
    }

    /// Fully associative geometry (every line in one set), used for Fig. 10.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] from [`CacheGeometry::new`].
    pub fn fully_associative(
        size_bytes: u64,
        line_bytes: u32,
    ) -> Result<CacheGeometry, GeometryError> {
        let lines = size_bytes / u64::from(line_bytes);
        CacheGeometry::new(size_bytes, line_bytes, lines as u32)
    }

    /// The paper's baseline: 8 KB, direct mapped, 32-byte lines.
    pub fn baseline() -> CacheGeometry {
        // nbl-allow(no-panic): constant geometry, validated by the unit tests below
        CacheGeometry::direct_mapped(8 * 1024, 32).expect("baseline geometry is valid")
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line (block) size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Associativity (ways per set). 1 = direct mapped.
    #[inline]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets.
    #[inline]
    pub fn num_sets(&self) -> u64 {
        1u64 << self.set_bits
    }

    /// Number of lines (sets × ways).
    #[inline]
    pub fn num_lines(&self) -> u64 {
        self.num_sets() * u64::from(self.ways)
    }

    /// `log2(line size)`: the number of low address bits naming a byte
    /// within a block.
    #[inline]
    pub fn block_bits(&self) -> u32 {
        self.block_bits
    }

    /// Number of machine words per line given a word size in bytes — the
    /// field count of an implicitly addressed MSHR (paper Fig. 1).
    #[inline]
    pub fn words_per_line(&self, word_bytes: u32) -> u32 {
        debug_assert!(word_bytes.is_power_of_two());
        (self.line_bytes / word_bytes).max(1)
    }

    /// True if every line sits in a single set.
    #[inline]
    pub fn is_fully_associative(&self) -> bool {
        self.num_sets() == 1
    }

    /// Block address of a byte address under this geometry.
    #[inline]
    pub fn block_of(&self, addr: Addr) -> BlockAddr {
        addr.block(self.block_bits)
    }

    /// Set index of a block address.
    #[inline]
    pub fn set_of_block(&self, block: BlockAddr) -> u32 {
        (block.0 & (self.num_sets() - 1)) as u32
    }

    /// Set index of a byte address.
    #[inline]
    pub fn set_of(&self, addr: Addr) -> u32 {
        self.set_of_block(self.block_of(addr))
    }

    /// The tag stored in the cache for a block (block address with the set
    /// bits removed).
    #[inline]
    pub fn tag_of_block(&self, block: BlockAddr) -> u64 {
        block.0 >> self.set_bits
    }

    /// Byte offset within the line for a byte address.
    #[inline]
    pub fn offset_of(&self, addr: Addr) -> u32 {
        addr.offset_in_block(self.block_bits)
    }

    /// Decodes `addr` once under this geometry: block address, set index,
    /// tag and line offset in a single pass. Every field agrees with the
    /// individual accessors ([`CacheGeometry::block_of`] and friends);
    /// the fused group step decodes each tape address once per distinct
    /// geometry and fans the result out instead of re-deriving these per
    /// configuration.
    #[inline]
    pub fn decode(&self, addr: Addr) -> DecodedAddr {
        let block = self.block_of(addr);
        DecodedAddr {
            addr,
            block,
            set: self.set_of_block(block),
            tag: self.tag_of_block(block),
            offset: self.offset_of(addr),
        }
    }
}

/// An address decoded once under a [`CacheGeometry`]: the block address,
/// set index, tag and line offset that every cache layer otherwise
/// re-derives per access. Produced by [`CacheGeometry::decode`]; valid
/// only for arrays built over the geometry that decoded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// The byte address the decode started from.
    pub addr: Addr,
    /// Block (line) address.
    pub block: BlockAddr,
    /// Set index of the block.
    pub set: u32,
    /// Tag stored in the cache for the block.
    pub tag: u64,
    /// Byte offset within the line.
    pub offset: u32,
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let assoc = if self.ways == 1 {
            "DM".to_string()
        } else if self.is_fully_associative() {
            "FA".to_string()
        } else {
            format!("{}w", self.ways)
        };
        write!(
            f,
            "{}KB/{}B/{}",
            self.size_bytes / 1024,
            self.line_bytes,
            assoc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_shape() {
        let g = CacheGeometry::baseline();
        assert_eq!(g.size_bytes(), 8192);
        assert_eq!(g.line_bytes(), 32);
        assert_eq!(g.ways(), 1);
        assert_eq!(g.num_sets(), 256);
        assert_eq!(g.num_lines(), 256);
        assert_eq!(g.block_bits(), 5);
        assert_eq!(g.to_string(), "8KB/32B/DM");
    }

    #[test]
    fn fully_associative_has_one_set() {
        let g = CacheGeometry::fully_associative(8 * 1024, 32).unwrap();
        assert_eq!(g.num_sets(), 1);
        assert_eq!(g.ways(), 256);
        assert!(g.is_fully_associative());
        assert_eq!(g.set_of(Addr(0xdead_beef)), 0);
        assert_eq!(g.to_string(), "8KB/32B/FA");
    }

    #[test]
    fn set_and_tag_extraction() {
        let g = CacheGeometry::baseline();
        // Address 0x2A60: block = 0x153, set = 0x53, tag = 1.
        let a = Addr(0x2a60);
        assert_eq!(g.block_of(a), BlockAddr(0x153));
        assert_eq!(g.set_of(a), 0x53);
        assert_eq!(g.tag_of_block(g.block_of(a)), 1);
        assert_eq!(g.offset_of(Addr(0x2a67)), 7);
    }

    #[test]
    fn same_set_different_tag_conflict() {
        let g = CacheGeometry::baseline();
        // Two addresses exactly one cache-size apart map to the same set.
        let a = Addr(0x1000);
        let b = Addr(0x1000 + 8 * 1024);
        assert_eq!(g.set_of(a), g.set_of(b));
        assert_ne!(g.tag_of_block(g.block_of(a)), g.tag_of_block(g.block_of(b)));
    }

    #[test]
    fn words_per_line_matches_paper_examples() {
        let g = CacheGeometry::baseline();
        assert_eq!(g.words_per_line(8), 4); // four 8-byte words in a 32-byte line
        assert_eq!(g.words_per_line(4), 8); // eight 4-byte sub-blocks
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            CacheGeometry::new(8 * 1024 + 1, 32, 1),
            Err(GeometryError::NotPowerOfTwo("cache size", _))
        ));
        assert!(matches!(
            CacheGeometry::new(8 * 1024, 24, 1),
            Err(GeometryError::NotPowerOfTwo("line size", _))
        ));
        assert!(matches!(
            CacheGeometry::new(8 * 1024, 32, 3),
            Err(GeometryError::NotPowerOfTwo("associativity", _))
        ));
        assert!(CacheGeometry::new(64, 32, 4).is_err()); // only 2 lines
        let err = CacheGeometry::new(64, 32, 4).unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn sixteen_byte_lines_variant() {
        let g = CacheGeometry::direct_mapped(8 * 1024, 16).unwrap();
        assert_eq!(g.num_sets(), 512);
        assert_eq!(g.block_bits(), 4);
        assert_eq!(g.words_per_line(8), 2);
    }

    #[test]
    fn large_cache_variant() {
        let g = CacheGeometry::direct_mapped(64 * 1024, 32).unwrap();
        assert_eq!(g.num_sets(), 2048);
    }
}
