//! Integration tests spanning the crates: the compiled instruction stream
//! seen by the processor matches the static program, simulation is
//! deterministic, and equivalent configurations produce equivalent
//! results.

use nonblocking_loads::cpu::core_engine::EngineConfig;
use nonblocking_loads::cpu::pipeline::Processor;
use nonblocking_loads::sched::compile::compile;
use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::{run_compiled, run_dual, run_program};
use nonblocking_loads::trace::exec::Executor;
use nonblocking_loads::trace::machine::CountingSink;
use nonblocking_loads::trace::workloads::{build, Scale, ALL};

fn scale() -> Scale {
    Scale {
        instr_target: 60_000,
    }
}

/// The dynamic stream the processor executes has exactly the statically
/// predicted instruction/load/store counts, for every benchmark.
#[test]
fn processor_sees_the_static_counts() {
    for name in ALL {
        let p = build(name, scale()).unwrap();
        let compiled = compile(&p, 10).unwrap();
        let mut counter = CountingSink::default();
        Executor::new(&compiled).run(&mut counter);
        let r = run_compiled(name, &compiled, &SimConfig::baseline(HwConfig::Mc(1))).unwrap();
        assert_eq!(r.instructions, counter.instructions, "{name}");
        assert_eq!(r.loads, counter.loads, "{name}");
        assert_eq!(r.stores, counter.stores, "{name}");
        let (l, s, o) = compiled.dynamic_mix();
        assert_eq!(
            (r.loads, r.stores, r.instructions),
            (l, s, l + s + o),
            "{name}"
        );
    }
}

/// Simulation is bit-deterministic: same program, same config, same MCPI.
#[test]
fn simulation_is_deterministic() {
    for name in ["doduc", "xlisp", "su2cor"] {
        let p = build(name, scale()).unwrap();
        let cfg = SimConfig::baseline(HwConfig::Fc(2));
        let r1 = run_program(&p, &cfg).unwrap();
        let r2 = run_program(&p, &cfg).unwrap();
        assert_eq!(r1, r2, "{name} must be deterministic");
    }
}

/// MCPI is invariant to the workload scale once warmed up (steady-state
/// ratio): doubling the instruction count moves tomcatv's MCPI by < 10%.
#[test]
fn mcpi_is_a_steady_state_ratio() {
    let cfg = SimConfig::baseline(HwConfig::NoRestrict);
    let small = run_program(
        &build(
            "tomcatv",
            Scale {
                instr_target: 150_000,
            },
        )
        .unwrap(),
        &cfg,
    )
    .unwrap()
    .mcpi;
    let large = run_program(
        &build(
            "tomcatv",
            Scale {
                instr_target: 300_000,
            },
        )
        .unwrap(),
        &cfg,
    )
    .unwrap()
    .mcpi;
    let rel = (small - large).abs() / large.max(1e-9);
    assert!(
        rel < 0.10,
        "MCPI should be scale-stable: {small} vs {large}"
    );
}

/// `mc=0` and `mc=0 + wma` run the same trace; `+wma` only adds store-miss
/// stalls, so their load-side metrics agree and the wma MCPI is at least
/// as large.
#[test]
fn wma_only_adds_store_stalls() {
    let p = build("tomcatv", scale()).unwrap();
    let mc0 = run_program(&p, &SimConfig::baseline(HwConfig::Mc0)).unwrap();
    let wma = run_program(&p, &SimConfig::baseline(HwConfig::Mc0Wma)).unwrap();
    assert!(wma.mcpi >= mc0.mcpi);
    assert!(wma.blocking_stalls > mc0.blocking_stalls);
    assert_eq!(wma.instructions, mc0.instructions);
}

/// `fc=N` with huge N converges to the per-destination inverted MSHR: with
/// more entries than the machine has registers, the register file itself
/// becomes the limit.
#[test]
fn many_fetch_mshrs_converge_to_inverted() {
    let p = build("su2cor", scale()).unwrap();
    let fc64 = run_program(&p, &SimConfig::baseline(HwConfig::Fc(64))).unwrap();
    let inverted = run_program(&p, &SimConfig::baseline(HwConfig::NoRestrict)).unwrap();
    let rel = (fc64.mcpi - inverted.mcpi).abs() / inverted.mcpi.max(1e-9);
    assert!(
        rel < 0.02,
        "fc=64 ({}) should equal inverted ({})",
        fc64.mcpi,
        inverted.mcpi
    );
}

/// The paper's ora anomaly: a fully serial miss chain makes every
/// organization equivalent (to within the one-cycle issue difference
/// between blocking service and use-stall).
#[test]
fn ora_is_flat_across_configs_and_latencies() {
    let p = build("ora", scale()).unwrap();
    let mut values = Vec::new();
    for hw in HwConfig::table13_six() {
        for lat in [1, 10, 20] {
            values.push(
                run_program(&p, &SimConfig::baseline(hw.clone()).at_latency(lat))
                    .unwrap()
                    .mcpi,
            );
        }
    }
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(max / min < 1.10, "ora must be flat: {min} .. {max}");
    assert!((0.8..1.1).contains(&max), "ora's MCPI sits near 1.0: {max}");
}

/// Dual-issue invariants across the detailed benchmarks: IPC ∈ (1, 2],
/// real cycles ≥ perfect cycles, and the dual MCPI never exceeds the
/// single-issue MCPI by more than the theoretical issue-compression bound.
#[test]
fn dual_issue_sanity() {
    for name in ["doduc", "eqntott", "tomcatv"] {
        let p = build(name, scale()).unwrap();
        let d = run_dual(&p, &SimConfig::baseline(HwConfig::Fc(2))).unwrap();
        assert!(d.ipc > 1.0 && d.ipc <= 2.0, "{name}: IPC {}", d.ipc);
        assert!(d.cycles >= d.perfect_cycles, "{name}");
        let s = run_program(&p, &SimConfig::baseline(HwConfig::Fc(2))).unwrap();
        // Dual-issue compresses compute, exposing *more* stall per
        // instruction, but never more than the full penalty would allow.
        assert!(
            d.mcpi <= s.mcpi * 2.5 + 0.5,
            "{name}: dual {} vs single {}",
            d.mcpi,
            s.mcpi
        );
    }
}

/// Fig. 6's bound: with single issue (at most one load per cycle) the
/// number of simultaneous fetches can never exceed the miss penalty.
#[test]
fn max_inflight_fetches_bounded_by_penalty() {
    for penalty in [4u32, 16] {
        let p = build("tomcatv", scale()).unwrap();
        let cfg = SimConfig::baseline(HwConfig::NoRestrict).with_penalty(penalty);
        let r = run_program(&p, &cfg).unwrap();
        assert!(
            r.inflight.max_fetches as u32 <= penalty,
            "penalty {penalty}: {} fetches in flight",
            r.inflight.max_fetches
        );
    }
}

/// Direct engine use (public API without the sim driver): the pieces
/// compose exactly as the examples show.
#[test]
fn engine_composes_from_parts() {
    use nonblocking_loads::core::cache::CacheConfig;
    use nonblocking_loads::core::inst::DynInst;
    use nonblocking_loads::core::mshr::MshrConfig;
    use nonblocking_loads::core::types::{Addr, LoadFormat, PhysReg};

    let p = build("eqntott", scale()).unwrap();
    let compiled = compile(&p, 10).unwrap();
    let mut cpu = Processor::new(EngineConfig::with_cache(CacheConfig::baseline(
        MshrConfig::Blocking,
    )));
    struct Sink<'a>(&'a mut Processor);
    impl nonblocking_loads::trace::machine::InstSink for Sink<'_> {
        fn exec(&mut self, inst: DynInst) {
            self.0.step(&inst).expect("no engine error on replay");
        }
    }
    Executor::new(&compiled).run(&mut Sink(&mut cpu));
    cpu.finish();
    assert!(cpu.stats().instructions > 10_000);
    assert!(cpu.stats().mcpi() > 0.0);

    // Hand-rolled instructions interleave fine with the same processor.
    cpu.step(&DynInst::load(
        Addr(0xdead00),
        PhysReg::int(3),
        LoadFormat::WORD,
    ))
    .unwrap();
    cpu.finish();
    assert!(cpu.stats().blocking_load_misses > 0);
}
