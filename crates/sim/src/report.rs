//! Plain-text rendering of sweep results in the shape of the paper's
//! figures and tables.

use crate::driver::RunResult;
use crate::sweep::{LatencySweep, PenaltySweep};
use std::fmt::Write as _;

/// Renders a latency sweep as a fixed-width table: one row per latency,
/// one MCPI column per configuration (the data behind Figs. 5, 9–12,
/// 15–17).
pub fn mcpi_vs_latency_table(sweep: &LatencySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "miss CPI vs scheduled load latency — {}", sweep.benchmark);
    let _ = write!(out, "{:>8}", "lat");
    for c in &sweep.configs {
        let _ = write!(out, "{c:>14}");
    }
    out.push('\n');
    for (i, &lat) in sweep.latencies.iter().enumerate() {
        let _ = write!(out, "{lat:>8}");
        for r in &sweep.rows[i] {
            let _ = write!(out, "{:>14.4}", r.mcpi);
        }
        out.push('\n');
    }
    out
}

/// Renders the structural-stall share per latency (Fig. 7: "% MCPI due to
/// structural hazard stalls").
pub fn structural_share_table(sweep: &LatencySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "%% MCPI from structural-hazard stalls — {}", sweep.benchmark);
    let _ = write!(out, "{:>8}", "lat");
    for c in &sweep.configs {
        let _ = write!(out, "{c:>14}");
    }
    out.push('\n');
    for (i, &lat) in sweep.latencies.iter().enumerate() {
        let _ = write!(out, "{lat:>8}");
        for r in &sweep.rows[i] {
            let _ = write!(out, "{:>13.1}%", 100.0 * r.structural_fraction);
        }
        out.push('\n');
    }
    out
}

/// Renders the load miss rates per latency (Fig. 8: primary+secondary and
/// secondary-only).
pub fn miss_rate_table(sweep: &LatencySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "load miss rate (%% of loads) — {}", sweep.benchmark);
    let _ = write!(out, "{:>8}", "lat");
    for c in &sweep.configs {
        let _ = write!(out, "{:>13}+s", c);
        let _ = write!(out, "{:>8}s", "");
    }
    out.push('\n');
    for (i, &lat) in sweep.latencies.iter().enumerate() {
        let _ = write!(out, "{lat:>8}");
        for r in &sweep.rows[i] {
            let _ = write!(out, "{:>14.2}", 100.0 * r.load_miss_rate);
            let _ = write!(out, "{:>9.2}", 100.0 * r.secondary_miss_rate);
        }
        out.push('\n');
    }
    out
}

/// Renders the Fig. 6-style in-flight histogram table for a column of
/// results (one per latency).
pub fn inflight_table(benchmark: &str, rows: &[(u32, &RunResult)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "in-flight misses and fetches — {benchmark}");
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>8} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6}",
        "lat", "kind", "%MIF", "1", "2", "3", "4", "5", "6", "7+", "max"
    );
    for (lat, r) in rows {
        for (kind, dist, max) in [
            ("misses", r.inflight.miss_dist, r.inflight.max_misses),
            ("fetches", r.inflight.fetch_dist, r.inflight.max_fetches),
        ] {
            let _ = write!(out, "{lat:>4} {kind:>8} {:>7.0}%", 100.0 * r.inflight.frac_time_with_misses);
            for d in dist {
                let _ = write!(out, " {:>4.0}%", 100.0 * d);
            }
            let _ = writeln!(out, " {max:>6}");
        }
    }
    out
}

/// One row of the Fig. 13-style table: MCPI and ratio-to-unrestricted for
/// each configuration, unrestricted last.
pub fn fig13_row(benchmark: &str, results: &[RunResult]) -> String {
    let unrestricted = results.last().expect("at least the unrestricted column").mcpi;
    let mut out = format!("{benchmark:>10}");
    for r in &results[..results.len() - 1] {
        let ratio = if unrestricted > 0.0 { r.mcpi / unrestricted } else { 1.0 };
        let _ = write!(out, " {:>7.3} {:>5.1}", r.mcpi, ratio);
    }
    let _ = write!(out, " {unrestricted:>7.3}");
    out
}

/// Renders a penalty sweep as the Fig. 18 table: one row per
/// configuration, one column per penalty.
pub fn mcpi_vs_penalty_table(sweep: &PenaltySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "miss CPI vs miss penalty — {}", sweep.benchmark);
    let _ = write!(out, "{:>14}", "config");
    for &p in &sweep.penalties {
        let _ = write!(out, "{p:>10}");
    }
    out.push('\n');
    for (j, c) in sweep.configs.iter().enumerate() {
        let _ = write!(out, "{c:>14}");
        for row in &sweep.rows {
            let _ = write!(out, "{:>10.3}", row[j].mcpi);
        }
        out.push('\n');
    }
    out
}

/// Renders a latency sweep as an ASCII chart in the style of the paper's
/// figures: MCPI on the y axis, scheduled load latency on the x axis, one
/// letter per configuration (see the legend below the plot). Points that
/// coincide are drawn as `*`.
pub fn mcpi_vs_latency_chart(sweep: &LatencySweep) -> String {
    const HEIGHT: usize = 18;
    let mut max = f64::MIN;
    let mut min = f64::MAX;
    for row in &sweep.rows {
        for r in row {
            max = max.max(r.mcpi);
            min = min.min(r.mcpi);
        }
    }
    if !max.is_finite() || !min.is_finite() || sweep.rows.is_empty() {
        return String::new();
    }
    if (max - min).abs() < 1e-12 {
        max = min + 1.0;
    }
    let col_width = 6;
    let width = sweep.latencies.len() * col_width;
    let mut grid = vec![vec![' '; width]; HEIGHT];
    for (i, _) in sweep.latencies.iter().enumerate() {
        for (j, _) in sweep.configs.iter().enumerate() {
            let m = sweep.rows[i][j].mcpi;
            let y = ((max - m) / (max - min) * (HEIGHT - 1) as f64).round() as usize;
            let x = i * col_width + col_width / 2;
            let symbol = (b'a' + (j % 26) as u8) as char;
            let cell = &mut grid[y.min(HEIGHT - 1)][x];
            *cell = if *cell == ' ' { symbol } else { '*' };
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "miss CPI vs load latency — {} (letters = configs)", sweep.benchmark);
    for (y, row) in grid.iter().enumerate() {
        let label = max - (max - min) * y as f64 / (HEIGHT - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label:>8.3} |{}", line.trim_end());
    }
    let _ = write!(out, "{:>8}  ", "");
    for lat in &sweep.latencies {
        let _ = write!(out, "{lat:^col_width$}");
    }
    out.push('\n');
    for (j, c) in sweep.configs.iter().enumerate() {
        let _ = writeln!(out, "{:>10} = {}", (b'a' + (j % 26) as u8) as char, c);
    }
    out
}

/// Escapes one CSV field (quotes fields containing commas or quotes).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes a latency sweep as CSV: one row per latency, one MCPI column
/// per configuration — ready for external plotting.
pub fn latency_sweep_csv(sweep: &LatencySweep) -> String {
    let mut out = String::from("load_latency");
    for c in &sweep.configs {
        let _ = write!(out, ",{}", csv_field(c));
    }
    out.push('\n');
    for (i, lat) in sweep.latencies.iter().enumerate() {
        let _ = write!(out, "{lat}");
        for r in &sweep.rows[i] {
            let _ = write!(out, ",{:.6}", r.mcpi);
        }
        out.push('\n');
    }
    out
}

/// Serializes a penalty sweep as CSV: one row per penalty, one MCPI column
/// per configuration.
pub fn penalty_sweep_csv(sweep: &PenaltySweep) -> String {
    let mut out = String::from("miss_penalty");
    for c in &sweep.configs {
        let _ = write!(out, ",{}", csv_field(c));
    }
    out.push('\n');
    for (i, pen) in sweep.penalties.iter().enumerate() {
        let _ = write!(out, "{pen}");
        for r in &sweep.rows[i] {
            let _ = write!(out, ",{:.6}", r.mcpi);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HwConfig, SimConfig};
    use crate::sweep::{latency_sweep, penalty_sweep};
    use nbl_trace::workloads::{build, Scale};

    fn tiny_sweep() -> LatencySweep {
        let p = build("eqntott", Scale::quick()).unwrap();
        latency_sweep(
            &p,
            &SimConfig::baseline(HwConfig::Mc0),
            &[HwConfig::Mc0, HwConfig::NoRestrict],
            &[1, 10],
        )
        .unwrap()
    }

    #[test]
    fn latency_table_contains_labels_and_rows() {
        let t = mcpi_vs_latency_table(&tiny_sweep());
        assert!(t.contains("eqntott"));
        assert!(t.contains("mc=0"));
        assert!(t.contains("no restrict"));
        assert_eq!(t.lines().count(), 2 + 2);
    }

    #[test]
    fn auxiliary_tables_render() {
        let s = tiny_sweep();
        assert!(structural_share_table(&s).contains('%'));
        assert!(miss_rate_table(&s).contains("eqntott"));
        let rows: Vec<(u32, &RunResult)> =
            s.latencies.iter().copied().zip(s.rows.iter().map(|r| &r[1])).collect();
        let t = inflight_table("eqntott", &rows);
        assert!(t.contains("fetches"));
    }

    #[test]
    fn fig13_row_shows_ratios() {
        let s = tiny_sweep();
        let row = fig13_row("eqntott", &s.rows[1]);
        assert!(row.contains("eqntott"));
        // one (mcpi, ratio) pair + the unrestricted column = 3 numbers.
        assert_eq!(row.split_whitespace().count(), 4);
    }

    #[test]
    fn chart_renders_with_legend_and_extremes() {
        let s = tiny_sweep();
        let chart = mcpi_vs_latency_chart(&s);
        assert!(chart.contains("a = mc=0"));
        assert!(chart.contains("b = no restrict"));
        // Every (latency, config) point appears somewhere.
        let plotted: usize = chart
            .chars()
            .filter(|c| *c == 'a' || *c == 'b' || *c == '*')
            .count()
            // legend letters appear once each
            - 2;
        assert!(plotted >= 2, "chart too empty:\n{chart}");
        // The y-axis spans the data.
        assert!(chart.lines().count() > 18);
    }

    #[test]
    fn csv_roundtrips_the_numbers() {
        let s = tiny_sweep();
        let csv = latency_sweep_csv(&s);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "load_latency,mc=0,no restrict");
        let row: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row[0], "1");
        let parsed: f64 = row[1].parse().unwrap();
        assert!((parsed - s.rows[0][0].mcpi).abs() < 1e-6);
        assert_eq!(csv.lines().count(), 1 + s.latencies.len());
    }

    #[test]
    fn csv_escapes_commas() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn penalty_csv_renders() {
        let p = build("eqntott", Scale::quick()).unwrap();
        let s = penalty_sweep(
            &p,
            &SimConfig::baseline(HwConfig::Mc0),
            &[HwConfig::Mc0],
            &[8, 16],
        )
        .unwrap();
        let csv = penalty_sweep_csv(&s);
        assert!(csv.starts_with("miss_penalty,mc=0"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn penalty_table_renders() {
        let p = build("eqntott", Scale::quick()).unwrap();
        let s = penalty_sweep(
            &p,
            &SimConfig::baseline(HwConfig::Mc0),
            &[HwConfig::Mc0],
            &[8, 16],
        )
        .unwrap();
        let t = mcpi_vs_penalty_table(&s);
        assert!(t.contains("mc=0"));
        assert!(t.lines().count() == 3);
    }
}
