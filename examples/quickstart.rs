//! Quickstart: how much does non-blocking load hardware buy?
//!
//! Runs one workload under the paper's ladder of MSHR organizations and
//! prints the miss CPI of each — the 60-second version of the whole study.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```

use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::run_program;
use nonblocking_loads::trace::workloads::{build, Scale, ALL};

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "doduc".to_string());
    let Some(program) = build(&bench, Scale::full()) else {
        eprintln!("unknown benchmark {bench:?}; choose one of {ALL:?}");
        std::process::exit(2);
    };

    println!(
        "benchmark: {bench} (~{} instructions)",
        program.estimated_instructions()
    );
    println!("baseline system: 8KB direct-mapped cache, 32B lines, 16-cycle miss penalty,");
    println!("single-issue CPU, code scheduled for a load latency of 10 cycles\n");
    println!(
        "{:>14} {:>10} {:>12} {:>22}",
        "organization", "miss CPI", "vs blocking", "hardware"
    );

    let ladder = [
        (HwConfig::Mc0Wma, "lockup + write-allocate"),
        (HwConfig::Mc0, "lockup cache"),
        (HwConfig::Mc(1), "1 MSHR, 1 target"),
        (HwConfig::Mc(2), "2 MSHRs, 1 target each"),
        (HwConfig::Fc(1), "1 MSHR, many targets"),
        (HwConfig::Fc(2), "2 MSHRs, many targets"),
        (HwConfig::NoRestrict, "inverted MSHR"),
    ];
    let blocking = run_program(&program, &SimConfig::baseline(HwConfig::Mc0))
        .expect("workloads compile")
        .mcpi;
    for (hw, hardware) in ladder {
        let r = run_program(&program, &SimConfig::baseline(hw.clone())).expect("workloads compile");
        println!(
            "{:>14} {:>10.3} {:>11.2}x {:>22}",
            hw.label(),
            r.mcpi,
            blocking / r.mcpi.max(1e-9),
            hardware
        );
    }
    println!("\nEvery configuration replays the identical instruction trace; only the",);
    println!("miss-handling hardware differs. See EXPERIMENTS.md for the full study.");
}
