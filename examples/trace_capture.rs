//! Trace capture and replay: ship a workload as a file.
//!
//! Captures a benchmark's exact dynamic instruction stream to a binary
//! `.nblt` trace (the lineage of the paper's long-address-trace
//! infrastructure), then replays the file through the simulator and
//! verifies the MCPI is bit-identical to direct execution.
//!
//! ```text
//! cargo run --release --example trace_capture [benchmark] [out.nblt]
//! ```

use nonblocking_loads::cpu::core_engine::EngineConfig;
use nonblocking_loads::cpu::pipeline::Processor;
use nonblocking_loads::sched::compile::compile;
use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::run_compiled;
use nonblocking_loads::trace::dump::{TraceReader, TraceWriter};
use nonblocking_loads::trace::exec::Executor;
use nonblocking_loads::trace::machine::InstSink;
use nonblocking_loads::trace::workloads::{build, Scale};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "eqntott".to_string());
    let path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| format!("/tmp/{bench}.nblt"));

    // 1. Generate + compile + capture.
    let program = build(&bench, Scale::full()).ok_or("unknown benchmark")?;
    let compiled = compile(&program, 10)?;
    let mut writer = TraceWriter::new(BufWriter::new(File::create(&path)?), &bench, 10)?;
    Executor::new(&compiled).run(&mut writer);
    let n = writer.finish()?;
    let size = std::fs::metadata(&path)?.len();
    println!(
        "captured {n} instructions to {path} ({size} bytes, {:.1} B/inst)",
        size as f64 / n as f64
    );

    // 2. Direct simulation for reference.
    let cfg = SimConfig::baseline(HwConfig::Fc(2));
    let direct = run_compiled(&bench, &compiled, &cfg)?;
    println!("direct simulation:   MCPI {:.6}", direct.mcpi);

    // 3. Replay the file through a fresh processor.
    let mut cpu = Processor::new(EngineConfig {
        cache: cfg.hw.cache_config(cfg.geometry),
        miss_penalty: cfg.miss_penalty,
        perfect_cache: false,
        memory_gap: 0,
        l2: None,
    });
    struct Sink<'a>(&'a mut Processor);
    impl InstSink for Sink<'_> {
        fn exec(&mut self, inst: nonblocking_loads::core::inst::DynInst) {
            self.0.step(&inst).expect("replay hits no engine error");
        }
    }
    let reader = TraceReader::new(BufReader::new(File::open(&path)?))?;
    println!(
        "trace header: name={} latency={}",
        reader.name(),
        reader.load_latency()
    );
    let replayed = reader.replay_into(&mut Sink(&mut cpu))?;
    cpu.finish();
    println!(
        "replayed simulation: MCPI {:.6} ({replayed} instructions)",
        cpu.stats().mcpi()
    );

    assert_eq!(replayed, n);
    assert!(
        (cpu.stats().mcpi() - direct.mcpi).abs() < 1e-12,
        "replay must be bit-identical"
    );
    println!("replay is bit-identical to direct execution ✓");
    Ok(())
}
