//! `fpppp` — two-electron integral derivatives from quantum chemistry
//! (SPEC92 CFP).
//!
//! Famous for its enormous basic blocks (hundreds of FP operations with
//! high ILP). Loads cluster at block entry, gathering integrals from
//! buffers larger than the cache, and the wide dataflow gives the
//! scheduler plenty of independent work — so non-blocking hardware pays
//! off more than anywhere else in Fig. 13's middle band (blocking is 7.1×
//! the unrestricted MCPI).
//!
//! Model: one huge block with eight independent load-and-chain clusters
//! drawing from two gather buffers, merged by a reduction tree, plus a
//! store tail.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("fpppp");
    let ints_a = pb.pattern(AddrPattern::Gather {
        base: layout::region(0, 0),
        elem_bytes: 8,
        length: 640, // 5 KB
        seed: 0xf999,
    });
    let ints_b = pb.pattern(AddrPattern::Gather {
        base: layout::region(1, 4096),
        elem_bytes: 8,
        length: 512, // 4 KB
        seed: 0xf99a,
    });
    let out = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 1024),
        elem_bytes: 8,
        stride: 1,
        length: 16 * 1024,
    });

    let mut b = pb.block();
    let mut cluster_results = Vec::new();
    // Eighteen independent clusters: 2 loads + a private FP chain each.
    // (Enough parallel live ranges that long-latency schedules spill —
    // the Fig. 4 reference-count effect.)
    for k in 0..18 {
        let src = if k % 2 == 0 { ints_a } else { ints_b };
        let v1 = b.load(src, RegClass::Fp, LoadFormat::DOUBLE);
        let v2 = b.load(src, RegClass::Fp, LoadFormat::DOUBLE);
        let t = b.alu(RegClass::Fp, Some(v1), Some(v2));
        let t2 = b.alu_chain(RegClass::Fp, t, 6);
        cluster_results.push(t2);
    }
    // Reduction tree.
    while cluster_results.len() > 1 {
        let a = cluster_results.remove(0);
        let c = cluster_results.remove(0);
        cluster_results.push(b.alu(RegClass::Fp, Some(a), Some(c)));
    }
    let total = cluster_results[0];
    let polished = b.alu_chain(RegClass::Fp, total, 8);
    b.store(out, Some(polished));
    b.store(out, Some(total));
    let cmp = b.alu(RegClass::Int, None, None);
    b.branch(Some(cmp));
    let giant = b.finish();

    let trips = scale.trips(18 * 9 + 17 + 12);
    pb.run(giant, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_giant_block_with_clustered_loads() {
        let p = build(Scale::quick());
        assert_eq!(p.blocks.len(), 1);
        let (loads, _, other) = p.blocks[0].op_mix();
        assert_eq!(loads, 36, "loads cluster at block entry");
        assert!(other > 50, "fpppp blocks are FP-op heavy");
        assert!(p.blocks[0].ops.len() > 80);
    }
}
