//! CLI for `nbl-analyze`.
//!
//! ```text
//! cargo run -p nbl-analyze --release               # report, exit 0
//! cargo run -p nbl-analyze --release -- --deny     # exit 1 on findings
//! cargo run -p nbl-analyze --release -- --json results/json/analyze.json
//! cargo run -p nbl-analyze --release -- --root some/tree
//! ```

use nbl_analyze::{report, run_analysis};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                print!("{}", HELP);
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let analysis = match run_analysis(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("nbl-analyze: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for f in &analysis.findings {
        println!("{}", f.render());
    }
    println!(
        "nbl-analyze: {} finding(s) across {} file(s) ({} inline allow(s), {} allowlist entr{})",
        analysis.findings.len(),
        analysis.files_scanned,
        analysis.allows_used,
        analysis.allowlist_entries,
        if analysis.allowlist_entries == 1 {
            "y"
        } else {
            "ies"
        },
    );

    if let Some(path) = json {
        let doc = report::analyze_json(
            &analysis.findings,
            analysis.files_scanned,
            analysis.allows_used,
            analysis.allowlist_entries,
        );
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("nbl-analyze: cannot create {}: {e}", parent.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("nbl-analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("nbl-analyze: wrote {}", path.display());
    }

    if deny && !analysis.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

const HELP: &str = "\
nbl-analyze: repo-specific static analysis (see DESIGN.md §13)

USAGE:
    nbl-analyze [--deny] [--json PATH] [--root DIR]

OPTIONS:
    --deny        exit non-zero if any finding survives suppression
    --json PATH   write the machine-readable report (analyze.json shape)
    --root DIR    analyze a tree other than the current directory
    -h, --help    print this help
";

fn usage(msg: &str) -> ExitCode {
    eprintln!("nbl-analyze: {msg}");
    eprint!("{}", HELP);
    ExitCode::from(2)
}
