//! `figures` — regenerates every table and figure of the paper's
//! evaluation section.
//!
//! ```text
//! cargo run -p nbl-bench --release -- all            # everything
//! cargo run -p nbl-bench --release -- fig5 fig13     # selected exhibits
//! cargo run -p nbl-bench --release -- all --quick    # smoke-scale
//! cargo run -p nbl-bench --release -- all --out results.txt
//! NBL_THREADS=4 cargo run -p nbl-bench --release -- all   # fixed pool
//! ```
//!
//! Simulation cells run on the parallel sweep engine (worker count from
//! `NBL_THREADS` or the machine); every exhibit is timed, and a throughput
//! summary (wall clock, simulated instructions per second, compile-cache
//! counters) prints at the end of the run.

mod experiments;

use experiments::RunScale;
use nbl_sim::telemetry::{Telemetry, TelemetrySnapshot};
use std::io::Write;
use std::time::Instant;

const USAGE: &str = "usage: figures <all | fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 compare ablations extensions misslife ...> [--quick] [--out FILE] [--csv DIR] [--json DIR]";

/// One timed exhibit: name, wall-clock seconds, simulated work done.
struct Timing {
    name: &'static str,
    wall: f64,
    work: TelemetrySnapshot,
}

/// Runs one exhibit, recording its wall clock and simulated-work delta.
fn timed<T>(timings: &mut Vec<Timing>, name: &'static str, f: impl FnOnce() -> T) -> T {
    let before = Telemetry::global().snapshot();
    let t0 = Instant::now();
    let value = f();
    timings.push(Timing {
        name,
        wall: t0.elapsed().as_secs_f64(),
        work: Telemetry::global().snapshot().since(before),
    });
    value
}

fn print_summary(out: &mut dyn Write, timings: &[Timing]) {
    let threads = experiments::engine().pool().threads();
    let _ = writeln!(
        out,
        "== Throughput summary ({threads} worker thread{}) ==",
        if threads == 1 { "" } else { "s" }
    );
    let _ = writeln!(
        out,
        "{:>12} {:>9} {:>7} {:>10} {:>12}",
        "exhibit", "wall (s)", "runs", "Minst", "Minst/s"
    );
    let mut total_wall = 0.0;
    let mut total = TelemetrySnapshot::default();
    for t in timings {
        let _ = writeln!(
            out,
            "{:>12} {:>9.2} {:>7} {:>10.1} {:>12.2}",
            t.name,
            t.wall,
            t.work.runs,
            t.work.instructions as f64 / 1e6,
            t.work.inst_per_sec(t.wall) / 1e6,
        );
        total_wall += t.wall;
        total = TelemetrySnapshot {
            instructions: total.instructions + t.work.instructions,
            cycles: total.cycles + t.work.cycles,
            runs: total.runs + t.work.runs,
            events: total.events + t.work.events,
        };
    }
    let _ = writeln!(
        out,
        "{:>12} {:>9.2} {:>7} {:>10.1} {:>12.2}",
        "total",
        total_wall,
        total.runs,
        total.instructions as f64 / 1e6,
        total.inst_per_sec(total_wall) / 1e6,
    );
    let cache = experiments::engine().cache().stats();
    let _ = writeln!(
        out,
        "compile cache: {} compilations, {} reuses (each (benchmark, latency) pair compiled once)",
        cache.compiles, cache.hits
    );
    if total.events > 0 {
        let _ = writeln!(out, "miss-lifecycle events recorded: {}", total.events);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = RunScale::Full;
    let mut out_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = RunScale::Quick,
            "--out" => out_path = it.next(),
            "--csv" => {
                let dir = it.next().expect("--csv needs a directory");
                experiments::enable_csv(dir.into());
            }
            "--json" => {
                let dir = it.next().expect("--json needs a directory");
                experiments::enable_json(dir.into());
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.iter().any(|w| w == "list") {
        println!("exhibits: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19");
        println!("extras:   compare (paper vs measured), ablations, extensions, misslife, all");
        println!("options:  --quick (smoke scale), --out FILE (tee), --csv DIR (sweep CSVs),");
        println!("          --json DIR (machine-readable results, e.g. results/)");
        println!("env:      NBL_THREADS=N overrides the worker count (default: all cores)");
        return;
    }
    if wanted.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let mut sinks: Vec<Box<dyn Write>> = vec![Box::new(std::io::stdout())];
    if let Some(path) = &out_path {
        sinks.push(Box::new(
            std::fs::File::create(path).expect("create output file"),
        ));
    }
    let mut out = Tee(sinks);
    let mut timings: Vec<Timing> = Vec::new();
    let t = &mut timings;

    if want("compare") {
        timed(t, "compare", || experiments::compare::run(&mut out, scale));
    }
    if want("fig4") {
        timed(t, "fig4", || experiments::fig4::run(&mut out, scale));
    }
    // Figures 5–8 share the doduc baseline sweep.
    let needs_doduc_sweep = ["fig5", "fig7", "fig8"].iter().any(|f| want(f));
    let doduc_sweep = needs_doduc_sweep.then(|| {
        timed(t, "fig5", || {
            experiments::figs_baseline::fig5(&mut out, scale)
        })
    });
    if want("fig6") {
        timed(t, "fig6", || experiments::fig6::run(&mut out, scale));
    }
    if let Some(sweep) = &doduc_sweep {
        if want("fig7") {
            timed(t, "fig7", || {
                experiments::figs_baseline::fig7(&mut out, sweep)
            });
        }
        if want("fig8") {
            timed(t, "fig8", || {
                experiments::figs_baseline::fig8(&mut out, sweep)
            });
        }
    }
    if want("fig9") {
        timed(t, "fig9", || {
            experiments::figs_baseline::fig9(&mut out, scale)
        });
    }
    if want("fig10") {
        timed(t, "fig10", || {
            experiments::figs_baseline::fig10(&mut out, scale)
        });
    }
    if want("fig11") {
        timed(t, "fig11", || {
            experiments::figs_baseline::fig11(&mut out, scale)
        });
    }
    if want("fig12") {
        timed(t, "fig12", || {
            experiments::figs_baseline::fig12(&mut out, scale)
        });
    }
    if want("fig13") {
        timed(t, "fig13", || experiments::fig13::run(&mut out, scale));
    }
    if want("fig14") {
        timed(t, "fig14", || experiments::fig14::run(&mut out, scale));
    }
    if want("fig15") {
        timed(t, "fig15", || experiments::fig15::run(&mut out, scale));
    }
    if want("fig16") {
        timed(t, "fig16", || {
            experiments::figs_baseline::fig16(&mut out, scale)
        });
    }
    if want("fig17") {
        timed(t, "fig17", || {
            experiments::figs_baseline::fig17(&mut out, scale)
        });
    }
    if want("fig18") {
        timed(t, "fig18", || experiments::fig18::run(&mut out, scale));
    }
    if want("fig19") {
        timed(t, "fig19", || experiments::fig19::run(&mut out, scale));
    }
    if want("ablations") {
        timed(t, "ablations", || {
            experiments::ablations::run(&mut out, scale)
        });
    }
    if want("extensions") {
        timed(t, "extensions", || {
            experiments::extensions::run(&mut out, scale)
        });
    }
    if want("misslife") {
        timed(t, "misslife", || {
            experiments::misslife::run(&mut out, scale)
        });
    }
    print_summary(&mut out, &timings);
}

/// Writes to every sink (stdout + optional file).
struct Tee(Vec<Box<dyn Write>>);

impl Write for Tee {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for s in &mut self.0 {
            s.write_all(buf)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        for s in &mut self.0 {
            s.flush()?;
        }
        Ok(())
    }
}
