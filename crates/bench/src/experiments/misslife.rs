//! Miss-lifecycle exhibit: replays a few benchmarks with the memory
//! system's event tracing enabled and summarizes the transaction
//! lifecycle — how deep secondary misses merge, how many targets each
//! fill wakes, and how long blocks stay in flight. This is the data the
//! `Issued → Merged/Rejected → FetchLaunched → Filled → TargetsWoken`
//! event stream exists to expose; no paper figure plots it directly.

use super::{program, write_json, ExhibitError, RunScale};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::report;
use nbl_sim::run_program_traced;
use std::io::Write;

/// Ring capacity for the recorder: enough to keep the tail of the run
/// for debugging without holding the whole event stream.
const RING: usize = 4096;

/// Scheduled load latency: 10, the operating point where schedules
/// overlap enough for secondary misses to merge (at latency 1 nearly
/// every miss is primary and the histograms are degenerate).
const LATENCY: u32 = 10;

/// Benchmarks × configurations shown in the exhibit.
fn cells() -> (Vec<&'static str>, Vec<HwConfig>) {
    (
        vec!["eqntott", "tomcatv", "doduc"],
        vec![HwConfig::Mc(1), HwConfig::Mc(4), HwConfig::NoRestrict],
    )
}

/// Prints the miss-lifecycle tables and writes `misslife.json`.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let (benchmarks, configs) = cells();
    let _ = writeln!(out, "== Miss lifecycle: traced transaction summaries ==");
    let mut json = String::from("[");
    for name in &benchmarks {
        let p = program(name, scale)?;
        for hw in &configs {
            let cfg = SimConfig::baseline(hw.clone()).at_latency(LATENCY);
            let (_result, trace) = run_program_traced(&p, &cfg, RING)
                .map_err(|e| ExhibitError::new(format!("{name} @ {} traced", hw.label()), e))?;
            let label = hw.label();
            let _ = writeln!(
                out,
                "{}",
                report::miss_lifecycle_table(name, &label, &trace.stats)
            );
            if json.len() > 1 {
                json.push(',');
            }
            json.push_str(&report::miss_lifecycle_json(name, &label, &trace.stats));
        }
    }
    json.push(']');
    write_json("misslife", &json)
}
