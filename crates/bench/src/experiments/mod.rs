//! One module per paper exhibit. Every `run` function prints its tables to
//! the given writer and asserts nothing — the shape checks live in the
//! workspace integration tests; this harness is for regenerating the
//! numbers in EXPERIMENTS.md.

pub mod ablations;
pub mod bench;
pub mod compare;
pub mod extensions;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig18;
pub mod fig19;
pub mod fig4;
pub mod fig6;
pub mod figs_baseline;
pub mod misslife;
pub mod oracle;
pub mod paper;
pub mod replaymodel;
pub mod replsens;

use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::sweep::{LatencySweep, SweepEngine};
use nbl_trace::ir::Program;
use nbl_trace::workloads::{build, Scale};
use std::io::Write;
use std::path::PathBuf;
use std::sync::OnceLock;

/// One registered exhibit: CLI name, one-line description, entry point.
pub struct Exhibit {
    /// CLI name (`figures <name>`).
    pub name: &'static str,
    /// One-line description shown by `figures list`.
    pub about: &'static str,
    /// Entry point: prints tables to the writer at the given scale.
    /// On failure the error names the grid cell or phase that broke, so
    /// the harness can report it without aborting the other exhibits.
    pub run: fn(&mut dyn Write, RunScale) -> Result<(), ExhibitError>,
}

/// A failed exhibit: the grid cell or phase that broke, and why. The
/// harness prefixes the exhibit name when reporting, so one bad cell
/// prints `exhibit fig13 failed at compress @ latency 20: ...` instead
/// of panicking the whole `figures all` run.
#[derive(Debug)]
pub struct ExhibitError {
    /// Where it failed: benchmark / grid cell / phase.
    pub context: String,
    /// The underlying failure, rendered.
    pub cause: String,
}

impl ExhibitError {
    /// Builds an error for the given grid-cell/phase context.
    pub fn new(context: impl Into<String>, cause: impl std::fmt::Display) -> ExhibitError {
        ExhibitError {
            context: context.into(),
            cause: cause.to_string(),
        }
    }
}

impl std::fmt::Display for ExhibitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at {}: {}", self.context, self.cause)
    }
}

impl std::error::Error for ExhibitError {}

/// Every exhibit the harness can regenerate, in presentation order.
/// Adding an exhibit is one entry here — `figures list`, `help`, `all`,
/// and argument validation all derive from this table.
pub const EXHIBITS: &[Exhibit] = &[
    Exhibit {
        name: "compare",
        about: "paper-vs-measured MCPI comparison for the headline cells",
        run: compare::run,
    },
    Exhibit {
        name: "fig4",
        about: "scheduled load latency vs achieved overlap",
        run: fig4::run,
    },
    Exhibit {
        name: "fig5",
        about: "baseline miss CPI vs latency for doduc",
        run: figs_baseline::fig5,
    },
    Exhibit {
        name: "fig6",
        about: "miss decomposition for doduc",
        run: fig6::run,
    },
    Exhibit {
        name: "fig7",
        about: "stall-cycle breakdown for doduc",
        run: figs_baseline::fig7,
    },
    Exhibit {
        name: "fig8",
        about: "baseline miss rate for doduc",
        run: figs_baseline::fig8,
    },
    Exhibit {
        name: "fig9",
        about: "baseline miss CPI vs latency for xlisp",
        run: figs_baseline::fig9,
    },
    Exhibit {
        name: "fig10",
        about: "xlisp on a fully associative 8KB cache",
        run: figs_baseline::fig10,
    },
    Exhibit {
        name: "fig11",
        about: "baseline miss CPI vs latency for eqntott",
        run: figs_baseline::fig11,
    },
    Exhibit {
        name: "fig12",
        about: "baseline miss CPI vs latency for tomcatv",
        run: figs_baseline::fig12,
    },
    Exhibit {
        name: "fig13",
        about: "MSHR organizations compared at equal cost",
        run: fig13::run,
    },
    Exhibit {
        name: "fig14",
        about: "in-cache MSHR variants",
        run: fig14::run,
    },
    Exhibit {
        name: "fig15",
        about: "victim buffering and write-miss policy",
        run: fig15::run,
    },
    Exhibit {
        name: "fig16",
        about: "doduc with a 64KB data cache",
        run: figs_baseline::fig16,
    },
    Exhibit {
        name: "fig17",
        about: "doduc with 16-byte lines",
        run: figs_baseline::fig17,
    },
    Exhibit {
        name: "fig18",
        about: "miss CPI vs miss penalty",
        run: fig18::run,
    },
    Exhibit {
        name: "fig19",
        about: "bandwidth-limited memory sensitivity",
        run: fig19::run,
    },
    Exhibit {
        name: "ablations",
        about: "mechanism ablation grid across benchmarks",
        run: ablations::run,
    },
    Exhibit {
        name: "extensions",
        about: "beyond-the-paper extension sweeps",
        run: extensions::run,
    },
    Exhibit {
        name: "misslife",
        about: "traced miss-lifecycle transaction summaries",
        run: misslife::run,
    },
    Exhibit {
        name: "oracle",
        about: "static must-hit/may-miss coverage, cross-checked against the simulator",
        run: oracle::run,
    },
    Exhibit {
        name: "replsens",
        about: "replacement policy x MSHR config x latency sensitivity",
        run: replsens::run,
    },
    Exhibit {
        name: "replaymodel",
        about: "stalling vs replay-cause pipeline x MSHR config x latency",
        run: replaymodel::run,
    },
    Exhibit {
        name: "bench",
        about: "record/replay pipeline timing on a pinned grid (BENCH_sweep.json)",
        run: bench::run,
    },
];

/// The process-wide parallel sweep engine every exhibit runs on: its pool
/// fans `(benchmark, latency, configuration)` cells across threads
/// (`NBL_THREADS` overrides the count) and its cache compiles each
/// `(benchmark, latency)` pair at most once per invocation, however many
/// exhibits replay it.
pub fn engine() -> &'static SweepEngine {
    SweepEngine::global()
}

static CSV_DIR: OnceLock<PathBuf> = OnceLock::new();
static JSON_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Enables CSV side-output: each sweep-producing exhibit also writes
/// `<dir>/<figN>.csv`. Call once, before running exhibits.
pub fn enable_csv(dir: PathBuf) -> std::io::Result<()> {
    std::fs::create_dir_all(&dir)?;
    let _ = CSV_DIR.set(dir);
    Ok(())
}

/// Writes `contents` to `<csv dir>/<name>.csv` if CSV output is enabled.
pub fn write_csv(name: &str, contents: &str) -> Result<(), ExhibitError> {
    if let Some(dir) = CSV_DIR.get() {
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, contents)
            .map_err(|e| ExhibitError::new(format!("writing {}", path.display()), e))?;
    }
    Ok(())
}

/// Enables JSON side-output: each sweep-producing exhibit also writes
/// `<dir>/<figN>.json` (machine-readable results, typically `results/`).
/// Call once, before running exhibits.
pub fn enable_json(dir: PathBuf) -> std::io::Result<()> {
    std::fs::create_dir_all(&dir)?;
    let _ = JSON_DIR.set(dir);
    Ok(())
}

/// Writes `contents` to `<json dir>/<name>.json` if JSON output is enabled.
pub fn write_json(name: &str, contents: &str) -> Result<(), ExhibitError> {
    if let Some(dir) = JSON_DIR.get() {
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, contents)
            .map_err(|e| ExhibitError::new(format!("writing {}", path.display()), e))?;
    }
    Ok(())
}

/// Command-line knobs for the `bench` exhibit, set once before exhibits
/// run (mirrors [`enable_csv`]/[`enable_json`]).
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Best-of-N repetitions for each repeatable timed phase.
    pub reps: usize,
    /// ISO date stamped into the trajectory entry. Supplied by the
    /// caller (`--bench-date` or `NBL_BENCH_DATE`) rather than read from
    /// the wall clock, keeping result-producing code clock-free.
    pub date: String,
}

static BENCH_OPTS: OnceLock<BenchOpts> = OnceLock::new();

/// Registers the `bench` exhibit's options. Call once, before exhibits.
pub fn set_bench_opts(opts: BenchOpts) {
    let _ = BENCH_OPTS.set(opts);
}

/// The `bench` options in effect: whatever [`set_bench_opts`] installed,
/// else best-of-2 with the date from `NBL_BENCH_DATE` (or `"unknown"`).
pub fn bench_opts() -> BenchOpts {
    BENCH_OPTS.get().cloned().unwrap_or_else(|| BenchOpts {
        reps: 2,
        date: std::env::var("NBL_BENCH_DATE").unwrap_or_else(|_| "unknown".to_string()),
    })
}

/// The load latencies the paper sweeps.
pub const LATENCIES: [u32; 6] = [1, 2, 3, 6, 10, 20];

/// Experiment sizing selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// ~40 k instructions per run: seconds, for smoke checks.
    Quick,
    /// ~400 k instructions per run: the defaults used for EXPERIMENTS.md.
    Full,
}

impl RunScale {
    /// The workload scale for this run size.
    pub fn workload_scale(self) -> Scale {
        match self {
            RunScale::Quick => Scale::quick(),
            RunScale::Full => Scale::full(),
        }
    }
}

/// Builds a benchmark program; an unknown name is an [`ExhibitError`]
/// (the registry only names known benchmarks, so this marks a typo in
/// the exhibit itself, reported with its grid context).
pub fn program(name: &str, scale: RunScale) -> Result<Program, ExhibitError> {
    build(name, scale.workload_scale())
        .ok_or_else(|| ExhibitError::new(format!("benchmark {name}"), "unknown benchmark"))
}

/// Builds several benchmark programs.
pub fn programs_for(names: &[&str], scale: RunScale) -> Result<Vec<Program>, ExhibitError> {
    names.iter().map(|name| program(name, scale)).collect()
}

/// Runs a `benchmarks × configs` grid on the shared engine and returns
/// `mcpi[bench][config]`, rows in benchmark order — the workhorse behind
/// the ablation and extension tables.
pub fn mcpi_grid(programs: &[Program], cfgs: &[SimConfig]) -> Result<Vec<Vec<f64>>, ExhibitError> {
    let jobs: Vec<(&Program, SimConfig)> = programs
        .iter()
        .flat_map(|p| cfgs.iter().map(move |c| (p, c.clone())))
        .collect();
    let names: Vec<&str> = programs.iter().map(|p| p.name.as_str()).collect();
    let results = engine()
        .run_many(&jobs)
        .map_err(|e| ExhibitError::new(format!("grid over {}", names.join(", ")), e))?;
    Ok(results
        .chunks(cfgs.len())
        .map(|row| row.iter().map(|r| r.mcpi).collect())
        .collect())
}

/// The full baseline latency sweep (7 configurations × 6 latencies) for
/// one benchmark — the data behind Figs. 5–12 and 15–17. Runs on the
/// shared [`engine`], so the 42 cells execute in parallel and the six
/// compilations are shared with every other exhibit.
pub fn baseline_sweep(
    name: &str,
    scale: RunScale,
    base: &SimConfig,
) -> Result<LatencySweep, ExhibitError> {
    let p = program(name, scale)?;
    engine()
        .latency_sweep(&p, base, &HwConfig::baseline_seven(), &LATENCIES)
        .map_err(|e| ExhibitError::new(format!("{name} baseline latency sweep"), e))
}
