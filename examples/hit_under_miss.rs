//! Is hit-under-miss enough? The paper's headline question, answered per
//! benchmark class.
//!
//! For every SPEC92 stand-in, compares the simple hit-under-miss cache
//! (`mc=1`, roughly what the HP PA7100 shipped) against the unrestricted
//! inverted-MSHR cache, and reports how much performance the cheap
//! hardware leaves on the table.
//!
//! ```text
//! cargo run --release --example hit_under_miss
//! ```

use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::run_program;
use nonblocking_loads::trace::workloads::{build, is_integer, Scale, ALL};

fn main() {
    println!(
        "{:>10} {:>6} {:>10} {:>12} {:>10} {:>28}",
        "benchmark", "class", "mc=1 MCPI", "no-restrict", "left over", "verdict"
    );
    let mut int_worst: f64 = 0.0;
    let mut fp_worst: f64 = 0.0;
    for name in ALL {
        let p = build(name, Scale::full()).expect("known benchmark");
        let hum = run_program(&p, &SimConfig::baseline(HwConfig::Mc(1))).unwrap();
        let full = run_program(&p, &SimConfig::baseline(HwConfig::NoRestrict)).unwrap();
        let ratio = hum.mcpi / full.mcpi.max(1e-9);
        let class = if is_integer(name) { "int" } else { "fp" };
        let verdict = if ratio < 1.25 {
            "hit-under-miss is enough"
        } else if ratio < 2.0 {
            "mc=2 / fc=2 worth considering"
        } else {
            "buy aggressive MSHRs"
        };
        if is_integer(name) {
            int_worst = int_worst.max(ratio);
        } else {
            fp_worst = fp_worst.max(ratio);
        }
        println!(
            "{:>10} {:>6} {:>10.3} {:>12.3} {:>9.2}x {:>28}",
            name, class, hum.mcpi, full.mcpi, ratio, verdict
        );
    }
    println!();
    println!("the worst integer benchmark leaves only {int_worst:.2}x on the table,");
    println!("while the numeric suite leaves up to {fp_worst:.2}x unclaimed.");
    println!("That asymmetry is the paper's §7 conclusion.");
}
