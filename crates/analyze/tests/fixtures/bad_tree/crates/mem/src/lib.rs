//! Fixture: event emission outside the guard.

/// Memory event (fixture stub).
pub enum MemEvent {
    /// A miss was issued.
    Issued {
        /// Cycle stamp.
        at: u64,
    },
}

/// Construct outside `emit` and record directly: both bypass the guard.
pub fn leak(sink: &mut Sink) {
    let e = MemEvent::Issued { at: 0 };
    sink.record(&e);
}

/// The guard itself routes through `emit`, which is fine.
pub fn guarded(sys: &mut System) {
    sys.emit(MemEvent::Issued { at: 1 });
}
