//! `xlisp` — a small LISP interpreter running the nine-queens problem
//! (SPEC92 CINT).
//!
//! Interpreter behaviour: chase cons-cell pointers through a heap somewhat
//! larger than the cache, touch each node's fields, and write constantly
//! (xlisp executes ~6× more stores than loads — environment updates, GC
//! bookkeeping, stack pushes). The chase loads are *dependent* (the next
//! address is the loaded value), so non-blocking hardware beyond
//! hit-under-miss buys almost nothing (Fig. 9: `mc=1` is within 6% of
//! unrestricted), and the direct-mapped conflicts between the heap walk
//! and the interpreter's hot tables are what a fully associative cache
//! removes (Fig. 10 flattens and drops 2–3×).

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("xlisp");
    // Live cons cells: 16 bytes of data each, but *scattered* through a
    // fragmented heap arena (176-byte spacing — allocation holes from
    // garbage collection). The hot data totals only 6 KB, yet the
    // scattered placements collide in a direct-mapped cache: these are
    // conflict misses, which is exactly what Fig. 10's fully associative
    // cache removes.
    let heap = pb.pattern(AddrPattern::Chase {
        base: layout::region(0, 0),
        node_bytes: 176,
        nodes: 112,
        field_offset: 0,
        seed: 0x115b,
    });
    // The cdr field of the current cell (dependent on the chase pointer;
    // same 32-byte line as the car, so it hits once the cell arrives).
    let cdr = pb.pattern(AddrPattern::Chase {
        base: layout::region(0, 0),
        node_bytes: 176,
        nodes: 112,
        field_offset: 8,
        seed: 0x115b,
    });
    // Interpreter hot tables (symbol table, opcode dispatch): 2 KB, hot —
    // but *aligned into the same sets as part of the heap*, so the chase
    // keeps evicting them in a direct-mapped cache.
    let symtab = pb.pattern(AddrPattern::Gather {
        base: layout::region(0, 512 * 1024), // same slot alignment as the heap
        elem_bytes: 8,
        length: 256,
        seed: 0x5717,
    });
    // Cold cells: older list structure revisited occasionally — capacity
    // misses that associativity cannot remove.
    let cold = pb.pattern(AddrPattern::Gather {
        base: layout::region(2, 0),
        elem_bytes: 8,
        length: 1280, // 10 KB
        seed: 0xc01d,
    });
    // Environment/stack writes: a small frame region (write hits) ...
    let frame = pb.pattern(AddrPattern::Strided {
        base: layout::region(1, 1024),
        elem_bytes: 8,
        stride: 1,
        length: 128,
    });
    // ... and heap mutation (write-around misses; free under the paper's
    // store model).
    let heap_wr = pb.pattern(AddrPattern::Gather {
        base: layout::region(0, 0),
        elem_bytes: 176,
        length: 112,
        seed: 0x9e47,
    });

    // One interpreter dispatch: chase a cell, read its cdr and two hot
    // table entries, run integer bookkeeping, push/pop frames, mutate.
    let mut b = pb.block();
    let ptr = b.carried(RegClass::Int);
    let tail = b.carried(RegClass::Int); // interpreter state from last dispatch
                                         // The next dispatch target depends on the previous dispatch's result —
                                         // an interpreter cannot fetch bytecode N+1 before finishing N. This
                                         // serializes iterations, which is why no amount of MSHR hardware makes
                                         // xlisp much faster than hit-under-miss.
    b.alu_into(ptr, Some(ptr), Some(tail));
    b.chase(heap, ptr, LoadFormat::DOUBLE);
    let cd = b.load_via(cdr, ptr, RegClass::Int, LoadFormat::DOUBLE);
    let s1 = b.load(symtab, RegClass::Int, LoadFormat::WORD);
    let old_cell = b.load_via(cold, cd, RegClass::Int, LoadFormat::DOUBLE);
    let t0 = b.alu(RegClass::Int, Some(old_cell), None);
    let t1 = b.alu(RegClass::Int, Some(cd), Some(s1));
    let t3 = b.alu_chain(RegClass::Int, t1, 9);
    let t3b = b.alu(RegClass::Int, Some(t3), Some(t0));
    b.branch(Some(t3b));
    // Environment manipulation: store-heavy stretch.
    for k in 0..7 {
        let v = b.alu(RegClass::Int, Some(t3), None);
        if k % 2 == 0 {
            b.store(frame, Some(v));
        } else {
            b.store(heap_wr, Some(v));
        }
    }
    let t4a = b.alu(RegClass::Int, Some(t3b), None);
    let t4 = b.alu_chain(RegClass::Int, t4a, 9);
    b.store(frame, Some(t4));
    b.alu_into(tail, Some(t4), None);
    b.branch(Some(t4));
    let dispatch = b.finish();

    let trips = scale.trips(45);
    pb.run(dispatch, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrOp;

    #[test]
    fn store_heavy_dependent_mix() {
        let p = build(Scale::quick());
        let (loads, stores, _) = p.blocks[0].op_mix();
        assert_eq!(loads, 4);
        assert_eq!(stores, 8, "xlisp writes far more than it reads");
        // The dispatch computes the next pointer from the previous
        // iteration's result, then the chase load reads and writes it.
        match p.blocks[0].ops[0] {
            IrOp::Alu { srcs, .. } => assert!(srcs[1].is_some(), "dispatch reads last result"),
            _ => panic!("first op is the dispatch computation"),
        }
        match p.blocks[0].ops[1] {
            IrOp::Load { dst, addr_src, .. } => assert_eq!(Some(dst), addr_src),
            _ => panic!("second op is the chase"),
        }
    }

    #[test]
    fn live_cells_fit_but_the_arena_does_not() {
        let p = build(Scale::quick());
        match p.patterns[0] {
            AddrPattern::Chase {
                node_bytes, nodes, ..
            } => {
                // Live data (one line per cell) fits an 8 KB cache...
                assert!(nodes * 32 < 8 * 1024);
                // ...but the fragmented arena the cells sit in does not.
                assert!(
                    u64::from(node_bytes) * nodes > 8 * 1024,
                    "conflict-dominated sizing"
                );
            }
            _ => panic!("heap is a chase pattern"),
        }
    }
}
