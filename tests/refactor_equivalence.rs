//! Refactor-equivalence guard for the port-based memory system.
//!
//! The golden rows below were captured from the pre-port engine (the
//! processor models still owned the cache, MSHRs, pipelined memory, and
//! write buffer directly) for the Fig. 13 configurations at the paper's
//! six scheduled load latencies, quick scale. The port refactor must be
//! a pure re-layering: instruction counts, cycle counts, and the full
//! stall-cause breakdown stay bit-identical.

use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::run_program;
use nonblocking_loads::trace::workloads::{build, Scale};

/// `(benchmark, config label, latency, instructions, cycles,
/// data-dep stalls, structural stalls, blocking stalls)`.
type GoldenRow = (&'static str, &'static str, u32, u64, u64, u64, u64, u64);

const GOLDEN: [GoldenRow; 72] = [
    ("eqntott", "mc=0", 1, 36800, 44288, 0, 0, 7488),
    ("eqntott", "mc=0", 2, 36800, 44288, 0, 0, 7488),
    ("eqntott", "mc=0", 3, 36800, 44288, 0, 0, 7488),
    ("eqntott", "mc=0", 6, 36800, 44288, 0, 0, 7488),
    ("eqntott", "mc=0", 10, 36800, 44288, 0, 0, 7488),
    ("eqntott", "mc=0", 20, 36800, 44288, 0, 0, 7488),
    ("eqntott", "mc=1", 1, 36800, 43400, 6000, 600, 0),
    ("eqntott", "mc=1", 2, 36800, 42257, 4599, 858, 0),
    ("eqntott", "mc=1", 3, 36800, 41674, 3290, 1584, 0),
    ("eqntott", "mc=1", 6, 36800, 41326, 2942, 1584, 0),
    ("eqntott", "mc=1", 10, 36800, 41326, 2942, 1584, 0),
    ("eqntott", "mc=1", 20, 36800, 41326, 2942, 1584, 0),
    ("eqntott", "mc=2", 1, 36800, 42800, 6000, 0, 0),
    ("eqntott", "mc=2", 2, 36800, 41581, 4739, 42, 0),
    ("eqntott", "mc=2", 3, 36800, 40664, 3523, 341, 0),
    ("eqntott", "mc=2", 6, 36800, 40315, 3174, 341, 0),
    ("eqntott", "mc=2", 10, 36800, 40315, 3174, 341, 0),
    ("eqntott", "mc=2", 20, 36800, 40315, 3174, 341, 0),
    ("eqntott", "fc=1", 1, 36800, 43400, 6000, 600, 0),
    ("eqntott", "fc=1", 2, 36800, 42257, 4599, 858, 0),
    ("eqntott", "fc=1", 3, 36800, 41674, 3290, 1584, 0),
    ("eqntott", "fc=1", 6, 36800, 41326, 2942, 1584, 0),
    ("eqntott", "fc=1", 10, 36800, 41326, 2942, 1584, 0),
    ("eqntott", "fc=1", 20, 36800, 41326, 2942, 1584, 0),
    ("eqntott", "fc=2", 1, 36800, 42800, 6000, 0, 0),
    ("eqntott", "fc=2", 2, 36800, 41581, 4739, 42, 0),
    ("eqntott", "fc=2", 3, 36800, 40664, 3523, 341, 0),
    ("eqntott", "fc=2", 6, 36800, 40315, 3174, 341, 0),
    ("eqntott", "fc=2", 10, 36800, 40315, 3174, 341, 0),
    ("eqntott", "fc=2", 20, 36800, 40315, 3174, 341, 0),
    ("eqntott", "no restrict", 1, 36800, 42800, 6000, 0, 0),
    ("eqntott", "no restrict", 2, 36800, 41574, 4774, 0, 0),
    ("eqntott", "no restrict", 3, 36800, 40453, 3653, 0, 0),
    ("eqntott", "no restrict", 6, 36800, 40104, 3304, 0, 0),
    ("eqntott", "no restrict", 10, 36800, 40104, 3304, 0, 0),
    ("eqntott", "no restrict", 20, 36800, 40104, 3304, 0, 0),
    ("tomcatv", "mc=0", 1, 40936, 95832, 0, 0, 54896),
    ("tomcatv", "mc=0", 2, 40936, 95832, 0, 0, 54896),
    ("tomcatv", "mc=0", 3, 40936, 95832, 0, 0, 54896),
    ("tomcatv", "mc=0", 6, 40936, 95832, 0, 0, 54896),
    ("tomcatv", "mc=0", 10, 40936, 95832, 0, 0, 54896),
    ("tomcatv", "mc=0", 20, 40936, 95832, 0, 0, 54896),
    ("tomcatv", "mc=1", 1, 40936, 89757, 23711, 25110, 0),
    ("tomcatv", "mc=1", 2, 40936, 87337, 3066, 43335, 0),
    ("tomcatv", "mc=1", 3, 40936, 87521, 2298, 44287, 0),
    ("tomcatv", "mc=1", 6, 40936, 87127, 0, 46191, 0),
    ("tomcatv", "mc=1", 10, 40936, 87127, 0, 46191, 0),
    ("tomcatv", "mc=1", 20, 40936, 87127, 0, 46191, 0),
    ("tomcatv", "mc=2", 1, 40936, 64647, 23711, 0, 0),
    ("tomcatv", "mc=2", 2, 40936, 62227, 3066, 18225, 0),
    ("tomcatv", "mc=2", 3, 40936, 62411, 2298, 19177, 0),
    ("tomcatv", "mc=2", 6, 40936, 62017, 0, 21081, 0),
    ("tomcatv", "mc=2", 10, 40936, 62017, 0, 21081, 0),
    ("tomcatv", "mc=2", 20, 40936, 62017, 0, 21081, 0),
    ("tomcatv", "fc=1", 1, 40936, 89757, 23711, 25110, 0),
    ("tomcatv", "fc=1", 2, 40936, 83454, 17408, 25110, 0),
    ("tomcatv", "fc=1", 3, 40936, 78811, 12689, 25186, 0),
    ("tomcatv", "fc=1", 6, 40936, 74867, 2775, 31156, 0),
    ("tomcatv", "fc=1", 10, 40936, 75439, 1803, 32700, 0),
    ("tomcatv", "fc=1", 20, 40936, 74973, 1337, 32700, 0),
    ("tomcatv", "fc=2", 1, 40936, 64647, 23711, 0, 0),
    ("tomcatv", "fc=2", 2, 40936, 58344, 17408, 0, 0),
    ("tomcatv", "fc=2", 3, 40936, 53695, 12689, 70, 0),
    ("tomcatv", "fc=2", 6, 40936, 48999, 2775, 5288, 0),
    ("tomcatv", "fc=2", 10, 40936, 49569, 1817, 6816, 0),
    ("tomcatv", "fc=2", 20, 40936, 49096, 1344, 6816, 0),
    ("tomcatv", "no restrict", 1, 40936, 64647, 23711, 0, 0),
    ("tomcatv", "no restrict", 2, 40936, 58344, 17408, 0, 0),
    ("tomcatv", "no restrict", 3, 40936, 53653, 12717, 0, 0),
    ("tomcatv", "no restrict", 6, 40936, 46093, 5157, 0, 0),
    ("tomcatv", "no restrict", 10, 40936, 44189, 3253, 0, 0),
    ("tomcatv", "no restrict", 20, 40936, 43237, 2301, 0, 0),
];

fn config_for(label: &str) -> HwConfig {
    match label {
        "mc=0" => HwConfig::Mc0,
        "mc=1" => HwConfig::Mc(1),
        "mc=2" => HwConfig::Mc(2),
        "fc=1" => HwConfig::Fc(1),
        "fc=2" => HwConfig::Fc(2),
        "no restrict" => HwConfig::NoRestrict,
        other => panic!("unknown golden config {other}"),
    }
}

#[test]
fn port_refactor_preserves_every_golden_row() {
    for &(bench, label, lat, instructions, cycles, data_dep, structural, blocking) in &GOLDEN {
        let p = build(bench, Scale::quick()).unwrap();
        let cfg = SimConfig::baseline(config_for(label)).at_latency(lat);
        let r = run_program(&p, &cfg).unwrap();
        let got = (
            r.instructions,
            r.cycles,
            r.data_dep_stalls,
            r.structural_stalls,
            r.blocking_stalls,
        );
        let want = (instructions, cycles, data_dep, structural, blocking);
        assert_eq!(
            got, want,
            "{bench} [{label}] latency {lat} diverged from pre-port engine"
        );
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    use nonblocking_loads::sim::driver::run_program_traced;
    for &(bench, label) in &[("eqntott", "mc=1"), ("tomcatv", "no restrict")] {
        let p = build(bench, Scale::quick()).unwrap();
        let cfg = SimConfig::baseline(config_for(label)).at_latency(10);
        let plain = run_program(&p, &cfg).unwrap();
        let (traced, trace) = run_program_traced(&p, &cfg, 64).unwrap();
        assert_eq!(plain, traced, "{bench} [{label}]: tracing changed the run");
        assert!(
            trace.stats.fetches > 0,
            "{bench} [{label}]: trace recorded nothing"
        );
    }
}
