//! The dynamic instruction vocabulary shared by the processor models and
//! the trace executor.
//!
//! The paper's processor model (§3.1) is a single-issue machine with
//! 3-operand instructions and single-cycle latencies, where the only
//! events that matter for timing are (a) register def/use relations and
//! (b) memory accesses. A [`DynInst`](crate::inst::DynInst) captures
//! exactly that: up to two
//! source registers, and a kind that is either an ALU/branch operation
//! (with an optional destination) or a memory access carrying its
//! already-resolved effective address.

use crate::types::{Addr, LoadFormat, PhysReg};
use std::fmt;

/// What a dynamic instruction does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynKind {
    /// A load of `format.size` bytes at `addr` into `dst`.
    Load {
        /// Effective byte address.
        addr: Addr,
        /// Destination register.
        dst: PhysReg,
        /// Width / sign-extension information.
        format: LoadFormat,
    },
    /// A store at `addr` (the value stored is immaterial to timing).
    Store {
        /// Effective byte address.
        addr: Addr,
    },
    /// A single-cycle computational instruction writing `dst` (if any).
    /// Branches are `dst: None` — with perfect branch prediction and no
    /// delay slots they cost exactly their issue cycle.
    Alu {
        /// Destination register, if the instruction produces a value.
        dst: Option<PhysReg>,
    },
}

/// One dynamic (executed) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Source registers read at issue (3-operand ISA: at most two).
    pub srcs: [Option<PhysReg>; 2],
    /// Operation.
    pub kind: DynKind,
}

impl DynInst {
    /// A load with no register-carried address dependence (address from an
    /// induction variable kept in a register that is never a load target).
    pub fn load(addr: Addr, dst: PhysReg, format: LoadFormat) -> DynInst {
        DynInst {
            srcs: [None, None],
            kind: DynKind::Load { addr, dst, format },
        }
    }

    /// A load whose address depends on `addr_src` (e.g. pointer chasing:
    /// the load cannot issue until `addr_src` is valid).
    pub fn load_via(addr: Addr, addr_src: PhysReg, dst: PhysReg, format: LoadFormat) -> DynInst {
        DynInst {
            srcs: [Some(addr_src), None],
            kind: DynKind::Load { addr, dst, format },
        }
    }

    /// A store of the value in `data_src` (if given) to `addr`.
    pub fn store(addr: Addr, data_src: Option<PhysReg>) -> DynInst {
        DynInst {
            srcs: [data_src, None],
            kind: DynKind::Store { addr },
        }
    }

    /// An ALU instruction `dst <- op(srcs)`.
    pub fn alu(dst: PhysReg, srcs: [Option<PhysReg>; 2]) -> DynInst {
        DynInst {
            srcs,
            kind: DynKind::Alu { dst: Some(dst) },
        }
    }

    /// A branch or other value-less single-cycle instruction.
    pub fn branch(srcs: [Option<PhysReg>; 2]) -> DynInst {
        DynInst {
            srcs,
            kind: DynKind::Alu { dst: None },
        }
    }

    /// The register this instruction writes, if any.
    #[inline]
    pub fn dst(&self) -> Option<PhysReg> {
        match self.kind {
            DynKind::Load { dst, .. } => Some(dst),
            DynKind::Store { .. } => None,
            DynKind::Alu { dst } => dst,
        }
    }

    /// `true` if this instruction accesses memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, DynKind::Load { .. } | DynKind::Store { .. })
    }

    /// `true` if this instruction is a load.
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self.kind, DynKind::Load { .. })
    }

    /// `true` if this instruction is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self.kind, DynKind::Store { .. })
    }

    /// Iterates over the source registers that are present.
    #[inline]
    pub fn sources(&self) -> impl Iterator<Item = PhysReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// `true` if `other` reads or rewrites a register this instruction
    /// writes (RAW or WAW) — the condition forbidding same-cycle dual
    /// issue with single-cycle latencies.
    pub fn conflicts_with(&self, other: &DynInst) -> bool {
        let Some(d) = self.dst() else { return false };
        other.sources().any(|s| s == d) || other.dst() == Some(d)
    }
}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DynKind::Load { addr, dst, format } => {
                write!(f, "ld.{} {dst} <- [{addr}]", format.size)
            }
            DynKind::Store { addr } => write!(f, "st [{addr}]"),
            DynKind::Alu { dst: Some(d) } => write!(f, "alu {d}"),
            DynKind::Alu { dst: None } => write!(f, "br"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let r1 = PhysReg::int(1);
        let r2 = PhysReg::int(2);
        let ld = DynInst::load(Addr(0x10), r1, LoadFormat::WORD);
        assert!(ld.is_load() && ld.is_mem() && !ld.is_store());
        assert_eq!(ld.dst(), Some(r1));
        assert_eq!(ld.sources().count(), 0);

        let chase = DynInst::load_via(Addr(0x20), r1, r2, LoadFormat::DOUBLE);
        assert_eq!(chase.sources().collect::<Vec<_>>(), vec![r1]);

        let st = DynInst::store(Addr(0x30), Some(r2));
        assert!(st.is_store() && st.is_mem());
        assert_eq!(st.dst(), None);

        let alu = DynInst::alu(r2, [Some(r1), None]);
        assert!(!alu.is_mem());
        assert_eq!(alu.dst(), Some(r2));

        let br = DynInst::branch([Some(r2), None]);
        assert_eq!(br.dst(), None);
    }

    #[test]
    fn conflict_detection() {
        let r1 = PhysReg::int(1);
        let r2 = PhysReg::int(2);
        let producer = DynInst::load(Addr(0), r1, LoadFormat::WORD);
        let raw = DynInst::alu(r2, [Some(r1), None]);
        let waw = DynInst::alu(r1, [None, None]);
        let indep = DynInst::alu(r2, [Some(r2), None]);
        assert!(producer.conflicts_with(&raw));
        assert!(producer.conflicts_with(&waw));
        assert!(!producer.conflicts_with(&indep));
        // A store produces nothing, so nothing conflicts with it as producer.
        let st = DynInst::store(Addr(0), Some(r1));
        assert!(!st.conflicts_with(&raw));
    }

    #[test]
    fn display() {
        let s = DynInst::load(Addr(0x40), PhysReg::fp(3), LoadFormat::DOUBLE).to_string();
        assert!(s.contains("f3") && s.contains("0x40"));
        assert_eq!(DynInst::branch([None, None]).to_string(), "br");
    }
}
