//! # nbl-cpu — in-order processor models
//!
//! The processor side of the paper's §3.1 machine model:
//!
//! * [`scoreboard`] — pending-register tracking (loads mark their
//!   destination pending; uses of pending registers stall);
//! * [`stats`] — MCPI accounting with the paper's stall-cause breakdown
//!   (true data dependency vs. structural hazard vs. blocking miss
//!   service) and the Fig. 6 in-flight occupancy sampler;
//! * [`core_engine`] — the shared event mechanics (fills, hazards,
//!   structural-stall retry, blocking fetches), driving all memory traffic
//!   through the [`nbl_mem::system::MemorySystem`] port;
//! * [`issue`] — the policy-parameterized issue engine
//!   ([`issue::IssuePolicy`]: single, dual, or replaying) every processor
//!   model shares;
//! * [`pipeline`] — the single-issue processor all baseline figures use;
//! * [`dual`] — the dual-issue processor of §6 / Fig. 19.

pub mod core_engine;
pub mod dual;
pub mod issue;
pub mod pipeline;
pub mod scoreboard;
pub mod stats;

pub use core_engine::{Core, EngineConfig, EngineError};
pub use dual::DualIssueProcessor;
pub use issue::{IssueEngine, IssuePolicy};
pub use pipeline::Processor;
pub use scoreboard::Scoreboard;
pub use stats::{CpuStats, InFlightSampler, ReplayAttribution, StallCause};
