//! `nbl-oracle` — the CI gate around the static cache oracle.
//!
//! Runs the golden grid — {eqntott, doduc, tomcatv} × {8 KB/32 B
//! direct-mapped, 8 KB/32 B 4-way} × every [`ReplacementKind`] ×
//! {`mc=0`, `fc=2`, `no restrict`} at quick scale, 72 cells — and
//! cross-validates the analyzer against the simulator cell by cell.
//!
//! Flags:
//!
//! * `--deny` — exit nonzero on any cross-check violation (CI mode);
//! * `--csv PATH` — write per-cell coverage rows;
//! * `--json PATH` — write the machine-readable report;
//! * `--store DIR` — persist / reuse verdicts keyed by
//!   `(format version, tape fingerprint, geometry, policy, window,
//!   hw config)`.

use nbl_core::geometry::CacheGeometry;
use nbl_core::tag_array::ReplacementKind;
use nbl_oracle::{check_cell, CellReport, CellVerdict, OracleConfig, OracleError, OracleStore};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::store::{compiled_fingerprint, ArtifactStore};
use nbl_trace::workloads::{self, Scale};
use std::io::Write as _;
use std::process::ExitCode;

/// Benchmarks of the golden grid (one integer-heavy, two float-heavy —
/// the cheap end of the detailed five, so the gate stays fast).
const BENCHMARKS: [&str; 3] = ["eqntott", "doduc", "tomcatv"];

struct Args {
    deny: bool,
    csv: Option<String>,
    json: Option<String>,
    store: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        csv: None,
        json: None,
        store: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--csv" => args.csv = Some(it.next().ok_or("--csv needs a path")?),
            "--json" => args.json = Some(it.next().ok_or("--json needs a path")?),
            "--store" => args.store = Some(it.next().ok_or("--store needs a directory")?),
            "--help" | "-h" => {
                println!(
                    "nbl-oracle [--deny] [--csv PATH] [--json PATH] [--store DIR]\n\
                     static must-hit/may-miss cache oracle, cross-validated against the simulator"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn geometries() -> Vec<CacheGeometry> {
    // 8 KB / 32 B lines, direct-mapped and 4-way: both paper shapes.
    vec![
        CacheGeometry::new(8 * 1024, 32, 1).expect("valid dm geometry"),
        CacheGeometry::new(8 * 1024, 32, 4).expect("valid 4-way geometry"),
    ]
}

fn hw_configs() -> Vec<HwConfig> {
    // Blocking, bounded non-blocking, and unbounded non-blocking: the
    // three fill-timing regimes the window bound must cover.
    vec![HwConfig::Mc0, HwConfig::Fc(2), HwConfig::NoRestrict]
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let store = match &args.store {
        Some(dir) => Some(
            OracleStore::open(std::path::Path::new(dir))
                .map_err(|e| format!("cannot open --store {dir}: {e}"))?,
        ),
        None => None,
    };
    let artifacts = ArtifactStore::in_memory();
    let mut reports: Vec<(CellReport, bool)> = Vec::new();
    let mut total_violations = 0u64;
    let mut cached_cells = 0u64;

    for bench in BENCHMARKS {
        let program = workloads::build(bench, Scale::quick())
            .ok_or_else(|| format!("unknown benchmark {bench}"))?;
        let base = SimConfig::baseline(HwConfig::Mc0);
        let compiled = artifacts
            .get_or_compile(&program, base.load_latency)
            .map_err(|e| OracleError::Compile(e.to_string()).to_string())?;
        let tape = artifacts.get_or_record(&compiled);
        let tape_fp = compiled_fingerprint(&compiled);
        for geometry in geometries() {
            for policy in ReplacementKind::all() {
                for hw in hw_configs() {
                    let cfg = SimConfig::baseline(hw.clone())
                        .with_geometry(geometry)
                        .with_replacement(policy);
                    let ocfg = OracleConfig::from_sim(&cfg).map_err(|e| e.to_string())?;
                    let key = OracleStore::key(tape_fp, &ocfg, &hw.label());
                    let cached = store.as_ref().and_then(|s| s.load(key));
                    let (report, from_store) = match cached {
                        Some(verdict) if verdict.violations == 0 => {
                            cached_cells += 1;
                            (
                                CellReport {
                                    benchmark: bench.to_string(),
                                    geometry: geometry_label(&geometry),
                                    policy: policy.label(),
                                    hw: hw.label(),
                                    coverage: verdict.coverage,
                                    violations: Vec::new(),
                                },
                                true,
                            )
                        }
                        _ => {
                            let report =
                                check_cell(bench, &tape, &cfg).map_err(|e| e.to_string())?;
                            if report.violations.is_empty() {
                                if let Some(s) = &store {
                                    let verdict = CellVerdict {
                                        coverage: report.coverage,
                                        violations: 0,
                                    };
                                    s.save(key, &verdict)
                                        .map_err(|e| format!("verdict save failed: {e}"))?;
                                }
                            }
                            (report, false)
                        }
                    };
                    total_violations += report.violations.len() as u64;
                    for v in report.violations.iter().take(5) {
                        eprintln!(
                            "violation: {bench} {} {} {}: {v}",
                            report.geometry, report.policy, report.hw
                        );
                    }
                    reports.push((report, from_store));
                }
            }
        }
    }

    print_table(&reports, cached_cells);
    if let Some(path) = &args.csv {
        write_csv(path, &reports).map_err(|e| format!("csv write failed: {e}"))?;
    }
    if let Some(path) = &args.json {
        write_json(path, &reports, total_violations)
            .map_err(|e| format!("json write failed: {e}"))?;
    }
    if total_violations > 0 {
        eprintln!("nbl-oracle: {total_violations} cross-check violation(s)");
        if args.deny {
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn geometry_label(g: &CacheGeometry) -> String {
    format!(
        "{}KB/{}B {}",
        g.size_bytes() / 1024,
        g.line_bytes(),
        if g.ways() == 1 {
            "dm".to_string()
        } else {
            format!("{}-way", g.ways())
        }
    )
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn print_table(reports: &[(CellReport, bool)], cached: u64) {
    println!(
        "{:<9} {:<12} {:<7} {:<12} {:>9} {:>7} {:>7} {:>7} {:>5}",
        "bench", "geometry", "policy", "hw", "accesses", "hit%", "miss%", "unk%", "viol"
    );
    for (r, _) in reports {
        let c = &r.coverage;
        println!(
            "{:<9} {:<12} {:<7} {:<12} {:>9} {:>6.1} {:>6.1} {:>6.1} {:>6}",
            r.benchmark,
            r.geometry,
            r.policy,
            r.hw,
            c.accesses,
            pct(c.must_hit, c.accesses),
            pct(c.must_miss, c.accesses),
            pct(c.unknown, c.accesses),
            r.violations.len()
        );
    }
    let cells = reports.len();
    let violations: usize = reports.iter().map(|(r, _)| r.violations.len()).sum();
    println!("{cells} cells, {violations} violation(s), {cached} from verdict store");
}

fn write_csv(path: &str, reports: &[(CellReport, bool)]) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("bench,geometry,policy,hw,accesses,must_hit,must_miss,unknown,violations\n");
    for (r, _) in reports {
        let c = &r.coverage;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.benchmark,
            r.geometry,
            r.policy,
            r.hw,
            c.accesses,
            c.must_hit,
            c.must_miss,
            c.unknown,
            r.violations.len()
        ));
    }
    std::fs::write(path, out)
}

fn write_json(
    path: &str,
    reports: &[(CellReport, bool)],
    total_violations: u64,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"exhibit\": \"oracle\",")?;
    writeln!(f, "  \"cells\": {},", reports.len())?;
    writeln!(f, "  \"violations\": {total_violations},")?;
    writeln!(f, "  \"rows\": [")?;
    for (i, (r, from_store)) in reports.iter().enumerate() {
        let c = &r.coverage;
        let comma = if i + 1 < reports.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"bench\": \"{}\", \"geometry\": \"{}\", \"policy\": \"{}\", \
             \"hw\": \"{}\", \"accesses\": {}, \"must_hit\": {}, \"must_miss\": {}, \
             \"unknown\": {}, \"violations\": {}, \"from_store\": {}}}{comma}",
            r.benchmark,
            r.geometry,
            r.policy,
            r.hw,
            c.accesses,
            c.must_hit,
            c.must_miss,
            c.unknown,
            r.violations.len(),
            from_store
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("nbl-oracle: {e}");
            ExitCode::FAILURE
        }
    }
}
