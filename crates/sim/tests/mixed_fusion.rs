//! Heterogeneous fused groups: rows mixing configurations that qualify
//! for the specialized direct-mapped/no-L2 replay kernel with ones that
//! do not (L2-backed, victim-buffered) must take the generic per-core
//! fallback and stay bit-identical to unfused replay — fusion and kernel
//! selection are pure performance choices, never observable in results.

use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::{run_tape, run_tape_fused};
use nbl_sim::store::ArtifactStore;
use nbl_sim::sweep::SweepEngine;
use nbl_trace::workloads::{build, Scale};

const LATENCIES: [u32; 6] = [1, 2, 3, 6, 10, 20];

/// Six configurations over one shared L1 geometry: the first three
/// qualify for the specialized kernel (direct-mapped, no L2, no victim
/// buffer), the last three each break one qualification (an L2 behind
/// the same L1, a victim buffer, both at once) — so the whole group can
/// share a decode but must not take the specialized loop.
fn mixed_configs(lat: u32) -> Vec<SimConfig> {
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let mk = |hw: HwConfig| SimConfig { hw, ..base.clone() }.at_latency(lat);
    let mut with_l2 = mk(HwConfig::NoRestrict);
    with_l2.l2 = Some((64 * 1024, 4));
    let mut with_victim = mk(HwConfig::Mc0);
    with_victim.victim_entries = 4;
    let mut with_both = mk(HwConfig::Fc(4));
    with_both.l2 = Some((32 * 1024, 6));
    with_both.victim_entries = 2;
    vec![
        mk(HwConfig::Mc0),
        mk(HwConfig::Mc(1)),
        mk(HwConfig::NoRestrict),
        with_l2,
        with_victim,
        with_both,
    ]
}

/// The 72-cell golden grid: 2 benchmarks x 6 latencies x 6 mixed
/// configurations, fused rows against per-cell replays of the same
/// tapes.
#[test]
fn mixed_qualifying_rows_fall_back_and_match_unfused() {
    let store = ArtifactStore::in_memory();
    let mut cells = 0;
    for name in ["doduc", "eqntott"] {
        let program = build(name, Scale::quick()).unwrap();
        for lat in LATENCIES {
            let compiled = store.get_or_compile(&program, lat).unwrap();
            let tape = store.get_or_record(&compiled);
            let cfgs = mixed_configs(lat);
            let fused = run_tape_fused(name, &tape, &cfgs).unwrap();
            for (cfg, fused_result) in cfgs.iter().zip(&fused) {
                let unfused = run_tape(name, &tape, cfg).unwrap();
                assert_eq!(
                    *fused_result,
                    unfused,
                    "{name} lat {lat} {}: mixed fused row diverged from unfused",
                    cfg.hw.label()
                );
                cells += 1;
            }
        }
    }
    assert_eq!(cells, 72, "the golden grid covers 72 cells");
}

/// The same heterogeneity through the sweep engine: `grid_sweep` rows
/// whose base carries an L2 (so no cell qualifies for the specialized
/// kernel) still match `grid_sweep_unfused` bit for bit.
#[test]
fn l2_backed_grid_sweep_matches_unfused() {
    let engine = SweepEngine::new(3);
    let doduc = build("doduc", Scale::quick()).unwrap();
    let eqntott = build("eqntott", Scale::quick()).unwrap();
    let mut base = SimConfig::baseline(HwConfig::NoRestrict);
    base.l2 = Some((64 * 1024, 4));
    let configs = [HwConfig::Mc0, HwConfig::Mc(1), HwConfig::NoRestrict];
    let latencies = [1, 10];
    let fused = engine
        .grid_sweep(&[&doduc, &eqntott], &base, &configs, &latencies)
        .unwrap();
    let unfused = engine
        .grid_sweep_unfused(&[&doduc, &eqntott], &base, &configs, &latencies)
        .unwrap();
    for (f, u) in fused.iter().zip(&unfused) {
        assert_eq!(
            f.rows, u.rows,
            "{}: L2-backed fusion must not change results",
            f.benchmark
        );
    }
}
