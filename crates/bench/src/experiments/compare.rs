//! `compare`: measured Fig. 13 numbers side by side with the paper's, for
//! workload calibration and for EXPERIMENTS.md.

use super::paper::fig13_row;
use super::{fig13, ExhibitError, RunScale};
use std::io::Write;

/// Prints measured-vs-paper MCPI and ratios for all 18 benchmarks.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let _ = writeln!(
        out,
        "== Paper vs measured: Fig. 13 (MCPI at latency 10; ratio = config/unrestricted) =="
    );
    let _ = writeln!(
        out,
        "{:>10} | {:>11} {:>11} | {:>17} {:>17}",
        "bench", "mc0 (p/m)", "inf (p/m)", "ratios paper", "ratios measured"
    );
    for (name, measured) in fig13::grid(scale)? {
        let paper = fig13_row(name).ok_or_else(|| {
            ExhibitError::new(
                format!("paper row for {name}"),
                "benchmark missing from the transcribed Fig. 13 table",
            )
        })?;
        let p_inf = paper.mcpi[5];
        let m_inf = measured[5].mcpi.max(1e-9);
        let p_ratios: Vec<String> = paper.mcpi[..5]
            .iter()
            .map(|m| format!("{:.1}", m / p_inf))
            .collect();
        let m_ratios: Vec<String> = measured[..5]
            .iter()
            .map(|r| format!("{:.1}", r.mcpi / m_inf))
            .collect();
        let _ = writeln!(
            out,
            "{:>10} | {:>5.3}/{:<5.3} {:>5.3}/{:<5.3} | {:>17} {:>17}",
            name,
            paper.mcpi[0],
            measured[0].mcpi,
            p_inf,
            m_inf,
            p_ratios.join(" "),
            m_ratios.join(" "),
        );
    }
    let _ = writeln!(out);
    Ok(())
}
