//! `nbl-analyze`: in-tree static analysis enforcing simulator invariants
//! the type system cannot see.
//!
//! The analyzer lexes the workspace's Rust sources with a hand-rolled
//! comment/string-aware lexer (std-only, offline-buildable) and runs a
//! registry of repo-specific lints — see [`lints::LINT_IDS`] and
//! DESIGN.md §13:
//!
//! | ID | invariant |
//! |----|-----------|
//! | `no-panic` | hot-path crates return `SimError`/`EngineError`, never panic |
//! | `determinism` | no wall clocks / un-seeded hashing on result paths |
//! | `exhaustiveness` | ledgered enum variants wired through every consumer surface |
//! | `event-guard` | `MemEvent` emission only via the zero-cost-when-disabled guard |
//! | `doc-coverage` | pub API documented, debt burns down via `scripts/analyze-allow.toml` |
//!
//! Findings can be suppressed inline with `// nbl-allow(<id>): reason`
//! (the reason is mandatory — `bad-allow` flags empty or unknown ones),
//! or carried in the allowlist file, which refuses to grow.

pub mod allowlist;
pub mod ledger;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scan;
pub mod source;

use report::Finding;
use scan::Scan;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Repo-relative location of the burn-down allowlist.
pub const ALLOWLIST_PATH: &str = "scripts/analyze-allow.toml";

/// The outcome of a full-tree analysis.
#[derive(Debug)]
pub struct Analysis {
    /// Surviving findings, sorted by (file, line, col, lint).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Inline `nbl-allow` directives that suppressed a finding.
    pub allows_used: usize,
    /// Entries in the allowlist file.
    pub allowlist_entries: usize,
}

/// Runs the full analysis rooted at `root` (the repo checkout).
pub fn run_analysis(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            // The analyzer does not scan itself: its sources and fixture
            // corpus quote directive syntax and deliberately-bad code.
            if dir.file_name().is_some_and(|n| n == "analyze") {
                continue;
            }
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut allows_used = 0usize;
    for path in &files {
        let file = SourceFile::load(root, path)?;
        let mut active: Vec<&'static str> = Vec::new();
        if lints::in_scope(&file.rel_path, lints::scope::NO_PANIC) {
            active.push("no-panic");
        }
        if lints::in_scope(&file.rel_path, lints::scope::DETERMINISM) {
            active.push("determinism");
        }
        if lints::in_scope(&file.rel_path, lints::scope::EVENT_GUARD)
            && !lints::in_scope(&file.rel_path, lints::scope::EVENT_GUARD_EXEMPT)
        {
            active.push("event-guard");
        }
        if lints::in_scope(&file.rel_path, lints::scope::DOC_COVERAGE) {
            active.push("doc-coverage");
        }
        // Every file is still scanned for directive hygiene (bad-allow),
        // even when no token lint applies to it.
        let scan = Scan::new(&file);
        findings.extend(lints::check_file(&scan, &active));
        let (bad, used) = audit_allows(&scan);
        findings.extend(bad);
        allows_used += used;
    }

    findings.extend(ledger::check_ledger(root));

    let mut allow = allowlist::load(&root.join(ALLOWLIST_PATH), ALLOWLIST_PATH);
    let allowlist_entries = allow.entries.len();
    let mut all = std::mem::take(&mut allow.findings);
    all.extend(findings);
    let (mut kept, _used_entries) = allowlist::apply(&allow, all, ALLOWLIST_PATH);

    kept.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
    });
    Ok(Analysis {
        findings: kept,
        files_scanned: files.len(),
        allows_used,
        allowlist_entries,
    })
}

/// Directive hygiene for one scan: reports `bad-allow` for directives
/// with an empty reason or an unknown lint ID. Returns the hygiene
/// findings plus the count of well-formed (reasoned, known-ID)
/// directives, which the report surfaces as `allows_used`.
pub fn audit_allows(scan: &Scan<'_>) -> (Vec<Finding>, usize) {
    let mut out = Vec::new();
    let mut used = 0usize;
    for a in &scan.allows {
        let pos = scan.file.pos(a.off);
        if !lints::known_lint(&a.id) {
            out.push(Finding {
                lint: "bad-allow",
                file: scan.file.rel_path.clone(),
                line: pos.line,
                col: pos.col,
                item: a.id.clone(),
                message: format!(
                    "`nbl-allow({})` names an unknown lint (known: {})",
                    a.id,
                    lints::LINT_IDS.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            out.push(Finding {
                lint: "bad-allow",
                file: scan.file.rel_path.clone(),
                line: pos.line,
                col: pos.col,
                item: a.id.clone(),
                message: format!(
                    "`nbl-allow({})` needs a non-empty reason: `// nbl-allow({}): why`",
                    a.id, a.id
                ),
            });
        } else {
            used += 1;
        }
    }
    (out, used)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
