//! Figure 4: benchmark characteristics — dynamic instruction, load and
//! store counts as the scheduled load latency varies, reporting the
//! min/max and the latency at which each occurs.
//!
//! The paper's counts vary with latency because register allocation runs
//! after scheduling and spill code differs per schedule; our compiler
//! model reproduces the mechanism (see `nbl-sched`).

use super::{engine, programs_for, ExhibitError, RunScale, LATENCIES};
use nbl_trace::workloads::DETAILED_FIVE;
use std::io::Write;

struct Extremes {
    min: u64,
    min_lat: u32,
    max: u64,
    max_lat: u32,
}

fn extremes(values: &[(u32, u64)]) -> Extremes {
    let (mut min, mut min_lat) = (u64::MAX, 0);
    let (mut max, mut max_lat) = (0, 0);
    for &(lat, v) in values {
        if v < min {
            min = v;
            min_lat = lat;
        }
        if v > max {
            max = v;
            max_lat = lat;
        }
    }
    Extremes {
        min,
        min_lat,
        max,
        max_lat,
    }
}

/// Prints the Fig. 4 table for the five detailed benchmarks.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let _ = writeln!(
        out,
        "== Figure 4: benchmark characteristics (counts in thousands) =="
    );
    let _ = writeln!(
        out,
        "{:>10} | {:>8} {:>3} {:>8} {:>3} | {:>8} {:>3} {:>8} {:>3} | {:>8} {:>3} {:>8} {:>3}",
        "bench",
        "inst min",
        "lat",
        "inst max",
        "lat",
        "ld min",
        "lat",
        "ld max",
        "lat",
        "st min",
        "lat",
        "st max",
        "lat"
    );
    // fpppp is appended to the paper's five: at our workload scale it is
    // the benchmark whose register pressure actually crosses the spill
    // threshold, demonstrating the reference-count mechanism.
    let names: Vec<&str> = DETAILED_FIVE
        .iter()
        .copied()
        .chain(std::iter::once("fpppp"))
        .collect();
    let programs = programs_for(&names, scale)?;
    // All (benchmark, latency) compilations in parallel, through the
    // shared cache — the sweeps that follow in an `all` run reuse them.
    let nl = LATENCIES.len();
    let mixes = engine().pool().run(programs.len() * nl, |idx| {
        engine()
            .cache()
            .get_or_compile(&programs[idx / nl], LATENCIES[idx % nl])
            .map(|c| c.dynamic_mix())
            .map_err(|e| e.to_string())
    });
    for (b, name) in names.iter().enumerate() {
        let mut insts = Vec::new();
        let mut loads = Vec::new();
        let mut stores = Vec::new();
        for (i, lat) in LATENCIES.into_iter().enumerate() {
            let (l, s, o) = mixes[b * nl + i]
                .clone()
                .map_err(|e| ExhibitError::new(format!("{name} @ latency {lat}"), e))?;
            insts.push((lat, l + s + o));
            loads.push((lat, l));
            stores.push((lat, s));
        }
        let i = extremes(&insts);
        let l = extremes(&loads);
        let s = extremes(&stores);
        let k = 1000;
        let _ = writeln!(
            out,
            "{:>10} | {:>8} {:>3} {:>8} {:>3} | {:>8} {:>3} {:>8} {:>3} | {:>8} {:>3} {:>8} {:>3}",
            name,
            i.min / k,
            i.min_lat,
            i.max / k,
            i.max_lat,
            l.min / k,
            l.min_lat,
            l.max / k,
            l.max_lat,
            s.min / k,
            s.min_lat,
            s.max / k,
            s.max_lat,
        );
    }
    let _ = writeln!(out);
    Ok(())
}
