//! # nonblocking-loads
//!
//! A from-scratch reproduction of **Farkas & Jouppi,
//! *Complexity/Performance Tradeoffs with Non-Blocking Loads***
//! (WRL Research Report 94/3, ISCA 1994): a lockup-free data-cache
//! simulator covering the paper's full MSHR design space, the in-order
//! processor and memory models of its §3, a compiler model implementing
//! its scheduled-load-latency knob, and 18 synthetic SPEC92-archetype
//! workloads — plus a harness that regenerates every table and figure of
//! the evaluation (see `EXPERIMENTS.md`).
//!
//! This crate is the façade: it re-exports the workspace members.
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] (`nbl-core`) | MSHR organizations, lockup-free cache |
//! | [`mem`] (`nbl-mem`) | pipelined memory, write buffer |
//! | [`cpu`] (`nbl-cpu`) | single-/dual-issue processors, MCPI accounting |
//! | [`trace`] (`nbl-trace`) | IR, workload generators, executor |
//! | [`sched`] (`nbl-sched`) | list scheduler + register allocator |
//! | [`sim`] (`nbl-sim`) | configurations, driver, sweeps, reports |
//!
//! ## Quickstart
//!
//! ```
//! use nonblocking_loads::sim::config::{HwConfig, SimConfig};
//! use nonblocking_loads::sim::driver::run_program;
//! use nonblocking_loads::trace::workloads::{build, Scale};
//!
//! // How much does hit-under-miss buy on a pointer-chasing workload?
//! let program = build("xlisp", Scale::quick()).expect("known benchmark");
//! let blocking = run_program(&program, &SimConfig::baseline(HwConfig::Mc0)).unwrap();
//! let hum = run_program(&program, &SimConfig::baseline(HwConfig::Mc(1))).unwrap();
//! assert!(hum.mcpi < blocking.mcpi);
//! ```

pub use nbl_core as core;
pub use nbl_cpu as cpu;
pub use nbl_mem as mem;
pub use nbl_sched as sched;
pub use nbl_sim as sim;
pub use nbl_trace as trace;
