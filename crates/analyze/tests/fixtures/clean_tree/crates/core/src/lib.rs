//! Fixture: a clean hot-path crate — the good half of the corpus.

/// Adds one, propagating overflow as an error.
pub fn add_one(x: u32) -> Result<u32, String> {
    x.checked_add(1).ok_or_else(|| "overflow".to_string())
}

/// Reads the head slot; the fixture's one justified panic site.
pub fn head(xs: &[u32]) -> u32 {
    // nbl-allow(no-panic): fixture demonstrates a reasoned suppression
    xs.first().copied().unwrap()
}
