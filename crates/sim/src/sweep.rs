//! Parameter sweeps: the experiment shapes the paper's figures are built
//! from (configurations × load latencies, configurations × miss penalties,
//! benchmarks × configurations).
//!
//! Compilation is shared across hardware configurations — the compiled
//! program depends only on the load latency, so each (benchmark, latency)
//! pair is compiled once and replayed under every configuration, exactly
//! as the paper replays each binary.

use crate::config::{HwConfig, SimConfig};
use crate::driver::{run_compiled, RunResult};
use nbl_sched::compile::{compile, CompileError};
use nbl_trace::ir::Program;

/// MCPI-vs-load-latency curves for one benchmark (the shape of Figs. 5,
/// 9–12, 15–17).
#[derive(Debug, Clone)]
pub struct LatencySweep {
    /// Benchmark name.
    pub benchmark: String,
    /// Configuration labels, in input order (one curve each).
    pub configs: Vec<String>,
    /// Latencies swept (the x axis).
    pub latencies: Vec<u32>,
    /// `rows[i][j]` = result at `latencies[i]` under `configs[j]`.
    pub rows: Vec<Vec<RunResult>>,
}

impl LatencySweep {
    /// The MCPI curve (over latency) of configuration index `j`.
    pub fn curve(&self, j: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r[j].mcpi).collect()
    }

    /// Result lookup by configuration label and latency.
    pub fn at(&self, config: &str, latency: u32) -> Option<&RunResult> {
        let j = self.configs.iter().position(|c| c == config)?;
        let i = self.latencies.iter().position(|&l| l == latency)?;
        Some(&self.rows[i][j])
    }
}

/// Sweeps `configs` × `latencies` for one benchmark program.
///
/// # Errors
///
/// Propagates [`CompileError`] from the compiler model.
pub fn latency_sweep(
    program: &Program,
    base: &SimConfig,
    configs: &[HwConfig],
    latencies: &[u32],
) -> Result<LatencySweep, CompileError> {
    let mut rows = Vec::with_capacity(latencies.len());
    for &lat in latencies {
        let compiled = compile(program, lat)?;
        let mut row = Vec::with_capacity(configs.len());
        for hw in configs {
            let cfg = SimConfig { hw: hw.clone(), ..base.clone() }.at_latency(lat);
            row.push(run_compiled(&program.name, &compiled, &cfg));
        }
        rows.push(row);
    }
    Ok(LatencySweep {
        benchmark: program.name.clone(),
        configs: configs.iter().map(HwConfig::label).collect(),
        latencies: latencies.to_vec(),
        rows,
    })
}

/// MCPI-vs-miss-penalty table for one benchmark at a fixed latency
/// (Fig. 18's shape).
#[derive(Debug, Clone)]
pub struct PenaltySweep {
    /// Benchmark name.
    pub benchmark: String,
    /// Configuration labels.
    pub configs: Vec<String>,
    /// Penalties swept.
    pub penalties: Vec<u32>,
    /// `rows[i][j]` = result at `penalties[i]` under `configs[j]`.
    pub rows: Vec<Vec<RunResult>>,
}

impl PenaltySweep {
    /// Result lookup by configuration label and penalty.
    pub fn at(&self, config: &str, penalty: u32) -> Option<&RunResult> {
        let j = self.configs.iter().position(|c| c == config)?;
        let i = self.penalties.iter().position(|&p| p == penalty)?;
        Some(&self.rows[i][j])
    }
}

/// Sweeps `configs` × `penalties` at the base config's load latency.
///
/// # Errors
///
/// Propagates [`CompileError`] from the compiler model.
pub fn penalty_sweep(
    program: &Program,
    base: &SimConfig,
    configs: &[HwConfig],
    penalties: &[u32],
) -> Result<PenaltySweep, CompileError> {
    let compiled = compile(program, base.load_latency)?;
    let mut rows = Vec::with_capacity(penalties.len());
    for &pen in penalties {
        let mut row = Vec::with_capacity(configs.len());
        for hw in configs {
            let cfg = SimConfig { hw: hw.clone(), ..base.clone() }.with_penalty(pen);
            row.push(run_compiled(&program.name, &compiled, &cfg));
        }
        rows.push(row);
    }
    Ok(PenaltySweep {
        benchmark: program.name.clone(),
        configs: configs.iter().map(HwConfig::label).collect(),
        penalties: penalties.to_vec(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_trace::workloads::{build, Scale};

    #[test]
    fn latency_sweep_shape_and_lookup() {
        let p = build("eqntott", Scale::quick()).unwrap();
        let base = SimConfig::baseline(HwConfig::Mc0);
        let configs = [HwConfig::Mc0, HwConfig::Mc(1), HwConfig::NoRestrict];
        let s = latency_sweep(&p, &base, &configs, &[1, 10]).unwrap();
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.rows[0].len(), 3);
        assert_eq!(s.curve(0).len(), 2);
        let r = s.at("mc=1", 10).unwrap();
        assert_eq!(r.config, "mc=1");
        assert_eq!(r.load_latency, 10);
        assert!(s.at("mc=7", 10).is_none());
        assert!(s.at("mc=1", 11).is_none());
    }

    #[test]
    fn penalty_sweep_blocking_is_linear() {
        let p = build("tomcatv", Scale::quick()).unwrap();
        let base = SimConfig::baseline(HwConfig::Mc0);
        let s = penalty_sweep(&p, &base, &[HwConfig::Mc0], &[8, 16, 32]).unwrap();
        let m8 = s.at("mc=0", 8).unwrap().mcpi;
        let m16 = s.at("mc=0", 16).unwrap().mcpi;
        let m32 = s.at("mc=0", 32).unwrap().mcpi;
        // "The blocking organization's miss CPI is strictly a linear
        // function of the miss penalty."
        assert!((m16 / m8 - 2.0).abs() < 0.05, "{m8} {m16}");
        assert!((m32 / m16 - 2.0).abs() < 0.05, "{m16} {m32}");
    }
}
