//! `swm256` — shallow-water equations on a 256×256 grid (SPEC92 CFP).
//!
//! Pure stencil streaming over many grid arrays, but each loop touches
//! only a few of them and the misses arrive staggered (one per 4 elements
//! per stream), so *two* outstanding misses already capture everything:
//! Fig. 13 shows `mc=2` = 0.070 vs unrestricted 0.067, while blocking is
//! 4.4× worse — the cheapest big win in the suite.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program, ScriptNode};
use nbl_core::types::{LoadFormat, RegClass};

const GRID: u64 = 33 * 1024; // 264 KB per array

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("swm256");
    // swm256 is the *single-precision* shallow-water benchmark: 4-byte
    // elements, so only every 8th element starts a new line.
    let stream = |i: u64, off: u64| AddrPattern::Strided {
        base: layout::region(i, off),
        elem_bytes: 4,
        stride: 1,
        length: GRID,
    };
    let u = pb.pattern(stream(0, 0));
    let v = pb.pattern(stream(1, 1056));
    let p = pb.pattern(stream(2, 2112));
    let unew = pb.pattern(stream(3, 3168));
    let vnew = pb.pattern(stream(4, 4224));
    let cu = pb.pattern(stream(5, 5280));
    let _cv = pb.pattern(stream(6, 6336)); // vorticity: written by a phase we do not model

    // calc1: two streams in, one out, light arithmetic.
    let mut b = pb.block();
    let i1 = b.carried(RegClass::Int);
    for _ in 0..2 {
        let uv = b.load(u, RegClass::Fp, LoadFormat::WORD);
        let vv = b.load(v, RegClass::Fp, LoadFormat::WORD);
        let t = b.alu(RegClass::Fp, Some(uv), Some(vv));
        let t2 = b.alu_chain(RegClass::Fp, t, 6);
        b.store(cu, Some(t2));
    }
    b.alu_into(i1, Some(i1), None);
    b.branch(Some(i1));
    let calc1 = b.finish();

    // calc2: three streams in, two out.
    let mut b = pb.block();
    let i2 = b.carried(RegClass::Int);
    for _ in 0..2 {
        let pa = b.load(p, RegClass::Fp, LoadFormat::WORD);
        let ca = b.load(u, RegClass::Fp, LoadFormat::WORD);
        let cb = b.load(v, RegClass::Fp, LoadFormat::WORD);
        let s1 = b.alu(RegClass::Fp, Some(pa), Some(ca));
        let s2 = b.alu(RegClass::Fp, Some(s1), Some(cb));
        let s3 = b.alu_chain(RegClass::Fp, s2, 8);
        b.store(unew, Some(s3));
        b.store(vnew, Some(s1));
    }
    b.alu_into(i2, Some(i2), None);
    b.branch(Some(i2));
    let calc2 = b.finish();

    let unit = 22 + 30;
    let trips = scale.trips(unit);
    pb.loop_of(
        trips,
        vec![
            ScriptNode::Run {
                block: calc1,
                times: 1,
            },
            ScriptNode::Run {
                block: calc2,
                times: 1,
            },
        ],
    );
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn few_streams_per_loop() {
        let p = build(Scale::quick());
        let (l1, s1, _) = p.blocks[0].op_mix();
        let (l2, s2, _) = p.blocks[1].op_mix();
        assert!(
            (l1, s1) == (4, 2) && (l2, s2) == (6, 4),
            "narrow loops: misses stagger"
        );
    }
}
