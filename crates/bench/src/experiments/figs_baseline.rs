//! Figures 5, 7, 8 (doduc), 9 (xlisp), 10 (xlisp, fully associative),
//! 11 (eqntott), 12 (tomcatv), 15 is in its own module, 16 (doduc, 64 KB)
//! and 17 (doduc, 16-byte lines): baseline MCPI-vs-latency sweeps under
//! the seven legend configurations.

use super::{baseline_sweep, write_csv, write_json, ExhibitError, RunScale};
use nbl_core::geometry::CacheGeometry;
use nbl_mem::memory::PipelinedMemory;
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::report;
use nbl_sim::sweep::LatencySweep;
use std::io::Write;
use std::sync::Mutex;

fn baseline() -> SimConfig {
    SimConfig::baseline(HwConfig::NoRestrict)
}

/// The doduc baseline sweep behind Figs. 5, 7 and 8, computed once per
/// scale and shared — the compile cache would make a rerun cheap to
/// build, but not to simulate (42 cells).
static DODUC_SWEEP: Mutex<Option<(RunScale, LatencySweep)>> = Mutex::new(None);

fn doduc_sweep(scale: RunScale) -> Result<LatencySweep, ExhibitError> {
    // A panic while the lock was held (a failed sibling exhibit) only
    // poisons a cache of pure data — recover the inner value.
    let mut slot = DODUC_SWEEP.lock().unwrap_or_else(|p| p.into_inner());
    if let Some((cached_scale, sweep)) = slot.as_ref() {
        if *cached_scale == scale {
            return Ok(sweep.clone());
        }
    }
    let sweep = baseline_sweep("doduc", scale, &baseline())?;
    *slot = Some((scale, sweep.clone()));
    Ok(sweep)
}

fn emit_sweep(
    out: &mut dyn Write,
    fig: &str,
    title: &str,
    sweep: &LatencySweep,
) -> Result<(), ExhibitError> {
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(out, "{}", report::mcpi_vs_latency_table(sweep));
    let _ = writeln!(out, "{}", report::mcpi_vs_latency_chart(sweep));
    write_csv(fig, &report::latency_sweep_csv(sweep))?;
    write_json(fig, &report::latency_sweep_json(sweep))
}

/// Fig. 5: baseline miss CPI for doduc (sweep shared with Figs. 7–8).
pub fn fig5(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let sweep = doduc_sweep(scale)?;
    emit_sweep(out, "fig5", "Figure 5: baseline miss CPI for doduc", &sweep)
}

/// Fig. 7: stall-cycle breakdown for doduc (share of MCPI from structural
/// hazards).
pub fn fig7(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let sweep = doduc_sweep(scale)?;
    let _ = writeln!(out, "== Figure 7: stall cycle breakdown for doduc ==");
    let _ = writeln!(out, "{}", report::structural_share_table(&sweep));
    Ok(())
}

/// Fig. 8: baseline miss rate for doduc (primary+secondary / secondary).
pub fn fig8(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let sweep = doduc_sweep(scale)?;
    let _ = writeln!(out, "== Figure 8: baseline miss rate for doduc ==");
    let _ = writeln!(out, "{}", report::miss_rate_table(&sweep));
    Ok(())
}

/// Fig. 9: baseline miss CPI for xlisp.
pub fn fig9(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let sweep = baseline_sweep("xlisp", scale, &baseline())?;
    emit_sweep(out, "fig9", "Figure 9: baseline miss CPI for xlisp", &sweep)
}

/// Fig. 10: miss CPI for xlisp with a fully associative 8 KB cache.
pub fn fig10(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let geom = CacheGeometry::fully_associative(8 * 1024, 32)
        .map_err(|e| ExhibitError::new("fig10 geometry", e))?;
    let sweep = baseline_sweep("xlisp", scale, &baseline().with_geometry(geom))?;
    emit_sweep(
        out,
        "fig10",
        "Figure 10: miss CPI for xlisp, fully associative cache",
        &sweep,
    )
}

/// Fig. 11: baseline miss CPI for eqntott.
pub fn fig11(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let sweep = baseline_sweep("eqntott", scale, &baseline())?;
    emit_sweep(
        out,
        "fig11",
        "Figure 11: baseline miss CPI for eqntott",
        &sweep,
    )
}

/// Fig. 12: baseline miss CPI for tomcatv.
pub fn fig12(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let sweep = baseline_sweep("tomcatv", scale, &baseline())?;
    emit_sweep(
        out,
        "fig12",
        "Figure 12: baseline miss CPI for tomcatv",
        &sweep,
    )
}

/// Fig. 16: miss CPI for doduc with a 64 KB data cache.
pub fn fig16(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let geom = CacheGeometry::direct_mapped(64 * 1024, 32)
        .map_err(|e| ExhibitError::new("fig16 geometry", e))?;
    let sweep = baseline_sweep("doduc", scale, &baseline().with_geometry(geom))?;
    emit_sweep(
        out,
        "fig16",
        "Figure 16: miss CPI for doduc, 64KB cache",
        &sweep,
    )
}

/// Fig. 17: miss CPI for doduc with 16-byte lines (14-cycle penalty,
/// per the paper's §5.2 pipelined memory).
pub fn fig17(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let geom = CacheGeometry::direct_mapped(8 * 1024, 16)
        .map_err(|e| ExhibitError::new("fig17 geometry", e))?;
    let base = baseline()
        .with_geometry(geom)
        .with_penalty(PipelinedMemory::penalty_for_line(16));
    let sweep = baseline_sweep("doduc", scale, &base)?;
    emit_sweep(
        out,
        "fig17",
        "Figure 17: miss CPI for doduc, 16-byte lines",
        &sweep,
    )
}
