//! Plain-text rendering of sweep results in the shape of the paper's
//! figures and tables.

use crate::compile_cache::CacheStats;
use crate::driver::RunResult;
use crate::store::StoreStats;
use crate::sweep::{LatencySweep, ModelSweep, PenaltySweep, ReplacementSweep};
use crate::tape_cache::TapeStats;
use nbl_cpu::stats::ReplayAttribution;
use nbl_mem::event::{MissLifecycleStats, ReplayCause, DEPTH_BUCKETS, FLIGHT_BUCKETS};
use std::fmt::Write as _;

/// Renders a latency sweep as a fixed-width table: one row per latency,
/// one MCPI column per configuration (the data behind Figs. 5, 9–12,
/// 15–17).
pub fn mcpi_vs_latency_table(sweep: &LatencySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "miss CPI vs scheduled load latency — {}",
        sweep.benchmark
    );
    let _ = write!(out, "{:>8}", "lat");
    for c in &sweep.configs {
        let _ = write!(out, "{c:>14}");
    }
    out.push('\n');
    for (i, &lat) in sweep.latencies.iter().enumerate() {
        let _ = write!(out, "{lat:>8}");
        for r in &sweep.rows[i] {
            let _ = write!(out, "{:>14.4}", r.mcpi);
        }
        out.push('\n');
    }
    out
}

/// Renders the structural-stall share per latency (Fig. 7: "% MCPI due to
/// structural hazard stalls").
pub fn structural_share_table(sweep: &LatencySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "%% MCPI from structural-hazard stalls — {}",
        sweep.benchmark
    );
    let _ = write!(out, "{:>8}", "lat");
    for c in &sweep.configs {
        let _ = write!(out, "{c:>14}");
    }
    out.push('\n');
    for (i, &lat) in sweep.latencies.iter().enumerate() {
        let _ = write!(out, "{lat:>8}");
        for r in &sweep.rows[i] {
            let _ = write!(out, "{:>13.1}%", 100.0 * r.structural_fraction);
        }
        out.push('\n');
    }
    out
}

/// Renders the load miss rates per latency (Fig. 8: primary+secondary and
/// secondary-only).
pub fn miss_rate_table(sweep: &LatencySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "load miss rate (%% of loads) — {}", sweep.benchmark);
    let _ = write!(out, "{:>8}", "lat");
    for c in &sweep.configs {
        let _ = write!(out, "{:>13}+s", c);
        let _ = write!(out, "{:>8}s", "");
    }
    out.push('\n');
    for (i, &lat) in sweep.latencies.iter().enumerate() {
        let _ = write!(out, "{lat:>8}");
        for r in &sweep.rows[i] {
            let _ = write!(out, "{:>14.2}", 100.0 * r.load_miss_rate);
            let _ = write!(out, "{:>9.2}", 100.0 * r.secondary_miss_rate);
        }
        out.push('\n');
    }
    out
}

/// Renders the Fig. 6-style in-flight histogram table for a column of
/// results (one per latency).
pub fn inflight_table(benchmark: &str, rows: &[(u32, &RunResult)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "in-flight misses and fetches — {benchmark}");
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>8} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6}",
        "lat", "kind", "%MIF", "1", "2", "3", "4", "5", "6", "7+", "max"
    );
    for (lat, r) in rows {
        for (kind, dist, max) in [
            ("misses", r.inflight.miss_dist, r.inflight.max_misses),
            ("fetches", r.inflight.fetch_dist, r.inflight.max_fetches),
        ] {
            let _ = write!(
                out,
                "{lat:>4} {kind:>8} {:>7.0}%",
                100.0 * r.inflight.frac_time_with_misses
            );
            for d in dist {
                let _ = write!(out, " {:>4.0}%", 100.0 * d);
            }
            let _ = writeln!(out, " {max:>6}");
        }
    }
    out
}

/// One row of the Fig. 13-style table: MCPI and ratio-to-unrestricted for
/// each configuration, unrestricted last.
pub fn fig13_row(benchmark: &str, results: &[RunResult]) -> String {
    let unrestricted = results
        .last()
        .expect("at least the unrestricted column")
        .mcpi;
    let mut out = format!("{benchmark:>10}");
    for r in &results[..results.len() - 1] {
        let ratio = if unrestricted > 0.0 {
            r.mcpi / unrestricted
        } else {
            1.0
        };
        let _ = write!(out, " {:>7.3} {:>5.1}", r.mcpi, ratio);
    }
    let _ = write!(out, " {unrestricted:>7.3}");
    out
}

/// Renders a penalty sweep as the Fig. 18 table: one row per
/// configuration, one column per penalty.
pub fn mcpi_vs_penalty_table(sweep: &PenaltySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "miss CPI vs miss penalty — {}", sweep.benchmark);
    let _ = write!(out, "{:>14}", "config");
    for &p in &sweep.penalties {
        let _ = write!(out, "{p:>10}");
    }
    out.push('\n');
    for (j, c) in sweep.configs.iter().enumerate() {
        let _ = write!(out, "{c:>14}");
        for row in &sweep.rows {
            let _ = write!(out, "{:>10.3}", row[j].mcpi);
        }
        out.push('\n');
    }
    out
}

/// Renders a latency sweep as an ASCII chart in the style of the paper's
/// figures: MCPI on the y axis, scheduled load latency on the x axis, one
/// letter per configuration (see the legend below the plot). Points that
/// coincide are drawn as `*`.
pub fn mcpi_vs_latency_chart(sweep: &LatencySweep) -> String {
    const HEIGHT: usize = 18;
    let mut max = f64::MIN;
    let mut min = f64::MAX;
    for row in &sweep.rows {
        for r in row {
            max = max.max(r.mcpi);
            min = min.min(r.mcpi);
        }
    }
    if !max.is_finite() || !min.is_finite() || sweep.rows.is_empty() {
        return String::new();
    }
    if (max - min).abs() < 1e-12 {
        max = min + 1.0;
    }
    let col_width = 6;
    let width = sweep.latencies.len() * col_width;
    let mut grid = vec![vec![' '; width]; HEIGHT];
    for (i, _) in sweep.latencies.iter().enumerate() {
        for (j, _) in sweep.configs.iter().enumerate() {
            let m = sweep.rows[i][j].mcpi;
            let y = ((max - m) / (max - min) * (HEIGHT - 1) as f64).round() as usize;
            let x = i * col_width + col_width / 2;
            let symbol = (b'a' + (j % 26) as u8) as char;
            let cell = &mut grid[y.min(HEIGHT - 1)][x];
            *cell = if *cell == ' ' { symbol } else { '*' };
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "miss CPI vs load latency — {} (letters = configs)",
        sweep.benchmark
    );
    for (y, row) in grid.iter().enumerate() {
        let label = max - (max - min) * y as f64 / (HEIGHT - 1) as f64;
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label:>8.3} |{}", line.trim_end());
    }
    let _ = write!(out, "{:>8}  ", "");
    for lat in &sweep.latencies {
        let _ = write!(out, "{lat:^col_width$}");
    }
    out.push('\n');
    for (j, c) in sweep.configs.iter().enumerate() {
        let _ = writeln!(out, "{:>10} = {}", (b'a' + (j % 26) as u8) as char, c);
    }
    out
}

/// Escapes one CSV field (quotes fields containing commas or quotes).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes a latency sweep as CSV: one row per latency, one MCPI column
/// per configuration — ready for external plotting.
pub fn latency_sweep_csv(sweep: &LatencySweep) -> String {
    let mut out = String::from("load_latency");
    for c in &sweep.configs {
        let _ = write!(out, ",{}", csv_field(c));
    }
    out.push('\n');
    for (i, lat) in sweep.latencies.iter().enumerate() {
        let _ = write!(out, "{lat}");
        for r in &sweep.rows[i] {
            let _ = write!(out, ",{:.6}", r.mcpi);
        }
        out.push('\n');
    }
    out
}

/// Serializes a penalty sweep as CSV: one row per penalty, one MCPI column
/// per configuration.
pub fn penalty_sweep_csv(sweep: &PenaltySweep) -> String {
    let mut out = String::from("miss_penalty");
    for c in &sweep.configs {
        let _ = write!(out, ",{}", csv_field(c));
    }
    out.push('\n');
    for (i, pen) in sweep.penalties.iter().enumerate() {
        let _ = write!(out, "{pen}");
        for r in &sweep.rows[i] {
            let _ = write!(out, ",{:.6}", r.mcpi);
        }
        out.push('\n');
    }
    out
}

/// Renders a replacement sweep as one fixed-width table per MSHR
/// configuration: rows are load latencies, columns are policies — the
/// layout that makes the policy spread at each operating point visible
/// at a glance.
pub fn replacement_mcpi_table(sweep: &ReplacementSweep) -> String {
    let mut out = String::new();
    for (j, config) in sweep.configs.iter().enumerate() {
        let _ = writeln!(
            out,
            "miss CPI by replacement policy — {} [{config}]",
            sweep.benchmark
        );
        let _ = write!(out, "{:>8}", "lat");
        for p in &sweep.policies {
            let _ = write!(out, "{p:>12}");
        }
        out.push('\n');
        for (i, &lat) in sweep.latencies.iter().enumerate() {
            let _ = write!(out, "{lat:>8}");
            for plane in &sweep.rows {
                let _ = write!(out, "{:>12.4}", plane[i][j].mcpi);
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Serializes a replacement sweep as long-format CSV —
/// `policy,config,load_latency,mcpi,cycles` — one row per cell, the
/// format external plotting (and the verify-script golden diff) wants.
pub fn replacement_sweep_csv(sweep: &ReplacementSweep) -> String {
    let mut out = String::from("policy,config,load_latency,mcpi,cycles\n");
    for (p, policy) in sweep.policies.iter().enumerate() {
        for (i, &lat) in sweep.latencies.iter().enumerate() {
            for (j, config) in sweep.configs.iter().enumerate() {
                let r = &sweep.rows[p][i][j];
                let _ = writeln!(
                    out,
                    "{},{},{lat},{:.6},{}",
                    csv_field(policy),
                    csv_field(config),
                    r.mcpi,
                    r.cycles
                );
            }
        }
    }
    out
}

/// Renders a model sweep as one fixed-width table per MSHR configuration:
/// rows are load latencies, columns are processor models — the layout
/// that shows whether the pipeline's reaction to a miss (stall vs.
/// replay) changes each configuration's standing.
pub fn model_mcpi_table(sweep: &ModelSweep) -> String {
    let mut out = String::new();
    for (j, config) in sweep.configs.iter().enumerate() {
        let _ = writeln!(
            out,
            "miss CPI by processor model — {} [{config}]",
            sweep.benchmark
        );
        let _ = write!(out, "{:>8}", "lat");
        for m in &sweep.models {
            let _ = write!(out, "{m:>12}");
        }
        out.push('\n');
        for (i, &lat) in sweep.latencies.iter().enumerate() {
            let _ = write!(out, "{lat:>8}");
            for plane in &sweep.rows {
                let _ = write!(out, "{:>12.4}", plane[i][j].mcpi);
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Renders the per-cause replay attribution of a model sweep's replaying
/// plane: one row per `(latency, configuration)` cell, one
/// `count/stall-cycles` column pair per replay cause. Planes whose model
/// never replays (the stalling pipelines) are skipped.
pub fn replay_attribution_table(sweep: &ModelSweep) -> String {
    let mut out = String::new();
    for (m, model) in sweep.models.iter().enumerate() {
        let plane = &sweep.rows[m];
        if plane
            .iter()
            .flatten()
            .all(|r| r.replay.total_replays() == 0)
        {
            continue;
        }
        let _ = writeln!(
            out,
            "replay causes (count / stall cycles) — {} [{model}]",
            sweep.benchmark
        );
        let _ = write!(out, "{:>4} {:>14}", "lat", "config");
        for cause in ReplayCause::ALL {
            let _ = write!(out, "{:>20}", cause.label());
        }
        out.push('\n');
        for (i, &lat) in sweep.latencies.iter().enumerate() {
            for (j, config) in sweep.configs.iter().enumerate() {
                let r = &plane[i][j];
                let _ = write!(out, "{lat:>4} {config:>14}");
                for cause in ReplayCause::ALL {
                    let cell = format!("{}/{}", r.replay.count(cause), r.replay.stalls(cause));
                    let _ = write!(out, "{cell:>20}");
                }
                out.push('\n');
            }
        }
        out.push('\n');
    }
    out
}

/// Serializes a model sweep as long-format CSV —
/// `model,config,load_latency,mcpi,cycles` — one row per cell, the format
/// external plotting (and the verify-script golden diff) wants.
pub fn model_sweep_csv(sweep: &ModelSweep) -> String {
    let mut out = String::from("model,config,load_latency,mcpi,cycles\n");
    for (m, model) in sweep.models.iter().enumerate() {
        for (i, &lat) in sweep.latencies.iter().enumerate() {
            for (j, config) in sweep.configs.iter().enumerate() {
                let r = &sweep.rows[m][i][j];
                let _ = writeln!(
                    out,
                    "{},{},{lat},{:.6},{}",
                    csv_field(model),
                    csv_field(config),
                    r.mcpi,
                    r.cycles
                );
            }
        }
    }
    out
}

/// Renders the miss-lifecycle summary of a traced run: transaction
/// counts, merge-depth and fill-fan-out histograms, and the
/// time-in-flight distribution (the delayed-hits instrument the lifecycle
/// events exist for).
pub fn miss_lifecycle_table(benchmark: &str, config: &str, stats: &MissLifecycleStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "miss lifecycle — {benchmark} [{config}]");
    let _ = writeln!(
        out,
        "  issued {:>8}   merged {:>8}   rejected {:>8}",
        stats.issued, stats.merged, stats.rejected
    );
    let _ = writeln!(
        out,
        "  fetches {:>7}   l2-serviced {:>3}   fills {:>11}   targets woken {:>4}",
        stats.fetches, stats.l2_serviced, stats.fills, stats.targets_woken
    );
    let _ = writeln!(
        out,
        "  mean merge depth {:>6.3}   mean fan-out {:>6.3}   mean in-flight {:>6.1} cy (max {})",
        stats.mean_merge_depth(),
        stats.mean_fanout(),
        stats.mean_time_in_flight(),
        stats.max_flight
    );
    let histogram = |out: &mut String, label: &str, buckets: &[u64], saturated: &str| {
        let last = buckets.iter().rposition(|&v| v > 0).unwrap_or(0);
        let _ = write!(out, "  {label:<16}");
        for (i, &v) in buckets.iter().enumerate().take(last + 1) {
            if v == 0 {
                continue;
            }
            let tag = if i + 1 == buckets.len() {
                saturated
            } else {
                ""
            };
            let _ = write!(out, " {i}{tag}:{v}");
        }
        out.push('\n');
    };
    histogram(&mut out, "merge depth", &stats.merge_depth, "+");
    histogram(&mut out, "fill fan-out", &stats.fanout, "+");
    histogram(&mut out, "cycles in flight", &stats.time_in_flight, "+");
    out
}

/// Escapes one JSON string value (the emitters below are hand-rolled —
/// the workspace builds offline with no serialization dependency).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_u64_array(vals: &[u64]) -> String {
    let body: Vec<String> = vals.iter().map(u64::to_string).collect();
    format!("[{}]", body.join(","))
}

/// Serializes a [`ReplayAttribution`] as a JSON object: one
/// `{"count":…,"stall_cycles":…}` entry per replay cause, keyed by the
/// cause's label.
fn replay_json(a: &ReplayAttribution) -> String {
    let mut out = String::from("{");
    for (i, cause) in ReplayCause::ALL.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"stall_cycles\":{}}}",
            cause.label(),
            a.count(cause),
            a.stalls(cause)
        );
    }
    out.push('}');
    out
}

/// Serializes one [`RunResult`] as a JSON object (machine-readable sweep
/// output for `results/`).
pub fn run_result_json(r: &RunResult) -> String {
    let dist = |d: &[f64; 7]| {
        let body: Vec<String> = d.iter().map(|&v| json_f64(v)).collect();
        format!("[{}]", body.join(","))
    };
    format!(
        concat!(
            "{{\"benchmark\":{},\"config\":{},\"model\":{},\"replacement\":{},",
            "\"load_latency\":{},\"miss_penalty\":{},",
            "\"instructions\":{},\"loads\":{},\"stores\":{},\"cycles\":{},\"mcpi\":{},",
            "\"data_dep_stalls\":{},\"structural_stalls\":{},\"blocking_stalls\":{},",
            "\"structural_fraction\":{},\"structural_stall_misses\":{},",
            "\"load_miss_rate\":{},\"secondary_miss_rate\":{},\"static_spill_ops\":{},",
            "\"replays\":{},",
            "\"inflight\":{{\"frac_time_with_misses\":{},\"miss_dist\":{},\"fetch_dist\":{},",
            "\"max_misses\":{},\"max_fetches\":{}}}}}"
        ),
        json_str(&r.benchmark),
        json_str(&r.config),
        json_str(&r.model),
        json_str(&r.replacement),
        r.load_latency,
        r.miss_penalty,
        r.instructions,
        r.loads,
        r.stores,
        r.cycles,
        json_f64(r.mcpi),
        r.data_dep_stalls,
        r.structural_stalls,
        r.blocking_stalls,
        json_f64(r.structural_fraction),
        r.structural_stall_misses,
        json_f64(r.load_miss_rate),
        json_f64(r.secondary_miss_rate),
        r.static_spill_ops,
        replay_json(&r.replay),
        json_f64(r.inflight.frac_time_with_misses),
        dist(&r.inflight.miss_dist),
        dist(&r.inflight.fetch_dist),
        r.inflight.max_misses,
        r.inflight.max_fetches,
    )
}

/// Serializes the disk tier's [`StoreStats`] counters as one JSON object
/// (the `"store"` section of [`caches_json`]; all zeroes for a
/// memory-only store).
pub fn store_json(store: &StoreStats) -> String {
    format!(
        concat!(
            "{{\"tape_hits\":{},\"tape_misses\":{},\"tape_writes\":{},",
            "\"result_hits\":{},\"result_misses\":{},\"result_writes\":{},",
            "\"corruptions\":{},\"io_errors\":{}}}"
        ),
        store.tape_hits,
        store.tape_misses,
        store.tape_writes,
        store.result_hits,
        store.result_misses,
        store.result_writes,
        store.corruptions,
        store.io_errors,
    )
}

/// Serializes compile-cache, tape-cache and disk-store counters as one
/// JSON object, so any emitter can place artifact-store telemetry next
/// to its runs (`BENCH_sweep.json` embeds this under its `caches` key).
pub fn caches_json(compile: &CacheStats, tape: &TapeStats, store: &StoreStats) -> String {
    format!(
        concat!(
            "{{\"compile_cache\":{{\"compiles\":{},\"hits\":{}}},",
            "\"tape_cache\":{{\"records\":{},\"hits\":{},\"evictions\":{},",
            "\"resident_bytes\":{}}},\"store\":{}}}"
        ),
        compile.compiles,
        compile.hits,
        tape.records,
        tape.hits,
        tape.evictions,
        tape.resident_bytes,
        store_json(store),
    )
}

fn sweep_json(
    kind: &str,
    benchmark: &str,
    axis_name: &str,
    axis: &[u32],
    configs: &[String],
    rows: &[Vec<RunResult>],
) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"kind\":{},\"benchmark\":{},\"configs\":[",
        json_str(kind),
        json_str(benchmark)
    );
    for (j, c) in configs.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        out.push_str(&json_str(c));
    }
    let _ = write!(
        out,
        "],\"{axis_name}\":{},\"runs\":[",
        json_u64_array(&axis.iter().map(|&v| u64::from(v)).collect::<Vec<_>>())
    );
    let mut first = true;
    for row in rows {
        for r in row {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&run_result_json(r));
        }
    }
    out.push_str("]}");
    out
}

/// Serializes a latency sweep as one JSON document: the axes plus every
/// [`RunResult`] (row-major, latencies × configurations).
pub fn latency_sweep_json(sweep: &LatencySweep) -> String {
    sweep_json(
        "latency_sweep",
        &sweep.benchmark,
        "load_latencies",
        &sweep.latencies,
        &sweep.configs,
        &sweep.rows,
    )
}

/// Serializes a penalty sweep as one JSON document (row-major, penalties ×
/// configurations).
pub fn penalty_sweep_json(sweep: &PenaltySweep) -> String {
    sweep_json(
        "penalty_sweep",
        &sweep.benchmark,
        "miss_penalties",
        &sweep.penalties,
        &sweep.configs,
        &sweep.rows,
    )
}

/// Serializes a replacement sweep as one JSON document: the three axes
/// (policies, configs, latencies) plus every [`RunResult`], flattened in
/// policy-major, then latency, then configuration order.
pub fn replacement_sweep_json(sweep: &ReplacementSweep) -> String {
    let labels = |xs: &[String]| {
        let body: Vec<String> = xs.iter().map(|x| json_str(x)).collect();
        format!("[{}]", body.join(","))
    };
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"kind\":\"replacement_sweep\",\"benchmark\":{},\"policies\":{},\"configs\":{},\"load_latencies\":{},\"runs\":[",
        json_str(&sweep.benchmark),
        labels(&sweep.policies),
        labels(&sweep.configs),
        json_u64_array(&sweep.latencies.iter().map(|&v| u64::from(v)).collect::<Vec<_>>()),
    );
    let mut first = true;
    for plane in &sweep.rows {
        for row in plane {
            for r in row {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&run_result_json(r));
            }
        }
    }
    out.push_str("]}");
    out
}

/// Serializes a model sweep as one JSON document: the three axes (models,
/// configs, latencies) plus every [`RunResult`], flattened in model-major,
/// then latency, then configuration order.
pub fn model_sweep_json(sweep: &ModelSweep) -> String {
    let labels = |xs: &[String]| {
        let body: Vec<String> = xs.iter().map(|x| json_str(x)).collect();
        format!("[{}]", body.join(","))
    };
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"kind\":\"model_sweep\",\"benchmark\":{},\"models\":{},\"configs\":{},\"load_latencies\":{},\"runs\":[",
        json_str(&sweep.benchmark),
        labels(&sweep.models),
        labels(&sweep.configs),
        json_u64_array(&sweep.latencies.iter().map(|&v| u64::from(v)).collect::<Vec<_>>()),
    );
    let mut first = true;
    for plane in &sweep.rows {
        for row in plane {
            for r in row {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&run_result_json(r));
            }
        }
    }
    out.push_str("]}");
    out
}

/// Serializes a miss-lifecycle summary as a JSON object.
pub fn miss_lifecycle_json(benchmark: &str, config: &str, stats: &MissLifecycleStats) -> String {
    debug_assert_eq!(stats.merge_depth.len(), DEPTH_BUCKETS);
    debug_assert_eq!(stats.time_in_flight.len(), FLIGHT_BUCKETS);
    format!(
        concat!(
            "{{\"benchmark\":{},\"config\":{},\"issued\":{},\"merged\":{},",
            "\"rejected\":{},\"fetches\":{},\"l2_serviced\":{},\"fills\":{},",
            "\"targets_woken\":{},\"mean_merge_depth\":{},\"mean_fanout\":{},",
            "\"mean_time_in_flight\":{},\"max_flight\":{},",
            "\"merge_depth\":{},\"fanout\":{},\"time_in_flight\":{}}}"
        ),
        json_str(benchmark),
        json_str(config),
        stats.issued,
        stats.merged,
        stats.rejected,
        stats.fetches,
        stats.l2_serviced,
        stats.fills,
        stats.targets_woken,
        json_f64(stats.mean_merge_depth()),
        json_f64(stats.mean_fanout()),
        json_f64(stats.mean_time_in_flight()),
        stats.max_flight,
        json_u64_array(&stats.merge_depth),
        json_u64_array(&stats.fanout),
        json_u64_array(&stats.time_in_flight),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HwConfig, SimConfig};
    use crate::sweep::{latency_sweep, penalty_sweep};
    use nbl_trace::workloads::{build, Scale};

    fn tiny_sweep() -> LatencySweep {
        let p = build("eqntott", Scale::quick()).unwrap();
        latency_sweep(
            &p,
            &SimConfig::baseline(HwConfig::Mc0),
            &[HwConfig::Mc0, HwConfig::NoRestrict],
            &[1, 10],
        )
        .unwrap()
    }

    #[test]
    fn latency_table_contains_labels_and_rows() {
        let t = mcpi_vs_latency_table(&tiny_sweep());
        assert!(t.contains("eqntott"));
        assert!(t.contains("mc=0"));
        assert!(t.contains("no restrict"));
        assert_eq!(t.lines().count(), 2 + 2);
    }

    #[test]
    fn auxiliary_tables_render() {
        let s = tiny_sweep();
        assert!(structural_share_table(&s).contains('%'));
        assert!(miss_rate_table(&s).contains("eqntott"));
        let rows: Vec<(u32, &RunResult)> = s
            .latencies
            .iter()
            .copied()
            .zip(s.rows.iter().map(|r| &r[1]))
            .collect();
        let t = inflight_table("eqntott", &rows);
        assert!(t.contains("fetches"));
    }

    #[test]
    fn fig13_row_shows_ratios() {
        let s = tiny_sweep();
        let row = fig13_row("eqntott", &s.rows[1]);
        assert!(row.contains("eqntott"));
        // one (mcpi, ratio) pair + the unrestricted column = 3 numbers.
        assert_eq!(row.split_whitespace().count(), 4);
    }

    #[test]
    fn chart_renders_with_legend_and_extremes() {
        let s = tiny_sweep();
        let chart = mcpi_vs_latency_chart(&s);
        assert!(chart.contains("a = mc=0"));
        assert!(chart.contains("b = no restrict"));
        // Every (latency, config) point appears somewhere.
        let plotted: usize = chart
            .chars()
            .filter(|c| *c == 'a' || *c == 'b' || *c == '*')
            .count()
            // legend letters appear once each
            - 2;
        assert!(plotted >= 2, "chart too empty:\n{chart}");
        // The y-axis spans the data.
        assert!(chart.lines().count() > 18);
    }

    #[test]
    fn csv_roundtrips_the_numbers() {
        let s = tiny_sweep();
        let csv = latency_sweep_csv(&s);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "load_latency,mc=0,no restrict");
        let row: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row[0], "1");
        let parsed: f64 = row[1].parse().unwrap();
        assert!((parsed - s.rows[0][0].mcpi).abs() < 1e-6);
        assert_eq!(csv.lines().count(), 1 + s.latencies.len());
    }

    #[test]
    fn csv_escapes_commas() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn penalty_csv_renders() {
        let p = build("eqntott", Scale::quick()).unwrap();
        let s = penalty_sweep(
            &p,
            &SimConfig::baseline(HwConfig::Mc0),
            &[HwConfig::Mc0],
            &[8, 16],
        )
        .unwrap();
        let csv = penalty_sweep_csv(&s);
        assert!(csv.starts_with("miss_penalty,mc=0"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn json_emitters_are_well_formed() {
        let s = tiny_sweep();
        let doc = latency_sweep_json(&s);
        assert!(doc.starts_with("{\"kind\":\"latency_sweep\""));
        assert!(doc.contains("\"benchmark\":\"eqntott\""));
        assert!(doc.contains("\"load_latencies\":[1,10]"));
        // 2 latencies x 2 configs = 4 embedded run objects.
        assert_eq!(doc.matches("\"mcpi\":").count(), 4);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());

        let one = run_result_json(&s.rows[0][0]);
        assert!(one.contains("\"config\":\"mc=0\""));
        assert_eq!(one.matches('{').count(), one.matches('}').count());

        assert_eq!(json_str("say \"hi\"\n"), "\"say \\\"hi\\\"\\n\"");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn replacement_renderers_cover_every_cell() {
        use crate::sweep::SweepEngine;
        use nbl_core::geometry::CacheGeometry;
        use nbl_core::tag_array::ReplacementKind;
        let p = build("eqntott", Scale::quick()).unwrap();
        let base = SimConfig::baseline(HwConfig::Mc0)
            .with_geometry(CacheGeometry::new(8 * 1024, 32, 4).unwrap());
        let s = SweepEngine::new(2)
            .replacement_sweep(
                &p,
                &base,
                &[ReplacementKind::Lru, ReplacementKind::Fifo],
                &[HwConfig::Mc(1), HwConfig::NoRestrict],
                &[1, 10],
            )
            .unwrap();
        let table = replacement_mcpi_table(&s);
        assert!(table.contains("[mc=1]") && table.contains("[no restrict]"));
        assert!(table.contains("lru") && table.contains("fifo"));

        let csv = replacement_sweep_csv(&s);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "policy,config,load_latency,mcpi,cycles"
        );
        assert_eq!(csv.lines().count(), 1 + 2 * 2 * 2, "one row per cell");
        assert!(csv.contains("lru,mc=1,1,"));
        assert!(csv.contains("fifo,no restrict,10,"));

        let doc = replacement_sweep_json(&s);
        assert!(doc.starts_with("{\"kind\":\"replacement_sweep\""));
        assert!(doc.contains("\"policies\":[\"lru\",\"fifo\"]"));
        assert!(doc.contains("\"replacement\":\"fifo\""));
        assert_eq!(doc.matches("\"mcpi\":").count(), 8);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn model_renderers_cover_every_cell() {
        use crate::config::ProcessorKind;
        use crate::sweep::SweepEngine;
        let p = build("eqntott", Scale::quick()).unwrap();
        let base = SimConfig::baseline(HwConfig::Mc0);
        let s = SweepEngine::new(2)
            .model_sweep(
                &p,
                &base,
                &[ProcessorKind::SingleInOrder, ProcessorKind::ReplayCause],
                &[HwConfig::Mc(1), HwConfig::NoRestrict],
                &[1, 10],
            )
            .unwrap();
        let table = model_mcpi_table(&s);
        assert!(table.contains("[mc=1]") && table.contains("[no restrict]"));
        assert!(table.contains("single") && table.contains("replay"));

        let causes = replay_attribution_table(&s);
        assert!(causes.contains("[replay]"));
        assert!(!causes.contains("[single]"), "stalling planes are skipped");
        for cause in ReplayCause::ALL {
            assert!(causes.contains(cause.label()), "missing {}", cause.label());
        }

        let csv = model_sweep_csv(&s);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "model,config,load_latency,mcpi,cycles"
        );
        assert_eq!(csv.lines().count(), 1 + 2 * 2 * 2, "one row per cell");
        assert!(csv.contains("single,mc=1,1,"));
        assert!(csv.contains("replay,no restrict,10,"));

        let doc = model_sweep_json(&s);
        assert!(doc.starts_with("{\"kind\":\"model_sweep\""));
        assert!(doc.contains("\"models\":[\"single\",\"replay\"]"));
        assert!(doc.contains("\"model\":\"replay\""));
        assert!(doc.contains("\"replays\":{\"fwd_fail\":{\"count\":"));
        assert_eq!(doc.matches("\"mcpi\":").count(), 8);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn miss_lifecycle_render_and_json() {
        use crate::driver::run_program_traced;
        let p = build("tomcatv", Scale::quick()).unwrap();
        let (_r, trace) =
            run_program_traced(&p, &SimConfig::baseline(HwConfig::NoRestrict), 128).unwrap();
        let stats = &trace.stats;
        assert!(stats.fetches > 0, "tomcatv must miss");
        let table = miss_lifecycle_table("tomcatv", "no restrict", stats);
        assert!(table.contains("miss lifecycle — tomcatv"));
        assert!(table.contains("merge depth"));
        let doc = miss_lifecycle_json("tomcatv", "no restrict", stats);
        assert!(doc.contains("\"fetches\":"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        // The histograms account for every filled fetch.
        let filled: u64 = stats.time_in_flight.iter().sum();
        assert_eq!(filled, stats.fills);
    }

    #[test]
    fn penalty_table_renders() {
        let p = build("eqntott", Scale::quick()).unwrap();
        let s = penalty_sweep(
            &p,
            &SimConfig::baseline(HwConfig::Mc0),
            &[HwConfig::Mc0],
            &[8, 16],
        )
        .unwrap();
        let t = mcpi_vs_penalty_table(&s);
        assert!(t.contains("mc=0"));
        assert!(t.lines().count() == 3);
    }
}
