//! Figure 19 (table): dual- and single-issue MCPI scaling comparison
//! (paper §6).
//!
//! Method, as in the paper: simulate each benchmark on the dual-issue
//! machine (load latency 10, miss penalty 16); measure its average IPC on
//! the same machine with a perfect cache; then predict the dual-issue MCPI
//! from a *single-issue* simulation whose load latency and miss penalty
//! are scaled by that IPC — the load latency snapped to the compiled set
//! {1,2,3,6,10,20}, the penalty rounded to the nearest integer, exactly
//! like the paper ("it was not convenient to compile the code for all
//! values of the load latency").

use super::{program, RunScale, LATENCIES};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::{run_dual, run_program};
use std::io::Write;

/// The four configurations the paper compares.
pub fn configs() -> Vec<HwConfig> {
    vec![HwConfig::Mc0, HwConfig::Mc(1), HwConfig::Fc(2), HwConfig::NoRestrict]
}

/// The benchmarks of the Fig. 19 table.
pub const BENCHMARKS: [&str; 5] = ["doduc", "eqntott", "su2cor", "tomcatv", "xlisp"];

/// Snaps a scaled latency to the nearest compiled value.
pub fn snap_latency(scaled: f64) -> u32 {
    LATENCIES
        .into_iter()
        .min_by(|a, b| {
            (f64::from(*a) - scaled)
                .abs()
                .partial_cmp(&(f64::from(*b) - scaled).abs())
                .expect("finite")
        })
        .expect("non-empty latency set")
}

/// Prints the Fig. 19 comparison.
pub fn run(out: &mut dyn Write, scale: RunScale) {
    let _ = writeln!(out, "== Figure 19: dual vs IPC-scaled single-issue MCPI ==");
    let _ = writeln!(
        out,
        "{:>10} {:>6} {:>8} {:>8} | per config: dual MCPI, scaled-single MCPI, % diff",
        "bench",
        "IPC",
        "s.lat",
        "s.pen"
    );
    for name in BENCHMARKS {
        let p = program(name, scale);
        // IPC comes from the perfect-cache dual run; measure it once.
        let probe = run_dual(&p, &SimConfig::baseline(HwConfig::NoRestrict))
            .expect("workloads compile");
        let ipc = probe.ipc;
        let scaled_lat = snap_latency(10.0 * ipc);
        let scaled_pen = (16.0 * ipc).round().max(1.0) as u32;
        let _ = write!(out, "{:>10} {:>6.2} {:>8} {:>8} |", name, ipc, scaled_lat, scaled_pen);
        for hw in configs() {
            let dual =
                run_dual(&p, &SimConfig::baseline(hw.clone())).expect("workloads compile");
            let single_cfg = SimConfig::baseline(hw)
                .at_latency(scaled_lat)
                .with_penalty(scaled_pen);
            let single = run_program(&p, &single_cfg).expect("workloads compile");
            // The scaled single-issue MCPI is per *scaled* cycle; mapping
            // back to dual-issue cycles divides by the IPC.
            let predicted = single.mcpi / ipc;
            let diff = if dual.mcpi > 0.0 {
                100.0 * (predicted - dual.mcpi) / dual.mcpi
            } else {
                0.0
            };
            let _ = write!(out, "  {:>6.3} {:>6.3} {:>5.0}%", dual.mcpi, predicted, diff);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
}
