//! `espresso` — two-level logic minimization over cube covers
//! (SPEC92 CINT).
//!
//! Cube operations scan small bit-set arrays that mostly stay resident,
//! with occasional sweeps over the whole cover list. Integer, branchy,
//! low miss rate, and what misses exist are dependence-bound: Fig. 13
//! shows 0.209 blocking → 0.169 unrestricted with `mc=1` already at 1.04×.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program, ScriptNode};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("espresso");
    // Active cube set: 6 KB, nearly resident.
    let cubes = pb.pattern(AddrPattern::Gather {
        base: layout::region(0, 0),
        elem_bytes: 8,
        length: 1088, // 8.5 KB active cube set
        seed: 0xe59,
    });
    // The full cover: 48 KB, swept occasionally.
    let cover = pb.pattern(AddrPattern::Strided {
        base: layout::region(1, 2048),
        elem_bytes: 4,
        stride: 1,
        length: 12 * 1024,
    });
    let scratch = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 4096),
        elem_bytes: 4,
        stride: 1,
        length: 256,
    });

    // Cube intersection: hot-set loads, bit ops, branches.
    let mut b = pb.block();
    let c1 = b.load(cubes, RegClass::Int, LoadFormat::DOUBLE);
    let c2 = b.load(cubes, RegClass::Int, LoadFormat::DOUBLE);
    let and = b.alu(RegClass::Int, Some(c1), Some(c2));
    let cnt = b.alu_chain(RegClass::Int, and, 4);
    b.branch(Some(cnt));
    let or = b.alu(RegClass::Int, Some(c1), Some(cnt));
    let t = b.alu_chain(RegClass::Int, or, 5);
    b.store(scratch, Some(t));
    b.branch(Some(t));
    let intersect = b.finish();

    // Cover sweep: streaming scan with immediate tests.
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    for _ in 0..2 {
        let w = b.load(cover, RegClass::Int, LoadFormat::WORD);
        let m = b.alu(RegClass::Int, Some(w), None);
        b.branch(Some(m));
        let chain = b.alu_chain(RegClass::Int, m, 3);
        b.branch(Some(chain));
    }
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let sweep = b.finish();

    let unit = 4 * 14 + 15;
    let trips = scale.trips(unit);
    pb.loop_of(
        trips,
        vec![
            ScriptNode::Run {
                block: intersect,
                times: 4,
            },
            ScriptNode::Run {
                block: sweep,
                times: 1,
            },
        ],
    );
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branchy_integer_mix() {
        let p = build(Scale::quick());
        let branches: usize = p.blocks[0]
            .ops
            .iter()
            .filter(|o| matches!(o, crate::ir::IrOp::Branch { .. }))
            .count();
        assert!(branches >= 2, "espresso tests constantly");
        let (loads, _, _) = p.blocks[1].op_mix();
        assert_eq!(loads, 2);
    }
}
