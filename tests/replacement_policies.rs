//! Regression tests for the shared tag-array eviction path: a line is
//! displaced while a fetch to the same set is outstanding, under every
//! replacement policy. All evictions — plain fills, victim-buffer swaps
//! and in-cache MSHR claims — funnel through the single
//! `TagArray::evict` path, so these scenarios pin its interaction with
//! transit state for each policy.

use nonblocking_loads::core::cache::{CacheConfig, LoadAccess, LockupFreeCache};
use nonblocking_loads::core::geometry::CacheGeometry;
use nonblocking_loads::core::mshr::{InvertedConfig, MissKind, MshrConfig};
use nonblocking_loads::core::tag_array::ReplacementKind;
use nonblocking_loads::core::types::{Addr, BlockAddr, Dest, LoadFormat, PhysReg};

fn dest(i: u8) -> Dest {
    Dest::Reg(PhysReg::int(i))
}

/// A 2-way 8 KB cache (128 sets, so addresses 0x1000 apart share a set)
/// with unrestricted MSHRs, a victim buffer, and the given policy.
fn two_way(replacement: ReplacementKind) -> CacheConfig {
    let mut cfg = CacheConfig::baseline(MshrConfig::Inverted(InvertedConfig::typical()));
    cfg.geometry = CacheGeometry::new(8 * 1024, 32, 2).expect("valid geometry");
    cfg.victim_entries = 4;
    cfg.replacement = replacement;
    cfg
}

/// Set-conflicting addresses for set 0 of the 2-way geometry.
const A: Addr = Addr(0x0000);
const B: Addr = Addr(0x1000);
const C: Addr = Addr(0x2000);
const D: Addr = Addr(0x3000);

fn load(cache: &mut LockupFreeCache, addr: Addr, reg: u8) -> LoadAccess {
    cache.access_load(addr, dest(reg), LoadFormat::WORD)
}

fn fill(cache: &mut LockupFreeCache, addr: Addr) {
    let block = cache.block_of(addr);
    cache.fill(block);
}

fn block(cache: &LockupFreeCache, addr: Addr) -> BlockAddr {
    cache.block_of(addr)
}

/// Fills the set with A and B, launches an outstanding fetch of C, then
/// fills D on top; returns which of A/B survived. Asserts the invariants
/// every policy must uphold along the way.
fn run_eviction_scenario(replacement: ReplacementKind) -> (bool, bool) {
    let mut cache = LockupFreeCache::new(two_way(replacement));
    for (i, addr) in [A, B].into_iter().enumerate() {
        assert_eq!(
            load(&mut cache, addr, i as u8),
            LoadAccess::Miss(MissKind::Primary)
        );
        fill(&mut cache, addr);
    }
    // Launch a fetch of C into the full set and leave it outstanding.
    assert_eq!(load(&mut cache, C, 2), LoadAccess::Miss(MissKind::Primary));
    // D's fill lands while C is in flight: the policy must displace
    // exactly one of the two resident lines into the victim buffer.
    assert_eq!(load(&mut cache, D, 3), LoadAccess::Miss(MissKind::Primary));
    fill(&mut cache, D);
    let d_block = block(&cache, D);
    assert!(
        cache.contains_block(d_block),
        "[{replacement}] the filled line is resident"
    );
    let a_resident = cache.contains_block(block(&cache, A));
    let b_resident = cache.contains_block(block(&cache, B));
    assert!(
        a_resident != b_resident,
        "[{replacement}] exactly one resident line is displaced, never the in-flight one"
    );
    // The in-flight block stays in transit — a secondary miss, never a
    // victim-buffer hit, and never chosen as the eviction victim.
    assert_eq!(
        load(&mut cache, C, 4),
        LoadAccess::Miss(MissKind::Secondary)
    );
    // The displaced line's data is recoverable from the victim buffer.
    let displaced = if a_resident { B } else { A };
    assert_eq!(
        load(&mut cache, displaced, 5),
        LoadAccess::VictimHit,
        "[{replacement}] the displaced line swaps back from the victim buffer"
    );
    // C's fill still drains both waiting targets and installs the line.
    let c_block = block(&cache, C);
    let targets = cache.fill(c_block);
    assert_eq!(
        targets.len(),
        2,
        "[{replacement}] the outstanding fetch wakes both merged targets"
    );
    assert!(cache.contains_block(c_block));
    assert!(load(&mut cache, C, 6).is_hit());
    (a_resident, b_resident)
}

/// Every policy upholds the transit-safety invariants of the scenario.
#[test]
fn eviction_with_outstanding_fetch_under_each_policy() {
    for replacement in ReplacementKind::all() {
        run_eviction_scenario(replacement);
    }
}

/// The scenario is replay-deterministic for every policy — including
/// Random, whose SplitMix64 stream is fixed by the seed in the config.
#[test]
fn eviction_scenario_is_replay_deterministic() {
    for replacement in ReplacementKind::all() {
        let first = run_eviction_scenario(replacement);
        let second = run_eviction_scenario(replacement);
        assert_eq!(first, second, "[{replacement}] replay diverged");
    }
}

/// Stamp-based policies pick deterministic victims in the scenario with
/// an extra touch of A before D's fill: LRU (and tree-PLRU, which is
/// exact LRU at 2 ways) protects the just-touched A and displaces B;
/// FIFO ignores the touch and displaces A, the older fill.
#[test]
fn touch_order_decides_the_victim_per_policy() {
    for (replacement, expect_a_resident) in [
        (ReplacementKind::Lru, true),
        (ReplacementKind::TreePlru, true),
        (ReplacementKind::Fifo, false),
    ] {
        let mut cache = LockupFreeCache::new(two_way(replacement));
        for (i, addr) in [A, B].into_iter().enumerate() {
            load(&mut cache, addr, i as u8);
            fill(&mut cache, addr);
        }
        // Re-touch A: most recently used, but still the oldest fill.
        assert!(load(&mut cache, A, 2).is_hit());
        assert_eq!(load(&mut cache, C, 3), LoadAccess::Miss(MissKind::Primary));
        load(&mut cache, D, 4);
        fill(&mut cache, D);
        let a_resident = cache.contains_block(block(&cache, A));
        assert_eq!(
            a_resident, expect_a_resident,
            "[{replacement}] wrong victim chosen"
        );
        // The outstanding fetch is untouched either way.
        assert_eq!(
            load(&mut cache, C, 5),
            LoadAccess::Miss(MissKind::Secondary)
        );
    }
}
