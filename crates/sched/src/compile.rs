//! The compile driver: schedules and register-allocates every block of a
//! workload program for a target load latency.
//!
//! This is the model of the paper's "compile the benchmark using
//! instruction scheduling rules pertaining to the architecture of the
//! processor to be modeled" step (§3.2): the same IR program compiled at
//! latency 1 and latency 20 yields different instruction orders, different
//! spill code, and hence different dynamic reference counts (Fig. 4).

use crate::list_schedule::schedule;
use crate::regalloc::{allocate, AllocContext, AllocError};
use nbl_core::hash::FastMap;
use nbl_core::types::{PhysReg, RegClass, REGS_PER_CLASS};
use nbl_trace::ir::{Program, VirtReg};
use nbl_trace::machine::{CompiledProgram, MachineBlock};

/// The scheduled load latencies the paper sweeps (§3.3 / Fig. 4).
pub const LOAD_LATENCIES: [u32; 6] = [1, 2, 3, 6, 10, 20];

/// Base address of the compiler-managed spill area. Far above the
/// workloads' data regions (which stay below 64 × 16 MB; see
/// `nbl_trace::workloads::layout`), so spill traffic and data traffic
/// never alias — though they *do* share the cache, as real spills would.
pub const SPILL_AREA_BASE: u64 = 1 << 40;

/// Bytes of spill area reserved per block.
const SPILL_AREA_PER_BLOCK: u64 = 4096;

/// Errors from compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A block could not be register-allocated.
    Alloc {
        /// Index of the failing block.
        block: usize,
        /// The underlying allocation failure.
        source: AllocError,
    },
    /// More loop-carried registers were requested than the architecture
    /// has (the generators keep well under this).
    TooManyCarried(RegClass),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Alloc { block, source } => {
                write!(f, "register allocation failed in block {block}: {source}")
            }
            CompileError::TooManyCarried(c) => {
                write!(f, "too many loop-carried {c:?} registers")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Per-block carried-register maps plus the leftover int and fp scratch
/// pools.
type CarriedAssignment = (Vec<FastMap<VirtReg, PhysReg>>, Vec<PhysReg>, Vec<PhysReg>);

/// Globally assigns loop-carried virtual registers: each (block, vreg)
/// pair gets its own architectural register so that interleaved block
/// executions never clobber one another's carried state. Returns the per
/// block maps and the per-class scratch pools left over.
fn assign_carried(program: &Program) -> Result<CarriedAssignment, CompileError> {
    let mut next_int: u8 = 0;
    let mut next_fp: u8 = 0;
    let mut maps = Vec::with_capacity(program.blocks.len());
    for block in &program.blocks {
        let mut map = FastMap::default();
        for &v in &block.carried {
            let reg = match block.class_of(v) {
                RegClass::Int => {
                    if next_int >= REGS_PER_CLASS / 2 {
                        return Err(CompileError::TooManyCarried(RegClass::Int));
                    }
                    let r = PhysReg::int(next_int);
                    next_int += 1;
                    r
                }
                RegClass::Fp => {
                    if next_fp >= REGS_PER_CLASS / 2 {
                        return Err(CompileError::TooManyCarried(RegClass::Fp));
                    }
                    let r = PhysReg::fp(next_fp);
                    next_fp += 1;
                    r
                }
            };
            map.insert(v, reg);
        }
        maps.push(map);
    }
    let int_pool: Vec<PhysReg> = (next_int..REGS_PER_CLASS).map(PhysReg::int).collect();
    let fp_pool: Vec<PhysReg> = (next_fp..REGS_PER_CLASS).map(PhysReg::fp).collect();
    Ok((maps, int_pool, fp_pool))
}

/// Compiles `program` for the given scheduled load latency.
///
/// # Errors
///
/// Returns [`CompileError`] if a block cannot be register-allocated or the
/// program declares more loop-carried values than the register files hold.
///
/// # Examples
///
/// ```
/// use nbl_sched::compile::{compile, LOAD_LATENCIES};
/// use nbl_trace::workloads::{build, Scale};
///
/// let program = build("tomcatv", Scale::quick()).unwrap();
/// for lat in LOAD_LATENCIES {
///     let compiled = compile(&program, lat).unwrap();
///     assert_eq!(compiled.load_latency, lat);
/// }
/// ```
pub fn compile(program: &Program, load_latency: u32) -> Result<CompiledProgram, CompileError> {
    debug_assert_eq!(
        program.validate(),
        Ok(()),
        "generators must produce valid programs"
    );
    let (carried_maps, int_pool, fp_pool) = assign_carried(program)?;
    let mut patterns = program.patterns.clone();
    let mut blocks: Vec<MachineBlock> = Vec::with_capacity(program.blocks.len());
    for (bi, block) in program.blocks.iter().enumerate() {
        let order = schedule(block, load_latency);
        let scheduled_ops = order.iter().map(|&i| block.ops[i]).collect();
        let mut ctx = AllocContext {
            carried: &carried_maps[bi],
            int_pool: &int_pool,
            fp_pool: &fp_pool,
            patterns: &mut patterns,
            spill_base: SPILL_AREA_BASE + bi as u64 * SPILL_AREA_PER_BLOCK,
        };
        let mb = allocate(scheduled_ops, block.classes.clone(), &mut ctx)
            .map_err(|source| CompileError::Alloc { block: bi, source })?;
        blocks.push(mb);
    }
    Ok(CompiledProgram {
        name: program.name.clone(),
        load_latency,
        patterns,
        blocks,
        script: program.script.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_trace::exec::Executor;
    use nbl_trace::machine::CountingSink;
    use nbl_trace::workloads::{build, Scale, ALL};

    #[test]
    fn compiles_every_benchmark_at_every_latency() {
        for name in ALL {
            let p = build(name, Scale::quick()).unwrap();
            for lat in LOAD_LATENCIES {
                let c = compile(&p, lat).unwrap_or_else(|e| panic!("{name} at latency {lat}: {e}"));
                assert_eq!(c.blocks.len(), p.blocks.len());
                // Block op counts only grow (spill code).
                for (mb, b) in c.blocks.iter().zip(&p.blocks) {
                    assert!(mb.ops.len() >= b.ops.len());
                    assert_eq!(mb.ops.len(), b.ops.len() + mb.spill_ops);
                }
            }
        }
    }

    #[test]
    fn reference_counts_vary_with_latency() {
        // The Fig. 4 effect: compiling for different latencies changes the
        // dynamic instruction count via spill code for at least some
        // benchmark (register pressure grows as loads hoist).
        let mut any_varied = false;
        for name in ALL {
            let p = build(name, Scale::quick()).unwrap();
            let counts: Vec<u64> = LOAD_LATENCIES
                .iter()
                .map(|&lat| compile(&p, lat).unwrap().dynamic_instructions())
                .collect();
            if counts.windows(2).any(|w| w[0] != w[1]) {
                any_varied = true;
            }
        }
        assert!(
            any_varied,
            "spill code should vary with the scheduled latency somewhere"
        );
    }

    #[test]
    fn compiled_streams_execute() {
        let p = build("doduc", Scale::quick()).unwrap();
        let c = compile(&p, 10).unwrap();
        let mut sink = CountingSink::default();
        Executor::new(&c).run(&mut sink);
        assert_eq!(sink.instructions, c.dynamic_instructions());
        let (l, s, _) = c.dynamic_mix();
        assert_eq!(sink.loads, l);
        assert_eq!(sink.stores, s);
    }

    #[test]
    fn carried_registers_are_globally_disjoint() {
        let p = build("nasa7", Scale::quick()).unwrap(); // three blocks with carried regs
        let (maps, int_pool, fp_pool) = assign_carried(&p).unwrap();
        let mut seen = std::collections::HashSet::new();
        for m in &maps {
            for &r in m.values() {
                assert!(seen.insert(r), "carried register {r} shared across blocks");
                assert!(!int_pool.contains(&r) && !fp_pool.contains(&r));
            }
        }
    }

    #[test]
    fn spill_area_is_disjoint_from_workload_data() {
        let p = build("fpppp", Scale::quick()).unwrap();
        let c = compile(&p, 20).unwrap();
        // Workload-fixed patterns (the IR prefix of the table) stay below
        // the spill area; compiler-added spill slots live at or above it.
        for (i, pat) in c.patterns.iter().enumerate() {
            if let nbl_trace::ir::AddrPattern::Fixed { addr } = pat {
                if i < p.patterns.len() {
                    assert!(
                        *addr < SPILL_AREA_BASE,
                        "workload pattern {i} inside spill area"
                    );
                } else {
                    assert!(
                        *addr >= SPILL_AREA_BASE,
                        "spill slot {i} below the spill area"
                    );
                }
            }
        }
        // Deterministic: compiling twice gives identical programs.
        let c2 = compile(&p, 20).unwrap();
        assert_eq!(c.dynamic_instructions(), c2.dynamic_instructions());
    }
}
