//! The paper's named hardware configurations and full simulation configs.

use nbl_core::cache::{CacheConfig, WriteMissPolicy};
use nbl_core::geometry::CacheGeometry;
use nbl_core::limit::Limit;
use nbl_core::mshr::inverted::InvertedConfig;
use nbl_core::mshr::{MshrConfig, RegisterFileConfig, TargetPolicy};
use nbl_core::tag_array::ReplacementKind;
use std::fmt;

/// A named point in the paper's hardware design space — the legend entries
/// of Figs. 5–18.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HwConfig {
    /// Lockup cache with write-miss allocate: loads *and* stores block
    /// (`mc=0 + wma`, the worst curve).
    Mc0Wma,
    /// Lockup cache with write-around stores (`mc=0`).
    Mc0,
    /// `mc=N`: at most `N` outstanding misses — N MSHRs with one explicitly
    /// addressed target field each. `Mc(1)` is hit-under-miss.
    Mc(u32),
    /// `fc=N`: at most `N` outstanding fetches, unlimited secondary misses
    /// per fetch (idealized unlimited target fields).
    Fc(u32),
    /// `fs=N`: unlimited fetches to the cache, at most `N` per cache set.
    Fs(u32),
    /// In-cache MSHR storage (transit bit; one fetch per cache line) with
    /// a full-line read port.
    InCache,
    /// In-cache MSHR storage whose read port needs the given extra cycles
    /// to recover MSHR state on each fill (§2.3's narrow-port caveat).
    InCacheNarrowPort(u32),
    /// Extension (paper §2.4's sketch, not evaluated there): `fc=N` MSHRs
    /// *plus* non-blocking write-miss allocation — store misses occupy an
    /// MSHR with a write-buffer destination instead of stalling.
    FcWma(u32),
    /// Unlimited MSHRs, one per fetch, each with the given target-field
    /// layout — the Fig. 14 implicit/explicit/hybrid sweep.
    Targets(TargetPolicy),
    /// The inverted MSHR: no restrictions ("no restrict").
    NoRestrict,
}

impl HwConfig {
    /// The seven configurations of the baseline MCPI figures
    /// (Figs. 5, 9, 11, 12, 16, 17), worst to best.
    pub fn baseline_seven() -> Vec<HwConfig> {
        vec![
            HwConfig::Mc0Wma,
            HwConfig::Mc0,
            HwConfig::Mc(1),
            HwConfig::Mc(2),
            HwConfig::Fc(1),
            HwConfig::Fc(2),
            HwConfig::NoRestrict,
        ]
    }

    /// The six configurations of the Fig. 13 table: `mc=0, mc=1, mc=2,
    /// fc=1, fc=2, ∞`.
    pub fn table13_six() -> Vec<HwConfig> {
        vec![
            HwConfig::Mc0,
            HwConfig::Mc(1),
            HwConfig::Mc(2),
            HwConfig::Fc(1),
            HwConfig::Fc(2),
            HwConfig::NoRestrict,
        ]
    }

    /// The paper's legend label.
    pub fn label(&self) -> String {
        match self {
            HwConfig::Mc0Wma => "mc=0 + wma".into(),
            HwConfig::Mc0 => "mc=0".into(),
            HwConfig::Mc(n) => format!("mc={n}"),
            HwConfig::Fc(n) => format!("fc={n}"),
            HwConfig::Fs(n) => format!("fs={n}"),
            HwConfig::FcWma(n) => format!("fc={n} + nb-wma"),
            HwConfig::InCache => "in-cache".into(),
            HwConfig::InCacheNarrowPort(k) => format!("in-cache +{k}cy read"),
            HwConfig::Targets(p) => format!("targets {p}"),
            HwConfig::NoRestrict => "no restrict".into(),
        }
    }

    /// The MSHR organization realizing this configuration.
    pub fn mshr_config(&self) -> MshrConfig {
        match self {
            HwConfig::Mc0Wma | HwConfig::Mc0 => MshrConfig::Blocking,
            HwConfig::Mc(n) => MshrConfig::Register(RegisterFileConfig {
                entries: Limit::Finite(*n),
                targets: TargetPolicy::explicit(Limit::Finite(1)),
                max_outstanding_misses: Limit::Finite(*n),
                max_fetches_per_set: Limit::Unlimited,
            }),
            HwConfig::Fc(n) | HwConfig::FcWma(n) => MshrConfig::Register(RegisterFileConfig {
                entries: Limit::Finite(*n),
                targets: TargetPolicy::explicit(Limit::Unlimited),
                max_outstanding_misses: Limit::Unlimited,
                max_fetches_per_set: Limit::Unlimited,
            }),
            HwConfig::Fs(n) => MshrConfig::Register(RegisterFileConfig {
                entries: Limit::Unlimited,
                targets: TargetPolicy::explicit(Limit::Unlimited),
                max_outstanding_misses: Limit::Unlimited,
                max_fetches_per_set: Limit::Finite(*n),
            }),
            HwConfig::InCache => MshrConfig::InCache {
                targets: TargetPolicy::explicit(Limit::Unlimited),
                read_extra_cycles: 0,
            },
            HwConfig::InCacheNarrowPort(k) => MshrConfig::InCache {
                targets: TargetPolicy::explicit(Limit::Unlimited),
                read_extra_cycles: *k,
            },
            HwConfig::Targets(p) => MshrConfig::Register(RegisterFileConfig {
                entries: Limit::Unlimited,
                targets: *p,
                max_outstanding_misses: Limit::Unlimited,
                max_fetches_per_set: Limit::Unlimited,
            }),
            HwConfig::NoRestrict => MshrConfig::Inverted(InvertedConfig::typical()),
        }
    }

    /// The store-miss policy (write-around everywhere except `mc=0+wma`).
    pub fn write_miss_policy(&self) -> WriteMissPolicy {
        match self {
            HwConfig::Mc0Wma | HwConfig::FcWma(_) => WriteMissPolicy::WriteAllocate,
            _ => WriteMissPolicy::WriteAround,
        }
    }

    /// Assembles the cache configuration over `geometry` (LRU replacement;
    /// [`SimConfig`] overrides the policy when sweeping it).
    pub fn cache_config(&self, geometry: CacheGeometry) -> CacheConfig {
        CacheConfig {
            geometry,
            write_miss: self.write_miss_policy(),
            mshr: self.mshr_config(),
            victim_entries: 0,
            replacement: ReplacementKind::default(),
        }
    }
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Processor issue policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IssueWidth {
    /// One instruction per cycle (paper §3.1, all baseline figures).
    #[default]
    Single,
    /// Two instructions per cycle, one memory port (paper §6 / Fig. 19).
    Dual,
}

/// Which processor model runs the workload — the sweep axis of the
/// `figures replaymodel` exhibit. Maps one-to-one onto
/// [`nbl_cpu::issue::IssuePolicy`] via [`ProcessorKind::policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessorKind {
    /// The paper's stalling single-issue pipeline (§3.1).
    #[default]
    SingleInOrder,
    /// The dual-issue pipeline (§6 / Fig. 19).
    DualInOrder,
    /// The speculative pipeline that replays loads on XiangShan-style
    /// causes instead of stalling at issue (extension).
    ReplayCause,
}

impl ProcessorKind {
    /// Every model, in sweep order.
    pub const ALL: [ProcessorKind; 3] = [
        ProcessorKind::SingleInOrder,
        ProcessorKind::DualInOrder,
        ProcessorKind::ReplayCause,
    ];

    /// Stable short label for CSV/JSON emitters and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ProcessorKind::SingleInOrder => "single",
            ProcessorKind::DualInOrder => "dual",
            ProcessorKind::ReplayCause => "replay",
        }
    }

    /// The issue policy driving the shared engine for this model.
    pub fn policy(self) -> nbl_cpu::IssuePolicy {
        match self {
            ProcessorKind::SingleInOrder => nbl_cpu::IssuePolicy::SingleInOrder,
            ProcessorKind::DualInOrder => nbl_cpu::IssuePolicy::DualInOrder,
            ProcessorKind::ReplayCause => nbl_cpu::IssuePolicy::ReplayCause,
        }
    }
}

impl fmt::Display for ProcessorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A complete simulation configuration. `Hash` feeds the artifact
/// store's content-addressed result keys (via
/// [`nbl_core::fingerprint::fingerprint_of`]), so every field that can
/// change a [`crate::driver::RunResult`] must stay in the derive.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct SimConfig {
    /// MSHR organization and write policy.
    pub hw: HwConfig,
    /// Cache geometry (baseline: 8 KB direct mapped, 32 B lines).
    pub geometry: CacheGeometry,
    /// Miss penalty in cycles (baseline: 16).
    pub miss_penalty: u32,
    /// Scheduled load latency the workload is compiled for (§3.3).
    pub load_latency: u32,
    /// Issue width.
    pub issue: IssueWidth,
    /// Processor model for the single-width driver rails (`figures
    /// replaymodel` sweeps it; the paper's figures keep the default).
    pub processor: ProcessorKind,
    /// Minimum cycles between fetch completions (0 = the paper's fully
    /// pipelined memory; nonzero only in the bandwidth ablation).
    pub memory_gap: u32,
    /// Optional second-level cache: `(size_bytes, hit_penalty)` with the
    /// L1's line size. `None` reproduces the paper's flat hierarchy; when
    /// set, `miss_penalty` becomes the L2-*miss* penalty (extension).
    pub l2: Option<(u64, u32)>,
    /// Entries in a fully associative victim buffer next to the L1
    /// (Jouppi 1990); 0 reproduces the paper (extension).
    pub victim_entries: usize,
    /// Replacement policy of the L1 (and any L2) tag array. LRU — the
    /// paper's policy — is the default; `figures replsens` sweeps it.
    pub replacement: ReplacementKind,
}

impl SimConfig {
    /// The paper's baseline system around the given hardware config:
    /// 8 KB direct-mapped cache, 32-byte lines, 16-cycle penalty,
    /// single issue, scheduled load latency 10.
    pub fn baseline(hw: HwConfig) -> SimConfig {
        SimConfig {
            hw,
            geometry: CacheGeometry::baseline(),
            miss_penalty: 16,
            load_latency: 10,
            issue: IssueWidth::Single,
            processor: ProcessorKind::default(),
            memory_gap: 0,
            l2: None,
            victim_entries: 0,
            replacement: ReplacementKind::default(),
        }
    }

    /// Same configuration at a different scheduled load latency.
    #[must_use]
    pub fn at_latency(mut self, load_latency: u32) -> SimConfig {
        self.load_latency = load_latency;
        self
    }

    /// Same configuration with a different miss penalty.
    #[must_use]
    pub fn with_penalty(mut self, miss_penalty: u32) -> SimConfig {
        self.miss_penalty = miss_penalty;
        self
    }

    /// Same configuration over a different geometry.
    #[must_use]
    pub fn with_geometry(mut self, geometry: CacheGeometry) -> SimConfig {
        self.geometry = geometry;
        self
    }

    /// Same configuration with a bandwidth-limited memory (ablation).
    #[must_use]
    pub fn with_memory_gap(mut self, memory_gap: u32) -> SimConfig {
        self.memory_gap = memory_gap;
        self
    }

    /// Same configuration with a second-level cache of `size_bytes` and
    /// the given L1-miss/L2-hit penalty; `miss_penalty` then applies to
    /// L2 misses (extension).
    #[must_use]
    pub fn with_l2(mut self, size_bytes: u64, hit_penalty: u32) -> SimConfig {
        self.l2 = Some((size_bytes, hit_penalty));
        self
    }

    /// Same configuration with an `entries`-line victim buffer (extension).
    #[must_use]
    pub fn with_victim_buffer(mut self, entries: usize) -> SimConfig {
        self.victim_entries = entries;
        self
    }

    /// Same configuration under a different replacement policy (applies
    /// to the L1 and any configured L2).
    #[must_use]
    pub fn with_replacement(mut self, replacement: ReplacementKind) -> SimConfig {
        self.replacement = replacement;
        self
    }

    /// Same configuration under a different processor model.
    #[must_use]
    pub fn with_processor(mut self, processor: ProcessorKind) -> SimConfig {
        self.processor = processor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(HwConfig::Mc0Wma.label(), "mc=0 + wma");
        assert_eq!(HwConfig::Mc0.label(), "mc=0");
        assert_eq!(HwConfig::Mc(1).label(), "mc=1");
        assert_eq!(HwConfig::Fc(2).label(), "fc=2");
        assert_eq!(HwConfig::Fs(1).label(), "fs=1");
        assert_eq!(HwConfig::NoRestrict.label(), "no restrict");
    }

    #[test]
    fn mc_configs_cap_misses() {
        match HwConfig::Mc(2).mshr_config() {
            MshrConfig::Register(c) => {
                assert_eq!(c.entries, Limit::Finite(2));
                assert_eq!(c.max_outstanding_misses, Limit::Finite(2));
                assert_eq!(c.targets.total_fields(), Limit::Finite(1));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn fc_configs_allow_unlimited_secondaries() {
        match HwConfig::Fc(1).mshr_config() {
            MshrConfig::Register(c) => {
                assert_eq!(c.entries, Limit::Finite(1));
                assert_eq!(c.max_outstanding_misses, Limit::Unlimited);
                assert_eq!(c.targets.total_fields(), Limit::Unlimited);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn only_wma_allocates_on_store_miss() {
        assert_eq!(
            HwConfig::Mc0Wma.write_miss_policy(),
            WriteMissPolicy::WriteAllocate
        );
        for hw in HwConfig::baseline_seven().into_iter().skip(1) {
            assert_eq!(hw.write_miss_policy(), WriteMissPolicy::WriteAround);
        }
    }

    #[test]
    fn baseline_sim_config() {
        let c = SimConfig::baseline(HwConfig::NoRestrict);
        assert_eq!(c.geometry.size_bytes(), 8192);
        assert_eq!(c.miss_penalty, 16);
        assert_eq!(c.load_latency, 10);
        let c2 = c.clone().at_latency(6).with_penalty(32);
        assert_eq!(c2.load_latency, 6);
        assert_eq!(c2.miss_penalty, 32);
    }

    #[test]
    fn config_sets_cover_the_figures() {
        assert_eq!(HwConfig::baseline_seven().len(), 7);
        assert_eq!(HwConfig::table13_six().len(), 6);
    }
}
