//! The port-based memory system the processor models drive.
//!
//! [`MemorySystem`] composes the hierarchy of the paper's §3.1 machine —
//! L1 + MSHRs → optional L2 tags → pipelined main memory, with the write
//! buffer alongside — behind a narrow port:
//!
//! * [`MemorySystem::access_load`] / [`MemorySystem::access_store`] submit
//!   one access and report how it resolved ([`LoadResponse`] /
//!   [`StoreResponse`]);
//! * [`MemorySystem::next_event`] peeks the next fill completion time;
//! * [`MemorySystem::advance_to`] applies every fill due by a given cycle,
//!   in completion order, handing each [`FillEvent`] to the caller;
//! * [`MemorySystem::advance_to_next_event`] force-applies the earliest
//!   outstanding fill regardless of the clock — the stall primitive.
//!
//! The processor owns *when* (its issue clock, stall accounting, register
//! scoreboard); the memory system owns *what happens to memory traffic*
//! (MSHR tracking, fetch launch and latency selection, fill ordering,
//! write buffering). Each non-hit access moves through the explicit
//! lifecycle `Issued → Merged | Rejected | FetchLaunched → Filled →
//! TargetsWoken`, observable via [`MemorySystem::enable_tracing`] — see
//! [`crate::event`].

use crate::event::{AccessKind, MemEvent, MemEventSink, MemTrace, ReplayCause, ServiceLevel};
use crate::memory::{MemoryError, PipelinedMemory};
use crate::write_buffer::{RetirePolicy, WriteBuffer, WriteBufferStats};
use nbl_core::cache::{CacheConfig, LoadAccess, LockupFreeCache, StoreAccess};
use nbl_core::geometry::{CacheGeometry, DecodedAddr};
use nbl_core::mshr::{MissKind, Rejection, TargetRecord};
use nbl_core::tag_array::{ReplacementKind, TagArray};
use nbl_core::types::{Addr, BlockAddr, Cycle, Dest, LoadFormat};
use std::fmt;

/// A second-level cache between the L1 and main memory — an extension
/// beyond the paper, which studies only on-chip first-level caches and
/// cites two-level caching as adjacent work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Params {
    /// L2 geometry (must have the same line size as the L1).
    pub geometry: CacheGeometry,
    /// Cycles for an L1 miss that hits in the L2 (instead of the full
    /// miss penalty).
    pub hit_penalty: u32,
    /// Replacement policy of the L2 tag array.
    pub replacement: ReplacementKind,
}

/// Configuration of the memory system.
#[derive(Debug, Clone)]
pub struct MemSystemConfig {
    /// Data cache (geometry, write policy, MSHR organization).
    pub cache: CacheConfig,
    /// Miss penalty in cycles (paper baseline: 16).
    pub miss_penalty: u32,
    /// Minimum cycles between successive fetch completions: 0 is the
    /// paper's fully pipelined memory; larger values model a
    /// bandwidth-limited bus (ablation only).
    pub memory_gap: u32,
    /// Optional second-level cache (extension; `None` reproduces the
    /// paper's flat L1 + memory hierarchy).
    pub l2: Option<L2Params>,
    /// Write-buffer retirement policy (paper: free).
    pub retire: RetirePolicy,
}

impl MemSystemConfig {
    /// Baseline memory (16-cycle penalty, free-retirement write buffer)
    /// over the given cache.
    pub fn with_cache(cache: CacheConfig) -> MemSystemConfig {
        MemSystemConfig {
            cache,
            miss_penalty: 16,
            memory_gap: 0,
            l2: None,
            retire: RetirePolicy::Free,
        }
    }
}

/// How a load access resolved at the port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadResponse {
    /// The line is resident: data this cycle.
    Hit,
    /// The line was recovered from the victim buffer; the swap costs the
    /// processor one cycle.
    VictimHit,
    /// A non-blocking miss is now tracked (primary: a fetch was launched;
    /// secondary: merged into an in-flight fetch). The destination
    /// register becomes valid at the fill.
    Pending {
        /// Primary or secondary.
        kind: MissKind,
    },
    /// A blocking miss was serviced synchronously: the line is resident,
    /// but the data is usable only at `at` — the processor stalls until
    /// then.
    Ready {
        /// When the miss service completes.
        at: Cycle,
    },
    /// The MSHR organization could not track the miss. The processor must
    /// wait for a fill ([`MemorySystem::advance_to_next_event`]) and
    /// retry the access.
    Retry(Rejection),
}

/// Final hit/miss resolution of one memory access, recorded by the
/// outcome tap ([`MemorySystem::enable_outcome_tap`]). Rejected accesses
/// ([`LoadResponse::Retry`]) record nothing — a rejection leaves the tag
/// array untouched and the retried access records its eventual
/// resolution — so with a single in-order issue stream the *n*-th
/// recorded outcome corresponds to the *n*-th memory instruction in
/// program order. This is the observation side of the static cache
/// oracle's cross-check (DESIGN.md §18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access hit in the L1 tag array.
    Hit,
    /// The access hit in the victim buffer (counts as resident data, but
    /// not an L1 tag hit — the oracle refuses configs where this can
    /// occur).
    VictimHit,
    /// The access missed: primary, secondary (merged into an in-flight
    /// fetch), or serviced synchronously by a blocking cache.
    Miss,
}

/// How a store access resolved at the port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreResponse {
    /// Hit or write-around miss: the store is buffered, the processor
    /// continues immediately.
    Done,
    /// A non-blocking write-allocate miss is tracked; the store data
    /// waits in the write buffer for the line, the processor continues.
    Pending {
        /// Primary or secondary.
        kind: MissKind,
    },
    /// A blocking write-allocate miss was serviced synchronously; the
    /// processor stalls until `at`.
    Ready {
        /// When the miss service completes.
        at: Cycle,
    },
}

/// How a *speculative* load access resolved at the port (the replaying
/// pipeline model's view of [`MemorySystem::access_load_replay`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayLoadResponse {
    /// The access reached the data array; the inner [`LoadResponse`] says
    /// how it resolved (a miss still completes out of order via the MSHRs).
    Proceed(LoadResponse),
    /// The access was thrown back before (or at) the data array and must
    /// be replayed; the processor charges the cause's replay penalty and
    /// reissues.
    Replay(ReplayCause),
}

/// Number of data-array banks the replaying model's conflict check uses
/// (8-byte interleaving, so bits `[3..6]` of the address select the bank).
const LOAD_BANKS: usize = 8;

/// How long one access occupies its bank.
const BANK_BUSY_CYCLES: u64 = 2;

/// Window (in cycles) after a store during which an overlapping load
/// cannot forward cleanly and replays with [`ReplayCause::ForwardFail`].
const FWD_WINDOW: u64 = 4;

/// Pre-access state the replaying pipeline model classifies against:
/// per-bank busy times for the bank-conflict check and the most recent
/// store for the forwarding-failure window. The stalling models never
/// touch it, so their timing is unaffected.
#[derive(Debug, Clone, Default)]
struct ReplayClassifier {
    /// `bank_free_at[b]` = first cycle bank `b` accepts a new access.
    bank_free_at: [u64; LOAD_BANKS],
    /// Block and time of the most recent store, for the forwarding window.
    last_store: Option<(BlockAddr, Cycle)>,
}

impl ReplayClassifier {
    #[inline]
    fn bank_of(addr: Addr) -> usize {
        ((addr.0 >> 3) as usize) % LOAD_BANKS
    }

    #[inline]
    fn forward_fail(&self, block: BlockAddr, now: Cycle) -> bool {
        self.last_store
            .is_some_and(|(b, at)| b == block && now.0 < at.0 + FWD_WINDOW)
    }
}

/// One applied fill: the line is installed and all of its waiting targets
/// woke simultaneously at `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillEvent {
    /// The filled block.
    pub block: BlockAddr,
    /// Completion time.
    pub at: Cycle,
    /// Every target that was waiting on the line (registers to mark
    /// valid, write-buffer slots, prefetch tags).
    pub targets: Vec<TargetRecord>,
}

/// Why a [`FusedMemGroup`] could not be formed over a set of memory
/// systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupError {
    /// The group has no members: there is nothing to share a decode with.
    Empty,
    /// A member decodes addresses differently from the first, so one
    /// shared set/tag split would be unsound for it.
    GeometryMismatch {
        /// The first member's L1 geometry, which the group adopted.
        expected: CacheGeometry,
        /// The mismatching member's L1 geometry.
        found: CacheGeometry,
    },
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::Empty => write!(f, "fused memory group is empty"),
            GroupError::GeometryMismatch { expected, found } => {
                write!(
                    f,
                    "fused memory group mixes geometries {expected} and {found}"
                )
            }
        }
    }
}

impl std::error::Error for GroupError {}

/// Shared-decode driver for a fused group of memory systems replaying
/// one address stream. Configurations in a fused group see the *same*
/// addresses, so the set-index/tag/block split is shared structure, not
/// per-config work — but only when every member decodes addresses
/// identically. Construction checks exactly that (one common L1
/// geometry); [`FusedMemGroup::decode`] then derives each address's
/// [`DecodedAddr`] once, and [`MemorySystem::access_load_group`] (or
/// per-system [`MemorySystem::access_load_decoded`] /
/// [`MemorySystem::access_store_decoded`] calls) fan it out to the
/// per-config MSHR banks and write buffers. Tag *state* still diverges
/// across members (fill timing differs per config), so probe results are
/// never shared — only the decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedMemGroup {
    geometry: CacheGeometry,
}

impl FusedMemGroup {
    /// Forms a group over `systems`, validating that every member shares
    /// the first member's L1 geometry.
    ///
    /// # Errors
    ///
    /// [`GroupError::Empty`] for an empty iterator and
    /// [`GroupError::GeometryMismatch`] when members disagree on how to
    /// decode an address.
    pub fn new<'a>(
        systems: impl IntoIterator<Item = &'a MemorySystem>,
    ) -> Result<FusedMemGroup, GroupError> {
        let mut geometry = None;
        for system in systems {
            let g = system.l1.config().geometry;
            match geometry {
                None => geometry = Some(g),
                Some(expected) if expected != g => {
                    return Err(GroupError::GeometryMismatch { expected, found: g })
                }
                Some(_) => {}
            }
        }
        geometry
            .map(|geometry| FusedMemGroup { geometry })
            .ok_or(GroupError::Empty)
    }

    /// The geometry every member decodes addresses under.
    #[inline]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Decodes `addr` once for the whole group.
    #[inline]
    pub fn decode(&self, addr: Addr) -> DecodedAddr {
        self.geometry.decode(addr)
    }
}

/// The composed memory hierarchy behind the port. See the module docs.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l1: LockupFreeCache,
    /// Tag-only second-level cache (extension): a bare [`TagArray`] and
    /// its hit penalty. Probed once per L1 fetch.
    l2: Option<(TagArray, u32)>,
    memory: PipelinedMemory,
    write_buffer: WriteBuffer,
    /// Lifecycle observer; `None` (the default) records nothing and costs
    /// one pointer null-check per access.
    trace: Option<Box<MemTrace>>,
    /// Per-access outcome tap; `None` (the default) records nothing and
    /// costs one null-check per access, like `trace`.
    outcomes: Option<Vec<AccessOutcome>>,
    next_txn: u64,
    /// Recycled target vectors for [`FillEvent`]s: the processor hands each
    /// consumed event back via [`MemorySystem::recycle_fill`], so a
    /// warmed-up system builds fills without touching the allocator.
    spare_targets: Vec<Vec<TargetRecord>>,
    /// Replay-cause classification state (only the replaying pipeline
    /// model reads or writes it).
    replay: ReplayClassifier,
}

impl MemorySystem {
    /// Builds the hierarchy. In-cache MSHR storage with a narrow read
    /// port pays extra cycles to recover the MSHR state on every fill
    /// (§2.3); it is modeled as added fill latency on every service path.
    ///
    /// # Panics
    ///
    /// Panics if an L2 is configured with a different line size than the
    /// L1.
    pub fn new(config: MemSystemConfig) -> MemorySystem {
        let effective_penalty = config.miss_penalty + config.cache.mshr.fill_extra_cycles();
        let l2 = config.l2.as_ref().map(|p| {
            assert_eq!(
                p.geometry.line_bytes(),
                config.cache.geometry.line_bytes(),
                "L1 and L2 must share a line size"
            );
            let tags = TagArray::new(p.geometry, p.replacement);
            (tags, p.hit_penalty + config.cache.mshr.fill_extra_cycles())
        });
        MemorySystem {
            memory: PipelinedMemory::with_gap(effective_penalty, config.memory_gap),
            l2,
            l1: LockupFreeCache::new(config.cache),
            write_buffer: WriteBuffer::new(config.retire),
            trace: None,
            outcomes: None,
            next_txn: 0,
            spare_targets: Vec::new(),
            replay: ReplayClassifier::default(),
        }
    }

    /// Returns the hierarchy to its freshly-built state — caches invalid,
    /// nothing in flight, counters zero, tracing off — while keeping every
    /// internal allocation for reuse by the next run on this worker.
    pub fn reset(&mut self) {
        self.l1.reset();
        if let Some((l2, _)) = self.l2.as_mut() {
            l2.reset();
        }
        self.memory.reset();
        self.write_buffer.reset();
        self.trace = None;
        self.outcomes = None;
        self.next_txn = 0;
        self.replay = ReplayClassifier::default();
    }

    /// Hands a consumed [`FillEvent`]'s target vector back for reuse by a
    /// later fill. Dropping the event instead is always correct — this is
    /// purely an allocation-avoidance fast path.
    pub fn recycle_fill(&mut self, mut fill: FillEvent) {
        fill.targets.clear();
        self.spare_targets.push(fill.targets);
    }

    /// Starts recording lifecycle events into a fresh [`MemTrace`] whose
    /// ring keeps the last `ring_capacity` raw events.
    pub fn enable_tracing(&mut self, ring_capacity: usize) {
        self.trace = Some(Box::new(MemTrace::new(ring_capacity)));
    }

    /// The trace recorded so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&MemTrace> {
        self.trace.as_deref()
    }

    /// Stops tracing and returns the recorded trace.
    pub fn take_trace(&mut self) -> Option<MemTrace> {
        self.trace.take().map(|b| *b)
    }

    /// Starts recording one [`AccessOutcome`] per finally-resolved memory
    /// access (the cross-check probe of the static cache oracle). Costs
    /// one null-check per access when off, like lifecycle tracing.
    pub fn enable_outcome_tap(&mut self) {
        self.outcomes = Some(Vec::new());
    }

    /// The outcomes recorded so far, if the tap is enabled.
    pub fn outcomes(&self) -> Option<&[AccessOutcome]> {
        self.outcomes.as_deref()
    }

    /// Stops the outcome tap and returns the recorded outcomes.
    pub fn take_outcomes(&mut self) -> Option<Vec<AccessOutcome>> {
        self.outcomes.take()
    }

    #[inline]
    fn note_outcome(&mut self, outcome: AccessOutcome) {
        if let Some(v) = self.outcomes.as_mut() {
            v.push(outcome);
        }
    }

    #[inline]
    fn emit(&mut self, event: MemEvent) {
        if let Some(t) = self.trace.as_deref_mut() {
            // nbl-allow(event-guard): this wrapper IS the guard every other emit site routes through
            t.record(&event);
        }
    }

    #[inline]
    fn fresh_txn(&mut self) -> u64 {
        let t = self.next_txn;
        self.next_txn += 1;
        t
    }

    /// The first-level data cache (read-only: counters, geometry).
    #[inline]
    pub fn l1(&self) -> &LockupFreeCache {
        &self.l1
    }

    /// Write-buffer statistics.
    #[inline]
    pub fn write_buffer_stats(&self) -> WriteBufferStats {
        self.write_buffer.stats()
    }

    /// Number of fetches in flight.
    #[inline]
    pub fn outstanding_fetches(&self) -> usize {
        self.memory.outstanding()
    }

    /// The block containing `addr` under the L1 geometry.
    #[inline]
    pub fn block_of(&self, addr: Addr) -> BlockAddr {
        self.l1.block_of(addr)
    }

    /// `true` when a second-level cache is configured.
    #[inline]
    pub fn has_l2(&self) -> bool {
        self.l2.is_some()
    }

    /// Direct-mapped load-hit fast path with pre-decoded set and tag: the
    /// monomorphic fused kernel's first probe. Returns `true` — and
    /// counts the hit — exactly when [`MemorySystem::access_load`] would
    /// answer [`LoadResponse::Hit`] under a `ways == 1` L1 (a hit never
    /// reaches the MSHRs, the L2 or the write buffer, and emits no trace
    /// events). On `false` nothing is recorded; the caller falls back to
    /// the full port.
    #[inline]
    pub fn load_hit_direct(&mut self, set: u32, tag: u64) -> bool {
        if self.l1.load_hit_direct(set, tag) {
            if self.outcomes.is_some() {
                self.note_outcome(AccessOutcome::Hit);
            }
            return true;
        }
        false
    }

    /// Direct-mapped store-hit fast path: the [`StoreResponse::Done`]
    /// hit twin of [`MemorySystem::load_hit_direct`] — counts the hit and
    /// buffers the store. Same fall-back contract on `false`.
    #[inline]
    pub fn store_hit_direct(&mut self, addr: Addr, set: u32, tag: u64, now: Cycle) -> bool {
        if self.l1.store_hit_direct(set, tag) {
            if self.outcomes.is_some() {
                self.note_outcome(AccessOutcome::Hit);
            }
            self.write_buffer.push(addr, now);
            return true;
        }
        false
    }

    /// Steps one load of a shared replay stream through every system of a
    /// fused group: the address is decoded once under the group's common
    /// geometry and the result fanned out to each system's MSHR banks via
    /// [`MemorySystem::access_load_decoded`]. `nows` gives each system's
    /// current cycle (fused cores run skewed clocks); one response per
    /// system is appended to `out`, in group order.
    pub fn access_load_group(
        group: &FusedMemGroup,
        systems: &mut [&mut MemorySystem],
        addr: Addr,
        dest: Dest,
        format: LoadFormat,
        nows: &[Cycle],
        out: &mut Vec<LoadResponse>,
    ) {
        debug_assert_eq!(systems.len(), nows.len());
        let decoded = group.decode(addr);
        for (system, &now) in systems.iter_mut().zip(nows) {
            debug_assert_eq!(system.l1.config().geometry, *group.geometry());
            out.push(system.access_load_decoded(&decoded, dest, format, now));
        }
    }

    /// Latency of fetching `block`: the L2 hit penalty when an L2 is
    /// configured and holds the line, otherwise the full miss penalty.
    /// Probing also updates the (inclusive) L2 tags: a hit touches the
    /// line for the replacement policy, and a missing line is installed,
    /// modeling the fill on its way to the L1.
    fn fetch_latency(&mut self, block: BlockAddr) -> (u32, ServiceLevel) {
        let Some((l2, hit_penalty)) = self.l2.as_mut() else {
            return (self.memory.miss_penalty(), ServiceLevel::Memory);
        };
        if l2.touch(block) {
            (*hit_penalty, ServiceLevel::L2Hit)
        } else {
            l2.install(block); // tag-only and write-through: evictions drop
            (self.memory.miss_penalty(), ServiceLevel::Memory)
        }
    }

    /// Launches the fetch of a primary miss and emits its lifecycle
    /// events. Returns the fill time.
    fn launch_fetch(&mut self, txn: u64, block: BlockAddr, now: Cycle) -> Cycle {
        let (latency, level) = self.fetch_latency(block);
        let fill_at = self.memory.issue_fetch_after(block, now, latency);
        self.emit(MemEvent::FetchLaunched {
            txn,
            block,
            at: now,
            fill_at,
            level,
        });
        fill_at
    }

    /// Services a blocking miss synchronously: probes the hierarchy for
    /// the latency, installs the line, and returns the completion time
    /// plus whatever targets the fill woke.
    fn blocking_service(
        &mut self,
        txn: u64,
        block: BlockAddr,
        now: Cycle,
    ) -> (Cycle, Vec<TargetRecord>) {
        let (latency, level) = self.fetch_latency(block);
        let at = now.plus(u64::from(latency));
        self.emit(MemEvent::FetchLaunched {
            txn,
            block,
            at: now,
            fill_at: at,
            level,
        });
        let targets = self.l1.fill(block);
        self.emit(MemEvent::Filled { block, at });
        self.emit(MemEvent::TargetsWoken {
            block,
            at,
            targets: targets.len() as u32,
        });
        (at, targets)
    }

    /// Submits a load at time `now`. Hits resolve immediately; misses are
    /// tracked, serviced synchronously (blocking cache), or rejected —
    /// see [`LoadResponse`]. The port never advances the clock; the
    /// caller charges whatever stall the response implies.
    pub fn access_load(
        &mut self,
        addr: Addr,
        dest: Dest,
        format: LoadFormat,
        now: Cycle,
    ) -> LoadResponse {
        let decoded = self.l1.config().geometry.decode(addr);
        self.access_load_decoded(&decoded, dest, format, now)
    }

    /// [`MemorySystem::access_load`] with the address already decoded
    /// under this system's L1 geometry — the per-system half of the fused
    /// group step ([`MemorySystem::access_load_group`]): the shared decode
    /// happens once, the MSHR/write-buffer state transition stays here.
    pub fn access_load_decoded(
        &mut self,
        decoded: &DecodedAddr,
        dest: Dest,
        format: LoadFormat,
        now: Cycle,
    ) -> LoadResponse {
        let response = match self.l1.access_load_decoded(decoded, dest, format) {
            LoadAccess::Hit => LoadResponse::Hit,
            LoadAccess::VictimHit => LoadResponse::VictimHit,
            LoadAccess::Miss(kind) => {
                let block = decoded.block;
                if self.trace.is_some() {
                    let txn = self.fresh_txn();
                    self.emit(MemEvent::Issued {
                        txn,
                        kind: AccessKind::Load,
                        block,
                        at: now,
                    });
                    match kind {
                        MissKind::Primary => {
                            self.launch_fetch(txn, block, now);
                        }
                        MissKind::Secondary => self.emit(MemEvent::Merged {
                            txn,
                            block,
                            at: now,
                        }),
                    }
                } else if kind == MissKind::Primary {
                    let (latency, _) = self.fetch_latency(block);
                    self.memory.issue_fetch_after(block, now, latency);
                }
                LoadResponse::Pending { kind }
            }
            LoadAccess::Stalled(Rejection::Blocking) => {
                // Lockup cache: service the whole miss synchronously; the
                // data is then in the cache and usable at `at`.
                let block = decoded.block;
                let txn = self.fresh_txn();
                self.emit(MemEvent::Issued {
                    txn,
                    kind: AccessKind::Load,
                    block,
                    at: now,
                });
                let (at, woken) = self.blocking_service(txn, block, now);
                debug_assert!(woken.is_empty(), "blocking cache has no waiting targets");
                LoadResponse::Ready { at }
            }
            LoadAccess::Stalled(reason) => {
                if self.trace.is_some() {
                    let block = decoded.block;
                    let txn = self.fresh_txn();
                    self.emit(MemEvent::Issued {
                        txn,
                        kind: AccessKind::Load,
                        block,
                        at: now,
                    });
                    self.emit(MemEvent::Rejected {
                        txn,
                        block,
                        reason,
                        at: now,
                    });
                }
                LoadResponse::Retry(reason)
            }
        };
        if self.outcomes.is_some() {
            match &response {
                LoadResponse::Hit => self.note_outcome(AccessOutcome::Hit),
                LoadResponse::VictimHit => self.note_outcome(AccessOutcome::VictimHit),
                LoadResponse::Pending { .. } | LoadResponse::Ready { .. } => {
                    self.note_outcome(AccessOutcome::Miss);
                }
                // A rejection leaves the tag state untouched; the retried
                // access records the final resolution.
                LoadResponse::Retry(_) => {}
            }
        }
        response
    }

    /// Submits a store at time `now`. Write-around misses and hits are
    /// buffered immediately; write-allocate misses fetch their line,
    /// non-blocking when the MSHRs can track them — see [`StoreResponse`].
    pub fn access_store(&mut self, addr: Addr, now: Cycle) -> StoreResponse {
        let decoded = self.l1.config().geometry.decode(addr);
        self.access_store_decoded(&decoded, now)
    }

    /// [`MemorySystem::access_store`] with the address already decoded
    /// under this system's L1 geometry (the store half of the fused group
    /// step).
    pub fn access_store_decoded(&mut self, decoded: &DecodedAddr, now: Cycle) -> StoreResponse {
        let addr = decoded.addr;
        let access = self.l1.access_store_decoded(decoded);
        if self.outcomes.is_some() {
            self.note_outcome(match access {
                StoreAccess::Hit => AccessOutcome::Hit,
                StoreAccess::MissAround
                | StoreAccess::MissAllocate
                | StoreAccess::MissAllocateTracked(_) => AccessOutcome::Miss,
            });
        }
        match access {
            StoreAccess::Hit | StoreAccess::MissAround => {
                self.write_buffer.push(addr, now);
                StoreResponse::Done
            }
            StoreAccess::MissAllocate => {
                // Blocking write allocate: fetch the line synchronously;
                // the store is buffered once the line arrives.
                let block = decoded.block;
                let txn = self.fresh_txn();
                self.emit(MemEvent::Issued {
                    txn,
                    kind: AccessKind::Store,
                    block,
                    at: now,
                });
                let (at, _woken) = self.blocking_service(txn, block, now);
                self.write_buffer.push(addr, at);
                StoreResponse::Ready { at }
            }
            StoreAccess::MissAllocateTracked(kind) => {
                // Non-blocking write allocate: the store data waits in the
                // write buffer for the line; the processor does not stall.
                let block = decoded.block;
                if self.trace.is_some() {
                    let txn = self.fresh_txn();
                    self.emit(MemEvent::Issued {
                        txn,
                        kind: AccessKind::Store,
                        block,
                        at: now,
                    });
                    match kind {
                        MissKind::Primary => {
                            self.launch_fetch(txn, block, now);
                        }
                        MissKind::Secondary => self.emit(MemEvent::Merged {
                            txn,
                            block,
                            at: now,
                        }),
                    }
                } else if kind == MissKind::Primary {
                    let (latency, _) = self.fetch_latency(block);
                    self.memory.issue_fetch_after(block, now, latency);
                }
                self.write_buffer.push(addr, now);
                StoreResponse::Pending { kind }
            }
        }
    }

    /// Submits a *speculatively issued* load at time `now` for the
    /// replaying pipeline model. A first issue (`reissue == false`) runs
    /// the pre-access replay checks in priority order — forwarding failure,
    /// then bank conflict — and a structurally rejected access maps to a
    /// [`ReplayCause::DcacheReplay`] NACK instead of [`LoadResponse::Retry`].
    /// A reissue from the replay queue skips the pre-access checks (the
    /// queue re-schedules around the original hazard), so every cause fires
    /// at most once per triggering access; only a repeated NACK can recur,
    /// and the processor then falls back to waiting for a fill —
    /// `nacked` marks such an already-NACKed access so the recurrence is
    /// not recorded as a fresh replay. An access that reaches the data
    /// array occupies its bank for the busy window; a replayed access
    /// never reaches the array and leaves the bank state untouched.
    pub fn access_load_replay(
        &mut self,
        addr: Addr,
        dest: Dest,
        format: LoadFormat,
        now: Cycle,
        reissue: bool,
        nacked: bool,
    ) -> ReplayLoadResponse {
        let block = self.l1.block_of(addr);
        if !reissue {
            if self.replay.forward_fail(block, now) {
                self.emit(MemEvent::LoadReplayed {
                    block,
                    cause: ReplayCause::ForwardFail,
                    at: now,
                });
                return ReplayLoadResponse::Replay(ReplayCause::ForwardFail);
            }
            if now.0 < self.replay.bank_free_at[ReplayClassifier::bank_of(addr)] {
                self.emit(MemEvent::LoadReplayed {
                    block,
                    cause: ReplayCause::BankConflict,
                    at: now,
                });
                return ReplayLoadResponse::Replay(ReplayCause::BankConflict);
            }
        }
        match self.access_load(addr, dest, format, now) {
            LoadResponse::Retry(_) => {
                if !nacked {
                    self.emit(MemEvent::LoadReplayed {
                        block,
                        cause: ReplayCause::DcacheReplay,
                        at: now,
                    });
                }
                ReplayLoadResponse::Replay(ReplayCause::DcacheReplay)
            }
            resp => {
                self.replay.bank_free_at[ReplayClassifier::bank_of(addr)] =
                    now.0 + BANK_BUSY_CYCLES;
                if matches!(resp, LoadResponse::Pending { .. }) {
                    self.emit(MemEvent::LoadReplayed {
                        block,
                        cause: ReplayCause::DcacheMiss,
                        at: now,
                    });
                }
                ReplayLoadResponse::Proceed(resp)
            }
        }
    }

    /// Submits a store at time `now` for the replaying pipeline model.
    /// Stores themselves never replay (they commit from the store queue at
    /// their own pace), but they feed the classifier: the store opens the
    /// forwarding-failure window on its block and occupies its data-array
    /// bank for the busy window.
    pub fn access_store_replay(&mut self, addr: Addr, now: Cycle) -> StoreResponse {
        let block = self.l1.block_of(addr);
        self.replay.last_store = Some((block, now));
        self.replay.bank_free_at[ReplayClassifier::bank_of(addr)] = now.0 + BANK_BUSY_CYCLES;
        self.access_store(addr, now)
    }

    /// Completion time of the earliest outstanding fetch, if any.
    #[inline]
    pub fn next_event(&self) -> Option<Cycle> {
        self.memory.next_completion().ok()
    }

    /// Applies every fetch that completes by `now` (inclusive), in
    /// completion order: each line is installed, its waiting targets are
    /// collected into a [`FillEvent`], and the event is handed to
    /// `on_fill` (the processor wakes registers and samples from it).
    pub fn advance_to(&mut self, now: Cycle, mut on_fill: impl FnMut(&FillEvent)) {
        while self.memory.next_completion().is_ok_and(|at| at <= now) {
            // next_completion just said nonempty, so this never breaks;
            // structured as a break (not a panic) to keep sweeps alive.
            let Some(mut fill) = self.apply_next_fill() else {
                debug_assert!(false, "next_completion said nonempty");
                break;
            };
            on_fill(&fill);
            fill.targets.clear();
            self.spare_targets.push(fill.targets);
        }
    }

    /// Applies the earliest outstanding fetch regardless of the current
    /// time — the stall primitive: the processor calls this when it must
    /// wait for *some* fill (a pending register, or an MSHR rejection)
    /// and advances its clock to the returned event's `at`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::NoFetchOutstanding`] when nothing is in flight — a
    /// processor bug if it believed a fill was owed (the typed error the
    /// engine propagates instead of panicking), and the normal
    /// termination condition for end-of-run drains.
    pub fn advance_to_next_event(&mut self) -> Result<FillEvent, MemoryError> {
        match self.apply_next_fill() {
            Some(fill) => Ok(fill),
            None => Err(MemoryError::NoFetchOutstanding),
        }
    }

    fn apply_next_fill(&mut self) -> Option<FillEvent> {
        let f = self.memory.pop_next().ok()?;
        let mut targets = self.spare_targets.pop().unwrap_or_default();
        self.l1.fill_into(f.block, &mut targets);
        self.emit(MemEvent::Filled {
            block: f.block,
            at: f.at,
        });
        self.emit(MemEvent::TargetsWoken {
            block: f.block,
            at: f.at,
            targets: targets.len() as u32,
        });
        Some(FillEvent {
            block: f.block,
            at: f.at,
            targets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::cache::WriteMissPolicy;
    use nbl_core::limit::Limit;
    use nbl_core::mshr::{MshrConfig, RegisterFileConfig, TargetPolicy};
    use nbl_core::types::PhysReg;

    fn mc(n: u32) -> MshrConfig {
        MshrConfig::Register(RegisterFileConfig {
            entries: Limit::Finite(n),
            targets: TargetPolicy::explicit(Limit::Finite(4)),
            max_outstanding_misses: Limit::Finite(n),
            max_fetches_per_set: Limit::Unlimited,
        })
    }

    fn system(mshr: MshrConfig) -> MemorySystem {
        MemorySystem::new(MemSystemConfig::with_cache(CacheConfig::baseline(mshr)))
    }

    #[test]
    fn load_miss_fill_wake_roundtrip() {
        let mut m = system(mc(2));
        let r = m.access_load(
            Addr(0x1000),
            Dest::Reg(PhysReg::int(1)),
            LoadFormat::WORD,
            Cycle(0),
        );
        assert_eq!(
            r,
            LoadResponse::Pending {
                kind: MissKind::Primary
            }
        );
        assert_eq!(m.outstanding_fetches(), 1);
        assert_eq!(m.next_event(), Some(Cycle(16)));
        // Nothing due yet at cycle 10.
        let mut fills = Vec::new();
        m.advance_to(Cycle(10), |f| fills.push(f.clone()));
        assert!(fills.is_empty());
        m.advance_to(Cycle(16), |f| fills.push(f.clone()));
        assert_eq!(fills.len(), 1);
        assert_eq!(fills[0].at, Cycle(16));
        assert_eq!(fills[0].targets.len(), 1);
        assert_eq!(fills[0].targets[0].dest, Dest::Reg(PhysReg::int(1)));
        assert_eq!(m.next_event(), None);
        // The line is now resident.
        let r = m.access_load(
            Addr(0x1000),
            Dest::Reg(PhysReg::int(2)),
            LoadFormat::WORD,
            Cycle(17),
        );
        assert_eq!(r, LoadResponse::Hit);
    }

    #[test]
    fn rejection_then_forced_advance() {
        let mut m = system(mc(1));
        let first = m.access_load(
            Addr(0x1000),
            Dest::Reg(PhysReg::int(1)),
            LoadFormat::WORD,
            Cycle(0),
        );
        assert_eq!(
            first,
            LoadResponse::Pending {
                kind: MissKind::Primary
            }
        );
        let second = m.access_load(
            Addr(0x2000),
            Dest::Reg(PhysReg::int(2)),
            LoadFormat::WORD,
            Cycle(1),
        );
        assert!(matches!(second, LoadResponse::Retry(_)));
        let fill = m.advance_to_next_event().expect("one fetch outstanding");
        assert_eq!(fill.at, Cycle(16));
        // Retry now succeeds as a fresh primary miss.
        let retried = m.access_load(
            Addr(0x2000),
            Dest::Reg(PhysReg::int(2)),
            LoadFormat::WORD,
            Cycle(16),
        );
        assert_eq!(
            retried,
            LoadResponse::Pending {
                kind: MissKind::Primary
            }
        );
    }

    #[test]
    fn empty_advance_is_typed_error() {
        let mut m = system(mc(1));
        assert_eq!(
            m.advance_to_next_event().unwrap_err(),
            MemoryError::NoFetchOutstanding
        );
    }

    #[test]
    fn blocking_load_ready_at_full_penalty() {
        let mut m = system(MshrConfig::Blocking);
        let r = m.access_load(
            Addr(0x40),
            Dest::Reg(PhysReg::int(1)),
            LoadFormat::WORD,
            Cycle(5),
        );
        assert_eq!(r, LoadResponse::Ready { at: Cycle(21) });
        assert_eq!(
            m.outstanding_fetches(),
            0,
            "blocking service is synchronous"
        );
        let again = m.access_load(
            Addr(0x48),
            Dest::Reg(PhysReg::int(2)),
            LoadFormat::WORD,
            Cycle(21),
        );
        assert_eq!(again, LoadResponse::Hit);
    }

    #[test]
    fn store_paths() {
        // Baseline is write-around: store misses are buffered, done.
        let mut m = system(mc(2));
        assert_eq!(m.access_store(Addr(0x5000), Cycle(0)), StoreResponse::Done);
        assert_eq!(m.write_buffer_stats().writes, 1);

        // Write-allocate with MSHRs: tracked, non-blocking.
        let mut cfg = CacheConfig::baseline(mc(2));
        cfg.write_miss = WriteMissPolicy::WriteAllocate;
        let mut wa = MemorySystem::new(MemSystemConfig::with_cache(cfg));
        assert_eq!(
            wa.access_store(Addr(0x5000), Cycle(0)),
            StoreResponse::Pending {
                kind: MissKind::Primary
            }
        );
        assert_eq!(wa.outstanding_fetches(), 1);

        // Write-allocate blocking: synchronous, ready at the penalty.
        let mut cfg = CacheConfig::baseline(MshrConfig::Blocking);
        cfg.write_miss = WriteMissPolicy::WriteAllocate;
        let mut blk = MemorySystem::new(MemSystemConfig::with_cache(cfg));
        assert_eq!(
            blk.access_store(Addr(0x5000), Cycle(0)),
            StoreResponse::Ready { at: Cycle(16) }
        );
    }

    #[test]
    fn group_step_matches_independent_access_calls() {
        // Two configs (different MSHR depth) replaying one stream: the
        // group step must answer exactly what independent ports answer.
        let addrs = [0x1000u64, 0x1008, 0x2000, 0x1000, 0x3000, 0x2008];
        let mut solo = [system(mc(1)), system(mc(4))];
        let mut fused = [system(mc(1)), system(mc(4))];
        let group = FusedMemGroup::new(fused.iter()).expect("same geometry");
        let mut responses = Vec::new();
        for (i, &a) in addrs.iter().enumerate() {
            let dest = Dest::Reg(PhysReg::int(i as u8));
            let nows = [Cycle(i as u64), Cycle(2 * i as u64)];
            let expected: Vec<LoadResponse> = solo
                .iter_mut()
                .zip(nows)
                .map(|(m, now)| m.access_load(Addr(a), dest, LoadFormat::WORD, now))
                .collect();
            responses.clear();
            let mut refs: Vec<&mut MemorySystem> = fused.iter_mut().collect();
            MemorySystem::access_load_group(
                &group,
                &mut refs,
                Addr(a),
                dest,
                LoadFormat::WORD,
                &nows,
                &mut responses,
            );
            assert_eq!(responses, expected, "access {i} to {a:#x}");
        }
    }

    #[test]
    fn group_rejects_mismatched_geometries_and_empty_groups() {
        let small = system(mc(1));
        let mut cfg = CacheConfig::baseline(mc(1));
        cfg.geometry = CacheGeometry::direct_mapped(64 * 1024, 32).unwrap();
        let large = MemorySystem::new(MemSystemConfig::with_cache(cfg));
        let err = FusedMemGroup::new([&small, &large]).unwrap_err();
        assert!(matches!(err, GroupError::GeometryMismatch { .. }));
        assert!(err.to_string().contains("8KB"));
        assert_eq!(FusedMemGroup::new([]).unwrap_err(), GroupError::Empty);
    }

    #[test]
    fn direct_hit_fast_paths_match_the_full_port() {
        let mut m = system(mc(2));
        let addr = Addr(0x1000);
        let d = m.l1().config().geometry.decode(addr);
        // Cold: the fast paths refuse and record nothing.
        assert!(!m.load_hit_direct(d.set, d.tag));
        assert!(!m.store_hit_direct(addr, d.set, d.tag, Cycle(0)));
        assert_eq!(m.l1().counters().load_hits, 0);
        assert_eq!(m.write_buffer_stats().writes, 0);
        // Fill the line; both fast paths now hit, with side effects
        // matching the full port (counters, write buffering).
        let _ = m.access_load(addr, Dest::Reg(PhysReg::int(1)), LoadFormat::WORD, Cycle(0));
        m.advance_to(Cycle(16), |_| {});
        assert!(m.load_hit_direct(d.set, d.tag));
        assert_eq!(m.l1().counters().load_hits, 1);
        assert!(m.store_hit_direct(addr, d.set, d.tag, Cycle(17)));
        assert_eq!(m.l1().counters().store_hits, 1);
        assert_eq!(m.write_buffer_stats().writes, 1);
    }

    #[test]
    fn tracing_observes_the_full_lifecycle() {
        let mut m = system(mc(2));
        m.enable_tracing(64);
        // Primary miss, then a secondary to the same line, then the fill.
        let _ = m.access_load(
            Addr(0x1000),
            Dest::Reg(PhysReg::int(1)),
            LoadFormat::WORD,
            Cycle(0),
        );
        let _ = m.access_load(
            Addr(0x1008),
            Dest::Reg(PhysReg::int(2)),
            LoadFormat::WORD,
            Cycle(1),
        );
        m.advance_to(Cycle(16), |_| {});
        let trace = m.take_trace().expect("tracing was enabled");
        assert!(m.trace().is_none(), "take_trace disables tracing");
        let s = &trace.stats;
        assert_eq!(s.issued, 2);
        assert_eq!(s.fetches, 1);
        assert_eq!(s.merged, 1);
        assert_eq!(s.fills, 1);
        assert_eq!(s.targets_woken, 2);
        assert_eq!(s.merge_depth[1], 1);
        assert_eq!(s.fanout[2], 1);
        assert_eq!(s.time_in_flight[16], 1);
        assert_eq!(trace.ring.total(), s.total_events());
    }

    #[test]
    fn tracing_disabled_records_nothing() {
        let mut m = system(mc(2));
        let _ = m.access_load(
            Addr(0x1000),
            Dest::Reg(PhysReg::int(1)),
            LoadFormat::WORD,
            Cycle(0),
        );
        assert!(m.trace().is_none());
        assert!(m.take_trace().is_none());
    }

    #[test]
    fn outcome_tap_records_final_resolutions_without_perturbing() {
        let run = |tapped: bool| {
            let mut m = system(mc(2));
            if tapped {
                m.enable_outcome_tap();
            }
            let mut log = Vec::new();
            for (i, addr) in [0x1000u64, 0x1008, 0x2000, 0x1000].into_iter().enumerate() {
                let r = m.access_load(
                    Addr(addr),
                    Dest::Reg(PhysReg::int(i as u8)),
                    LoadFormat::WORD,
                    Cycle(i as u64),
                );
                log.push(format!("{r:?}"));
            }
            m.advance_to(Cycle(100), |f| log.push(format!("{f:?}")));
            let r = m.access_load(
                Addr(0x1000),
                Dest::Reg(PhysReg::int(5)),
                LoadFormat::WORD,
                Cycle(100),
            );
            log.push(format!("{r:?}"));
            (log, m.take_outcomes())
        };
        let (untapped_log, none) = run(false);
        let (tapped_log, outcomes) = run(true);
        assert_eq!(untapped_log, tapped_log, "the tap must not perturb timing");
        assert_eq!(none, None, "no tap, no buffer");
        // Primary miss to 0x1000; the 0x1008 and repeated 0x1000
        // accesses are rejected (mc=2 MSHRs hold one target each) and a
        // rejection records *nothing* — only final resolutions count.
        // Then a second primary miss to 0x2000, and a genuine hit after
        // the fills land.
        assert_eq!(
            outcomes.expect("tap was enabled"),
            vec![AccessOutcome::Miss, AccessOutcome::Miss, AccessOutcome::Hit]
        );
    }

    #[test]
    fn traced_and_untraced_runs_are_cycle_identical() {
        let run = |traced: bool| {
            let mut m = system(mc(1));
            if traced {
                m.enable_tracing(16);
            }
            let mut log = Vec::new();
            for (i, addr) in [0x1000u64, 0x1008, 0x2000, 0x1000].into_iter().enumerate() {
                let r = m.access_load(
                    Addr(addr),
                    Dest::Reg(PhysReg::int(i as u8)),
                    LoadFormat::WORD,
                    Cycle(i as u64),
                );
                log.push(format!("{r:?}"));
            }
            m.advance_to(Cycle(100), |f| log.push(format!("{f:?}")));
            log
        };
        assert_eq!(run(false), run(true), "tracing must not perturb timing");
    }
}
