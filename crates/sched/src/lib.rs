//! # nbl-sched — the compiler model
//!
//! The paper's experiments hinge on a *software* parameter: the scheduled
//! load latency, which tells the compiler how far to separate each load
//! from the first use of its result (§3.3). This crate models that
//! compiler:
//!
//! * [`list_schedule`] — latency-weighted list scheduling of each basic
//!   block;
//! * [`regalloc`] — linear-scan register allocation (after scheduling, as
//!   in the Multiflow compiler) with spill-everywhere splitting, whose
//!   spill code changes the dynamic reference counts exactly as the
//!   paper's Fig. 4 reports;
//! * `compile` (module) — the driver producing a
//!   [`nbl_trace::machine::CompiledProgram`] per (program, latency) pair.

pub mod compile;
pub mod list_schedule;
pub mod regalloc;

pub use compile::{compile, CompileError, LOAD_LATENCIES};
pub use list_schedule::schedule;
pub use regalloc::{allocate, AllocContext, AllocError};
