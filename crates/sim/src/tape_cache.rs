//! A shared tape cache: each compiled `(benchmark, latency)` pair is
//! recorded into a [`TraceTape`](nbl_trace::tape::TraceTape) exactly once
//! per process and the tape
//! shared by reference across every hardware configuration that replays
//! it — the record-once/replay-many half of the pipeline whose
//! compile-once half is [`crate::compile_cache::CompileCache`].
//!
//! The exactly-once mechanics mirror the compile cache (one
//! [`OnceLock`](std::sync::OnceLock)
//! slot per key, so concurrent first requests block on the single
//! in-flight recording), with one addition: tapes are bulk data (13 bytes
//! per dynamic instruction — megabytes per full-scale program), so the
//! cache enforces a byte budget. When an insertion pushes the resident
//! total over the cap, the oldest idle tapes (no `Arc` held outside the
//! cache) are dropped FIFO until the total fits; tapes still in use by a
//! replay are never evicted, and an evicted pair is simply re-recorded on
//! its next request.
//!
//! As the memory tier of the [`crate::store::ArtifactStore`] the cache
//! can sit in front of a [`DiskTier`]: a first request probes the store
//! for a previously persisted tape before paying for a recording, and
//! fresh recordings write through, which is what makes warm starts
//! survive the process (DESIGN.md §16).

use crate::store::DiskTier;
use nbl_core::hash::FastMap;
use nbl_trace::machine::CompiledProgram;
use nbl_trace::tape::TraceTape;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default byte budget when `NBL_TAPE_CACHE_MB` is not set: comfortably
/// holds every (benchmark, latency) tape of a full `figures all` run
/// (~108 pairs × ~5 MiB) while bounding degenerate workloads.
const DEFAULT_CAP_BYTES: usize = 2048 * 1024 * 1024;

/// Structural fingerprint of a compiled program:
/// [`crate::store::compiled_fingerprint`], the *cross-process stable*
/// hash, because the same value is a tape artifact's content address in
/// the disk tier. It keeps quick- and full-scale compilations of one
/// benchmark at the same latency from aliasing.
fn fingerprint(compiled: &CompiledProgram) -> u64 {
    crate::store::compiled_fingerprint(compiled)
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    name: String,
    latency: u32,
    fingerprint: u64,
}

/// One slot per key: the `OnceLock` gives exactly-once recording even
/// under concurrent first access (recording is infallible, so the slot
/// holds the tape directly).
type Slot = Arc<OnceLock<Arc<TraceTape>>>;

#[derive(Debug, Default)]
struct State {
    map: FastMap<Key, Slot>,
    /// Insertion order, for FIFO eviction when over the byte budget.
    order: VecDeque<Key>,
    /// Bytes held by fully recorded resident tapes.
    bytes: usize,
}

/// Counter snapshot from a [`TapeCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TapeStats {
    /// Requests served from an already-recorded tape.
    pub hits: u64,
    /// Requests that ran the executor to record a tape.
    pub records: u64,
    /// Tapes dropped to stay inside the byte budget.
    pub evictions: u64,
    /// Bytes currently held by resident tapes.
    pub resident_bytes: usize,
}

/// The cache itself. Use [`TapeCache::global`] to share recordings across
/// every sweep in the process, or a local instance for isolated tests.
#[derive(Debug)]
pub struct TapeCache {
    state: Mutex<State>,
    cap_bytes: usize,
    /// Disk tier behind the memory tier: probed before recording, and
    /// written through after. `None` keeps the cache memory-only.
    disk: Option<Arc<DiskTier>>,
    hits: AtomicU64,
    records: AtomicU64,
    evictions: AtomicU64,
}

impl Default for TapeCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TapeCache {
    /// An empty cache with the byte budget from `NBL_TAPE_CACHE_MB`
    /// (default 2048).
    pub fn new() -> Self {
        let cap = std::env::var("NBL_TAPE_CACHE_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(DEFAULT_CAP_BYTES, |mb| mb.saturating_mul(1024 * 1024));
        Self::with_capacity_bytes(cap)
    }

    /// An empty cache with an explicit byte budget (tests).
    pub fn with_capacity_bytes(cap_bytes: usize) -> Self {
        TapeCache {
            state: Mutex::new(State::default()),
            cap_bytes,
            disk: None,
            hits: AtomicU64::new(0),
            records: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// An empty cache (default byte budget) backed by a disk tier: first
    /// requests probe the store before recording, and fresh recordings
    /// write through to it.
    pub fn with_disk(disk: Arc<DiskTier>) -> Self {
        let mut cache = Self::new();
        cache.disk = Some(disk);
        cache
    }

    /// The process-wide cache shared by the sweep engine and the cached
    /// driver entry points.
    pub fn global() -> &'static TapeCache {
        static GLOBAL: OnceLock<TapeCache> = OnceLock::new();
        GLOBAL.get_or_init(TapeCache::new)
    }

    /// Returns the recorded tape of `compiled`: from the memory tier if
    /// already resident, else decoded from the disk tier (when one is
    /// attached and holds a valid artifact under this key), else by
    /// running the executor — sharing the result (by `Arc`) thereafter.
    /// Fresh recordings write through to the disk tier; disk damage of
    /// any kind is absorbed (quarantine + re-record), so the call stays
    /// infallible.
    pub fn get_or_record(&self, compiled: &CompiledProgram) -> Arc<TraceTape> {
        let key = Key {
            name: compiled.name.clone(),
            latency: compiled.load_latency,
            fingerprint: fingerprint(compiled),
        };
        let slot = {
            let mut st = self.state.lock().expect("tape cache lock poisoned");
            Arc::clone(st.map.entry(key.clone()).or_default())
        };
        let mut inserted_here = false;
        let tape = Arc::clone(slot.get_or_init(|| {
            inserted_here = true;
            if let Some(disk) = &self.disk {
                if let Some(loaded) = disk.load_tape(&key.name, key.latency, key.fingerprint) {
                    return Arc::new(loaded);
                }
            }
            self.records.fetch_add(1, Ordering::Relaxed);
            let recorded = TraceTape::record(compiled);
            if let Some(disk) = &self.disk {
                let _ = disk.write_tape(&recorded, key.fingerprint);
            }
            Arc::new(recorded)
        }));
        if inserted_here {
            let mut st = self.state.lock().expect("tape cache lock poisoned");
            st.bytes += tape.bytes();
            st.order.push_back(key);
            self.evict_to_cap(&mut st);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        tape
    }

    /// Drops the oldest idle tapes until the resident total fits the
    /// budget. A tape is idle when the cache holds the only `Arc` to it;
    /// in-flight slots (not yet recorded) and tapes still referenced by a
    /// replay are skipped. One bounded pass: if everything old is busy,
    /// the cache stays temporarily over budget rather than blocking.
    fn evict_to_cap(&self, st: &mut State) {
        let mut scan = st.order.len();
        while st.bytes > self.cap_bytes && scan > 0 {
            scan -= 1;
            let Some(key) = st.order.pop_front() else {
                break;
            };
            let idle = st
                .map
                .get(&key)
                .is_some_and(|slot| slot.get().is_some_and(|tape| Arc::strong_count(tape) == 1));
            if idle {
                if let Some(slot) = st.map.remove(&key) {
                    if let Some(tape) = slot.get() {
                        st.bytes = st.bytes.saturating_sub(tape.bytes());
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            } else {
                st.order.push_back(key);
            }
        }
    }

    /// Barrier count of a resident tape for `(name, latency)`, any
    /// fingerprint — a scheduling hint, not a correctness input. Answers
    /// only from the memory tier (no disk probe, no recording) and does
    /// not touch the hit/record counters, so schedulers can weigh work
    /// units without perturbing cache telemetry. `None` when no recorded
    /// tape for the pair is resident.
    pub fn peek_barriers(&self, name: &str, latency: u32) -> Option<u64> {
        let st = self.state.lock().expect("tape cache lock poisoned");
        st.map.iter().find_map(|(key, slot)| {
            if key.name == name && key.latency == latency {
                slot.get().map(|tape| tape.barriers().len() as u64)
            } else {
                None
            }
        })
    }

    /// Current hit/record/eviction counters and resident footprint.
    pub fn stats(&self) -> TapeStats {
        TapeStats {
            hits: self.hits.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.state.lock().expect("tape cache lock poisoned").bytes,
        }
    }

    /// Number of distinct `(name, latency, fingerprint)` keys resident.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("tape cache lock poisoned")
            .map
            .len()
    }

    /// `true` if no tape has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_cache::CompileCache;
    use crate::pool::JobPool;
    use nbl_trace::workloads::{build, Scale};

    fn compiled(name: &str, latency: u32, scale: Scale) -> Arc<CompiledProgram> {
        let p = build(name, scale).unwrap();
        CompileCache::global().get_or_compile(&p, latency).unwrap()
    }

    #[test]
    fn records_each_pair_exactly_once() {
        let cache = TapeCache::new();
        let c = compiled("doduc", 10, Scale::quick());
        let a = cache.get_or_record(&c);
        let b = cache.get_or_record(&c);
        let c6 = compiled("doduc", 6, Scale::quick());
        let d = cache.get_or_record(&c6);
        assert!(Arc::ptr_eq(&a, &b), "same pair must share one recording");
        assert!(
            !Arc::ptr_eq(&a, &d),
            "different latency is a different pair"
        );
        let s = cache.stats();
        assert_eq!((s.hits, s.records, s.evictions), (1, 2, 0));
        assert_eq!(s.resident_bytes, a.bytes() + d.bytes());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn scale_variants_of_one_benchmark_do_not_alias() {
        let cache = TapeCache::new();
        let quick = compiled("eqntott", 10, Scale::quick());
        let full = compiled("eqntott", 10, Scale::full());
        let a = cache.get_or_record(&quick);
        let b = cache.get_or_record(&full);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.len(), b.len());
        assert_eq!(cache.stats().records, 2);
    }

    #[test]
    fn concurrent_first_access_still_records_once() {
        // 16 workers race for 4 distinct (benchmark, latency) pairs; the
        // OnceLock slots must serialize each pair to a single recording.
        let cache = TapeCache::new();
        let programs = [
            compiled("doduc", 6, Scale::quick()),
            compiled("doduc", 10, Scale::quick()),
            compiled("eqntott", 6, Scale::quick()),
            compiled("eqntott", 10, Scale::quick()),
        ];
        let pool = JobPool::new(8);
        let lens = pool.run(16, |i| cache.get_or_record(&programs[i % 4]).len());
        assert_eq!(lens.len(), 16);
        let s = cache.stats();
        assert_eq!(s.records, 4, "one recording per distinct pair");
        assert_eq!(s.hits + s.records, 16);
    }

    #[test]
    fn over_budget_idle_tapes_are_evicted_fifo() {
        let c1 = compiled("eqntott", 10, Scale::quick());
        let c2 = compiled("eqntott", 6, Scale::quick());
        let t1 = TraceTape::record(&c1);
        let (t1_bytes, t1_len) = (t1.bytes(), t1.len());
        // Budget fits exactly one tape: inserting the second must evict
        // the (idle) first.
        let cache = TapeCache::with_capacity_bytes(t1_bytes);
        drop(cache.get_or_record(&c1));
        let t2 = cache.get_or_record(&c2);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.resident_bytes, t2.bytes());
        assert_eq!(cache.len(), 1);
        // The evicted pair re-records on its next request.
        let again = cache.get_or_record(&c1);
        assert_eq!(cache.stats().records, 3);
        assert_eq!(again.len(), t1_len);
    }

    #[test]
    fn tape_shared_by_concurrent_fused_replays_survives_budget_pressure() {
        use crate::config::{HwConfig, SimConfig};
        use crate::driver::{run_tape, run_tape_fused};

        // One tape walked by several fused replays at once, while another
        // worker churns the cache with insertions that each trigger an
        // eviction pass on a budget of one byte. The walked tape must be
        // served pointer-identical to every replay (never evicted and
        // re-recorded mid-walk), and the results must be unperturbed.
        let shared = compiled("swm256", 6, Scale::quick());
        let cache = TapeCache::with_capacity_bytes(1);
        let tape = cache.get_or_record(&shared);
        let cfgs: Vec<SimConfig> = [HwConfig::Mc0, HwConfig::Mc(1), HwConfig::NoRestrict]
            .into_iter()
            .map(|hw| SimConfig::baseline(hw).at_latency(6))
            .collect();
        let reference: Vec<_> = cfgs
            .iter()
            .map(|cfg| run_tape("swm256", &tape, cfg).unwrap())
            .collect();

        let pool = JobPool::new(4);
        let out = pool.run(4, |i| {
            if i == 0 {
                // Pressure: every insertion runs an eviction pass.
                for name in ["doduc", "eqntott", "tomcatv"] {
                    drop(cache.get_or_record(&compiled(name, 6, Scale::quick())));
                }
                None
            } else {
                let t = cache.get_or_record(&shared);
                let identical = Arc::ptr_eq(&t, &tape);
                Some((identical, run_tape_fused("swm256", &t, &cfgs).unwrap()))
            }
        });
        for slot in out.into_iter().flatten() {
            let (identical, results) = slot;
            assert!(identical, "a busy tape must never be evicted mid-walk");
            assert_eq!(results, reference, "pressure must not perturb results");
        }
        assert_eq!(
            cache.stats().records,
            4,
            "the shared tape records once; only the 3 pressure tapes add"
        );
        assert!(cache.stats().resident_bytes >= tape.bytes());
    }

    #[test]
    fn in_use_tapes_survive_eviction_pressure() {
        let c1 = compiled("tomcatv", 10, Scale::quick());
        let c2 = compiled("tomcatv", 6, Scale::quick());
        let cache = TapeCache::with_capacity_bytes(1); // everything is over budget
        let held = cache.get_or_record(&c1); // kept alive by this Arc
        let _second = cache.get_or_record(&c2);
        assert!(
            cache.stats().resident_bytes >= held.bytes(),
            "a tape with a live replay reference must not be dropped"
        );
        assert!(!cache.is_empty());
        // Once released, the next insertion can reclaim it.
        drop(held);
        drop(_second);
        let _third = cache.get_or_record(&compiled("tomcatv", 3, Scale::quick()));
        assert!(cache.stats().evictions >= 1);
    }
}
