//! # nbl-oracle — static must-hit/may-miss cache analysis over trace tapes
//!
//! An abstract-interpretation cache analyzer in the style of Reineke's
//! must/may age-bound analysis and Touzeau–Monniaux's exact LRU
//! analysis, specialized to this repo's setting: the program is a
//! recorded [`TraceTape`](nbl_trace::TraceTape) (a single concrete
//! path, so there is *no path nondeterminism*), and the only
//! uncertainty is *fill timing* — a non-blocking miss installs its line
//! up to `window` instructions after the access that launched it.
//!
//! The pipeline (DESIGN.md §18) is: tape walk
//! ([`TraceTape::mem_ops`](nbl_trace::TraceTape::mem_ops)) → abstract
//! domain ([`analyze_tape`], one [`Classification`] per access) →
//! cross-check ([`cross_check`] against the simulator's per-access
//! [`AccessOutcome`](nbl_mem::AccessOutcome) tap) → report
//! ([`CellReport`], persisted verdicts in [`store`]).
//!
//! Soundness is the product: a [`Classification::MustHit`] access that
//! the real [`MemorySystem`](nbl_mem::MemorySystem) misses — or a
//! [`Classification::MustMiss`] that hits — is a
//! [`CrossCheckViolation`], i.e. a tag-array/replacement regression
//! caught by an independent derivation.

pub mod check;
pub mod domain;
pub mod store;

#[cfg(all(test, feature = "oracle-prop"))]
mod prop;

pub use check::{check_cell, cross_check, CellReport, CrossCheckViolation};
pub use domain::{analyze_tape, Classification, Coverage, OracleAnalysis};
pub use store::{CellVerdict, OracleStore, ORACLE_FORMAT_VERSION};

use nbl_core::geometry::CacheGeometry;
use nbl_core::tag_array::ReplacementKind;
use nbl_sim::config::{IssueWidth, ProcessorKind, SimConfig};

/// Why the oracle refused or failed a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The configuration uses a feature outside the abstract model's
    /// soundness envelope: an L2 (differing fill latencies reorder
    /// install commits), a victim buffer (an evicted line can still
    /// hit), a memory issue gap (fill times become occupancy-dependent),
    /// in-cache MSHR storage (the victim is evicted at miss time, not
    /// fill time), or a processor other than the single-issue in-order
    /// core (the window bound is derived from its drain discipline).
    Unsupported {
        /// Which feature tripped the gate.
        feature: &'static str,
    },
    /// The probed replay failed inside the engine.
    Engine(String),
    /// A benchmark failed to build or compile (CLI path).
    Compile(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Unsupported { feature } => {
                write!(f, "configuration outside the oracle's envelope: {feature}")
            }
            OracleError::Engine(e) => write!(f, "probed replay failed: {e}"),
            OracleError::Compile(e) => write!(f, "benchmark compilation failed: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

/// The slice of a [`SimConfig`] the abstract domain consumes, plus the
/// derived uncertainty window. Build via [`OracleConfig::from_sim`],
/// which also gates out configurations the analysis cannot soundly
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleConfig {
    /// L1 geometry (sets × ways × line bytes).
    pub geometry: CacheGeometry,
    /// Replacement policy under analysis.
    pub replacement: ReplacementKind,
    /// `true` when store misses allocate (fetch + install) rather than
    /// write around the cache.
    pub write_allocate: bool,
    /// Fill-timing uncertainty in *instructions*: a miss finally
    /// accessed at instruction `i` has definitely installed its line
    /// before instruction `i + window` issues (the single-issue core
    /// retires at most one instruction per cycle and drains due fills
    /// before every access, so the effective miss penalty in cycles
    /// bounds the install delay in instructions). `0` for blocking
    /// caches, where the install happens synchronously at the access.
    pub window: u32,
}

impl OracleConfig {
    /// Projects `cfg` onto the abstract domain's parameters.
    ///
    /// # Errors
    ///
    /// [`OracleError::Unsupported`] when `cfg` enables an L2, a victim
    /// buffer, a memory issue gap, in-cache MSHR storage, or a
    /// processor/issue model other than the single-issue in-order core —
    /// each breaks an assumption of the soundness argument (DESIGN.md
    /// §18).
    pub fn from_sim(cfg: &SimConfig) -> Result<OracleConfig, OracleError> {
        if cfg.l2.is_some() {
            return Err(OracleError::Unsupported { feature: "l2" });
        }
        if cfg.victim_entries != 0 {
            return Err(OracleError::Unsupported {
                feature: "victim_buffer",
            });
        }
        if cfg.memory_gap != 0 {
            return Err(OracleError::Unsupported {
                feature: "memory_gap",
            });
        }
        if cfg.processor != ProcessorKind::SingleInOrder {
            return Err(OracleError::Unsupported {
                feature: "processor_model",
            });
        }
        if cfg.issue != IssueWidth::Single {
            return Err(OracleError::Unsupported {
                feature: "issue_width",
            });
        }
        let mshr = cfg.hw.mshr_config();
        if mshr.evicts_on_miss() {
            return Err(OracleError::Unsupported {
                feature: "in_cache_mshr",
            });
        }
        let window = if mshr.is_blocking() {
            0
        } else {
            cfg.miss_penalty + mshr.fill_extra_cycles()
        };
        Ok(OracleConfig {
            geometry: cfg.geometry,
            replacement: cfg.replacement,
            write_allocate: cfg.hw.write_miss_policy()
                == nbl_core::cache::WriteMissPolicy::WriteAllocate,
            window,
        })
    }
}
