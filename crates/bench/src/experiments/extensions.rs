//! Extension experiments beyond the paper's evaluation — directions its
//! text sketches but never measures.
//!
//! * **E-NBW — non-blocking write allocate.** §2.4 lists write-buffer
//!   entries among the possible destinations of fetch data "for merging
//!   with write data when writing into a write-allocate cache", but every
//!   write-allocate datapoint in the paper (`mc=0 + wma`) stalls. Here
//!   store misses occupy an MSHR non-blockingly, quantifying how much of
//!   the write-allocate penalty is an artifact of blocking stores.
//! * **E-ASSOC — set associativity vs. fetch-per-set limits.** §4.2
//!   remarks that a set-associative in-cache-MSHR implementation could
//!   support multiple fetches per set, "however, by implementing a
//!   set-associative cache, most of these concurrent conflict misses
//!   might be eliminated in the first place." This sweep measures that
//!   conjecture on su2cor across direct-mapped / 2-way / 4-way / fully
//!   associative caches, with and without the fs=1 restriction — and
//!   finds it only half true: the steady conflict misses disappear, the
//!   simultaneous same-set fetches do not.
//!
//! Each study is a benchmark × variant grid run on the shared parallel
//! engine; the tables print from the input-ordered results.

use super::{mcpi_grid, programs_for, ExhibitError, RunScale};
use nbl_core::geometry::CacheGeometry;
use nbl_sim::config::{HwConfig, SimConfig};
use std::io::Write;

/// E-NBW: non-blocking write allocation on the store-heavy benchmarks.
pub fn nonblocking_write_allocate(
    out: &mut dyn Write,
    scale: RunScale,
) -> Result<(), ExhibitError> {
    let _ = writeln!(
        out,
        "== Extension E-NBW: non-blocking write-miss allocation =="
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>10} {:>10} {:>14} {:>14}",
        "bench", "mc=0 + wma", "mc=0", "fc=2", "fc=2 + nb-wma", "wma recovered"
    );
    let benches = ["xlisp", "tomcatv", "compress", "su2cor"];
    let grid = mcpi_grid(
        &programs_for(&benches, scale)?,
        &[
            SimConfig::baseline(HwConfig::Mc0Wma),
            SimConfig::baseline(HwConfig::Mc0),
            SimConfig::baseline(HwConfig::Fc(2)),
            SimConfig::baseline(HwConfig::FcWma(2)),
        ],
    )?;
    for (bench, row) in benches.iter().zip(&grid) {
        let [wma_blocking, around_blocking, fc2, fc2_nbw] = row[..] else {
            return Err(ExhibitError::new(
                format!("E-NBW row for {bench}"),
                "grid row is not 4 columns wide",
            ));
        };
        // How much of the (blocking) write-allocate overhead does the
        // non-blocking version eliminate, relative to write-around fc=2?
        let blocking_overhead = wma_blocking - around_blocking;
        let nb_overhead = fc2_nbw - fc2;
        let recovered = if blocking_overhead > 1e-9 {
            format!("{:.0}%", 100.0 * (1.0 - nb_overhead / blocking_overhead))
        } else {
            "-".into()
        };
        let _ = writeln!(
            out,
            "{:>10} {:>12.3} {:>10.3} {:>10.3} {:>14.3} {:>14}",
            bench, wma_blocking, around_blocking, fc2, fc2_nbw, recovered
        );
    }
    let _ = writeln!(out);
    Ok(())
}

/// E-ASSOC: associativity removes the conflicts that per-set fetch limits
/// choke on.
pub fn associativity_vs_fetch_limits(
    out: &mut dyn Write,
    scale: RunScale,
) -> Result<(), ExhibitError> {
    let _ = writeln!(
        out,
        "== Extension E-ASSOC: associativity vs per-set fetch limits (su2cor) =="
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>12} {:>10}",
        "ways", "fs=1", "no restrict", "fs=1 cost"
    );
    const WAYS: [u32; 4] = [1, 2, 4, 256];
    let mut cfgs: Vec<SimConfig> = Vec::new();
    for ways in WAYS {
        let geom = CacheGeometry::new(8 * 1024, 32, ways)
            .map_err(|e| ExhibitError::new(format!("E-ASSOC geometry, {ways} ways"), e))?;
        cfgs.push(SimConfig::baseline(HwConfig::Fs(1)).with_geometry(geom));
        cfgs.push(SimConfig::baseline(HwConfig::NoRestrict).with_geometry(geom));
    }
    let grid = mcpi_grid(&programs_for(&["su2cor"], scale)?, &cfgs)?;
    for (i, ways) in WAYS.into_iter().enumerate() {
        let (fs1, inf) = (grid[0][2 * i], grid[0][2 * i + 1]);
        let label = if ways == 256 {
            "full".to_string()
        } else {
            ways.to_string()
        };
        let _ = writeln!(
            out,
            "{:>8} {:>10.3} {:>12.3} {:>9.2}x",
            label,
            fs1,
            inf,
            fs1 / inf.max(1e-9)
        );
    }
    let _ = writeln!(
        out,
        "(a measured refinement of the paper's §4.2 conjecture: associativity\n\
         does remove the steady conflict MISSES — the no-restrict column\n\
         falls — but the aligned streams still cross line boundaries\n\
         together, so simultaneous same-set FETCHES remain and a per-set\n\
         limit keeps hurting; under full associativity a per-set limit\n\
         degenerates into one fetch for the whole cache)\n"
    );
    Ok(())
}

/// E-L2: a two-level hierarchy. The paper stops at the first-level cache
/// ("we are limiting our studies to first-level cache configurations which
/// are feasible for on-chip implementation"); this measures whether its
/// central ranking survives when a 256 KB L2 turns most L1 misses into
/// 6-cycle hits and stretches true memory trips to 40 cycles.
pub fn two_level_hierarchy(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let _ = writeln!(
        out,
        "== Extension E-L2: 256KB L2 (6-cycle hit, 40-cycle miss) =="
    );
    let _ = writeln!(
        out,
        "{:>10} {:>18} {:>10} {:>10} {:>10} {:>12}",
        "bench", "hierarchy", "mc=0", "mc=1", "fc=2", "no restrict"
    );
    let benches = ["doduc", "tomcatv", "xlisp"];
    let hws = [
        HwConfig::Mc0,
        HwConfig::Mc(1),
        HwConfig::Fc(2),
        HwConfig::NoRestrict,
    ];
    // Columns: the four configurations flat, then the four L2 variants.
    let cfgs: Vec<SimConfig> = [false, true]
        .into_iter()
        .flat_map(|with_l2| {
            hws.clone().map(|hw| {
                let cfg = SimConfig::baseline(hw);
                if with_l2 {
                    cfg.with_penalty(40).with_l2(256 * 1024, 6)
                } else {
                    cfg
                }
            })
        })
        .collect();
    let grid = mcpi_grid(&programs_for(&benches, scale)?, &cfgs)?;
    for (bench, row) in benches.iter().zip(&grid) {
        for (h, label) in ["flat 16cy", "L2 6/40cy"].into_iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>10} {:>18} {:>10.3} {:>10.3} {:>10.3} {:>12.3}",
                bench,
                label,
                row[4 * h],
                row[4 * h + 1],
                row[4 * h + 2],
                row[4 * h + 3],
            );
        }
    }
    let _ = writeln!(
        out,
        "(the organization ranking survives the hierarchy everywhere, but the\n\
         L2 only helps working sets it can hold: doduc (~57 KB) improves,\n\
         while tomcatv's pure streams miss the L2 too and now pay 40 cycles —\n\
         the Fig. 18 lesson that a longer effective penalty erodes the\n\
         non-blocking win, restated in hierarchy form)\n"
    );
    Ok(())
}

/// E-VICTIM: a small fully associative victim buffer (Jouppi 1990 — the
/// same author's conflict-miss fix) next to the direct-mapped L1, against
/// the conflict-dominated benchmarks. How close does a 4-entry buffer get
/// to the fully associative cache of Fig. 10?
pub fn victim_buffer(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let _ = writeln!(
        out,
        "== Extension E-VICTIM: victim buffer vs associativity (mc=1) =="
    );
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>10} {:>10} {:>12}",
        "bench", "DM", "DM+4v", "DM+16v", "fully assoc"
    );
    let benches = ["xlisp", "su2cor", "doduc"];
    let fa = CacheGeometry::fully_associative(8 * 1024, 32)
        .map_err(|e| ExhibitError::new("E-VICTIM geometry", e))?;
    let cfgs = [
        SimConfig::baseline(HwConfig::Mc(1)),
        SimConfig::baseline(HwConfig::Mc(1)).with_victim_buffer(4),
        SimConfig::baseline(HwConfig::Mc(1)).with_victim_buffer(16),
        SimConfig::baseline(HwConfig::Mc(1)).with_geometry(fa),
    ];
    let grid = mcpi_grid(&programs_for(&benches, scale)?, &cfgs)?;
    for (bench, row) in benches.iter().zip(&grid) {
        let _ = writeln!(
            out,
            "{:>10} {:>8.3} {:>10.3} {:>10.3} {:>12.3}",
            bench, row[0], row[1], row[2], row[3],
        );
    }
    let _ = writeln!(
        out,
        "(victim buffers shine exactly where Jouppi 1990 predicted: su2cor's\n\
         conflicts come from a few lock-step streams evicting each other, so a\n\
         4-entry buffer matches — even beats — full associativity; xlisp's\n\
         conflicts are scattered across the whole heap, and only real\n\
         associativity removes them)\n"
    );
    Ok(())
}

/// Runs all extensions.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    nonblocking_write_allocate(out, scale)?;
    associativity_vs_fetch_limits(out, scale)?;
    two_level_hierarchy(out, scale)?;
    victim_buffer(out, scale)
}
