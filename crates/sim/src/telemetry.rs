//! Lightweight run telemetry: process-wide counters of simulation work
//! done, for throughput reporting (simulated instructions per second) in
//! the bench harness.
//!
//! The driver bumps the global counters once per completed simulation, so
//! the cost is a handful of relaxed atomic adds per *run*, not per
//! instruction — invisible next to the simulation itself.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters of simulation work.
#[derive(Debug, Default)]
pub struct Telemetry {
    instructions: AtomicU64,
    cycles: AtomicU64,
    runs: AtomicU64,
    events: AtomicU64,
    policy_runs: AtomicU64,
    model_runs: AtomicU64,
    arena_builds: AtomicU64,
    arena_reuses: AtomicU64,
}

/// Point-in-time copy of the counters; subtract two to get the work done
/// in an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Instructions simulated.
    pub instructions: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Simulation runs completed.
    pub runs: u64,
    /// Miss-lifecycle events recorded by traced runs (0 unless tracing
    /// was enabled).
    pub events: u64,
    /// Runs simulated under a non-LRU replacement policy (0 unless a
    /// policy sweep ran).
    pub policy_runs: u64,
    /// Runs simulated under a non-default processor model (0 unless a
    /// model sweep ran).
    pub model_runs: u64,
    /// Processors constructed from scratch because no pooled worker
    /// matched the run's configuration. On a warm worker arena this stays
    /// flat run-to-run — the allocation counter the zero-alloc tests pin.
    pub arena_builds: u64,
    /// Runs served by resetting a pooled processor instead of building
    /// one.
    pub arena_reuses: u64,
}

impl TelemetrySnapshot {
    /// Work done between `earlier` and `self` (counters are monotonic, so
    /// this saturates rather than wrapping if misused).
    pub fn since(&self, earlier: TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            cycles: self.cycles.saturating_sub(earlier.cycles),
            runs: self.runs.saturating_sub(earlier.runs),
            events: self.events.saturating_sub(earlier.events),
            policy_runs: self.policy_runs.saturating_sub(earlier.policy_runs),
            model_runs: self.model_runs.saturating_sub(earlier.model_runs),
            arena_builds: self.arena_builds.saturating_sub(earlier.arena_builds),
            arena_reuses: self.arena_reuses.saturating_sub(earlier.arena_reuses),
        }
    }

    /// Simulated instructions per second over `wall` seconds.
    pub fn inst_per_sec(&self, wall: f64) -> f64 {
        if wall > 0.0 {
            self.instructions as f64 / wall
        } else {
            0.0
        }
    }
}

impl Telemetry {
    /// The process-wide instance the driver records into.
    pub fn global() -> &'static Telemetry {
        static GLOBAL: Telemetry = Telemetry {
            instructions: AtomicU64::new(0),
            cycles: AtomicU64::new(0),
            runs: AtomicU64::new(0),
            events: AtomicU64::new(0),
            policy_runs: AtomicU64::new(0),
            model_runs: AtomicU64::new(0),
            arena_builds: AtomicU64::new(0),
            arena_reuses: AtomicU64::new(0),
        };
        &GLOBAL
    }

    /// Records one completed simulation run.
    pub fn record_run(&self, instructions: u64, cycles: u64) {
        self.instructions.fetch_add(instructions, Ordering::Relaxed);
        self.cycles.fetch_add(cycles, Ordering::Relaxed);
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records lifecycle events observed by one traced run.
    pub fn record_events(&self, events: u64) {
        self.events.fetch_add(events, Ordering::Relaxed);
    }

    /// Records one run simulated under a non-default replacement policy.
    pub fn record_policy_run(&self) {
        self.policy_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one run simulated under a non-default processor model.
    pub fn record_model_run(&self) {
        self.model_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one processor built from scratch for the worker arena.
    pub fn record_arena_build(&self) {
        self.arena_builds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one run served by resetting a pooled processor.
    pub fn record_arena_reuse(&self) {
        self.arena_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            instructions: self.instructions.load(Ordering::Relaxed),
            cycles: self.cycles.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            policy_runs: self.policy_runs.load(Ordering::Relaxed),
            model_runs: self.model_runs.load(Ordering::Relaxed),
            arena_builds: self.arena_builds.load(Ordering::Relaxed),
            arena_reuses: self.arena_reuses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_delta() {
        let t = Telemetry::default();
        let before = t.snapshot();
        t.record_run(40_000, 55_000);
        t.record_run(40_000, 90_000);
        t.record_events(12);
        t.record_policy_run();
        t.record_model_run();
        t.record_arena_build();
        t.record_arena_reuse();
        t.record_arena_reuse();
        let d = t.snapshot().since(before);
        assert_eq!(
            d,
            TelemetrySnapshot {
                instructions: 80_000,
                cycles: 145_000,
                runs: 2,
                events: 12,
                policy_runs: 1,
                model_runs: 1,
                arena_builds: 1,
                arena_reuses: 2,
            }
        );
        assert!((d.inst_per_sec(2.0) - 40_000.0).abs() < 1e-9);
        assert_eq!(d.inst_per_sec(0.0), 0.0);
    }

    #[test]
    fn global_is_monotonic() {
        let before = Telemetry::global().snapshot();
        Telemetry::global().record_run(1, 2);
        let after = Telemetry::global().snapshot();
        let d = after.since(before);
        // Other tests may record concurrently; ours is at least included.
        assert!(d.instructions >= 1 && d.cycles >= 2 && d.runs >= 1);
    }
}
