//! Stall accounting and in-flight occupancy sampling.
//!
//! The paper's performance metric is **miss CPI (MCPI)** — stall cycles per
//! instruction, where (by construction of the processor model) every stall
//! is attributable to a data-cache miss. Stalls are broken down into the
//! paper's two causes (true data dependency vs. structural hazard, Fig. 7),
//! plus the blocking-cache miss service time that the lockup configurations
//! pay. [`InFlightSampler`] produces the in-flight miss and fetch
//! histograms of Fig. 6.

use nbl_core::types::Cycle;
use nbl_mem::event::ReplayCause;
use std::fmt;

/// Why the processor spent a cycle stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// An instruction used a register before its load completed (true data
    /// dependency, paper §3.1).
    DataDependency,
    /// A load miss could not be tracked by the MSHR hardware and had to
    /// wait for an outstanding fetch to complete (structural hazard).
    Structural,
    /// A blocking (lockup) cache serviced a miss synchronously — the whole
    /// miss penalty is exposed (`mc=0`, and store misses under `+wma`).
    Blocking,
}

/// Cycle and event counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Instructions issued.
    pub instructions: u64,
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Stall cycles: use-before-fill.
    pub data_dep_stall_cycles: u64,
    /// Stall cycles: MSHR structural hazards.
    pub structural_stall_cycles: u64,
    /// Stall cycles: blocking miss service.
    pub blocking_stall_cycles: u64,
    /// Loads that suffered at least one structural rejection (the paper's
    /// structural-stall misses).
    pub structural_stall_misses: u64,
    /// Load misses serviced synchronously by a blocking cache (counted
    /// separately because the cache's own counters never see them).
    pub blocking_load_misses: u64,
    /// Store misses serviced synchronously under write-miss-allocate.
    pub blocking_store_misses: u64,
    /// Store misses tracked non-blockingly by an MSHR with a write-buffer
    /// destination (the §2.4 extension; zero under the paper's baseline
    /// policies).
    pub nonblocking_store_misses: u64,
}

impl CpuStats {
    /// Total stall cycles across all causes.
    pub fn total_stall_cycles(&self) -> u64 {
        self.data_dep_stall_cycles + self.structural_stall_cycles + self.blocking_stall_cycles
    }

    /// Miss CPI: stall cycles per instruction.
    pub fn mcpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_stall_cycles() as f64 / self.instructions as f64
        }
    }

    /// Fraction of the MCPI attributable to structural-hazard stalls
    /// (Fig. 7's y-axis, as a fraction rather than percent).
    pub fn structural_fraction(&self) -> f64 {
        let total = self.total_stall_cycles();
        if total == 0 {
            0.0
        } else {
            self.structural_stall_cycles as f64 / total as f64
        }
    }

    /// Adds `cycles` of stall attributed to `cause`.
    pub fn add_stall(&mut self, cause: StallCause, cycles: u64) {
        match cause {
            StallCause::DataDependency => self.data_dep_stall_cycles += cycles,
            StallCause::Structural => self.structural_stall_cycles += cycles,
            StallCause::Blocking => self.blocking_stall_cycles += cycles,
        }
    }
}

impl fmt::Display for CpuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts ({} ld, {} st), MCPI {:.4} (dep {}, struct {}, block {})",
            self.instructions,
            self.loads,
            self.stores,
            self.mcpi(),
            self.data_dep_stall_cycles,
            self.structural_stall_cycles,
            self.blocking_stall_cycles,
        )
    }
}

/// Per-cause accounting for the replaying pipeline model: how many times
/// each [`ReplayCause`] fired and how many stall cycles that cause was
/// charged (replay bubbles, NACK fill waits, and — for
/// [`ReplayCause::DcacheMiss`] — consumer hazard waits on pending
/// registers). For the stalling models everything stays zero. The
/// attributed cycles partition the non-blocking stall total: their sum
/// equals `data_dep_stall_cycles + structural_stall_cycles` of the run's
/// [`CpuStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayAttribution {
    /// `counts[ReplayCause::index()]` = replays (or, for `DcacheMiss`,
    /// out-of-order miss completions) attributed to that cause.
    pub counts: [u64; ReplayCause::COUNT],
    /// `stall_cycles[ReplayCause::index()]` = stall cycles attributed to
    /// that cause.
    pub stall_cycles: [u64; ReplayCause::COUNT],
}

impl ReplayAttribution {
    /// Replays attributed to `cause`.
    #[inline]
    pub fn count(&self, cause: ReplayCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Stall cycles attributed to `cause`.
    #[inline]
    pub fn stalls(&self, cause: ReplayCause) -> u64 {
        self.stall_cycles[cause.index()]
    }

    /// Total replays across every cause.
    pub fn total_replays(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total attributed stall cycles across every cause.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }
}

/// Bucket count for the in-flight histograms. Counts at or above the last
/// bucket saturate into it.
pub const INFLIGHT_BUCKETS: usize = 65;

/// Piecewise-constant sampler of in-flight miss and fetch counts.
///
/// Between events the counts are constant, so instead of sampling every
/// cycle the processor calls [`InFlightSampler::advance`] before each count
/// change and the sampler accumulates the elapsed span into the histogram
/// bucket of the (old) counts — an exact cycle-weighted histogram, as in
/// the paper's Fig. 6.
#[derive(Debug, Clone)]
pub struct InFlightSampler {
    last: Cycle,
    misses: usize,
    fetches: usize,
    miss_hist: [u64; INFLIGHT_BUCKETS],
    fetch_hist: [u64; INFLIGHT_BUCKETS],
    max_misses: usize,
    max_fetches: usize,
}

impl InFlightSampler {
    /// A sampler starting at time zero with nothing in flight.
    pub fn new() -> InFlightSampler {
        InFlightSampler {
            last: Cycle::ZERO,
            misses: 0,
            fetches: 0,
            miss_hist: [0; INFLIGHT_BUCKETS],
            fetch_hist: [0; INFLIGHT_BUCKETS],
            max_misses: 0,
            max_fetches: 0,
        }
    }

    /// Accumulates time up to `to` at the current counts. Clamped: calls
    /// with `to` in the past are no-ops, so callers can advance eagerly.
    pub fn advance(&mut self, to: Cycle) {
        if to <= self.last {
            return;
        }
        let span = to.since(self.last);
        self.miss_hist[self.misses.min(INFLIGHT_BUCKETS - 1)] += span;
        self.fetch_hist[self.fetches.min(INFLIGHT_BUCKETS - 1)] += span;
        self.last = to;
    }

    /// Records a newly tracked miss (and, if primary, a new fetch).
    /// The caller must `advance` to the event time first.
    pub fn on_miss(&mut self, new_fetch: bool) {
        self.misses += 1;
        self.max_misses = self.max_misses.max(self.misses);
        if new_fetch {
            self.fetches += 1;
            self.max_fetches = self.max_fetches.max(self.fetches);
        }
    }

    /// Records a fill that freed `misses_freed` waiting loads and retired
    /// one fetch. The caller must `advance` to the fill time first.
    pub fn on_fill(&mut self, misses_freed: usize) {
        debug_assert!(self.misses >= misses_freed);
        debug_assert!(self.fetches >= 1);
        self.misses -= misses_freed;
        self.fetches -= 1;
    }

    /// Current in-flight miss count.
    #[inline]
    pub fn misses_now(&self) -> usize {
        self.misses
    }

    /// Current in-flight fetch count.
    #[inline]
    pub fn fetches_now(&self) -> usize {
        self.fetches
    }

    /// Maximum simultaneous in-flight misses observed (Fig. 6 "max #").
    pub fn max_misses(&self) -> usize {
        self.max_misses
    }

    /// Maximum simultaneous in-flight fetches observed.
    pub fn max_fetches(&self) -> usize {
        self.max_fetches
    }

    /// Cycle-weighted histogram of in-flight miss counts (index = count,
    /// saturating at the last bucket).
    pub fn miss_histogram(&self) -> &[u64; INFLIGHT_BUCKETS] {
        &self.miss_hist
    }

    /// Cycle-weighted histogram of in-flight fetch counts.
    pub fn fetch_histogram(&self) -> &[u64; INFLIGHT_BUCKETS] {
        &self.fetch_hist
    }

    /// Fraction of sampled time with more than zero in-flight misses
    /// (Fig. 6's "MIF" column).
    pub fn fraction_with_misses_in_flight(&self) -> f64 {
        let total: u64 = self.miss_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let busy: u64 = self.miss_hist[1..].iter().sum();
        busy as f64 / total as f64
    }

    /// Distribution of in-flight miss counts conditioned on at least one
    /// miss being in flight: `result[k]` is the fraction of miss-in-flight
    /// time with exactly `k+1` misses, with the final element aggregating
    /// `7+` (Fig. 6's per-count columns).
    pub fn miss_distribution_given_busy(&self) -> [f64; 7] {
        Self::distribution_given_busy(&self.miss_hist)
    }

    /// Same as [`InFlightSampler::miss_distribution_given_busy`] for fetches.
    pub fn fetch_distribution_given_busy(&self) -> [f64; 7] {
        Self::distribution_given_busy(&self.fetch_hist)
    }

    fn distribution_given_busy(hist: &[u64; INFLIGHT_BUCKETS]) -> [f64; 7] {
        let busy: u64 = hist[1..].iter().sum();
        let mut out = [0.0; 7];
        if busy == 0 {
            return out;
        }
        for (i, slot) in out.iter_mut().enumerate().take(6) {
            *slot = hist[i + 1] as f64 / busy as f64;
        }
        let seven_plus: u64 = hist[7..].iter().sum();
        out[6] = seven_plus as f64 / busy as f64;
        out
    }
}

impl Default for InFlightSampler {
    fn default() -> Self {
        InFlightSampler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcpi_and_breakdown() {
        let mut s = CpuStats {
            instructions: 1000,
            ..CpuStats::default()
        };
        s.add_stall(StallCause::DataDependency, 300);
        s.add_stall(StallCause::Structural, 100);
        s.add_stall(StallCause::Blocking, 0);
        assert_eq!(s.total_stall_cycles(), 400);
        assert!((s.mcpi() - 0.4).abs() < 1e-12);
        assert!((s.structural_fraction() - 0.25).abs() < 1e-12);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = CpuStats::default();
        assert_eq!(s.mcpi(), 0.0);
        assert_eq!(s.structural_fraction(), 0.0);
    }

    #[test]
    fn sampler_tracks_spans_exactly() {
        let mut sam = InFlightSampler::new();
        // 0..10: nothing in flight.
        sam.advance(Cycle(10));
        sam.on_miss(true); // 10..16: one miss, one fetch
        sam.advance(Cycle(16));
        sam.on_miss(true); // 16..20: two misses, two fetches
        sam.advance(Cycle(20));
        sam.on_fill(1); // 20..26: one miss, one fetch
        sam.advance(Cycle(26));
        sam.on_fill(1);
        sam.advance(Cycle(30)); // 26..30: idle again

        let mh = sam.miss_histogram();
        assert_eq!(mh[0], 14); // 10 + 4
        assert_eq!(mh[1], 12); // 6 + 6
        assert_eq!(mh[2], 4);
        assert_eq!(sam.max_misses(), 2);
        assert_eq!(sam.max_fetches(), 2);
        assert_eq!(sam.misses_now(), 0);
        assert_eq!(sam.fetches_now(), 0);

        let frac = sam.fraction_with_misses_in_flight();
        assert!((frac - 16.0 / 30.0).abs() < 1e-12);
        let dist = sam.miss_distribution_given_busy();
        assert!((dist[0] - 12.0 / 16.0).abs() < 1e-12);
        assert!((dist[1] - 4.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_advance_clamps_backwards() {
        let mut sam = InFlightSampler::new();
        sam.advance(Cycle(5));
        sam.advance(Cycle(3)); // no-op
        sam.advance(Cycle(5)); // no-op
        assert_eq!(sam.miss_histogram()[0], 5);
    }

    #[test]
    fn secondary_misses_share_a_fetch() {
        let mut sam = InFlightSampler::new();
        sam.on_miss(true);
        sam.on_miss(false); // secondary: no new fetch
        sam.advance(Cycle(8));
        assert_eq!(sam.miss_histogram()[2], 8);
        assert_eq!(sam.fetch_histogram()[1], 8);
        sam.on_fill(2);
        assert_eq!(sam.misses_now(), 0);
        assert_eq!(sam.fetches_now(), 0);
    }

    #[test]
    fn seven_plus_bucket_aggregates() {
        let mut sam = InFlightSampler::new();
        for _ in 0..9 {
            sam.on_miss(true);
        }
        sam.advance(Cycle(10));
        let dist = sam.miss_distribution_given_busy();
        assert!((dist[6] - 1.0).abs() < 1e-12);
        assert_eq!(sam.max_misses(), 9);
    }

    #[test]
    fn empty_sampler_distributions() {
        let sam = InFlightSampler::new();
        assert_eq!(sam.fraction_with_misses_in_flight(), 0.0);
        assert_eq!(sam.miss_distribution_given_busy(), [0.0; 7]);
        assert_eq!(sam.fetch_distribution_given_busy(), [0.0; 7]);
    }
}
