//! `tomcatv` — vectorized 2-D mesh generation (SPEC92 CFP).
//!
//! The real program sweeps several 257×257 double-precision arrays with
//! two nested loops that the compiler unrolls heavily; nearly every load
//! streams through memory, so misses are frequent (every 4th element with
//! 32-byte lines) **and** mutually independent — the textbook case for
//! aggressive non-blocking support (the paper's Fig. 12 shows a 17×
//! MCPI gap between `mc=0` and the unrestricted cache at latency 10, and
//! Fig. 18 uses tomcatv for the miss-penalty sweep).
//!
//! Model: an unrolled forward sweep over four streaming input arrays with
//! short FP combine chains and two output stores per iteration, plus a
//! small backward-recurrence block (the tridiagonal back-substitution)
//! whose dependent loads resist overlap.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

/// Mesh arrays: large enough that a sweep never fits in the 8 KB cache.
const MESH_ELEMS: u64 = 64 * 1024; // 512 KB per array

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("tomcatv");
    let stream = |i: u64| AddrPattern::Strided {
        base: layout::region(i, 64 * i), // distinct set alignment per array
        elem_bytes: 8,
        stride: 1,
        length: MESH_ELEMS,
    };
    let x = pb.pattern(stream(0));
    let y = pb.pattern(stream(1));
    let rx = pb.pattern(stream(2));
    let ry = pb.pattern(stream(3));
    let rxout = pb.pattern(stream(4));
    let ryout = pb.pattern(stream(5));
    let diag = pb.pattern(stream(6));

    // Forward sweep, unrolled 6×: 14 independent loads per iteration —
    // wide enough that long-latency schedules push each load a full miss
    // penalty ahead of its use.
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    for _ in 0..6 {
        let xv = b.load(x, RegClass::Fp, LoadFormat::DOUBLE);
        let yv = b.load(y, RegClass::Fp, LoadFormat::DOUBLE);
        let t = b.alu(RegClass::Fp, Some(xv), Some(yv));
        let t2 = b.alu(RegClass::Fp, Some(t), Some(xv));
        let t3 = b.alu(RegClass::Fp, Some(t2), Some(yv));
        b.store(rxout, Some(t3));
    }
    // Residual update reads two more streams every iteration.
    let rv = b.load(rx, RegClass::Fp, LoadFormat::DOUBLE);
    let rv2 = b.load(ry, RegClass::Fp, LoadFormat::DOUBLE);
    let res = b.alu(RegClass::Fp, Some(rv), Some(rv2));
    b.store(ryout, Some(res));
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let sweep = b.finish();

    // Backward recurrence: acc = d[i] - coeff*acc — a dependent chain the
    // scheduler cannot hide.
    let mut b = pb.block();
    let j = b.carried(RegClass::Int);
    let acc = b.carried(RegClass::Fp);
    for _ in 0..2 {
        let d = b.load(diag, RegClass::Fp, LoadFormat::DOUBLE);
        let t = b.alu(RegClass::Fp, Some(d), Some(acc));
        b.alu_into(acc, Some(t), Some(acc));
    }
    b.alu_into(j, Some(j), None);
    b.branch(Some(j));
    let solve = b.finish();

    let sweep_len = 41u64; // 12+2 loads, 19+1 alu, 7 stores, 2 ctrl
    let solve_len = 8u64;
    let unit = 8 * sweep_len + solve_len;
    let trips = scale.trips(unit);
    pb.loop_of(
        trips,
        vec![
            crate::ir::ScriptNode::Run {
                block: sweep,
                times: 8,
            },
            crate::ir::ScriptNode::Run {
                block: solve,
                times: 1,
            },
        ],
    );
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_load_heavy_and_streaming() {
        let p = build(Scale::quick());
        let (loads, stores, _other) = p.blocks[0].op_mix();
        assert_eq!(loads, 14);
        assert_eq!(stores, 7);
        assert!(p.estimated_instructions() >= 20_000);
        // All patterns are strided streams.
        assert!(p
            .patterns
            .iter()
            .all(|pt| matches!(pt, AddrPattern::Strided { .. })));
    }
}
