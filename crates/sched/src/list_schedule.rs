//! List scheduling for a target load latency.
//!
//! This is the paper's central *software* knob (§3.3): "the load latency is
//! the time in cycles that the compiler assumes is required to fetch data
//! from the cache on a cache hit... This parameter indicates to the
//! compiler how many instructions it should try to insert between the load
//! instruction and the first use." The simulator always uses a 1-cycle hit;
//! only the *schedule* changes with this parameter.
//!
//! A classic latency-weighted list scheduler: build the dependence DAG of
//! the block, weight load→use edges with the scheduled load latency and
//! everything else with one cycle, and repeatedly emit the ready operation
//! with the greatest critical-path height. At latency 1 the schedule stays
//! close to source order (uses right after loads); at latency 20 loads are
//! hoisted and grouped ahead of their consumers — exactly the behaviour
//! whose cache-level consequences (more overlap, but also more conflict
//! misses from clustered loads, Fig. 8) the paper measures.

use nbl_core::hash::FastMap;
use nbl_trace::ir::{Block, IrOp};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Builds the dependence edges of `ops` with the given scheduled load
/// latency. Returns `(successors, indegrees)`; each successor edge carries
/// its latency.
fn build_dag(ops: &[IrOp], load_latency: u32) -> (Vec<Vec<(usize, u32)>>, Vec<usize>) {
    let n = ops.len();
    let mut succs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    let add_edge = |succs: &mut Vec<Vec<(usize, u32)>>,
                    indeg: &mut Vec<usize>,
                    a: usize,
                    b: usize,
                    lat: u32| {
        if a != b {
            succs[a].push((b, lat));
            indeg[b] += 1;
        }
    };

    // Register dependences: last def / all uses since that def.
    let mut last_def: FastMap<u32, usize> = FastMap::default();
    let mut uses_since_def: FastMap<u32, Vec<usize>> = FastMap::default();
    // Memory: keep stores ordered relative to each other.
    let mut last_store: Option<usize> = None;

    for (i, op) in ops.iter().enumerate() {
        for src in op.srcs() {
            if let Some(&d) = last_def.get(&src.0) {
                // RAW: a load's consumer waits the scheduled load latency.
                let lat = if ops[d].is_load() { load_latency } else { 1 };
                add_edge(&mut succs, &mut indeg, d, i, lat);
            }
            uses_since_def.entry(src.0).or_default().push(i);
        }
        if let Some(dst) = op.dst() {
            // WAR: this def must not move above earlier uses of the old value.
            if let Some(users) = uses_since_def.get(&dst.0) {
                for &u in users {
                    add_edge(&mut succs, &mut indeg, u, i, 0);
                }
            }
            // WAW: keep defs of the same register ordered.
            if let Some(&d) = last_def.get(&dst.0) {
                add_edge(&mut succs, &mut indeg, d, i, 1);
            }
            last_def.insert(dst.0, i);
            uses_since_def.insert(dst.0, Vec::new());
        }
        if op.is_store() {
            if let Some(s) = last_store {
                add_edge(&mut succs, &mut indeg, s, i, 1);
            }
            last_store = Some(i);
        }
    }

    // The block terminator (a trailing branch) stays last: it is the
    // loop back-edge, and hoisting it would be meaningless.
    if let Some(IrOp::Branch { .. }) = ops.last() {
        let t = n - 1;
        for i in 0..t {
            if !succs[i].iter().any(|&(s, _)| s == t) {
                add_edge(&mut succs, &mut indeg, i, t, 0);
            }
        }
    }
    (succs, indeg)
}

/// Critical-path height of every op (longest latency-weighted path to any
/// sink). Ops are emitted highest-first among the ready set.
fn heights(ops: &[IrOp], succs: &[Vec<(usize, u32)>]) -> Vec<u64> {
    let n = ops.len();
    let mut h = vec![0u64; n];
    // succs edges always go forward (i < j), so a reverse sweep is a
    // topological order.
    for i in (0..n).rev() {
        for &(s, lat) in &succs[i] {
            h[i] = h[i].max(h[s] + u64::from(lat));
        }
    }
    h
}

/// Schedules `block` for `load_latency`, returning the op indices in their
/// new order. The permutation respects every dependence in the block.
///
/// # Examples
///
/// ```
/// use nbl_sched::list_schedule::schedule;
/// use nbl_trace::builder::ProgramBuilder;
/// use nbl_trace::ir::AddrPattern;
/// use nbl_core::types::{LoadFormat, RegClass};
///
/// let mut pb = ProgramBuilder::new("demo");
/// let a = pb.pattern(AddrPattern::Strided { base: 0, elem_bytes: 8, stride: 1, length: 64 });
/// let mut b = pb.block();
/// let x = b.load(a, RegClass::Fp, LoadFormat::DOUBLE);
/// let y = b.alu(RegClass::Fp, Some(x), None); // the use of the load
/// let z = b.load(a, RegClass::Fp, LoadFormat::DOUBLE); // independent
/// b.branch(Some(y));
/// let _ = (z, b.finish());
/// let p = pb.build();
/// // At latency 1 the use may follow its load; at a long latency the
/// // independent load is pulled between them.
/// let order = schedule(&p.blocks[0], 20);
/// assert_eq!(order[0], 0); // first load
/// assert_eq!(order[1], 2); // independent load hoisted over the use
/// ```
pub fn schedule(block: &Block, load_latency: u32) -> Vec<usize> {
    let ops = &block.ops;
    let n = ops.len();
    if n == 0 {
        return Vec::new();
    }
    let (succs, mut indeg) = build_dag(ops, load_latency);
    let h = heights(ops, &succs);

    // Classic cycle-driven list scheduling: among the ops *ready this
    // cycle*, emit the one with the greatest critical-path height (source
    // order breaks ties, which keeps latency-1 schedules near the original
    // order). Ops whose operands are not ready yet wait in `pending`.
    let mut ready_time = vec![0u64; n];
    // pending: min-heap by ready time; ready: max-heap by (height, -index).
    let mut pending: BinaryHeap<(Reverse<u64>, usize)> = BinaryHeap::new();
    let mut ready: BinaryHeap<(u64, Reverse<usize>)> = BinaryHeap::new();
    for (i, &d) in indeg.iter().enumerate() {
        if d == 0 {
            pending.push((Reverse(0), i));
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut clock = 0u64;
    while order.len() < n {
        // Promote everything ready by `clock`.
        while let Some(&(Reverse(rt), i)) = pending.peek() {
            if rt <= clock {
                pending.pop();
                ready.push((h[i], Reverse(i)));
            } else {
                break;
            }
        }
        let Some((_, Reverse(i))) = ready.pop() else {
            // Nothing ready: jump to the next ready time (the machine
            // would be idle; the *sequence* simply continues there).
            let (Reverse(rt), _) = *pending.peek().expect("acyclic DAG always progresses");
            clock = rt;
            continue;
        };
        order.push(i);
        let issue_at = clock;
        clock += 1;
        for &(s, lat) in &succs[i] {
            ready_time[s] = ready_time[s].max(issue_at + u64::from(lat));
            indeg[s] -= 1;
            if indeg[s] == 0 {
                pending.push((Reverse(ready_time[s]), s));
            }
        }
    }
    order
}

/// Verifies that `order` respects every dependence of `block` — used by
/// tests and exposed for property testing.
pub fn respects_dependences(block: &Block, order: &[usize]) -> bool {
    let ops = &block.ops;
    let mut position = vec![0usize; ops.len()];
    for (pos, &i) in order.iter().enumerate() {
        position[i] = pos;
    }
    let (succs, _) = build_dag(ops, 1);
    for (i, edges) in succs.iter().enumerate() {
        for &(s, _) in edges {
            if position[i] >= position[s] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::types::{LoadFormat, RegClass};
    use nbl_trace::builder::ProgramBuilder;
    use nbl_trace::ir::AddrPattern;

    fn demo_block() -> nbl_trace::ir::Program {
        let mut pb = ProgramBuilder::new("demo");
        let arr = pb.pattern(AddrPattern::Strided {
            base: 0,
            elem_bytes: 8,
            stride: 1,
            length: 1024,
        });
        let out = pb.pattern(AddrPattern::Strided {
            base: 65536,
            elem_bytes: 8,
            stride: 1,
            length: 1024,
        });
        let mut b = pb.block();
        // 4 independent (load, use, store) triples in source order.
        for _ in 0..4 {
            let x = b.load(arr, RegClass::Fp, LoadFormat::DOUBLE);
            let y = b.alu(RegClass::Fp, Some(x), None);
            b.store(out, Some(y));
        }
        b.branch(None);
        b.finish();
        pb.build()
    }

    /// Distance in the schedule from each load to the first use of its
    /// result, averaged.
    fn mean_load_use_distance(block: &nbl_trace::ir::Block, order: &[usize]) -> f64 {
        let mut pos = vec![0usize; block.ops.len()];
        for (p, &i) in order.iter().enumerate() {
            pos[i] = p;
        }
        let mut total = 0usize;
        let mut count = 0usize;
        for (i, op) in block.ops.iter().enumerate() {
            if !op.is_load() {
                continue;
            }
            let dst = op.dst().unwrap();
            let first_use = block
                .ops
                .iter()
                .enumerate()
                .filter(|(j, o)| *j != i && o.srcs().contains(&dst))
                .map(|(j, _)| pos[j])
                .min();
            if let Some(u) = first_use {
                total += u.saturating_sub(pos[i]);
                count += 1;
            }
        }
        total as f64 / count as f64
    }

    #[test]
    fn latency_one_stays_near_source_order() {
        let p = demo_block();
        let order = schedule(&p.blocks[0], 1);
        assert!(respects_dependences(&p.blocks[0], &order));
        let d = mean_load_use_distance(&p.blocks[0], &order);
        assert!(
            d <= 2.0,
            "latency-1 schedule keeps uses near loads (got {d})"
        );
    }

    #[test]
    fn long_latency_spreads_load_use_pairs() {
        let p = demo_block();
        let o1 = schedule(&p.blocks[0], 1);
        let o10 = schedule(&p.blocks[0], 10);
        assert!(respects_dependences(&p.blocks[0], &o10));
        let d1 = mean_load_use_distance(&p.blocks[0], &o1);
        let d10 = mean_load_use_distance(&p.blocks[0], &o10);
        assert!(
            d10 > d1,
            "longer scheduled latency must widen load-use distance ({d1} -> {d10})"
        );
        // With 4 independent triples and latency 10, the loads group ahead.
        let first_four: Vec<_> = o10.iter().take(4).copied().collect();
        let loads_in_front = first_four
            .iter()
            .filter(|&&i| p.blocks[0].ops[i].is_load())
            .count();
        assert_eq!(loads_in_front, 4, "all loads hoist to the front: {o10:?}");
    }

    #[test]
    fn stores_keep_their_order() {
        let p = demo_block();
        for lat in [1, 2, 3, 6, 10, 20] {
            let order = schedule(&p.blocks[0], lat);
            let store_positions: Vec<usize> = order
                .iter()
                .enumerate()
                .filter(|(_, &i)| p.blocks[0].ops[i].is_store())
                .map(|(p, _)| p)
                .collect();
            let mut sorted_by_source: Vec<(usize, usize)> = order
                .iter()
                .enumerate()
                .filter(|(_, &i)| p.blocks[0].ops[i].is_store())
                .map(|(pos, &i)| (i, pos))
                .collect();
            sorted_by_source.sort();
            let positions_in_source_order: Vec<usize> =
                sorted_by_source.iter().map(|&(_, pos)| pos).collect();
            assert_eq!(
                store_positions, positions_in_source_order,
                "stores reordered at lat {lat}"
            );
        }
    }

    #[test]
    fn terminator_branch_stays_last() {
        let p = demo_block();
        for lat in [1, 6, 20] {
            let order = schedule(&p.blocks[0], lat);
            assert_eq!(*order.last().unwrap(), p.blocks[0].ops.len() - 1);
        }
    }

    #[test]
    fn dependent_chain_cannot_be_reordered() {
        let mut pb = ProgramBuilder::new("chain");
        let ring = pb.pattern(AddrPattern::Chase {
            base: 0,
            node_bytes: 32,
            nodes: 64,
            field_offset: 0,
            seed: 1,
        });
        let mut b = pb.block();
        let ptr = b.carried(RegClass::Int);
        b.chase(ring, ptr, LoadFormat::DOUBLE);
        let t = b.alu(RegClass::Int, Some(ptr), None);
        let t2 = b.alu_chain(RegClass::Int, t, 3);
        b.branch(Some(t2));
        b.finish();
        let p = pb.build();
        for lat in [1, 20] {
            let order = schedule(&p.blocks[0], lat);
            assert_eq!(
                order,
                vec![0, 1, 2, 3, 4, 5],
                "a serial chain has only one order"
            );
        }
    }

    #[test]
    fn empty_block_schedules_empty() {
        let block = nbl_trace::ir::Block::default();
        assert!(schedule(&block, 10).is_empty());
    }
}
