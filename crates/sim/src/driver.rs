//! The simulation driver: compile a workload for the configured load
//! latency, stream it through the configured processor, and collect the
//! paper's metrics.

use crate::compile_cache::CompileCache;
use crate::config::{ProcessorKind, SimConfig};
use crate::tape_cache::TapeCache;
use crate::telemetry::Telemetry;
use nbl_core::geometry::CacheGeometry;
use nbl_core::inst::DynInst;
use nbl_cpu::core_engine::{Core, EngineConfig, EngineError, L2Params};
use nbl_cpu::dual::DualIssueProcessor;
use nbl_cpu::issue::{IssueEngine, IssuePolicy};
use nbl_cpu::stats::ReplayAttribution;
use nbl_mem::event::MemTrace;
use nbl_mem::AccessOutcome;
use nbl_sched::compile::{compile, CompileError};
use nbl_trace::exec::Executor;
use nbl_trace::ir::Program;
use nbl_trace::machine::{CompiledProgram, InstSink};
use nbl_trace::tape::TraceTape;
use std::cell::RefCell;
use std::fmt;

/// Any failure a simulation run can report: the compiler model rejected
/// the program, the engine hit a model invariant violation, or a pool
/// worker's grid cell panicked.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The scheduling compiler failed.
    Compile(CompileError),
    /// The execution engine failed mid-run.
    Engine(EngineError),
    /// A sweep cell panicked on a pool worker; the panic was caught so the
    /// sweep fails instead of the process.
    WorkerPanic {
        /// Input index of the grid cell that panicked.
        job: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Compile(e) => write!(f, "compile error: {e}"),
            SimError::Engine(e) => write!(f, "engine error: {e}"),
            SimError::WorkerPanic { job, message } => {
                write!(f, "sweep cell {job} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<CompileError> for SimError {
    fn from(e: CompileError) -> SimError {
        SimError::Compile(e)
    }
}

impl From<EngineError> for SimError {
    fn from(e: EngineError) -> SimError {
        SimError::Engine(e)
    }
}

impl From<crate::pool::JobPanic> for SimError {
    fn from(p: crate::pool::JobPanic) -> SimError {
        SimError::WorkerPanic {
            job: p.job,
            message: p.message,
        }
    }
}

/// Fig. 6-style occupancy summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InFlightSummary {
    /// Fraction of run time with ≥1 miss in flight ("MIF").
    pub frac_time_with_misses: f64,
    /// Distribution of miss counts 1..6 and 7+, given ≥1 in flight.
    pub miss_dist: [f64; 7],
    /// Distribution of fetch counts 1..6 and 7+, given ≥1 in flight.
    pub fetch_dist: [f64; 7],
    /// Maximum simultaneous misses.
    pub max_misses: usize,
    /// Maximum simultaneous fetches.
    pub max_fetches: usize,
}

/// All measurements from one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Hardware configuration label.
    pub config: String,
    /// Processor-model label (`"single"` unless the run swept models).
    pub model: String,
    /// Replacement-policy label (`"lru"` unless the run swept it).
    pub replacement: String,
    /// Scheduled load latency the code was compiled for.
    pub load_latency: u32,
    /// Miss penalty.
    pub miss_penalty: u32,
    /// Instructions executed.
    pub instructions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Miss CPI — the paper's metric.
    pub mcpi: f64,
    /// Stall cycles from true data dependencies.
    pub data_dep_stalls: u64,
    /// Stall cycles from MSHR structural hazards.
    pub structural_stalls: u64,
    /// Stall cycles from blocking miss service (`mc=0`, `+wma`).
    pub blocking_stalls: u64,
    /// Fraction of MCPI due to structural stalls (Fig. 7).
    pub structural_fraction: f64,
    /// Loads that took a structural-stall miss.
    pub structural_stall_misses: u64,
    /// Primary + secondary load miss rate (Fig. 8), as a fraction of loads.
    pub load_miss_rate: f64,
    /// Secondary-only load miss rate (Fig. 8).
    pub secondary_miss_rate: f64,
    /// In-flight occupancy summary (Fig. 6).
    pub inflight: InFlightSummary,
    /// Spill memory operations added by the compiler, per static program.
    pub static_spill_ops: usize,
    /// Per-cause replay counts and stall attribution (all zero unless the
    /// run used the replaying processor model).
    pub replay: ReplayAttribution,
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] lat={} pen={}: MCPI {:.3}",
            self.benchmark, self.config, self.load_latency, self.miss_penalty, self.mcpi
        )
    }
}

/// [`InstSink`] adapters: `InstSink::exec` is infallible, so an engine
/// error is held sticky — execution degenerates to a no-op for the rest of
/// the stream and the driver reports the first error after the run.
struct SingleSink<'a> {
    cpu: &'a mut IssueEngine,
    error: Option<EngineError>,
}

impl InstSink for SingleSink<'_> {
    #[inline]
    fn exec(&mut self, inst: DynInst) {
        if self.error.is_none() {
            if let Err(e) = self.cpu.push(inst) {
                self.error = Some(e);
            }
        }
    }
}

struct DualSink<'a> {
    cpu: &'a mut DualIssueProcessor,
    error: Option<EngineError>,
}

impl InstSink for DualSink<'_> {
    #[inline]
    fn exec(&mut self, inst: DynInst) {
        if self.error.is_none() {
            if let Err(e) = self.cpu.push(inst) {
                self.error = Some(e);
            }
        }
    }
}

fn l2_params(cfg: &SimConfig) -> Option<L2Params> {
    cfg.l2.map(|(size, hit_penalty)| L2Params {
        geometry: CacheGeometry::direct_mapped(size, cfg.geometry.line_bytes())
            .expect("valid L2 geometry"),
        hit_penalty,
        replacement: cfg.replacement,
    })
}

fn summarize(
    benchmark: &str,
    cfg: &SimConfig,
    static_spill_ops: usize,
    cpu: &IssueEngine,
) -> RunResult {
    let stats = *cpu.stats();
    let counters = *cpu.cache().counters();
    let sampler = cpu.sampler();
    // Blocking-cache misses never reach the cache counters (the rejection
    // is resolved by a synchronous fill), so add them back for miss rates.
    let loads = stats.loads.max(1);
    let missing =
        counters.load_primary_misses + counters.load_secondary_misses + stats.blocking_load_misses;
    RunResult {
        benchmark: benchmark.to_string(),
        config: cfg.hw.label(),
        model: cfg.processor.label().to_string(),
        replacement: cfg.replacement.label(),
        load_latency: cfg.load_latency,
        miss_penalty: cfg.miss_penalty,
        instructions: stats.instructions,
        loads: stats.loads,
        stores: stats.stores,
        cycles: cpu.now().0,
        mcpi: stats.mcpi(),
        data_dep_stalls: stats.data_dep_stall_cycles,
        structural_stalls: stats.structural_stall_cycles,
        blocking_stalls: stats.blocking_stall_cycles,
        structural_fraction: stats.structural_fraction(),
        structural_stall_misses: stats.structural_stall_misses,
        load_miss_rate: missing as f64 / loads as f64,
        secondary_miss_rate: counters.load_secondary_misses as f64 / loads as f64,
        inflight: InFlightSummary {
            frac_time_with_misses: sampler.fraction_with_misses_in_flight(),
            miss_dist: sampler.miss_distribution_given_busy(),
            fetch_dist: sampler.fetch_distribution_given_busy(),
            max_misses: sampler.max_misses(),
            max_fetches: sampler.max_fetches(),
        },
        static_spill_ops,
        replay: *cpu.attribution(),
    }
}

/// Pooled processors a sweep worker keeps beyond one run. The bench grid
/// cycles through a handful of hardware configurations per thread, so a
/// small cap covers them all without hoarding memory on wide sweeps.
const ARENA_CAP: usize = 16;

thread_local! {
    /// Per-worker bump arena of issue engines, keyed by the configuration
    /// and issue policy they were built for. A run takes a matching engine
    /// out (resetting it — bit-identical to a fresh build, see
    /// [`IssueEngine::reset`]) and hands it back afterwards, so a warm
    /// worker serves every run of a sweep without constructing simulator
    /// state on the heap.
    static WORKER_ARENA: RefCell<Vec<((EngineConfig, IssuePolicy), IssueEngine)>> =
        const { RefCell::new(Vec::new()) };
}

/// Takes an engine for `(config, policy)` from this worker's arena (reset,
/// so its behavior is bit-identical to a fresh one), or builds one on a
/// miss.
fn acquire_engine(config: &EngineConfig, policy: IssuePolicy) -> IssueEngine {
    let pooled = WORKER_ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        arena
            .iter()
            .position(|((c, p), _)| c == config && *p == policy)
            .map(|pos| arena.swap_remove(pos).1)
    });
    match pooled {
        Some(mut cpu) => {
            cpu.reset();
            Telemetry::global().record_arena_reuse();
            cpu
        }
        None => {
            Telemetry::global().record_arena_build();
            IssueEngine::new(config.clone(), policy)
        }
    }
}

/// Returns an engine to this worker's arena for reuse (dropped if the
/// arena is full). The engine may be dirty — acquisition resets it.
fn release_engine(key: (EngineConfig, IssuePolicy), cpu: IssueEngine) {
    WORKER_ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        if arena.len() < ARENA_CAP {
            arena.push((key, cpu));
        }
    });
}

fn single_engine_config(cfg: &SimConfig) -> EngineConfig {
    let mut cache = cfg.hw.cache_config(cfg.geometry);
    cache.victim_entries = cfg.victim_entries;
    cache.replacement = cfg.replacement;
    EngineConfig {
        cache,
        miss_penalty: cfg.miss_penalty,
        perfect_cache: false,
        memory_gap: cfg.memory_gap,
        l2: l2_params(cfg),
    }
}

/// Telemetry common to every single-issue run, tape-replayed or
/// interpreted.
fn record_single_run(cfg: &SimConfig, result: &RunResult, trace: Option<&MemTrace>) {
    Telemetry::global().record_run(result.instructions, result.cycles);
    if cfg.replacement != nbl_core::tag_array::ReplacementKind::default() {
        Telemetry::global().record_policy_run();
    }
    if cfg.processor != ProcessorKind::default() {
        Telemetry::global().record_model_run();
    }
    if let Some(t) = trace {
        Telemetry::global().record_events(t.stats.total_events());
    }
}

/// Drives the run (finish + summarize + telemetry) once the stream has
/// been fed, shared by the tape and interpreter paths.
fn finish_single(
    benchmark: &str,
    cfg: &SimConfig,
    static_spill_ops: usize,
    cpu: &mut IssueEngine,
) -> Result<(RunResult, Option<MemTrace>), EngineError> {
    cpu.finish()?;
    let trace = cpu.take_mem_trace();
    let result = summarize(benchmark, cfg, static_spill_ops, cpu);
    record_single_run(cfg, &result, trace.as_ref());
    Ok((result, trace))
}

fn run_single(
    benchmark: &str,
    compiled: &CompiledProgram,
    cfg: &SimConfig,
    trace_ring: Option<usize>,
) -> Result<(RunResult, Option<MemTrace>), EngineError> {
    debug_assert_eq!(compiled.load_latency, cfg.load_latency);
    let engine_config = single_engine_config(cfg);
    let policy = cfg.processor.policy();
    let mut cpu = acquire_engine(&engine_config, policy);
    if let Some(ring) = trace_ring {
        cpu.enable_mem_tracing(ring);
    }
    let mut sink = SingleSink {
        cpu: &mut cpu,
        error: None,
    };
    Executor::new(compiled).run(&mut sink);
    if let Some(e) = sink.error {
        return Err(e);
    }
    let spills = compiled.blocks.iter().map(|b| b.spill_ops).sum();
    let out = finish_single(benchmark, cfg, spills, &mut cpu)?;
    release_engine((engine_config, policy), cpu);
    Ok(out)
}

fn replay_single(
    benchmark: &str,
    tape: &TraceTape,
    cfg: &SimConfig,
    trace_ring: Option<usize>,
) -> Result<(RunResult, Option<MemTrace>), EngineError> {
    debug_assert_eq!(tape.load_latency(), cfg.load_latency);
    let engine_config = single_engine_config(cfg);
    let policy = cfg.processor.policy();
    let mut cpu = acquire_engine(&engine_config, policy);
    if let Some(ring) = trace_ring {
        cpu.enable_mem_tracing(ring);
    }
    cpu.run_tape(tape)?;
    let out = finish_single(benchmark, cfg, tape.static_spill_ops(), &mut cpu)?;
    release_engine((engine_config, policy), cpu);
    Ok(out)
}

/// Replays a recorded tape through the single-issue processor under `cfg`
/// (the tape must have been recorded at `cfg.load_latency`). Produces a
/// [`RunResult`] bit-identical to interpreting the same compiled program.
///
/// # Errors
///
/// [`EngineError`] if the engine hit a model invariant violation mid-run.
pub fn run_tape(
    benchmark: &str,
    tape: &TraceTape,
    cfg: &SimConfig,
) -> Result<RunResult, EngineError> {
    replay_single(benchmark, tape, cfg, None).map(|(r, _)| r)
}

/// [`run_tape`] with the per-access outcome tap armed: returns the run
/// result plus one [`AccessOutcome`] per finally-resolved memory access,
/// in program order (the *n*-th outcome belongs to the *n*-th memory
/// operation of the tape). This is the observation half of the static
/// cache oracle's cell-by-cell cross-check (DESIGN.md §18); the tap adds
/// one null-check per access, so the replayed timing is identical to an
/// untapped run.
///
/// # Errors
///
/// [`EngineError`] if the engine hit a model invariant violation mid-run.
pub fn run_tape_probed(
    benchmark: &str,
    tape: &TraceTape,
    cfg: &SimConfig,
) -> Result<(RunResult, Vec<AccessOutcome>), EngineError> {
    debug_assert_eq!(tape.load_latency(), cfg.load_latency);
    let engine_config = single_engine_config(cfg);
    let policy = cfg.processor.policy();
    let mut cpu = acquire_engine(&engine_config, policy);
    cpu.enable_outcome_tap();
    cpu.run_tape(tape)?;
    let (result, _) = finish_single(benchmark, cfg, tape.static_spill_ops(), &mut cpu)?;
    let outcomes = cpu.take_outcomes().unwrap_or_default();
    release_engine((engine_config, policy), cpu);
    Ok((result, outcomes))
}

/// Replays one tape through several hardware configurations in a single
/// lockstep walk ([`Core::replay_fused`]): the tape's barrier stream is
/// decoded once and each entry is applied to every configuration before
/// moving on, instead of one full traversal per configuration. Every
/// configuration must share the tape's load latency; results are
/// bit-identical to calling [`run_tape`] per configuration, in order.
///
/// # Errors
///
/// [`EngineError`] if any configuration hit a model invariant violation —
/// the whole group is discarded as a unit (no partial results).
pub fn run_tape_fused(
    benchmark: &str,
    tape: &TraceTape,
    cfgs: &[SimConfig],
) -> Result<Vec<RunResult>, EngineError> {
    if cfgs.len() == 1 {
        return Ok(vec![run_tape(benchmark, tape, &cfgs[0])?]);
    }
    debug_assert!(cfgs.iter().all(|c| c.load_latency == tape.load_latency()));
    // The lockstep walk decodes a single-issue schedule; any other
    // processor model replays per configuration instead (identical
    // results, one traversal each).
    if cfgs
        .iter()
        .any(|c| c.processor != ProcessorKind::SingleInOrder)
    {
        return cfgs
            .iter()
            .map(|cfg| run_tape(benchmark, tape, cfg))
            .collect();
    }
    let engine_configs: Vec<EngineConfig> = cfgs.iter().map(single_engine_config).collect();
    let mut cpus: Vec<IssueEngine> = engine_configs
        .iter()
        .map(|c| acquire_engine(c, IssuePolicy::SingleInOrder))
        .collect();
    {
        let mut cores: Vec<&mut Core> = cpus.iter_mut().map(IssueEngine::core_mut).collect();
        Core::replay_fused(tape, &mut cores)?;
    }
    let mut results = Vec::with_capacity(cfgs.len());
    for (cpu, cfg) in cpus.iter_mut().zip(cfgs) {
        let (result, _) = finish_single(benchmark, cfg, tape.static_spill_ops(), cpu)?;
        results.push(result);
    }
    for (config, cpu) in engine_configs.into_iter().zip(cpus) {
        release_engine((config, IssuePolicy::SingleInOrder), cpu);
    }
    Ok(results)
}

/// Runs one compiled program through the single-issue processor under
/// `cfg` (the program must already be compiled for `cfg.load_latency`).
///
/// The dynamic stream is served from the process-wide [`TapeCache`]:
/// recorded by one `Executor` walk on the first run of this
/// `(benchmark, latency)` pair, replayed from the flat tape on every
/// later run. Use [`run_compiled_interpreted`] to force the interpreter.
///
/// # Errors
///
/// [`EngineError`] if the engine hit a model invariant violation mid-run.
pub fn run_compiled(
    benchmark: &str,
    compiled: &CompiledProgram,
    cfg: &SimConfig,
) -> Result<RunResult, EngineError> {
    let tape = TapeCache::global().get_or_record(compiled);
    run_tape(benchmark, &tape, cfg)
}

/// [`run_compiled`] without the tape fast path: re-interprets the
/// compiled program's script through the [`Executor`]. Kept public as the
/// reference implementation the equivalence tests and the `figures bench`
/// exhibit compare the replay path against.
///
/// # Errors
///
/// [`EngineError`] if the engine hit a model invariant violation mid-run.
pub fn run_compiled_interpreted(
    benchmark: &str,
    compiled: &CompiledProgram,
    cfg: &SimConfig,
) -> Result<RunResult, EngineError> {
    run_single(benchmark, compiled, cfg, None).map(|(r, _)| r)
}

/// Like [`run_compiled`], but with miss-lifecycle tracing enabled: the
/// returned [`MemTrace`] holds the last `ring_capacity` raw events and the
/// full [`nbl_mem::event::MissLifecycleStats`] aggregate of the run.
///
/// # Errors
///
/// [`EngineError`] if the engine hit a model invariant violation mid-run.
pub fn run_compiled_traced(
    benchmark: &str,
    compiled: &CompiledProgram,
    cfg: &SimConfig,
    ring_capacity: usize,
) -> Result<(RunResult, MemTrace), EngineError> {
    let tape = TapeCache::global().get_or_record(compiled);
    replay_single(benchmark, &tape, cfg, Some(ring_capacity))
        .map(|(r, t)| (r, t.expect("tracing was enabled")))
}

/// Like [`run_program`], but compiling through the process-wide
/// [`CompileCache`] — repeated runs of one `(benchmark, latency)` pair
/// (across configurations, experiments, or pool workers) share a single
/// compilation.
///
/// # Errors
///
/// [`SimError`] from the compiler model or the engine.
pub fn run_program_cached(program: &Program, cfg: &SimConfig) -> Result<RunResult, SimError> {
    let compiled = CompileCache::global().get_or_compile(program, cfg.load_latency)?;
    Ok(run_compiled(&program.name, &compiled, cfg)?)
}

/// Compiles `program` for `cfg.load_latency` and runs it.
///
/// # Errors
///
/// [`SimError`] from the compiler model or the engine.
pub fn run_program(program: &Program, cfg: &SimConfig) -> Result<RunResult, SimError> {
    let compiled = compile(program, cfg.load_latency)?;
    Ok(run_compiled(&program.name, &compiled, cfg)?)
}

/// Compiles `program` and runs it with miss-lifecycle tracing (see
/// [`run_compiled_traced`]).
///
/// # Errors
///
/// [`SimError`] from the compiler model or the engine.
pub fn run_program_traced(
    program: &Program,
    cfg: &SimConfig,
    ring_capacity: usize,
) -> Result<(RunResult, MemTrace), SimError> {
    let compiled = CompileCache::global().get_or_compile(program, cfg.load_latency)?;
    Ok(run_compiled_traced(
        &program.name,
        &compiled,
        cfg,
        ring_capacity,
    )?)
}

/// Result of a dual-issue run (paper §6 / Fig. 19).
#[derive(Debug, Clone, PartialEq)]
pub struct DualRunResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Hardware configuration label.
    pub config: String,
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles with the real cache.
    pub cycles: u64,
    /// Cycles with a perfect cache (same stream).
    pub perfect_cycles: u64,
    /// Average instructions per cycle on the perfect-cache machine — the
    /// IPC the paper's scaling rule multiplies by.
    pub ipc: f64,
    /// Memory CPI: `(cycles − perfect_cycles) / instructions`.
    pub mcpi: f64,
}

/// Runs `program` on the dual-issue machine: once with a perfect cache to
/// obtain the machine's ideal cycle count and IPC, once for real.
///
/// # Errors
///
/// [`SimError`] from the compiler model or the engine.
pub fn run_dual(program: &Program, cfg: &SimConfig) -> Result<DualRunResult, SimError> {
    let compiled = compile(program, cfg.load_latency)?;
    Ok(run_dual_compiled(&program.name, &compiled, cfg)?)
}

/// Like [`run_dual`], but compiling through the process-wide
/// [`CompileCache`].
///
/// # Errors
///
/// [`SimError`] from the compiler model or the engine.
pub fn run_dual_cached(program: &Program, cfg: &SimConfig) -> Result<DualRunResult, SimError> {
    let compiled = CompileCache::global().get_or_compile(program, cfg.load_latency)?;
    Ok(run_dual_compiled(&program.name, &compiled, cfg)?)
}

fn dual_engine_config(cfg: &SimConfig, perfect: bool) -> EngineConfig {
    let mut cache = cfg.hw.cache_config(cfg.geometry);
    cache.victim_entries = cfg.victim_entries;
    cache.replacement = cfg.replacement;
    EngineConfig {
        cache,
        miss_penalty: cfg.miss_penalty,
        perfect_cache: perfect,
        memory_gap: cfg.memory_gap,
        l2: l2_params(cfg),
    }
}

/// Builds the [`DualRunResult`] from the two finished passes and records
/// both as simulated work.
fn summarize_dual(
    benchmark: &str,
    cfg: &SimConfig,
    perfect: &DualIssueProcessor,
    real: &DualIssueProcessor,
) -> DualRunResult {
    let instructions = real.stats().instructions;
    Telemetry::global().record_run(instructions, perfect.now().0);
    Telemetry::global().record_run(instructions, real.now().0);
    DualRunResult {
        benchmark: benchmark.to_string(),
        config: cfg.hw.label(),
        instructions,
        cycles: real.now().0,
        perfect_cycles: perfect.now().0,
        ipc: instructions as f64 / perfect.now().0.max(1) as f64,
        mcpi: real.mcpi_against(perfect.now()),
    }
}

/// The dual-issue run on a recorded tape (which must match
/// `cfg.load_latency`): both passes — perfect-cache and real — replay the
/// same tape, so the stream is materialized once for the pair.
///
/// # Errors
///
/// [`EngineError`] if either pass hit a model invariant violation.
pub fn run_dual_tape(
    benchmark: &str,
    tape: &TraceTape,
    cfg: &SimConfig,
) -> Result<DualRunResult, EngineError> {
    debug_assert_eq!(tape.load_latency(), cfg.load_latency);
    let run_pass = |perfect: bool| -> Result<DualIssueProcessor, EngineError> {
        let mut cpu = DualIssueProcessor::new(dual_engine_config(cfg, perfect));
        cpu.run_tape(tape)?;
        cpu.finish()?;
        Ok(cpu)
    };
    let perfect = run_pass(true)?;
    let real = run_pass(false)?;
    Ok(summarize_dual(benchmark, cfg, &perfect, &real))
}

/// The dual-issue run on an already-compiled program (which must match
/// `cfg.load_latency`). The stream is served from the process-wide
/// [`TapeCache`], shared by the perfect-cache and real passes (and by
/// every other configuration of the pair); use
/// [`run_dual_compiled_interpreted`] to force the interpreter.
///
/// # Errors
///
/// [`EngineError`] if either pass hit a model invariant violation.
pub fn run_dual_compiled(
    benchmark: &str,
    compiled: &CompiledProgram,
    cfg: &SimConfig,
) -> Result<DualRunResult, EngineError> {
    let tape = TapeCache::global().get_or_record(compiled);
    run_dual_tape(benchmark, &tape, cfg)
}

/// [`run_dual_compiled`] without the tape fast path: both passes
/// re-interpret the compiled program's script. The reference
/// implementation the equivalence tests compare the replay path against.
///
/// # Errors
///
/// [`EngineError`] if either pass hit a model invariant violation.
pub fn run_dual_compiled_interpreted(
    benchmark: &str,
    compiled: &CompiledProgram,
    cfg: &SimConfig,
) -> Result<DualRunResult, EngineError> {
    debug_assert_eq!(compiled.load_latency, cfg.load_latency);
    let run_pass = |perfect: bool| -> Result<DualIssueProcessor, EngineError> {
        let mut cpu = DualIssueProcessor::new(dual_engine_config(cfg, perfect));
        let mut sink = DualSink {
            cpu: &mut cpu,
            error: None,
        };
        Executor::new(compiled).run(&mut sink);
        if let Some(e) = sink.error {
            return Err(e);
        }
        cpu.finish()?;
        Ok(cpu)
    };
    let perfect = run_pass(true)?;
    let real = run_pass(false)?;
    Ok(summarize_dual(benchmark, cfg, &perfect, &real))
}

impl RunResult {
    /// `true` if `self` is at least as good (no larger MCPI) as `other`,
    /// with a small tolerance for simulation noise.
    pub fn no_worse_than(&self, other: &RunResult, tolerance: f64) -> bool {
        self.mcpi <= other.mcpi * (1.0 + tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;
    use nbl_trace::workloads::{build, Scale};

    fn quick(name: &str, hw: HwConfig) -> RunResult {
        let p = build(name, Scale::quick()).unwrap();
        run_program(&p, &SimConfig::baseline(hw)).unwrap()
    }

    #[test]
    fn blocking_is_worst_for_a_streaming_benchmark() {
        let blocking = quick("tomcatv", HwConfig::Mc0);
        let wma = quick("tomcatv", HwConfig::Mc0Wma);
        let hum = quick("tomcatv", HwConfig::Mc(1));
        let best = quick("tomcatv", HwConfig::NoRestrict);
        assert!(wma.mcpi >= blocking.mcpi, "wma adds store-miss stalls");
        assert!(blocking.mcpi > hum.mcpi, "hit-under-miss must help tomcatv");
        assert!(
            hum.mcpi > best.mcpi,
            "unrestricted must beat hit-under-miss"
        );
        assert!(best.mcpi < 0.5 * blocking.mcpi, "tomcatv overlaps heavily");
    }

    #[test]
    fn stall_breakdown_sums_to_mcpi() {
        let r = quick("doduc", HwConfig::Mc(2));
        let total = r.data_dep_stalls + r.structural_stalls + r.blocking_stalls;
        assert!((r.mcpi - total as f64 / r.instructions as f64).abs() < 1e-9);
        assert!(r.instructions > 10_000);
        assert!(r.cycles >= r.instructions);
    }

    #[test]
    fn miss_rates_counted_for_blocking_caches_too() {
        let blocking = quick("tomcatv", HwConfig::Mc0);
        let best = quick("tomcatv", HwConfig::NoRestrict);
        assert!(blocking.load_miss_rate > 0.05);
        // The unrestricted cache classifies same-line loads issued during
        // a fetch as *secondary misses*; under a blocking cache the fetch
        // completes first and they hit — so its combined rate is at least
        // as high (paper Fig. 8 plots both components for this reason).
        assert!(best.load_miss_rate >= blocking.load_miss_rate - 0.02);
        assert!(best.secondary_miss_rate > 0.0);
        // Blocking caches have nothing in flight.
        assert_eq!(blocking.inflight.max_fetches, 0);
        assert!(best.inflight.max_fetches >= 2);
    }

    #[test]
    fn dual_issue_runs_and_reports_ipc() {
        let p = build("eqntott", Scale::quick()).unwrap();
        let d = run_dual(&p, &SimConfig::baseline(HwConfig::NoRestrict)).unwrap();
        assert!(
            d.ipc > 1.0,
            "dual issue must beat 1 IPC on eqntott: {}",
            d.ipc
        );
        assert!(d.ipc <= 2.0);
        assert!(d.mcpi >= 0.0);
        assert!(d.cycles >= d.perfect_cycles);
    }
}
