//! The inverted MSHR organization (paper §2.4, Fig. 3).
//!
//! Instead of one entry per outstanding *fetch*, the inverted MSHR keeps one
//! entry per possible *destination* of fetch data: every integer and
//! floating-point register, the program counter, write-buffer entries and
//! prefetch-buffer slots — typically 65–75 entries. Each entry stores the
//! block request address, formatting information and the address within the
//! block, plus a comparator; a match-entry encoder identifies waiting
//! destinations when a block returns.
//!
//! The organization therefore has **no restriction** on the number of blocks
//! being fetched or misses per block — only that each destination can wait
//! for at most one load, which the processor's scoreboard already
//! guarantees. This is the paper's "no restrict" curve.

use super::{MissKind, MissRequest, MshrResponse, Rejection, TargetRecord};
use crate::hash::FastMap;
use crate::types::{BlockAddr, Dest, LoadFormat, REGS_PER_CLASS};

/// Sizing of an [`InvertedMshr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InvertedConfig {
    /// Write-buffer entries that can receive fetch data (for write-allocate
    /// merging). Present for hardware-cost accounting; the baseline
    /// write-around cache never uses them.
    pub write_buffer_entries: u8,
    /// Instruction-prefetch buffer slots. Cost accounting only.
    pub prefetch_entries: u8,
}

impl InvertedConfig {
    /// The paper's "typical" sizing: 64 registers + PC + a handful of write
    /// buffer and prefetch entries, landing in the 65–75 entry range.
    pub fn typical() -> InvertedConfig {
        InvertedConfig {
            write_buffer_entries: 6,
            prefetch_entries: 4,
        }
    }

    /// Total number of destination entries.
    pub fn total_entries(&self) -> usize {
        2 * REGS_PER_CLASS as usize // integer + fp register files
            + 1 // program counter
            + self.write_buffer_entries as usize
            + self.prefetch_entries as usize
    }
}

impl Default for InvertedConfig {
    fn default() -> Self {
        InvertedConfig::typical()
    }
}

/// One valid destination entry.
#[derive(Debug, Clone, Copy)]
struct EntryState {
    block: BlockAddr,
    offset: u32,
    format: LoadFormat,
}

/// Dynamic state of the inverted MSHR.
#[derive(Debug, Clone)]
pub struct InvertedMshr {
    config: InvertedConfig,
    /// Valid entries keyed by destination (the per-destination field rows of
    /// Fig. 3; the valid bit is membership).
    entries: FastMap<Dest, EntryState>,
    /// Outstanding-fetch index: block → number of waiting destinations.
    /// Models the associative search + match encoder without a full scan.
    fetches: FastMap<BlockAddr, u32>,
}

impl InvertedMshr {
    /// Creates an empty inverted MSHR.
    pub fn new(config: InvertedConfig) -> InvertedMshr {
        InvertedMshr {
            config,
            entries: FastMap::default(),
            fetches: FastMap::default(),
        }
    }

    /// The sizing this MSHR was built with.
    pub fn config(&self) -> InvertedConfig {
        self.config
    }

    /// Clears all dynamic state while keeping the hash-map capacity for
    /// reuse by the next run on the same worker.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.fetches.clear();
    }

    /// Presents a load miss.
    ///
    /// A primary miss (no outstanding fetch for the block) launches a fetch;
    /// otherwise the entry is simply marked and no request goes off-chip
    /// (secondary). The only rejection is a destination already waiting,
    /// which a scoreboarded in-order processor never produces.
    pub fn try_load_miss(&mut self, req: &MissRequest) -> MshrResponse {
        if self.entries.contains_key(&req.dest) {
            return MshrResponse::Rejected(Rejection::DestinationBusy);
        }
        self.entries.insert(
            req.dest,
            EntryState {
                block: req.block,
                offset: req.offset,
                format: req.format,
            },
        );
        let waiting = self.fetches.entry(req.block).or_insert(0);
        *waiting += 1;
        if *waiting == 1 {
            MshrResponse::Accepted(MissKind::Primary)
        } else {
            MshrResponse::Accepted(MissKind::Secondary)
        }
    }

    /// Completes the fetch of `block`: probes all entries (the match
    /// encoder) and drains every destination waiting on this block.
    pub fn fill(&mut self, block: BlockAddr) -> Vec<TargetRecord> {
        let mut records = Vec::new();
        self.fill_into(block, &mut records);
        records
    }

    /// Completes the fetch of `block`, appending the waiting targets to
    /// `out` — the allocation-free twin of [`InvertedMshr::fill`].
    pub fn fill_into(&mut self, block: BlockAddr, out: &mut Vec<TargetRecord>) {
        if self.fetches.remove(&block).is_none() {
            return;
        }
        self.entries.retain(|dest, state| {
            if state.block == block {
                out.push(TargetRecord {
                    dest: *dest,
                    offset: state.offset,
                    format: state.format,
                });
                false
            } else {
                true
            }
        });
    }

    /// `true` if a fetch for `block` is outstanding. Probed on every
    /// access (before the tag array can report a hit), so the common
    /// nothing-in-flight case short-circuits before hashing.
    #[inline]
    pub fn is_in_transit(&self, block: BlockAddr) -> bool {
        !self.fetches.is_empty() && self.fetches.contains_key(&block)
    }

    /// Number of distinct blocks being fetched.
    #[inline]
    pub fn outstanding_fetches(&self) -> usize {
        self.fetches.len()
    }

    /// Number of destinations waiting for data.
    #[inline]
    pub fn outstanding_misses(&self) -> usize {
        self.entries.len()
    }

    /// The inverted MSHR imposes no per-set limits; this always reports the
    /// number of fetches as zero contribution per set is unknown without a
    /// geometry, so callers needing per-set statistics should derive them
    /// from their own fetch queue. Returns 0.
    #[inline]
    pub fn fetches_in_set(&self, _set: u32) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PhysReg;

    fn req(block: u64, reg: u8) -> MissRequest {
        MissRequest {
            block: BlockAddr(block),
            set: (block % 256) as u32,
            offset: 0,
            dest: Dest::Reg(PhysReg::int(reg)),
            format: LoadFormat::WORD,
        }
    }

    #[test]
    fn typical_sizing_is_in_paper_range() {
        let c = InvertedConfig::typical();
        assert!(
            c.total_entries() >= 65 && c.total_entries() <= 75,
            "got {}",
            c.total_entries()
        );
    }

    #[test]
    fn unlimited_fetches_and_merges() {
        let mut m = InvertedMshr::new(InvertedConfig::typical());
        // 30 distinct blocks in flight at once — no restriction.
        for b in 0..30u64 {
            assert_eq!(
                m.try_load_miss(&req(b, b as u8)),
                MshrResponse::Accepted(MissKind::Primary)
            );
        }
        assert_eq!(m.outstanding_fetches(), 30);
        assert_eq!(m.outstanding_misses(), 30);
        // A second miss to block 0 from an fp register merges.
        let second = MissRequest {
            block: BlockAddr(0),
            set: 0,
            offset: 8,
            dest: Dest::Reg(PhysReg::fp(0)),
            format: LoadFormat::DOUBLE,
        };
        assert_eq!(
            m.try_load_miss(&second),
            MshrResponse::Accepted(MissKind::Secondary)
        );
        let t = m.fill(BlockAddr(0));
        assert_eq!(t.len(), 2);
        assert_eq!(m.outstanding_fetches(), 29);
        assert_eq!(m.outstanding_misses(), 29);
    }

    #[test]
    fn busy_destination_rejects() {
        let mut m = InvertedMshr::new(InvertedConfig::typical());
        assert!(m.try_load_miss(&req(1, 4)).is_accepted());
        // Same destination register, different block.
        assert_eq!(
            m.try_load_miss(&req(2, 4)),
            MshrResponse::Rejected(Rejection::DestinationBusy)
        );
        m.fill(BlockAddr(1));
        assert!(m.try_load_miss(&req(2, 4)).is_accepted());
    }

    #[test]
    fn fill_returns_only_matching_destinations() {
        let mut m = InvertedMshr::new(InvertedConfig::typical());
        m.try_load_miss(&req(1, 1));
        m.try_load_miss(&req(2, 2));
        m.try_load_miss(&MissRequest {
            offset: 16,
            ..req(1, 3)
        });
        let t = m.fill(BlockAddr(1));
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|r| r.offset == 0 || r.offset == 16));
        assert!(m.is_in_transit(BlockAddr(2)));
        assert!(!m.is_in_transit(BlockAddr(1)));
    }

    #[test]
    fn fill_unknown_block_is_empty() {
        let mut m = InvertedMshr::new(InvertedConfig::default());
        assert!(m.fill(BlockAddr(77)).is_empty());
    }
}
