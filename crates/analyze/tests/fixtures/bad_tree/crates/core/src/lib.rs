//! Fixture: a hot-path crate breaking several invariants at once —
//! the bad half of the analyzer's fixture corpus.

/// Documented, but panics on the hot path.
pub fn boom(x: Option<u32>) -> u32 {
    if x.is_none() {
        panic!("fixture");
    }
    x.unwrap()
}

pub fn undocumented() {}

/// Wall-clock read on a result path.
pub fn timestamp() -> u64 {
    let _t = std::time::Instant::now();
    0
}

/// An empty reason does not suppress.
pub fn empty_reason(x: Option<u32>) -> u32 {
    // nbl-allow(no-panic):
    x.unwrap()
}

/// An unknown lint ID is itself a finding.
pub fn unknown_id(x: Option<u32>) -> u32 {
    // nbl-allow(not-a-lint): misspelled on purpose
    x.unwrap()
}

/// A reasoned suppression works.
pub fn reasoned(x: Option<u32>) -> u32 {
    // nbl-allow(no-panic): fixture demonstrates a valid suppression
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        Some(1u32).unwrap();
    }
}
