//! Property-based tests over the core invariants: the scheduler never
//! violates dependences, the cache agrees with a reference model, MSHR
//! files never exceed their configured limits, and simulation is
//! deterministic.

use nonblocking_loads::core::cache::{CacheConfig, LoadAccess, LockupFreeCache};
use nonblocking_loads::core::geometry::CacheGeometry;
use nonblocking_loads::core::limit::Limit;
use nonblocking_loads::core::mshr::{
    MissRequest, MshrConfig, MshrResponse, RegisterFileConfig, RegisterMshrFile, TargetPolicy,
};
use nonblocking_loads::core::tag_array::{ReplacementKind, TagArray};
use nonblocking_loads::core::types::{Addr, BlockAddr, Dest, LoadFormat, PhysReg, RegClass};
use nonblocking_loads::sched::list_schedule::{respects_dependences, schedule};
use nonblocking_loads::trace::ir::{AddrPattern, Block, IrOp, PatternId, VirtReg};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

/// Strategy: a random basic block over `n` virtual registers with
/// def-before-use discipline (as the generators guarantee).
fn arb_block(max_ops: usize) -> impl Strategy<Value = Block> {
    let op = (0u8..4, 0usize..64, 0usize..64);
    proptest::collection::vec(op, 1..max_ops).prop_map(|raw| {
        let mut block = Block::default();
        let mut defined: Vec<VirtReg> = Vec::new();
        let new_vreg = |block: &mut Block| {
            let v = VirtReg(block.classes.len() as u32);
            block.classes.push(RegClass::Int);
            v
        };
        for (kind, a, b) in raw {
            let pick = |defined: &Vec<VirtReg>, k: usize| {
                if defined.is_empty() {
                    None
                } else {
                    Some(defined[k % defined.len()])
                }
            };
            match kind {
                0 => {
                    let dst = new_vreg(&mut block);
                    block.ops.push(IrOp::Load {
                        dst,
                        pattern: PatternId(0),
                        format: LoadFormat::WORD,
                        addr_src: pick(&defined, a),
                    });
                    defined.push(dst);
                }
                1 => {
                    block.ops.push(IrOp::Store {
                        pattern: PatternId(0),
                        data: pick(&defined, a),
                        addr_src: None,
                    });
                }
                2 => {
                    let dst = new_vreg(&mut block);
                    block.ops.push(IrOp::Alu {
                        dst,
                        srcs: [pick(&defined, a), pick(&defined, b)],
                    });
                    defined.push(dst);
                }
                _ => {
                    block.ops.push(IrOp::Branch {
                        srcs: [pick(&defined, a), None],
                    });
                }
            }
        }
        block
    })
}

proptest! {
    /// The list schedule is a dependence-respecting permutation at every
    /// latency.
    #[test]
    fn schedules_are_valid_permutations(block in arb_block(40), lat in 1u32..25) {
        let order = schedule(&block, lat);
        prop_assert_eq!(order.len(), block.ops.len());
        let distinct: HashSet<_> = order.iter().collect();
        prop_assert_eq!(distinct.len(), order.len(), "a permutation has no duplicates");
        prop_assert!(respects_dependences(&block, &order));
    }

    /// Longer scheduled latencies never shrink the average load-use
    /// distance below the latency-1 schedule's by more than noise —
    /// the scheduler's entire purpose.
    #[test]
    fn longer_latency_never_packs_loads_tighter(block in arb_block(40)) {
        fn mean_distance(block: &Block, order: &[usize]) -> f64 {
            let mut pos = vec![0usize; block.ops.len()];
            for (p, &i) in order.iter().enumerate() {
                pos[i] = p;
            }
            let mut total = 0isize;
            let mut n = 0;
            for (i, op) in block.ops.iter().enumerate() {
                if !op.is_load() { continue; }
                let Some(dst) = op.dst() else { continue };
                let first_use = block.ops.iter().enumerate()
                    .filter(|(j, o)| *j != i && o.srcs().contains(&dst))
                    .map(|(j, _)| pos[j] as isize)
                    .min();
                if let Some(u) = first_use {
                    total += u - pos[i] as isize;
                    n += 1;
                }
            }
            if n == 0 { 0.0 } else { total as f64 / n as f64 }
        }
        let d1 = mean_distance(&block, &schedule(&block, 1));
        let d20 = mean_distance(&block, &schedule(&block, 20));
        prop_assert!(d20 + 1e-9 >= d1 - 1.0, "latency 20 distance {d20} collapsed below latency 1 {d1}");
    }

    /// A direct-mapped blocking cache agrees access-for-access with a
    /// trivial reference model (tag per set).
    #[test]
    fn cache_matches_reference_model(addrs in proptest::collection::vec(0u64..(1 << 16), 1..400)) {
        let geom = CacheGeometry::direct_mapped(1024, 32).unwrap();
        let mut cache = LockupFreeCache::new(CacheConfig {
            geometry: geom,
            write_miss: nonblocking_loads::core::cache::WriteMissPolicy::WriteAround,
            mshr: MshrConfig::Blocking,
            victim_entries: 0,
            replacement: ReplacementKind::default(),
        });
        let mut reference: HashMap<u32, u64> = HashMap::new();
        for raw in addrs {
            let a = Addr(raw);
            let set = geom.set_of(a);
            let tag = geom.tag_of_block(geom.block_of(a));
            let expect_hit = reference.get(&set) == Some(&tag);
            let got = cache.access_load(a, Dest::Reg(PhysReg::int(1)), LoadFormat::WORD);
            if expect_hit {
                prop_assert_eq!(got, LoadAccess::Hit);
            } else {
                prop_assert!(matches!(got, LoadAccess::Stalled(_)), "blocking cache rejects misses");
                cache.fill(geom.block_of(a));
                reference.insert(set, tag);
            }
        }
    }

    /// A register MSHR file never exceeds any configured limit, and fills
    /// return exactly the accepted targets.
    #[test]
    fn mshr_file_honors_limits(
        entries in 1u32..5,
        misses in 1u32..8,
        per_set in 1u32..3,
        ops in proptest::collection::vec((0u64..32, 0u32..32, any::<bool>()), 1..300),
    ) {
        let geom = CacheGeometry::baseline();
        let cfg = RegisterFileConfig {
            entries: Limit::Finite(entries),
            targets: TargetPolicy::explicit(Limit::Unlimited),
            max_outstanding_misses: Limit::Finite(misses),
            max_fetches_per_set: Limit::Finite(per_set),
        };
        let mut file = RegisterMshrFile::new(cfg, &geom);
        let mut in_flight: VecDeque<BlockAddr> = VecDeque::new();
        let mut accepted: HashMap<BlockAddr, usize> = HashMap::new();
        for (block_raw, offset, do_fill) in ops {
            if do_fill {
                if let Some(block) = in_flight.pop_front() {
                    let woken = file.fill(block);
                    prop_assert_eq!(woken.len(), accepted.remove(&block).unwrap_or(0));
                }
                continue;
            }
            let block = BlockAddr(block_raw);
            let set = geom.set_of_block(block);
            let req = MissRequest {
                block,
                set,
                offset,
                dest: Dest::Reg(PhysReg::int((block_raw % 32) as u8)),
                format: LoadFormat::WORD,
            };
            let before_fetches = file.outstanding_fetches();
            match file.try_load_miss(&req) {
                MshrResponse::Accepted(kind) => {
                    *accepted.entry(block).or_default() += 1;
                    if kind == nonblocking_loads::core::mshr::MissKind::Primary {
                        in_flight.push_back(block);
                        prop_assert_eq!(file.outstanding_fetches(), before_fetches + 1);
                    }
                }
                MshrResponse::Rejected(_) => {}
            }
            prop_assert!(file.outstanding_fetches() <= entries as usize);
            prop_assert!(file.outstanding_misses() <= misses as usize);
            for s in 0..geom.num_sets() as u32 {
                prop_assert!(file.fetches_in_set(s) <= per_set as usize);
            }
        }
    }

    /// Pattern streams are deterministic: two executors over the same
    /// compiled program produce identical address sequences.
    #[test]
    fn executors_replay_identically(seed in any::<u64>(), n in 1u64..200) {
        use nonblocking_loads::trace::machine::{CompiledProgram, MachineBlock, MachineOp};
        use nonblocking_loads::trace::ir::{BlockId, ScriptNode};
        use nonblocking_loads::trace::exec::Executor;
        use nonblocking_loads::core::inst::DynInst;
        let program = CompiledProgram {
            name: "prop".into(),
            load_latency: 1,
            patterns: vec![
                AddrPattern::Gather { base: 0x1000, elem_bytes: 8, length: 64, seed },
                AddrPattern::Chase { base: 0x40000, node_bytes: 32, nodes: 16, field_offset: 0, seed },
            ],
            blocks: vec![MachineBlock {
                ops: vec![
                    MachineOp::Load {
                        dst: PhysReg::int(1),
                        pattern: PatternId(0),
                        format: LoadFormat::WORD,
                        addr_src: None,
                    },
                    MachineOp::Load {
                        dst: PhysReg::int(2),
                        pattern: PatternId(1),
                        format: LoadFormat::DOUBLE,
                        addr_src: Some(PhysReg::int(2)),
                    },
                ],
                spill_ops: 0,
            }],
            script: vec![ScriptNode::Run { block: BlockId(0), times: n }],
        };
        let mut s1: Vec<DynInst> = Vec::new();
        let mut s2: Vec<DynInst> = Vec::new();
        Executor::new(&program).run(&mut s1);
        Executor::new(&program).run(&mut s2);
        prop_assert_eq!(s1, s2);
    }

    /// Under every replacement policy, an eviction always removes a block
    /// that was resident in the installed block's own set — the tag array
    /// never invents a victim, and while any invalid way remains in a set
    /// it is preferred over evicting.
    #[test]
    fn victim_is_always_a_resident_way(
        policy_idx in 0usize..4,
        blocks in proptest::collection::vec(0u64..64, 1..300),
    ) {
        let geom = CacheGeometry::new(1024, 32, 4).unwrap();
        let replacement = ReplacementKind::all()[policy_idx];
        let mut tags = TagArray::new(geom, replacement);
        let mut resident: HashSet<BlockAddr> = HashSet::new();
        for raw in blocks {
            let block = BlockAddr(raw);
            let set = geom.set_of_block(block);
            let had_invalid_way = (0..tags.ways()).any(|w| !tags.is_valid(set, w));
            match tags.install(block) {
                Some(victim) => {
                    prop_assert!(
                        resident.remove(&victim),
                        "[{}] evicted {victim:?}, which was never resident", replacement
                    );
                    prop_assert_eq!(geom.set_of_block(victim), set, "victim from another set");
                    prop_assert!(
                        !had_invalid_way || resident.contains(&block),
                        "[{}] evicted despite a free way", replacement
                    );
                }
                None => prop_assert!(
                    had_invalid_way || resident.contains(&block),
                    "[{}] full set filled without an eviction", replacement
                ),
            }
            resident.insert(block);
            prop_assert!(tags.contains(block), "installed block not resident");
        }
        for &block in &resident {
            prop_assert!(tags.contains(block), "resident block lost");
        }
    }

    /// Under LRU and tree-PLRU, a line that just hit is never the next
    /// victim of its set (with more than one way) — the touch must
    /// protect it.
    #[test]
    fn hit_never_makes_the_line_the_next_victim(
        use_plru in any::<bool>(),
        blocks in proptest::collection::vec(0u64..64, 1..200),
        pick in 0usize..1000,
    ) {
        let geom = CacheGeometry::new(1024, 32, 4).unwrap();
        let replacement = if use_plru { ReplacementKind::TreePlru } else { ReplacementKind::Lru };
        let mut tags = TagArray::new(geom, replacement);
        let mut resident: Vec<BlockAddr> = Vec::new();
        for raw in blocks {
            let block = BlockAddr(raw);
            if let Some(victim) = tags.install(block) {
                resident.retain(|b| *b != victim);
            }
            if !resident.contains(&block) {
                resident.push(block);
            }
        }
        let block = resident[pick % resident.len()];
        prop_assert!(tags.touch(block), "picked block is resident");
        let set = geom.set_of_block(block);
        let slot = tags.find(block).expect("picked block is resident");
        let way = slot - set as usize * tags.ways();
        let victim = tags.victim_way(set);
        prop_assert!(victim < tags.ways());
        prop_assert_ne!(
            victim, way,
            "[{}] the just-hit line is the next victim", replacement
        );
    }

    /// The random replacement policy is a pure function of its seed: the
    /// same seed replays an identical eviction sequence, on any
    /// install/touch stream.
    #[test]
    fn random_policy_replays_identically(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..300),
    ) {
        let geom = CacheGeometry::new(1024, 32, 4).unwrap();
        let replay = |seed: u64| -> Vec<Option<BlockAddr>> {
            let mut tags = TagArray::new(geom, ReplacementKind::Random { seed });
            ops.iter()
                .map(|&(raw, is_touch)| {
                    let block = BlockAddr(raw);
                    if is_touch {
                        tags.touch(block);
                        None
                    } else {
                        tags.install(block)
                    }
                })
                .collect()
        };
        prop_assert_eq!(replay(seed), replay(seed), "same seed diverged");
    }
}
