//! A small deterministic PRNG for workload generation and tests.
//!
//! The simulator needs *reproducible* pseudo-randomness — every workload
//! generator seeds its streams with fixed constants so two runs (and two
//! machines) produce bit-identical traces. An external crate adds nothing
//! here but a network dependency, so the workspace carries this ~40-line
//! splitmix64 instead: the finalizer from Steele, Lea & Flood,
//! "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014), also
//! used to seed xorshift/xoshiro generators. It passes BigCrush on its
//! own and is more than adequate for shuffling address streams.

/// A splitmix64 generator. Copy-cheap, seedable, deterministic.
///
/// # Examples
///
/// ```
/// use nbl_core::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound` = 0 yields 0).
    ///
    /// Uses the widening-multiply range reduction (Lemire 2019) without
    /// the rejection step: the bias is < 2⁻⁶⁴·bound, irrelevant for the
    /// permutation sizes used here, and keeping it rejection-free makes
    /// the consumed stream length independent of `bound`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_answer_matches_reference() {
        // Reference values from the published splitmix64.c (seed 1234567).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut r = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn bounded_values_cover_the_range() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }
}
