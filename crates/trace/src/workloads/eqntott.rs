//! `eqntott` — boolean equation to truth-table converter (SPEC92 CINT).
//!
//! Dominated by `cmppt`, a comparison routine that scans pairs of
//! truth-table bit vectors word by word and branches on the first
//! difference. The scans are sequential 4-byte loads with the comparison
//! immediately consuming each pair, so misses are sparse (one per 8
//! elements) and isolated: the paper finds hit-under-miss within 10% of
//! unrestricted and structural stalls under 1% of MCPI (Fig. 11).
//!
//! Model: an unrolled compare loop over two large bit-vector regions plus
//! a pair of loads from a resident pointer table, with XOR/mask chains and
//! branches after every compare and a rare result store.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("eqntott");
    // Truth-table vectors: streamed 4-byte words, much larger than cache.
    let vec_a = pb.pattern(AddrPattern::Strided {
        base: layout::region(0, 0),
        elem_bytes: 2, // packed halfword bit-vector chunks
        stride: 1,
        length: 128 * 1024,
    });
    // The pivot vector is compared against many others and stays hot
    // (random access breaks any stride phase-lock with the streamed one).
    let vec_b = pb.pattern(AddrPattern::Gather {
        base: layout::region(1, 4096),
        elem_bytes: 4,
        length: 768, // 3 KB, resident
        seed: 0xe688,
    });
    // Term pointer table: 4 KB, resident.
    let ptbl = pb.pattern(AddrPattern::Gather {
        base: layout::region(2, 0),
        elem_bytes: 8,
        length: 512,
        seed: 0xe677,
    });
    let result = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 1024),
        elem_bytes: 4,
        stride: 1,
        length: 16 * 1024,
    });

    // cmppt inner loop: one word compared per iteration, so the rare
    // stream misses arrive isolated — hit-under-miss captures nearly all
    // of the available benefit (Fig. 11).
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    let mut last = None;
    for _ in 0..1 {
        let a = b.load(
            vec_a,
            RegClass::Int,
            LoadFormat {
                size: nbl_core::types::AccessSize::B2,
                sign_extend: false,
            },
        );
        let c = b.load(vec_b, RegClass::Int, LoadFormat::WORD);
        let x = b.alu(RegClass::Int, Some(a), Some(c)); // xor
        let m = b.alu(RegClass::Int, Some(x), None); // mask
        let cmpc = b.alu(RegClass::Int, Some(m), None); // compare
        b.branch(Some(cmpc)); // early-out test
        last = Some(cmpc);
    }
    // Index arithmetic between compares (keeps the load fraction at
    // eqntott's ~12%).
    let p1 = b.load(ptbl, RegClass::Int, LoadFormat::DOUBLE);
    let p2 = b.load(ptbl, RegClass::Int, LoadFormat::DOUBLE);
    let q = b.alu(RegClass::Int, Some(p1), Some(p2));
    let q2 = b.alu_chain(RegClass::Int, q, 9);
    b.store(result, Some(q2));
    if let Some(l) = last {
        let t = b.alu(RegClass::Int, Some(l), Some(q2));
        b.branch(Some(t));
    }
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let cmppt = b.finish();

    let trips = scale.trips(25);
    pb.run(cmppt, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_isolated_misses() {
        let p = build(Scale::quick());
        let (loads, stores, other) = p.blocks[0].op_mix();
        assert_eq!(loads, 4);
        assert_eq!(stores, 1);
        assert!(other > loads, "compute/branch dominated");
        // Halfword streams: only every 16th element starts a new line.
        match p.patterns[0] {
            AddrPattern::Strided { elem_bytes, .. } => assert_eq!(elem_bytes, 2),
            _ => panic!(),
        }
    }
}
