//! The software half of the tradeoff: scheduling loads for misses instead
//! of hits.
//!
//! The paper's closing point is that non-blocking hardware is only as good
//! as the compiler's willingness to schedule loads for the *miss* latency.
//! This example compiles one workload for every scheduled load latency and
//! shows how the same hardware's MCPI responds — and how the schedule
//! itself changes (load-use distances, spill code).
//!
//! ```text
//! cargo run --release --example compiler_scheduling [benchmark]
//! ```

use nonblocking_loads::sched::compile::{compile, LOAD_LATENCIES};
use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::run_compiled;
use nonblocking_loads::trace::machine::MachineOp;
use nonblocking_loads::trace::workloads::{build, Scale};

/// Mean distance (in instructions) from each static load to the first use
/// of its destination register within the same block.
fn mean_load_use_distance(compiled: &nonblocking_loads::trace::machine::CompiledProgram) -> f64 {
    let mut total = 0usize;
    let mut count = 0usize;
    for block in &compiled.blocks {
        for (i, op) in block.ops.iter().enumerate() {
            let MachineOp::Load { dst, .. } = op else {
                continue;
            };
            let first_use = block.ops[i + 1..].iter().position(|o| match o {
                MachineOp::Load { addr_src, .. } => *addr_src == Some(*dst),
                MachineOp::Store { data, addr_src, .. } => {
                    *data == Some(*dst) || *addr_src == Some(*dst)
                }
                MachineOp::Alu { srcs, .. } | MachineOp::Branch { srcs } => {
                    srcs.contains(&Some(*dst))
                }
            });
            if let Some(d) = first_use {
                total += d + 1;
                count += 1;
            }
        }
    }
    total as f64 / count.max(1) as f64
}

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tomcatv".to_string());
    let program = build(&bench, Scale::full()).expect("known benchmark");
    println!("compiler load-latency sweep for {bench}\n");
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "sched", "load-use", "spill ops", "MCPI", "MCPI", "MCPI"
    );
    println!(
        "{:>8} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "latency", "distance", "(static)", "(mc=0)", "(mc=1)", "(no restrict)"
    );
    for lat in LOAD_LATENCIES {
        let compiled = compile(&program, lat).expect("workloads compile");
        let spills: usize = compiled.blocks.iter().map(|b| b.spill_ops).sum();
        let dist = mean_load_use_distance(&compiled);
        let mcpi = |hw: HwConfig| {
            run_compiled(&bench, &compiled, &SimConfig::baseline(hw).at_latency(lat))
                .expect("run succeeds")
                .mcpi
        };
        println!(
            "{:>8} {:>12.1} {:>10} {:>12.3} {:>12.3} {:>12.3}",
            lat,
            dist,
            spills,
            mcpi(HwConfig::Mc0),
            mcpi(HwConfig::Mc(1)),
            mcpi(HwConfig::NoRestrict),
        );
    }
    println!(
        "\nThe blocking cache is schedule-insensitive (a miss always stalls the\n\
         full penalty); the non-blocking configurations convert every extra\n\
         instruction of load-use distance directly into hidden miss latency."
    );
}
