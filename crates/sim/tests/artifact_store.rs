//! End-to-end tests of the tiered artifact store (DESIGN.md §16): two
//! store instances over one directory model two processes sharing
//! `results/store/`, and every corruption scenario must degrade to a
//! transparent re-record/re-simulate with bit-identical results.

use nbl_sim::driver::RunResult;
use nbl_sim::store::{
    decode_result, encode_result, program_fingerprint, result_fingerprint, ArtifactError,
    ArtifactStore, DiskTier,
};
use nbl_sim::{HwConfig, SimConfig, SweepEngine};
use nbl_trace::ir::Program;
use nbl_trace::tape::io::TapeCodecError;
use nbl_trace::tape::TraceTape;
use nbl_trace::workloads::{build, Scale};
use std::path::PathBuf;

/// A fresh per-test store directory under the system temp dir. Each test
/// passes a distinct tag, so the tests in this binary can run
/// concurrently; the process id keeps parallel `cargo test` invocations
/// apart.
fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nbl-artifact-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but heterogeneous grid: 2 benchmarks x 2 configs x 2
/// latencies = 8 cells, 4 `(benchmark, latency)` compile/tape pairs.
fn grid_programs() -> Vec<Program> {
    vec![
        build("eqntott", Scale::quick()).unwrap(),
        build("compress", Scale::quick()).unwrap(),
    ]
}

const GRID_CONFIGS: [HwConfig; 2] = [HwConfig::Mc0, HwConfig::Mc(4)];
const GRID_LATENCIES: [u32; 2] = [6, 10];
const CELLS: u64 = 8;
const PAIRS: u64 = 4;

fn run_grid(engine: &SweepEngine, programs: &[Program]) -> Vec<RunResult> {
    let refs: Vec<&Program> = programs.iter().collect();
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    engine
        .grid_sweep(&refs, &base, &GRID_CONFIGS, &GRID_LATENCIES)
        .unwrap()
        .into_iter()
        .flat_map(|s| s.rows.into_iter().flatten())
        .collect()
}

fn disk_engine(dir: &PathBuf, incremental: bool) -> SweepEngine {
    SweepEngine::with_store(2, ArtifactStore::with_disk(dir, incremental))
}

/// Artifact files of one kind currently in the store directory.
fn artifacts_with_extension(dir: &PathBuf, ext: &str) -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == ext))
        .collect();
    found.sort();
    found
}

#[test]
fn cross_process_warm_start_hits_the_disk_tier() {
    let dir = temp_store("warm");
    let programs = grid_programs();

    // "Process" A: empty store, so every pair records and writes through.
    let a = disk_engine(&dir, false);
    let baseline = run_grid(&a, &programs);
    let sa = a.store().disk_stats();
    assert_eq!(sa.tape_hits, 0);
    assert_eq!(sa.tape_misses, PAIRS);
    assert_eq!(sa.tape_writes, PAIRS);
    assert_eq!(sa.result_writes, CELLS);
    assert_eq!(a.tapes().stats().records, PAIRS);

    // "Process" B: a fresh instance over the same directory. Every tape
    // request must be answered by decoding A's artifacts — no recording.
    let b = disk_engine(&dir, false);
    let again = run_grid(&b, &programs);
    assert_eq!(
        again, baseline,
        "disk-tier tapes must replay bit-identically"
    );
    let sb = b.store().disk_stats();
    assert_eq!(sb.tape_hits, PAIRS);
    assert_eq!(sb.tape_misses, 0);
    assert_eq!(sb.corruptions, 0);
    assert_eq!(
        b.tapes().stats().records,
        0,
        "warm start must not re-record"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_mode_answers_cells_from_stored_results() {
    let dir = temp_store("incremental");
    let programs = grid_programs();

    let a = disk_engine(&dir, false);
    let baseline = run_grid(&a, &programs);

    // Incremental "process": every cell's input fingerprints are
    // unchanged, so the whole grid comes back from result artifacts
    // without compiling, recording, or simulating anything.
    let b = disk_engine(&dir, true);
    assert!(b.store().incremental());
    let served = run_grid(&b, &programs);
    assert_eq!(served, baseline, "stored results must be bit-identical");
    let sb = b.store().disk_stats();
    assert_eq!(sb.result_hits, CELLS);
    assert_eq!(sb.result_misses, 0);
    assert_eq!(
        b.cache().stats().compiles,
        0,
        "incremental hit skips compile"
    );
    assert_eq!(
        b.tapes().stats().records,
        0,
        "incremental hit skips recording"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_tape_is_quarantined_and_transparently_re_recorded() {
    let dir = temp_store("corrupt-tape");
    let programs = grid_programs();

    let a = disk_engine(&dir, false);
    let baseline = run_grid(&a, &programs);

    // Flip one bit in the middle of one tape artifact.
    let tapes = artifacts_with_extension(&dir, "nbt");
    assert_eq!(tapes.len(), PAIRS as usize);
    let victim = &tapes[1];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(victim, &bytes).unwrap();

    // A fresh "process" must detect the damage, quarantine the file,
    // re-record the pair, and finish the sweep with unperturbed results.
    let b = disk_engine(&dir, false);
    let again = run_grid(&b, &programs);
    assert_eq!(again, baseline, "corruption must not perturb results");
    let sb = b.store().disk_stats();
    assert_eq!(sb.corruptions, 1);
    assert_eq!(sb.tape_hits, PAIRS - 1);
    assert_eq!(sb.tape_writes, 1, "the damaged pair is re-recorded");
    assert_eq!(b.tapes().stats().records, 1);
    assert_eq!(
        artifacts_with_extension(&dir, "corrupt").len(),
        1,
        "the damaged file is kept aside as evidence"
    );
    assert!(victim.exists(), "the content address is repopulated");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_result_is_quarantined_and_the_cell_re_simulated() {
    let dir = temp_store("corrupt-result");
    let programs = grid_programs();

    let a = disk_engine(&dir, false);
    let baseline = run_grid(&a, &programs);

    let results = artifacts_with_extension(&dir, "nbr");
    assert_eq!(results.len(), CELLS as usize);
    let victim = &results[3];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(victim, &bytes).unwrap();

    // Incremental sweep over the damaged store: 7 cells come back from
    // artifacts, the quarantined one is re-simulated, and the reassembled
    // grid is still bit-identical.
    let b = disk_engine(&dir, true);
    let served = run_grid(&b, &programs);
    assert_eq!(served, baseline, "re-simulated cell must be bit-identical");
    let sb = b.store().disk_stats();
    assert_eq!(sb.corruptions, 1);
    assert_eq!(sb.result_hits, CELLS - 1);
    assert_eq!(sb.result_writes, 1, "the re-simulated cell writes back");
    assert!(victim.exists(), "the content address is repopulated");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_mislabeled_artifacts_report_typed_errors() {
    let dir = temp_store("typed-errors");
    let program = build("eqntott", Scale::quick()).unwrap();
    let store = ArtifactStore::in_memory();
    let compiled = store.get_or_compile(&program, 6).unwrap();
    let tape = TraceTape::record(&compiled);

    let tier = DiskTier::new(&dir);
    let fp = 0x1234u64;
    tier.write_tape(&tape, fp).unwrap();
    let path = tier.tape_path(tape.name(), tape.load_latency(), fp);

    // Truncation is a typed codec error, and the read quarantines the
    // file, so the next lookup is a plain miss.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    match tier.read_tape(tape.name(), tape.load_latency(), fp) {
        Err(ArtifactError::Codec(_)) => {}
        other => panic!("truncated artifact must be a codec error, got {other:?}"),
    }
    assert_eq!(
        tier.read_tape(tape.name(), tape.load_latency(), fp),
        Ok(None)
    );

    // A healthy artifact parked at the wrong content address decodes
    // fine but fails the identity check.
    let alias = tier.tape_path("compress", tape.load_latency(), fp);
    std::fs::write(&alias, &bytes).unwrap();
    assert_eq!(
        tier.read_tape("compress", tape.load_latency(), fp),
        Err(ArtifactError::Identity)
    );
    assert!(!alias.exists(), "mislabeled artifact is quarantined");

    let stats = tier.stats();
    assert_eq!(stats.corruptions, 2);
    assert_eq!(stats.tape_misses, 1);
    assert_eq!(stats.tape_hits, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn result_codec_round_trips_and_rejects_every_bit_flip() {
    let program = build("swm256", Scale::quick()).unwrap();
    let store = ArtifactStore::in_memory();
    let compiled = store.get_or_compile(&program, 10).unwrap();
    let cfg = SimConfig::baseline(HwConfig::Fc(4)).at_latency(10);
    let result = nbl_sim::run_compiled(&program.name, &compiled, &cfg).unwrap();

    let bytes = encode_result(&result);
    assert_eq!(
        decode_result(&bytes).unwrap(),
        result,
        "decode must reproduce the result bit-for-bit (floats included)"
    );

    // Every single-bit flip anywhere in the artifact must be caught by
    // magic, version, structure, or checksum — never decode silently.
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut damaged = bytes.clone();
            damaged[byte] ^= 1 << bit;
            assert!(
                decode_result(&damaged).is_err(),
                "bit flip at byte {byte} bit {bit} decoded silently"
            );
        }
    }

    // Every truncation must be typed, and appended garbage is rejected.
    for len in 0..bytes.len() {
        assert!(decode_result(&bytes[..len]).is_err());
    }
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(matches!(
        decode_result(&padded),
        Err(TapeCodecError::ChecksumMismatch | TapeCodecError::TrailingBytes)
    ));
}

#[test]
fn result_fingerprints_separate_configs_and_programs() {
    let eqntott = build("eqntott", Scale::quick()).unwrap();
    let compress = build("compress", Scale::quick()).unwrap();
    let fp_e = program_fingerprint(&eqntott);
    let fp_c = program_fingerprint(&compress);
    assert_ne!(fp_e, fp_c);
    assert_eq!(
        fp_e,
        program_fingerprint(&eqntott),
        "fingerprints are deterministic"
    );

    let base = SimConfig::baseline(HwConfig::Mc0).at_latency(6);
    let key = result_fingerprint(fp_e, &base);
    assert_ne!(
        key,
        result_fingerprint(fp_c, &base),
        "different program, same config"
    );
    assert_ne!(
        key,
        result_fingerprint(fp_e, &base.clone().at_latency(10)),
        "same program, different latency"
    );
    assert_ne!(
        key,
        result_fingerprint(fp_e, &SimConfig::baseline(HwConfig::Mc(4)).at_latency(6)),
        "same program, different hardware"
    );

    // A changed fingerprint is a miss: the store never serves a stale
    // result for modified inputs.
    let dir = temp_store("fingerprints");
    let store = ArtifactStore::with_disk(&dir, true);
    let compiled = store.get_or_compile(&eqntott, 6).unwrap();
    let result = nbl_sim::run_compiled(&eqntott.name, &compiled, &base).unwrap();
    store.store_result(&result, key);
    assert_eq!(store.load_result(&eqntott.name, 6, key), Some(result));
    assert_eq!(
        store.load_result(&eqntott.name, 6, key ^ 1),
        None,
        "a different input fingerprint must never hit"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
