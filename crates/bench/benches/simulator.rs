//! Criterion microbenchmarks: throughput of the simulator's hot paths.
//!
//! These are engineering benchmarks for the simulator itself (the paper
//! reproduction lives in the `figures` binary); they guard against
//! regressions that would make the 3700-simulation-scale studies painful.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nbl_core::cache::{CacheConfig, LockupFreeCache};
use nbl_core::limit::Limit;
use nbl_core::mshr::inverted::InvertedConfig;
use nbl_core::mshr::{MshrConfig, RegisterFileConfig, TargetPolicy};
use nbl_core::types::{Addr, Dest, LoadFormat, PhysReg};
use nbl_sched::compile::compile;
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::run_compiled;
use nbl_trace::workloads::{build, Scale};

fn cache_hit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_hit_path");
    let mut cache = LockupFreeCache::new(CacheConfig::baseline(MshrConfig::Inverted(
        InvertedConfig::typical(),
    )));
    // Warm one line.
    cache.access_load(Addr(0x1000), Dest::Reg(PhysReg::int(1)), LoadFormat::WORD);
    cache.fill(cache.block_of(Addr(0x1000)));
    group.bench_function("hit", |b| {
        b.iter(|| {
            black_box(cache.access_load(
                black_box(Addr(0x1008)),
                Dest::Reg(PhysReg::int(2)),
                LoadFormat::WORD,
            ))
        })
    });
    group.finish();
}

fn mshr_miss_fill_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("mshr_miss_fill");
    let organizations: Vec<(&str, MshrConfig)> = vec![
        (
            "register_fc2",
            MshrConfig::Register(RegisterFileConfig {
                entries: Limit::Finite(2),
                targets: TargetPolicy::explicit(Limit::Unlimited),
                max_outstanding_misses: Limit::Unlimited,
                max_fetches_per_set: Limit::Unlimited,
            }),
        ),
        ("inverted", MshrConfig::Inverted(InvertedConfig::typical())),
        ("incache", MshrConfig::InCache { targets: TargetPolicy::explicit(Limit::Unlimited), read_extra_cycles: 0 }),
    ];
    for (name, mshr) in organizations {
        let mut cache = LockupFreeCache::new(CacheConfig::baseline(mshr));
        let mut addr = 0u64;
        group.bench_function(name, |b| {
            b.iter(|| {
                addr = addr.wrapping_add(0x2040);
                let a = Addr(addr & 0xff_ffff);
                let r = cache.access_load(a, Dest::Reg(PhysReg::int(3)), LoadFormat::WORD);
                black_box(r);
                black_box(cache.fill(cache.block_of(a)));
            })
        });
    }
    group.finish();
}

fn compile_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);
    for name in ["doduc", "fpppp", "tomcatv"] {
        let p = build(name, Scale::quick()).unwrap();
        group.bench_function(name, |b| b.iter(|| black_box(compile(&p, black_box(10)).unwrap())));
    }
    group.finish();
}

fn end_to_end_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_40k_instructions");
    group.sample_size(10);
    for (label, hw) in [
        ("blocking", HwConfig::Mc0),
        ("hit_under_miss", HwConfig::Mc(1)),
        ("unrestricted", HwConfig::NoRestrict),
    ] {
        let p = build("doduc", Scale::quick()).unwrap();
        let compiled = compile(&p, 10).unwrap();
        let cfg = SimConfig::baseline(hw);
        group.bench_function(label, |b| {
            b.iter(|| black_box(run_compiled("doduc", &compiled, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    cache_hit_path,
    mshr_miss_fill_cycle,
    compile_throughput,
    end_to_end_simulation
);
criterion_main!(benches);
