//! The write buffer of the paper's §3.1.
//!
//! "A write buffer \[is\] situated between the data cache and lower levels in
//! the memory hierarchy. To avoid stalls induced by the write buffer (such
//! as it being full), no memory cycles are required to retire writes from
//! the write buffer."
//!
//! Functionally the buffer therefore never stalls the processor; we model it
//! anyway so that (a) write traffic statistics are available, (b) loads can
//! be checked against buffered stores (read-after-write forwarding would hit
//! in the buffer — with free retirement this can never be observed, but the
//! occupancy statistics document that assumption), and (c) alternative
//! retirement policies can be explored in ablation studies.

use nbl_core::types::{Addr, Cycle};
use std::collections::VecDeque;

/// How fast entries leave the write buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetirePolicy {
    /// The paper's model: retirement costs no memory cycles, so the buffer
    /// drains instantly and can never fill.
    #[default]
    Free,
    /// One entry retires every `cycles_per_retire` cycles — for ablations
    /// quantifying how much the free-retirement assumption matters.
    Throttled {
        /// Cycles between successive retirements.
        cycles_per_retire: u32,
    },
}

/// A buffered store awaiting retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingWrite {
    addr: Addr,
    retire_at: Cycle,
}

/// Statistics accumulated by the write buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteBufferStats {
    /// Stores accepted.
    pub writes: u64,
    /// Maximum simultaneous occupancy observed.
    pub max_occupancy: usize,
}

/// The write buffer between the data cache and the next memory level.
///
/// # Examples
///
/// ```
/// use nbl_mem::write_buffer::WriteBuffer;
/// use nbl_core::types::{Addr, Cycle};
///
/// let mut wb = WriteBuffer::free_retirement();
/// wb.push(Addr(0x100), Cycle(3));
/// assert_eq!(wb.occupancy(Cycle(3)), 0); // free retirement never queues
/// assert_eq!(wb.stats().writes, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBuffer {
    policy: RetirePolicy,
    pending: VecDeque<PendingWrite>,
    last_retire: Cycle,
    stats: WriteBufferStats,
}

impl WriteBuffer {
    /// Creates a buffer with the given retirement policy.
    pub fn new(policy: RetirePolicy) -> WriteBuffer {
        WriteBuffer {
            policy,
            ..WriteBuffer::default()
        }
    }

    /// The paper's configuration: writes retire for free.
    pub fn free_retirement() -> WriteBuffer {
        WriteBuffer::new(RetirePolicy::Free)
    }

    /// Clears all buffered writes and statistics while keeping the queue's
    /// allocation for reuse by the next run on this worker.
    pub fn reset(&mut self) {
        self.pending.clear();
        self.last_retire = Cycle::ZERO;
        self.stats = WriteBufferStats::default();
    }

    /// Accepts a store at time `now`. Never stalls.
    pub fn push(&mut self, addr: Addr, now: Cycle) {
        self.stats.writes += 1;
        match self.policy {
            RetirePolicy::Free => {} // retires instantly; never buffered
            RetirePolicy::Throttled { cycles_per_retire } => {
                self.drain(now);
                let earliest = self.last_retire.plus(u64::from(cycles_per_retire));
                let retire_at = if earliest > now {
                    earliest
                } else {
                    now.plus(u64::from(cycles_per_retire))
                };
                self.last_retire = retire_at;
                self.pending.push_back(PendingWrite { addr, retire_at });
                self.stats.max_occupancy = self.stats.max_occupancy.max(self.pending.len());
            }
        }
    }

    /// Removes entries that have retired by `now`.
    fn drain(&mut self, now: Cycle) {
        while self.pending.front().is_some_and(|w| w.retire_at <= now) {
            self.pending.pop_front();
        }
    }

    /// Entries still buffered at time `now`.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.drain(now);
        self.pending.len()
    }

    /// `true` if a store to `addr`'s address is still buffered at `now`.
    pub fn contains(&mut self, addr: Addr, now: Cycle) -> bool {
        self.drain(now);
        self.pending.iter().any(|w| w.addr == addr)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WriteBufferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_retirement_never_queues() {
        let mut wb = WriteBuffer::free_retirement();
        for i in 0..100u64 {
            wb.push(Addr(i * 8), Cycle(i));
        }
        assert_eq!(wb.occupancy(Cycle(100)), 0);
        assert_eq!(wb.stats().writes, 100);
        assert_eq!(wb.stats().max_occupancy, 0);
        assert!(!wb.contains(Addr(0), Cycle(100)));
    }

    #[test]
    fn throttled_retirement_queues_and_drains() {
        let mut wb = WriteBuffer::new(RetirePolicy::Throttled {
            cycles_per_retire: 4,
        });
        wb.push(Addr(0x10), Cycle(0)); // retires at 4
        wb.push(Addr(0x20), Cycle(0)); // retires at 8
        wb.push(Addr(0x30), Cycle(0)); // retires at 12
        assert_eq!(wb.occupancy(Cycle(0)), 3);
        assert!(wb.contains(Addr(0x20), Cycle(0)));
        assert_eq!(wb.occupancy(Cycle(4)), 2);
        assert_eq!(wb.occupancy(Cycle(8)), 1);
        assert_eq!(wb.occupancy(Cycle(12)), 0);
        assert_eq!(wb.stats().max_occupancy, 3);
    }

    #[test]
    fn throttled_retirement_spaced_after_idle() {
        let mut wb = WriteBuffer::new(RetirePolicy::Throttled {
            cycles_per_retire: 4,
        });
        wb.push(Addr(0x10), Cycle(100)); // retires at 104
        assert_eq!(wb.occupancy(Cycle(103)), 1);
        assert_eq!(wb.occupancy(Cycle(104)), 0);
    }

    #[test]
    fn throttled_restarts_the_retire_clock_after_a_gap() {
        let mut wb = WriteBuffer::new(RetirePolicy::Throttled {
            cycles_per_retire: 4,
        });
        wb.push(Addr(0x10), Cycle(0)); // retires at 4
                                       // The buffer went idle long before this push: the retire slot is
                                       // now + period, not last_retire + period.
        wb.push(Addr(0x20), Cycle(10)); // retires at 14, not 8
        assert_eq!(wb.occupancy(Cycle(13)), 1);
        assert_eq!(wb.occupancy(Cycle(14)), 0);
    }

    #[test]
    fn contains_reflects_retirement() {
        let mut wb = WriteBuffer::new(RetirePolicy::Throttled {
            cycles_per_retire: 4,
        });
        wb.push(Addr(0x10), Cycle(0));
        assert!(wb.contains(Addr(0x10), Cycle(3)));
        assert!(!wb.contains(Addr(0x10), Cycle(4)));
        assert!(!wb.contains(Addr(0x18), Cycle(3)), "address match is exact");
    }

    #[test]
    fn throttled_counts_writes_and_high_water_mark() {
        let mut wb = WriteBuffer::new(RetirePolicy::Throttled {
            cycles_per_retire: 2,
        });
        for i in 0..6u64 {
            wb.push(Addr(i * 8), Cycle(i)); // pushes outpace one-per-2-cycles
        }
        assert_eq!(wb.stats().writes, 6);
        assert!(
            wb.stats().max_occupancy >= 3,
            "got {}",
            wb.stats().max_occupancy
        );
        // Eventually everything drains.
        assert_eq!(wb.occupancy(Cycle(100)), 0);
    }

    #[test]
    fn default_policy_is_the_papers_free_retirement() {
        assert_eq!(RetirePolicy::default(), RetirePolicy::Free);
        let mut wb = WriteBuffer::default();
        wb.push(Addr(0x10), Cycle(0));
        assert_eq!(wb.occupancy(Cycle(0)), 0);
    }
}
