//! Cell-by-cell cross-validation of the abstract domain against the
//! real memory system.
//!
//! A *cell* is one `(benchmark tape, SimConfig)` pair. The check runs
//! the analyzer over the tape, replays the same tape through the actual
//! engine with the [`AccessOutcome`] tap enabled, and compares verdicts
//! access-by-access: every [`Classification::MustHit`] must have hit
//! (in L1 or the victim buffer — the oracle only gates victim-free
//! configs, but the mapping stays conservative), and every
//! [`Classification::MustMiss`] must have missed. [`Classification::Unknown`]
//! accesses are unconstrained. Any mismatch is a
//! [`CrossCheckViolation`] — evidence that either the abstract domain
//! or the tag-array/replacement implementation is wrong.

use crate::domain::{analyze_tape, Classification, Coverage};
use crate::{OracleConfig, OracleError};
use nbl_core::types::Addr;
use nbl_mem::AccessOutcome;
use nbl_sim::config::SimConfig;
use nbl_sim::driver::run_tape_probed;
use nbl_trace::TraceTape;

/// A disagreement between the oracle and the simulator for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossCheckViolation {
    /// The oracle proved a hit; the simulator observed a miss.
    MustHitMissed {
        /// Instruction index of the access in the tape.
        index: usize,
        /// The accessed address.
        addr: Addr,
    },
    /// The oracle proved a miss; the simulator observed a hit.
    MustMissHit {
        /// Instruction index of the access in the tape.
        index: usize,
        /// The accessed address.
        addr: Addr,
    },
    /// The analyzer and the tap disagree on how many memory accesses
    /// the tape performs — a plumbing bug, reported as its own variant
    /// so it can never masquerade as a clean pass.
    LengthMismatch {
        /// Accesses the analyzer classified.
        analyzed: usize,
        /// Outcomes the tap recorded.
        observed: usize,
    },
}

impl std::fmt::Display for CrossCheckViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrossCheckViolation::MustHitMissed { index, addr } => {
                write!(
                    f,
                    "must-hit missed at instruction {index} addr {:#x}",
                    addr.0
                )
            }
            CrossCheckViolation::MustMissHit { index, addr } => {
                write!(f, "must-miss hit at instruction {index} addr {:#x}", addr.0)
            }
            CrossCheckViolation::LengthMismatch { analyzed, observed } => {
                write!(
                    f,
                    "access count mismatch: analyzer saw {analyzed}, tap saw {observed}"
                )
            }
        }
    }
}

/// Compares per-access verdicts against observed outcomes.
///
/// `classes` and `outcomes` are both in tape memory-op order (the
/// single-issue in-order core resolves accesses in program order, and
/// the tap records final resolutions only — retried accesses record
/// one outcome at their final resolution). A victim-buffer hit counts
/// as a hit.
pub fn cross_check(
    tape: &TraceTape,
    classes: &[Classification],
    outcomes: &[AccessOutcome],
) -> Vec<CrossCheckViolation> {
    let mut violations = Vec::new();
    if classes.len() != outcomes.len() {
        violations.push(CrossCheckViolation::LengthMismatch {
            analyzed: classes.len(),
            observed: outcomes.len(),
        });
        return violations;
    }
    for (op, (&class, &outcome)) in tape.mem_ops().zip(classes.iter().zip(outcomes)) {
        let hit = matches!(outcome, AccessOutcome::Hit | AccessOutcome::VictimHit);
        match class {
            Classification::MustHit if !hit => {
                violations.push(CrossCheckViolation::MustHitMissed {
                    index: op.index,
                    addr: op.addr,
                });
            }
            Classification::MustMiss if hit => {
                violations.push(CrossCheckViolation::MustMissHit {
                    index: op.index,
                    addr: op.addr,
                });
            }
            _ => {}
        }
    }
    violations
}

/// Outcome of checking one cell: coverage plus any violations.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Geometry label, e.g. `8KB/32B dm`.
    pub geometry: String,
    /// Replacement-policy label.
    pub policy: String,
    /// Hardware-configuration label, e.g. `mc=0` or `fc=2`.
    pub hw: String,
    /// Classification counts from the analyzer walk.
    pub coverage: Coverage,
    /// Cross-check disagreements (empty on a sound pass).
    pub violations: Vec<CrossCheckViolation>,
}

/// Analyzes `tape` under `cfg` and cross-validates against a probed
/// replay through the real engine.
///
/// # Errors
///
/// [`OracleError::Unsupported`] when `cfg` is outside the model's
/// envelope; [`OracleError::Engine`] when the probed replay fails.
pub fn check_cell(
    benchmark: &str,
    tape: &TraceTape,
    cfg: &SimConfig,
) -> Result<CellReport, OracleError> {
    let ocfg = OracleConfig::from_sim(cfg)?;
    let analysis = analyze_tape(tape, &ocfg);
    let (_, outcomes) =
        run_tape_probed(benchmark, tape, cfg).map_err(|e| OracleError::Engine(e.to_string()))?;
    let violations = cross_check(tape, &analysis.classes, &outcomes);
    Ok(CellReport {
        benchmark: benchmark.to_string(),
        geometry: format!(
            "{}KB/{}B {}",
            cfg.geometry.size_bytes() / 1024,
            cfg.geometry.line_bytes(),
            if cfg.geometry.ways() == 1 {
                "dm".to_string()
            } else {
                format!("{}-way", cfg.geometry.ways())
            }
        ),
        policy: cfg.replacement.label().to_string(),
        hw: cfg.hw.label(),
        coverage: analysis.coverage,
        violations,
    })
}
