//! # nbl-mem — memory-system substrate
//!
//! The parts of the paper's memory model (§3.1) that live below the data
//! cache:
//!
//! * [`memory`] — the fully pipelined, constant-latency main memory, plus
//!   the §5.2 line-size-dependent penalty formula (14 cycles for the first
//!   16 bytes, 2 per additional 16);
//! * [`write_buffer`] — the free-retirement write buffer (with a throttled
//!   variant for ablation studies);
//! * [`system`] — the [`system::MemorySystem`] port composing L1 + MSHRs,
//!   the optional L2, the pipelined memory and the write buffer behind the
//!   narrow access/advance API the processors drive;
//! * [`event`] — the miss-lifecycle event model (`Issued → Merged |
//!   Rejected | FetchLaunched → Filled → TargetsWoken`) with its
//!   zero-cost-when-disabled observers.

/// Miss-lifecycle events, sinks and the zero-cost-when-disabled recorders.
pub mod event;
/// The pipelined main-memory model with its fixed service latency.
pub mod memory;
/// The port every processor drives: L1 + MSHRs -> optional L2 -> memory.
pub mod system;
/// The store write buffer with its retire policies.
pub mod write_buffer;

pub use event::{MemEvent, MemEventSink, MemTrace, MissLifecycleStats, RingRecorder};
pub use memory::{CompletedFetch, MemoryError, PipelinedMemory};
pub use system::{
    AccessOutcome, FillEvent, FusedMemGroup, GroupError, L2Params, LoadResponse, MemSystemConfig,
    MemorySystem, StoreResponse,
};
pub use write_buffer::{RetirePolicy, WriteBuffer, WriteBufferStats};
