//! Linear-scan register allocation with spill-everywhere splitting.
//!
//! Runs after list scheduling, as in the paper's Multiflow-derived
//! compiler ("register allocation occurs after instruction scheduling"),
//! which is why "code schedules prepared with different load latencies are
//! likely to have different register-use profiles. Hence, the number of
//! register spills to memory may vary thereby changing the number of data
//! and instruction references" — the Fig. 4 effect, reproduced here: the
//! spill loads and stores inserted by this allocator are real memory
//! operations that go through the simulated cache.
//!
//! Loop-carried virtual registers arrive pre-assigned (they are allocated
//! globally by `compile` and never spilled); everything else is scanned
//! over its live interval in schedule order. When a class runs out of
//! registers, the live range with the furthest end is spilled: its value
//! is stored to a stack slot right after its definition and reloaded (into
//! a fresh short-lived register) before each use. The scan then repeats on
//! the rewritten code until it fits.

use nbl_core::hash::FastMap;
use nbl_core::types::{LoadFormat, PhysReg, RegClass};
use nbl_trace::ir::{AddrPattern, IrOp, PatternId, VirtReg};
use nbl_trace::machine::{MachineBlock, MachineOp};

/// Inputs that don't change across spill iterations.
pub struct AllocContext<'a> {
    /// Pre-assigned loop-carried registers (never spilled).
    pub carried: &'a FastMap<VirtReg, PhysReg>,
    /// Scratch pool for integer virtual registers.
    pub int_pool: &'a [PhysReg],
    /// Scratch pool for floating-point virtual registers.
    pub fp_pool: &'a [PhysReg],
    /// Pattern table to extend with spill slots.
    pub patterns: &'a mut Vec<AddrPattern>,
    /// First byte of this block's spill area.
    pub spill_base: u64,
}

/// Errors from allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Even after spilling, the instantaneous operand pressure exceeds the
    /// pool (cannot happen with ≤3-operand instructions and pools ≥ 4).
    Unallocatable(RegClass),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Unallocatable(c) => write!(f, "operand pressure exceeds the {c:?} pool"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Working state: the op sequence plus a growable class table.
struct Working {
    ops: Vec<IrOp>,
    classes: Vec<RegClass>,
    spill_ops: usize,
    next_slot: u64,
}

impl Working {
    fn fresh_vreg(&mut self, class: RegClass) -> VirtReg {
        let v = VirtReg(self.classes.len() as u32);
        self.classes.push(class);
        v
    }
}

/// Live interval (positions in the op sequence, inclusive).
#[derive(Debug, Clone, Copy)]
struct Interval {
    vreg: VirtReg,
    start: usize,
    end: usize,
}

fn intervals(ops: &[IrOp], carried: &FastMap<VirtReg, PhysReg>) -> Vec<Interval> {
    let mut first: FastMap<VirtReg, usize> = FastMap::default();
    let mut last: FastMap<VirtReg, usize> = FastMap::default();
    for (i, op) in ops.iter().enumerate() {
        for v in op.srcs().into_iter().chain(op.dst()) {
            if carried.contains_key(&v) {
                continue;
            }
            first.entry(v).or_insert(i);
            last.insert(v, i);
        }
    }
    let mut out: Vec<Interval> = first
        .into_iter()
        .map(|(v, s)| Interval {
            vreg: v,
            start: s,
            end: last[&v],
        })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.end, iv.vreg.0));
    out
}

/// One linear-scan pass. Returns the assignment, or the vreg to spill.
fn scan(
    ops: &[IrOp],
    classes: &[RegClass],
    carried: &FastMap<VirtReg, PhysReg>,
    int_pool: &[PhysReg],
    fp_pool: &[PhysReg],
) -> Result<FastMap<VirtReg, PhysReg>, Result<VirtReg, AllocError>> {
    let ivs = intervals(ops, carried);
    let mut assignment: FastMap<VirtReg, PhysReg> = FastMap::default();
    let mut free: FastMap<RegClass, Vec<PhysReg>> = FastMap::default();
    free.insert(RegClass::Int, int_pool.to_vec());
    free.insert(RegClass::Fp, fp_pool.to_vec());
    // Active intervals per class, with their ends.
    let mut active: Vec<Interval> = Vec::new();
    for iv in &ivs {
        let class = classes[iv.vreg.0 as usize];
        // Expire intervals that ended strictly before this start: an
        // interval ending at position p frees its register for a vreg
        // starting at p+1 (same-op src/dst may not share a register,
        // because the source is read while the destination is written).
        active.retain(|a| {
            if a.end < iv.start {
                free.get_mut(&classes[a.vreg.0 as usize])
                    .expect("class pools exist")
                    .push(assignment[&a.vreg]);
                false
            } else {
                true
            }
        });
        let pool = free.get_mut(&class).expect("class pools exist");
        if let Some(reg) = pool.pop() {
            assignment.insert(iv.vreg, reg);
            active.push(*iv);
        } else {
            // Spill the splittable interval (same class, longer than a
            // single op — a one-op interval cannot be shortened) with the
            // furthest end, considering both the active set and the
            // incoming interval.
            let victim = active
                .iter()
                .chain(std::iter::once(iv))
                .filter(|a| classes[a.vreg.0 as usize] == class && a.end > a.start)
                .max_by_key(|a| a.end)
                .copied();
            return match victim {
                Some(v) => Err(Ok(v.vreg)),
                None => Err(Err(AllocError::Unallocatable(class))),
            };
        }
    }
    Ok(assignment)
}

/// Rewrites `w.ops`, spilling `victim` to a fresh stack slot: store after
/// its definition, reload into a fresh register before each use.
fn spill(w: &mut Working, victim: VirtReg, ctx: &mut AllocContext<'_>) {
    let slot_addr = ctx.spill_base + w.next_slot * 8;
    w.next_slot += 1;
    let slot = PatternId(ctx.patterns.len() as u32);
    ctx.patterns.push(AddrPattern::Fixed { addr: slot_addr });
    let class = w.classes[victim.0 as usize];

    let old = std::mem::take(&mut w.ops);
    let mut out = Vec::with_capacity(old.len() + 4);
    for mut op in old {
        let uses_victim = op.srcs().contains(&victim);
        if uses_victim {
            // Reload into a fresh register and rewrite this op's sources.
            let fresh = w.fresh_vreg(class);
            out.push(IrOp::Load {
                dst: fresh,
                pattern: slot,
                format: LoadFormat::DOUBLE,
                addr_src: None,
            });
            w.spill_ops += 1;
            rewrite_srcs(&mut op, victim, fresh);
        }
        let defines_victim = op.dst() == Some(victim);
        out.push(op);
        if defines_victim {
            out.push(IrOp::Store {
                pattern: slot,
                data: Some(victim),
                addr_src: None,
            });
            w.spill_ops += 1;
        }
    }
    w.ops = out;
}

fn rewrite_srcs(op: &mut IrOp, from: VirtReg, to: VirtReg) {
    match op {
        IrOp::Load { addr_src, .. } => {
            if *addr_src == Some(from) {
                *addr_src = Some(to);
            }
        }
        IrOp::Store { data, addr_src, .. } => {
            if *data == Some(from) {
                *data = Some(to);
            }
            if *addr_src == Some(from) {
                *addr_src = Some(to);
            }
        }
        IrOp::Alu { srcs, .. } | IrOp::Branch { srcs } => {
            for s in srcs.iter_mut() {
                if *s == Some(from) {
                    *s = Some(to);
                }
            }
        }
    }
}

/// Allocates the scheduled `ops` (with vreg classes from `classes`) and
/// lowers to machine operations.
///
/// # Errors
///
/// [`AllocError::Unallocatable`] if the pools cannot hold even the
/// instantaneous operand pressure (requires pools of at least ~4 registers).
pub fn allocate(
    scheduled_ops: Vec<IrOp>,
    classes: Vec<RegClass>,
    ctx: &mut AllocContext<'_>,
) -> Result<MachineBlock, AllocError> {
    let mut w = Working {
        ops: scheduled_ops,
        classes,
        spill_ops: 0,
        next_slot: 0,
    };
    // Iterate scan → spill until the code fits. Each spill splits a
    // multi-op live range into one-op ranges, so progress is monotone; the
    // cap catches genuinely unallocatable pressure (an op whose own
    // operands exceed the pool), which would otherwise re-spill reloads
    // forever.
    let max_rounds = 8 * w.ops.len() + 16;
    let mut rounds = 0;
    let assignment = loop {
        match scan(&w.ops, &w.classes, ctx.carried, ctx.int_pool, ctx.fp_pool) {
            Ok(a) => break a,
            Err(Ok(victim)) => {
                rounds += 1;
                if rounds > max_rounds {
                    return Err(AllocError::Unallocatable(w.classes[victim.0 as usize]));
                }
                spill(&mut w, victim, ctx);
            }
            Err(Err(e)) => return Err(e),
        }
    };
    let reg_of = |v: VirtReg| -> PhysReg {
        ctx.carried
            .get(&v)
            .copied()
            .unwrap_or_else(|| assignment[&v])
    };
    let ops = w
        .ops
        .iter()
        .map(|op| match *op {
            IrOp::Load {
                dst,
                pattern,
                format,
                addr_src,
            } => MachineOp::Load {
                dst: reg_of(dst),
                pattern,
                format,
                addr_src: addr_src.map(reg_of),
            },
            IrOp::Store {
                pattern,
                data,
                addr_src,
            } => MachineOp::Store {
                pattern,
                data: data.map(reg_of),
                addr_src: addr_src.map(reg_of),
            },
            IrOp::Alu { dst, srcs } => MachineOp::Alu {
                dst: reg_of(dst),
                srcs: srcs.map(|s| s.map(reg_of)),
            },
            IrOp::Branch { srcs } => MachineOp::Branch {
                srcs: srcs.map(|s| s.map(reg_of)),
            },
        })
        .collect();
    Ok(MachineBlock {
        ops,
        spill_ops: w.spill_ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_trace::ir::PatternId;

    fn pools(n: usize) -> (Vec<PhysReg>, Vec<PhysReg>) {
        let ints = (0..n).map(|i| PhysReg::int(i as u8)).collect();
        let fps = (0..n).map(|i| PhysReg::fp(i as u8)).collect();
        (ints, fps)
    }

    /// n independent (load, use) pairs with all loads first: peak pressure n.
    fn hoisted_pairs(n: u32) -> (Vec<IrOp>, Vec<RegClass>) {
        let mut ops = Vec::new();
        let mut classes = Vec::new();
        for i in 0..n {
            classes.push(RegClass::Fp);
            ops.push(IrOp::Load {
                dst: VirtReg(i),
                pattern: PatternId(0),
                format: LoadFormat::DOUBLE,
                addr_src: None,
            });
        }
        for i in 0..n {
            classes.push(RegClass::Fp);
            ops.push(IrOp::Alu {
                dst: VirtReg(n + i),
                srcs: [Some(VirtReg(i)), None],
            });
        }
        (ops, classes)
    }

    /// Checks that every register the machine code touches came from the
    /// given pools (allocation never invents registers).
    fn check_regs_from_pools(block: &MachineBlock, int_pool: &[PhysReg], fp_pool: &[PhysReg]) {
        let ok = |r: PhysReg| int_pool.contains(&r) || fp_pool.contains(&r);
        for op in &block.ops {
            let mut regs: Vec<PhysReg> = Vec::new();
            match op {
                MachineOp::Load { dst, addr_src, .. } => {
                    regs.push(*dst);
                    regs.extend(addr_src.iter());
                }
                MachineOp::Store { data, addr_src, .. } => {
                    regs.extend(data.iter());
                    regs.extend(addr_src.iter());
                }
                MachineOp::Alu { dst, srcs } => {
                    regs.push(*dst);
                    regs.extend(srcs.iter().flatten());
                }
                MachineOp::Branch { srcs } => regs.extend(srcs.iter().flatten()),
            }
            for r in regs {
                assert!(ok(r), "register {r} not in any pool");
            }
        }
    }

    #[test]
    fn fits_without_spills_when_pool_is_big() {
        let (ops, classes) = hoisted_pairs(6);
        let (ip, fp) = pools(8);
        let mut patterns = vec![AddrPattern::Fixed { addr: 0 }];
        let carried = FastMap::default();
        let mut ctx = AllocContext {
            carried: &carried,
            int_pool: &ip,
            fp_pool: &fp,
            patterns: &mut patterns,
            spill_base: 1 << 40,
        };
        let mb = allocate(ops, classes, &mut ctx).unwrap();
        assert_eq!(mb.spill_ops, 0);
        assert_eq!(mb.ops.len(), 12);
        check_regs_from_pools(&mb, &ip, &fp);
    }

    #[test]
    fn spills_when_pressure_exceeds_pool() {
        let (ops, classes) = hoisted_pairs(10);
        let (ip, fp) = pools(6);
        let mut patterns = vec![AddrPattern::Fixed { addr: 0 }];
        let carried = FastMap::default();
        let mut ctx = AllocContext {
            carried: &carried,
            int_pool: &ip,
            fp_pool: &fp,
            patterns: &mut patterns,
            spill_base: 1 << 40,
        };
        let mb = allocate(ops, classes, &mut ctx).unwrap();
        assert!(
            mb.spill_ops > 0,
            "10 simultaneous lives cannot fit 6 registers"
        );
        assert_eq!(mb.ops.len(), 20 + mb.spill_ops);
        // Spill slots were added to the pattern table.
        assert!(patterns.len() > 1);
        // Spill stores/reloads reference the spill area.
        let spill_addrs: Vec<u64> = patterns[1..]
            .iter()
            .map(|p| match p {
                AddrPattern::Fixed { addr } => *addr,
                _ => panic!("spill slots are fixed"),
            })
            .collect();
        assert!(spill_addrs.iter().all(|&a| a >= 1 << 40));
        check_regs_from_pools(&mb, &ip, &fp);
    }

    #[test]
    fn carried_registers_pass_through_and_never_spill() {
        let mut carried = FastMap::default();
        carried.insert(VirtReg(0), PhysReg::int(31));
        let ops = vec![
            IrOp::Alu {
                dst: VirtReg(1),
                srcs: [Some(VirtReg(0)), None],
            },
            IrOp::Alu {
                dst: VirtReg(0),
                srcs: [Some(VirtReg(1)), None],
            },
        ];
        let classes = vec![RegClass::Int, RegClass::Int];
        let (ip, fp) = pools(4);
        let mut patterns = Vec::new();
        let mut ctx = AllocContext {
            carried: &carried,
            int_pool: &ip,
            fp_pool: &fp,
            patterns: &mut patterns,
            spill_base: 1 << 40,
        };
        let mb = allocate(ops, classes, &mut ctx).unwrap();
        assert_eq!(mb.spill_ops, 0);
        match mb.ops[0] {
            MachineOp::Alu { srcs, .. } => assert_eq!(srcs[0], Some(PhysReg::int(31))),
            _ => panic!(),
        }
        match mb.ops[1] {
            MachineOp::Alu { dst, .. } => assert_eq!(dst, PhysReg::int(31)),
            _ => panic!(),
        }
    }

    #[test]
    fn unallocatable_reports_error() {
        // Two simultaneously-live fp values with a 1-register pool and the
        // second outliving the first: spilling flips between them but the
        // op itself needs both at once.
        let ops = vec![
            IrOp::Load {
                dst: VirtReg(0),
                pattern: PatternId(0),
                format: LoadFormat::DOUBLE,
                addr_src: None,
            },
            IrOp::Load {
                dst: VirtReg(1),
                pattern: PatternId(0),
                format: LoadFormat::DOUBLE,
                addr_src: None,
            },
            IrOp::Alu {
                dst: VirtReg(2),
                srcs: [Some(VirtReg(0)), Some(VirtReg(1))],
            },
        ];
        let classes = vec![RegClass::Fp; 3];
        let ip = vec![PhysReg::int(0)];
        let fp = vec![PhysReg::fp(0)];
        let carried = FastMap::default();
        let mut patterns = vec![AddrPattern::Fixed { addr: 0 }];
        let mut ctx = AllocContext {
            carried: &carried,
            int_pool: &ip,
            fp_pool: &fp,
            patterns: &mut patterns,
            spill_base: 1 << 40,
        };
        let r = allocate(ops, classes, &mut ctx);
        assert!(matches!(r, Err(AllocError::Unallocatable(RegClass::Fp))));
    }
}
