//! Fixture-corpus integration tests: every lint family must fire on the
//! staged bad tree, with exact IDs and spans, and stay silent on the
//! clean tree.

use nbl_analyze::report::Finding;
use nbl_analyze::{run_analysis, Analysis};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn of_lint<'a>(a: &'a Analysis, lint: &str) -> Vec<&'a Finding> {
    a.findings.iter().filter(|f| f.lint == lint).collect()
}

#[test]
fn bad_tree_fires_every_lint_family() {
    let a = run_analysis(&fixture("bad_tree")).expect("fixture tree readable");
    assert_eq!(a.files_scanned, 3);

    // no-panic: the panic! macro, the bare unwrap, and the two unwraps
    // whose suppressions are invalid (empty reason / unknown ID). The
    // reasoned suppression and the #[cfg(test)] unwrap stay silent.
    let np = of_lint(&a, "no-panic");
    let items: Vec<(&str, u32)> = np.iter().map(|f| (f.item.as_str(), f.line)).collect();
    assert_eq!(
        items,
        vec![("panic", 7), ("unwrap", 9), ("unwrap", 23), ("unwrap", 29)],
        "{np:#?}"
    );
    assert!(np.iter().all(|f| f.file == "crates/core/src/lib.rs"));

    // determinism: the single Instant read.
    let det = of_lint(&a, "determinism");
    assert_eq!(det.len(), 1, "{det:#?}");
    assert_eq!((det[0].item.as_str(), det[0].line), ("Instant", 16));

    // doc-coverage: the one undocumented pub fn.
    let doc = of_lint(&a, "doc-coverage");
    assert_eq!(doc.len(), 1, "{doc:#?}");
    assert_eq!((doc[0].item.as_str(), doc[0].line), ("undocumented", 12));

    // event-guard: the unguarded construction and the direct record call.
    let eg = of_lint(&a, "event-guard");
    let items: Vec<(&str, u32)> = eg.iter().map(|f| (f.item.as_str(), f.line)).collect();
    assert_eq!(items, vec![("MemEvent", 14), ("record", 15)], "{eg:#?}");
    assert!(eg.iter().all(|f| f.file == "crates/mem/src/lib.rs"));

    // exhaustiveness: the unwired Clock variant, once per surface.
    let ex = of_lint(&a, "exhaustiveness");
    assert_eq!(ex.len(), 2, "{ex:#?}");
    assert!(ex.iter().all(|f| f.item == "ReplacementKind::Clock"));
    let surfaces: Vec<&str> = ex.iter().map(|f| f.file.as_str()).collect();
    assert!(surfaces.contains(&"DESIGN.md"));
    assert!(surfaces.contains(&"tests/replacement_policies.rs"));

    // bad-allow: empty reason and unknown ID, each on its directive line.
    let ba = of_lint(&a, "bad-allow");
    let lines: Vec<u32> = ba.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![22, 28], "{ba:#?}");
    assert!(ba[0].message.contains("non-empty reason"));
    assert!(ba[1].message.contains("unknown lint"));

    // Only the reasoned directive counts as used.
    assert_eq!(a.allows_used, 1);
    assert_eq!(a.findings.len(), 12, "{:#?}", a.findings);
}

#[test]
fn empty_reason_does_not_suppress() {
    // The directive at line 22 has no reason: the unwrap it precedes must
    // still be reported, alongside the bad-allow for the directive.
    let a = run_analysis(&fixture("bad_tree")).expect("fixture tree readable");
    assert!(a
        .findings
        .iter()
        .any(|f| f.lint == "no-panic" && f.line == 23));
    assert!(a
        .findings
        .iter()
        .any(|f| f.lint == "bad-allow" && f.line == 22));
}

#[test]
fn clean_tree_is_silent() {
    let a = run_analysis(&fixture("clean_tree")).expect("fixture tree readable");
    assert!(a.findings.is_empty(), "{:#?}", a.findings);
    assert_eq!(a.files_scanned, 1);
    assert_eq!(a.allows_used, 1);
    assert_eq!(a.allowlist_entries, 0);
}

#[test]
fn findings_render_as_file_line_col() {
    let a = run_analysis(&fixture("bad_tree")).expect("fixture tree readable");
    // Positional findings render `file:line:col: [lint] …`; file-level
    // (ledger) findings render without a position.
    let pos = a
        .findings
        .iter()
        .find(|f| f.line > 0)
        .expect("positional finding");
    let rendered = pos.render();
    assert!(
        rendered.starts_with(&format!(
            "{}:{}:{}: [{}]",
            pos.file, pos.line, pos.col, pos.lint
        )),
        "{rendered}"
    );
    let file_level = a
        .findings
        .iter()
        .find(|f| f.line == 0)
        .expect("ledger finding");
    let rendered = file_level.render();
    assert!(
        rendered.starts_with(&format!("{}: [{}]", file_level.file, file_level.lint)),
        "{rendered}"
    );
}
