//! `nasa7` — seven floating-point kernels (matrix multiply, 2-D FFT,
//! Cholesky, block tridiagonal, vortex, emit, penta-diagonal) over large
//! arrays (SPEC92 CFP).
//!
//! The highest absolute MCPI in Fig. 13 (1.865 blocking): big strides,
//! big arrays, little temporal reuse. Three representative kernels are
//! modeled: a blocked matrix multiply (one resident operand, one
//! streaming), a strided FFT butterfly pass (power-of-two strides that
//! conflict in a direct-mapped cache), and a penta-diagonal sweep over
//! five streams.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program, ScriptNode};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("nasa7");
    // MXM: streaming A row, resident B panel.
    let mxm_a = pb.pattern(AddrPattern::Strided {
        base: layout::region(0, 0),
        elem_bytes: 8,
        stride: 1,
        length: 64 * 1024,
    });
    let mxm_b = pb.pattern(AddrPattern::Strided {
        base: layout::region(1, 2048),
        elem_bytes: 8,
        stride: 5,
        length: 512, // 4 KB panel, resident
    });
    let mxm_c = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 4096),
        elem_bytes: 8,
        stride: 1,
        length: 64 * 1024,
    });
    // FFT butterflies: power-of-two stride (1024 elements = 8 KB) walks a
    // single set column of the direct-mapped cache.
    let fft = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 0),
        elem_bytes: 8,
        stride: 1024,
        length: 128 * 1024,
    });
    let fft_wr = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 0),
        elem_bytes: 8,
        stride: 1024,
        length: 128 * 1024,
    });
    let fft_twiddle = pb.pattern(AddrPattern::Strided {
        base: layout::region(4, 1024),
        elem_bytes: 8,
        stride: 1,
        length: 256,
    });
    // VPENTA: five diagonal streams.
    let penta: Vec<_> = (0..5)
        .map(|k| {
            pb.pattern(AddrPattern::Strided {
                base: layout::region(5 + k, 96 + 512 * k),
                elem_bytes: 8,
                stride: 1,
                length: 32 * 1024,
            })
        })
        .collect();

    // Kernel 1: matrix-multiply inner loop, unrolled 2×.
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    let acc = b.carried(RegClass::Fp);
    for _ in 0..2 {
        let a = b.load(mxm_a, RegClass::Fp, LoadFormat::DOUBLE);
        let bb = b.load(mxm_b, RegClass::Fp, LoadFormat::DOUBLE);
        let prod = b.alu(RegClass::Fp, Some(a), Some(bb));
        b.alu_into(acc, Some(prod), Some(acc));
    }
    b.store(mxm_c, Some(acc));
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let mxm = b.finish();

    // Kernel 2: FFT butterfly with conflicting stride.
    let mut b = pb.block();
    let j = b.carried(RegClass::Int);
    let u = b.load(fft, RegClass::Fp, LoadFormat::DOUBLE);
    let v = b.load(fft, RegClass::Fp, LoadFormat::DOUBLE);
    let w = b.load(fft_twiddle, RegClass::Fp, LoadFormat::DOUBLE);
    let t1 = b.alu(RegClass::Fp, Some(u), Some(w));
    let t2 = b.alu(RegClass::Fp, Some(v), Some(t1));
    let t3 = b.alu_chain(RegClass::Fp, t2, 6);
    b.store(fft_wr, Some(t3));
    b.alu_into(j, Some(j), None);
    b.branch(Some(j));
    let butterfly = b.finish();

    // Kernel 3: penta-diagonal sweep (output stream separate from the
    // five read diagonals).
    let penta_wr = pb.pattern(AddrPattern::Strided {
        base: layout::region(10, 96),
        elem_bytes: 8,
        stride: 1,
        length: 32 * 1024,
    });
    let mut b = pb.block();
    let k = b.carried(RegClass::Int);
    let vals: Vec<_> = penta
        .iter()
        .map(|&p| b.load(p, RegClass::Fp, LoadFormat::DOUBLE))
        .collect();
    let s1 = b.alu(RegClass::Fp, Some(vals[0]), Some(vals[1]));
    let s2 = b.alu(RegClass::Fp, Some(vals[2]), Some(vals[3]));
    let s3 = b.alu(RegClass::Fp, Some(s1), Some(s2));
    let s4a = b.alu(RegClass::Fp, Some(s3), Some(vals[4]));
    let s4 = b.alu_chain(RegClass::Fp, s4a, 4);
    b.store(penta_wr, Some(s4));
    b.alu_into(k, Some(k), None);
    b.branch(Some(k));
    let vpenta = b.finish();

    let unit = 2 * 13 + 2 * 15 + 17;
    let trips = scale.trips(unit);
    pb.loop_of(
        trips,
        vec![
            ScriptNode::Run {
                block: mxm,
                times: 2,
            },
            ScriptNode::Run {
                block: butterfly,
                times: 2,
            },
            ScriptNode::Run {
                block: vpenta,
                times: 1,
            },
        ],
    );
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::geometry::CacheGeometry;
    use nbl_core::types::Addr;

    #[test]
    fn fft_stride_walks_one_set() {
        let p = build(Scale::quick());
        let geom = CacheGeometry::baseline();
        match p.patterns[3] {
            AddrPattern::Strided {
                base,
                elem_bytes,
                stride,
                ..
            } => {
                let a0 = Addr(base);
                let a1 = Addr(base + stride as u64 * u64::from(elem_bytes));
                assert_eq!(
                    geom.set_of(a0),
                    geom.set_of(a1),
                    "butterfly accesses collide"
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn three_kernels() {
        let p = build(Scale::quick());
        assert_eq!(p.blocks.len(), 3);
        let (l, s, _) = p.blocks[2].op_mix();
        assert_eq!((l, s), (5, 1), "vpenta: five streams in, one out");
    }
}
