//! Static-oracle coverage: how much of each benchmark's memory stream
//! the abstract must-hit/may-miss analysis (DESIGN.md §18) can classify,
//! across the detailed five benchmarks × {direct-mapped, 4-way} ×
//! every replacement policy × {blocking `mc=0`, non-blocking `fc=2`} —
//! and, as a standing regression gate, that the cross-check against the
//! simulator's per-access outcomes reports **zero violations** in every
//! cell. Blocking cells have a zero-length fill window, where the LRU
//! and FIFO analyses are exact (unknown% = 0); non-blocking cells show
//! the price of fill-timing uncertainty.

use super::{write_csv, write_json, ExhibitError, RunScale};
use nbl_core::geometry::CacheGeometry;
use nbl_core::tag_array::ReplacementKind;
use nbl_oracle::check_cell;
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::store::ArtifactStore;
use nbl_trace::workloads::{self, DETAILED_FIVE};
use std::io::Write;

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Runs the coverage grid and writes `oracle.csv` / `oracle.json`.
/// Deterministic (fixed tapes, fixed random-policy seed).
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let geometries = [
        CacheGeometry::new(8 * 1024, 32, 1)
            .map_err(|e| ExhibitError::new("oracle dm geometry", e))?,
        CacheGeometry::new(8 * 1024, 32, 4)
            .map_err(|e| ExhibitError::new("oracle 4-way geometry", e))?,
    ];
    let hws = [HwConfig::Mc0, HwConfig::Fc(2)];
    let artifacts = ArtifactStore::in_memory();
    let _ = writeln!(
        out,
        "== Static oracle coverage: must-hit/must-miss/unknown per cell =="
    );
    let _ = writeln!(
        out,
        "{:<9} {:<12} {:<7} {:<6} {:>9} {:>7} {:>7} {:>7} {:>5}",
        "bench", "geometry", "policy", "hw", "accesses", "hit%", "miss%", "unk%", "viol"
    );
    let mut csv =
        String::from("bench,geometry,policy,hw,accesses,must_hit,must_miss,unknown,violations\n");
    let mut rows = Vec::new();
    let mut total_violations = 0usize;
    for bench in DETAILED_FIVE {
        let program = workloads::build(bench, scale.workload_scale())
            .ok_or_else(|| ExhibitError::new(format!("oracle {bench}"), "unknown benchmark"))?;
        let base = SimConfig::baseline(HwConfig::Mc0);
        let compiled = artifacts
            .get_or_compile(&program, base.load_latency)
            .map_err(|e| ExhibitError::new(format!("oracle {bench} compile"), e))?;
        let tape = artifacts.get_or_record(&compiled);
        for geometry in geometries {
            for policy in ReplacementKind::all() {
                for hw in &hws {
                    let cfg = SimConfig::baseline(hw.clone())
                        .with_geometry(geometry)
                        .with_replacement(policy);
                    let report = check_cell(bench, &tape, &cfg).map_err(|e| {
                        ExhibitError::new(
                            format!("oracle {bench} {} {}", policy.label(), hw.label()),
                            e,
                        )
                    })?;
                    let c = &report.coverage;
                    total_violations += report.violations.len();
                    let _ = writeln!(
                        out,
                        "{:<9} {:<12} {:<7} {:<6} {:>9} {:>6.1} {:>6.1} {:>6.1} {:>6}",
                        report.benchmark,
                        report.geometry,
                        report.policy,
                        report.hw,
                        c.accesses,
                        pct(c.must_hit, c.accesses),
                        pct(c.must_miss, c.accesses),
                        pct(c.unknown, c.accesses),
                        report.violations.len()
                    );
                    csv.push_str(&format!(
                        "{},{},{},{},{},{},{},{},{}\n",
                        report.benchmark,
                        report.geometry,
                        report.policy,
                        report.hw,
                        c.accesses,
                        c.must_hit,
                        c.must_miss,
                        c.unknown,
                        report.violations.len()
                    ));
                    rows.push(format!(
                        "{{\"bench\": \"{}\", \"geometry\": \"{}\", \"policy\": \"{}\", \
                         \"hw\": \"{}\", \"accesses\": {}, \"must_hit\": {}, \
                         \"must_miss\": {}, \"unknown\": {}, \"violations\": {}}}",
                        report.benchmark,
                        report.geometry,
                        report.policy,
                        report.hw,
                        c.accesses,
                        c.must_hit,
                        c.must_miss,
                        c.unknown,
                        report.violations.len()
                    ));
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "{} cells, {total_violations} cross-check violation(s)",
        rows.len()
    );
    write_csv("oracle", &csv)?;
    let json = format!(
        "{{\n  \"exhibit\": \"oracle\",\n  \"cells\": {},\n  \"violations\": {},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        rows.len(),
        total_violations,
        rows.join(",\n    ")
    );
    write_json("oracle", &json)
}
