//! `mdljsp2` — the single-precision sibling of `mdljdp2` (SPEC92 CFP).
//!
//! Same force-loop structure, but 4-byte coordinates halve the memory
//! footprint: the particle records nearly fit in the cache, the absolute
//! MCPI drops to a quarter of the double-precision run, and the remaining
//! misses cluster at sweep boundaries where overlap works well (Fig. 13:
//! 3.4× blocking vs 1.1× at `fc=2`).

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("mdljsp2");
    let nlist = pb.pattern(AddrPattern::Strided {
        base: layout::region(0, 0),
        elem_bytes: 2, // 16-bit neighbour indices
        stride: 1,
        length: 128 * 1024,
    });
    // Particle records: 16 bytes (x, y, z, w single precision) over 12 KB —
    // only slightly over the cache, so most probes hit.
    let field = |off: u64| AddrPattern::Gather {
        base: layout::region(1, 1024) + off,
        elem_bytes: 16,
        length: 192, // 3 KB
        seed: 0x3d3,
    };
    let px = pb.pattern(field(0));
    let py = pb.pattern(field(4));
    let pz = pb.pattern(field(8));
    let force = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 3072),
        elem_bytes: 4,
        stride: 1,
        length: 64,
    });
    let force_wr = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 3072),
        elem_bytes: 4,
        stride: 1,
        length: 64,
    });

    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    let idx = b.load(
        nlist,
        RegClass::Int,
        LoadFormat {
            size: nbl_core::types::AccessSize::B2,
            sign_extend: true,
        },
    );
    let x = b.load_via(px, idx, RegClass::Fp, LoadFormat::WORD);
    let y = b.load_via(py, idx, RegClass::Fp, LoadFormat::WORD);
    let _ = pz; // single-precision records pack z with y's line; two probes suffice
    let d1 = b.alu(RegClass::Fp, Some(x), Some(y));
    let d2 = b.alu_chain(RegClass::Fp, d1, 1);
    let f = b.alu_chain(RegClass::Fp, d2, 9);
    let facc = b.load(force, RegClass::Fp, LoadFormat::WORD);
    let fnew = b.alu(RegClass::Fp, Some(facc), Some(f));
    b.store(force_wr, Some(fnew));
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let forces = b.finish();

    let trips = scale.trips(18);
    pb.run(forces, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_is_single_precision_small() {
        let p = build(Scale::quick());
        match p.patterns[1] {
            AddrPattern::Gather {
                elem_bytes, length, ..
            } => {
                let bytes = u64::from(elem_bytes) * length;
                assert!(bytes < 16 * 1024, "records nearly fit the cache");
            }
            _ => panic!(),
        }
    }
}
