//! Calibration regression bands: every benchmark's baseline MCPI must stay
//! inside a band around the values recorded in EXPERIMENTS.md.
//!
//! The workload generators were tuned against the paper's Fig. 13 (see
//! DESIGN.md §7); an innocent-looking change to a generator, the
//! scheduler, or the cache can silently drift a benchmark out of its
//! calibrated regime. These tests pin the mc=0 and unrestricted MCPI of
//! all 18 benchmarks to ±25 % of the recorded full-scale values (the
//! band absorbs the small shift between full scale and this test's
//! faster, smaller scale).

use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::run_program;
use nonblocking_loads::trace::workloads::{build, Scale};

/// (benchmark, mc=0 MCPI, unrestricted MCPI) from results/figures_full.txt.
const RECORDED: [(&str, f64, f64); 18] = [
    ("alvinn", 0.456, 0.255),
    ("doduc", 0.564, 0.210),
    ("ear", 0.112, 0.030),
    ("fpppp", 0.367, 0.060),
    ("hydro2d", 0.833, 0.125),
    ("mdljdp2", 0.312, 0.222),
    ("mdljsp2", 0.202, 0.120),
    ("nasa7", 1.961, 0.714),
    ("ora", 1.000, 0.938),
    ("su2cor", 1.727, 0.096),
    ("swm256", 0.380, 0.155),
    ("spice2g6", 1.201, 0.810),
    ("tomcatv", 1.339, 0.078),
    ("wave5", 0.466, 0.314),
    ("compress", 0.493, 0.437),
    ("eqntott", 0.108, 0.049),
    ("espresso", 0.211, 0.178),
    ("xlisp", 0.549, 0.286),
];

fn within(measured: f64, recorded: f64, band: f64) -> bool {
    measured >= recorded * (1.0 - band) && measured <= recorded * (1.0 + band)
}

#[test]
fn baseline_mcpi_stays_in_calibrated_bands() {
    let scale = Scale {
        instr_target: 200_000,
    };
    let mut failures = Vec::new();
    for (name, rec_mc0, rec_inf) in RECORDED {
        let p = build(name, scale).expect("known benchmark");
        let mc0 = run_program(&p, &SimConfig::baseline(HwConfig::Mc0))
            .unwrap()
            .mcpi;
        let inf = run_program(&p, &SimConfig::baseline(HwConfig::NoRestrict))
            .unwrap()
            .mcpi;
        if !within(mc0, rec_mc0, 0.25) {
            failures.push(format!("{name}: mc=0 {mc0:.3} vs recorded {rec_mc0:.3}"));
        }
        if !within(inf, rec_inf, 0.25) {
            failures.push(format!(
                "{name}: unrestricted {inf:.3} vs recorded {rec_inf:.3}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "calibration drift — update the generators or EXPERIMENTS.md:\n{}",
        failures.join("\n")
    );
}

/// The suite-level conclusion of the paper's §7: non-blocking hardware
/// cuts integer MCPI up to ~2× and numeric MCPI far more.
#[test]
fn suite_level_conclusion_holds() {
    let scale = Scale {
        instr_target: 150_000,
    };
    let mut numeric_best: f64 = 1.0;
    for (name, _, _) in RECORDED {
        let p = build(name, scale).expect("known benchmark");
        let mc0 = run_program(&p, &SimConfig::baseline(HwConfig::Mc0))
            .unwrap()
            .mcpi;
        let inf = run_program(&p, &SimConfig::baseline(HwConfig::NoRestrict))
            .unwrap()
            .mcpi;
        let gain = mc0 / inf.max(1e-9);
        if nonblocking_loads::trace::workloads::is_integer(name) {
            assert!(
                gain < 3.0,
                "{name}: integer benchmarks gain at most ~2x ({gain:.1}x measured)"
            );
        } else {
            numeric_best = numeric_best.max(gain);
        }
    }
    assert!(
        numeric_best > 8.0,
        "some numeric benchmark must gain close to an order of magnitude \
         (best seen {numeric_best:.1}x)"
    );
}
