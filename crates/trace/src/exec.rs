//! The trace executor: walks a [`CompiledProgram`]'s script, resolves each
//! memory operation's address from its pattern state, and feeds the
//! resulting dynamic instructions to an [`InstSink`] (normally a processor
//! model).
//!
//! Pattern state advances deterministically, so two runs of the same
//! compiled program produce bit-identical instruction streams — the
//! property that lets the harness compare MSHR organizations on exactly
//! the same trace.

use crate::ir::{AddrPattern, ScriptNode};
use crate::machine::{CompiledProgram, InstSink, MachineOp};
use nbl_core::inst::DynInst;
use nbl_core::rng::SplitMix64;
use nbl_core::types::Addr;

/// Runtime state of one address pattern.
#[derive(Debug, Clone)]
enum PatternState {
    Strided { index: u64 },
    Gather { lcg: u64 },
    Chase { current: u64, successor: Vec<u32> },
    Fixed,
}

impl PatternState {
    fn new(pattern: &AddrPattern) -> PatternState {
        match pattern {
            AddrPattern::Strided { .. } => PatternState::Strided { index: 0 },
            AddrPattern::Gather { seed, .. } => PatternState::Gather { lcg: *seed | 1 },
            AddrPattern::Chase { nodes, seed, .. } => PatternState::Chase {
                current: 0,
                successor: single_cycle_permutation(*nodes, *seed),
            },
            AddrPattern::Fixed { .. } => PatternState::Fixed,
        }
    }

    /// Computes the next address and advances the state.
    fn next(&mut self, pattern: &AddrPattern) -> Addr {
        match (pattern, self) {
            (
                AddrPattern::Strided {
                    base,
                    elem_bytes,
                    stride,
                    length,
                },
                PatternState::Strided { index },
            ) => {
                let addr = base + *index * u64::from(*elem_bytes);
                let len = (*length).max(1) as i128;
                let next = ((*index as i128) + (*stride as i128)).rem_euclid(len);
                *index = next as u64;
                Addr(addr)
            }
            (
                AddrPattern::Gather {
                    base,
                    elem_bytes,
                    length,
                    ..
                },
                PatternState::Gather { lcg },
            ) => {
                *lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let idx = (*lcg >> 33) % (*length).max(1);
                Addr(base + idx * u64::from(*elem_bytes))
            }
            (
                AddrPattern::Chase {
                    base,
                    node_bytes,
                    field_offset,
                    ..
                },
                PatternState::Chase { current, successor },
            ) => {
                let addr = base + *current * u64::from(*node_bytes) + u64::from(*field_offset);
                *current = u64::from(successor[*current as usize]);
                Addr(addr)
            }
            (AddrPattern::Fixed { addr }, PatternState::Fixed) => Addr(*addr),
            // nbl-allow(no-panic): PatternState is derived 1:1 from AddrPattern at build time
            _ => unreachable!("pattern state built from the same table"),
        }
    }
}

/// Builds a random single-cycle permutation (Sattolo's algorithm): every
/// node's successor chain visits all nodes before returning — a worst-case
/// pointer chase with no short cycles.
fn single_cycle_permutation(nodes: u64, seed: u64) -> Vec<u32> {
    let n = nodes.max(1) as usize;
    assert!(
        n <= u32::MAX as usize,
        "chase arenas are bounded by u32 node indices"
    );
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SplitMix64::new(seed);
    // Sattolo: shuffle into a single cycle.
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64) as usize;
        order.swap(i, j);
    }
    // order is a cyclic arrangement; successor of order[i] is order[i+1].
    let mut succ = vec![0u32; n];
    for i in 0..n {
        succ[order[i] as usize] = order[(i + 1) % n];
    }
    succ
}

/// The executor. Create one per (compiled program, run).
#[derive(Debug, Clone)]
pub struct Executor<'p> {
    program: &'p CompiledProgram,
    states: Vec<PatternState>,
}

impl<'p> Executor<'p> {
    /// Prepares pattern state for `program`.
    pub fn new(program: &'p CompiledProgram) -> Executor<'p> {
        let states = program.patterns.iter().map(PatternState::new).collect();
        Executor { program, states }
    }

    /// Runs the whole program into `sink`.
    pub fn run<S: InstSink>(&mut self, sink: &mut S) {
        let script = &self.program.script;
        self.run_nodes(script, sink);
    }

    fn run_nodes<S: InstSink>(&mut self, nodes: &[ScriptNode], sink: &mut S) {
        for node in nodes {
            match node {
                ScriptNode::Run { block, times } => {
                    for _ in 0..*times {
                        self.run_block(block.0 as usize, sink);
                    }
                }
                ScriptNode::Loop { body, trips } => {
                    for _ in 0..*trips {
                        self.run_nodes(body, sink);
                    }
                }
            }
        }
    }

    #[inline]
    fn next_addr(&mut self, pattern: crate::ir::PatternId) -> Addr {
        let idx = pattern.0 as usize;
        self.states[idx].next(&self.program.patterns[idx])
    }

    fn run_block<S: InstSink>(&mut self, block: usize, sink: &mut S) {
        // Indexing by value avoids borrowing `self.program` across the
        // mutable pattern-state updates.
        let num_ops = self.program.blocks[block].ops.len();
        for i in 0..num_ops {
            let op = self.program.blocks[block].ops[i];
            let inst = match op {
                MachineOp::Load {
                    dst,
                    pattern,
                    format,
                    addr_src,
                } => {
                    let addr = self.next_addr(pattern);
                    match addr_src {
                        Some(src) => DynInst::load_via(addr, src, dst, format),
                        None => DynInst::load(addr, dst, format),
                    }
                }
                MachineOp::Store {
                    pattern,
                    data,
                    addr_src,
                } => {
                    let addr = self.next_addr(pattern);
                    DynInst {
                        srcs: [data, addr_src],
                        kind: nbl_core::inst::DynKind::Store { addr },
                    }
                }
                MachineOp::Alu { dst, srcs } => DynInst::alu(dst, srcs),
                MachineOp::Branch { srcs } => DynInst::branch(srcs),
            };
            sink.exec(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BlockId, PatternId};
    use crate::machine::{CountingSink, MachineBlock};
    use nbl_core::inst::DynKind;
    use nbl_core::types::{LoadFormat, PhysReg};
    use std::collections::HashSet;

    fn one_block_program(
        patterns: Vec<AddrPattern>,
        ops: Vec<MachineOp>,
        times: u64,
    ) -> CompiledProgram {
        CompiledProgram {
            name: "t".into(),
            load_latency: 1,
            patterns,
            blocks: vec![MachineBlock { ops, spill_ops: 0 }],
            script: vec![ScriptNode::Run {
                block: BlockId(0),
                times,
            }],
        }
    }

    fn collect_addrs(p: &CompiledProgram) -> Vec<u64> {
        let mut sink: Vec<DynInst> = Vec::new();
        Executor::new(p).run(&mut sink);
        sink.iter()
            .filter_map(|i| match i.kind {
                DynKind::Load { addr, .. } | DynKind::Store { addr } => Some(addr.0),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strided_pattern_walks_and_wraps() {
        let p = one_block_program(
            vec![AddrPattern::Strided {
                base: 0x1000,
                elem_bytes: 8,
                stride: 1,
                length: 4,
            }],
            vec![MachineOp::Load {
                dst: PhysReg::int(1),
                pattern: PatternId(0),
                format: LoadFormat::DOUBLE,
                addr_src: None,
            }],
            6,
        );
        assert_eq!(
            collect_addrs(&p),
            vec![0x1000, 0x1008, 0x1010, 0x1018, 0x1000, 0x1008]
        );
    }

    #[test]
    fn negative_stride_wraps_backwards() {
        let p = one_block_program(
            vec![AddrPattern::Strided {
                base: 0,
                elem_bytes: 4,
                stride: -1,
                length: 3,
            }],
            vec![MachineOp::Store {
                pattern: PatternId(0),
                data: None,
                addr_src: None,
            }],
            4,
        );
        assert_eq!(collect_addrs(&p), vec![0, 8, 4, 0]);
    }

    #[test]
    fn gather_is_deterministic_and_in_range() {
        let pat = AddrPattern::Gather {
            base: 0x8000,
            elem_bytes: 4,
            length: 100,
            seed: 7,
        };
        let p = one_block_program(
            vec![pat],
            vec![MachineOp::Load {
                dst: PhysReg::int(1),
                pattern: PatternId(0),
                format: LoadFormat::WORD,
                addr_src: None,
            }],
            200,
        );
        let a1 = collect_addrs(&p);
        let a2 = collect_addrs(&p);
        assert_eq!(a1, a2, "deterministic");
        assert!(a1.iter().all(|&a| (0x8000..0x8000 + 400).contains(&a)));
        let distinct: HashSet<_> = a1.iter().collect();
        assert!(distinct.len() > 20, "gather spreads over the region");
    }

    #[test]
    fn chase_visits_every_node_once_per_lap() {
        let nodes = 64;
        let p = one_block_program(
            vec![AddrPattern::Chase {
                base: 0,
                node_bytes: 16,
                nodes,
                field_offset: 0,
                seed: 3,
            }],
            vec![MachineOp::Load {
                dst: PhysReg::int(1),
                pattern: PatternId(0),
                format: LoadFormat::DOUBLE,
                addr_src: Some(PhysReg::int(1)),
            }],
            nodes,
        );
        let addrs = collect_addrs(&p);
        let distinct: HashSet<_> = addrs.iter().collect();
        assert_eq!(
            distinct.len(),
            nodes as usize,
            "single cycle: one lap covers all nodes"
        );
        // Second lap repeats the first in the same order.
        let p2 = one_block_program(
            vec![AddrPattern::Chase {
                base: 0,
                node_bytes: 16,
                nodes,
                field_offset: 0,
                seed: 3,
            }],
            vec![MachineOp::Load {
                dst: PhysReg::int(1),
                pattern: PatternId(0),
                format: LoadFormat::DOUBLE,
                addr_src: Some(PhysReg::int(1)),
            }],
            nodes * 2,
        );
        let addrs2 = collect_addrs(&p2);
        assert_eq!(&addrs2[..nodes as usize], &addrs2[nodes as usize..]);
    }

    #[test]
    fn chase_load_carries_address_dependence() {
        let p = one_block_program(
            vec![AddrPattern::Chase {
                base: 0,
                node_bytes: 16,
                nodes: 8,
                field_offset: 0,
                seed: 1,
            }],
            vec![MachineOp::Load {
                dst: PhysReg::int(1),
                pattern: PatternId(0),
                format: LoadFormat::DOUBLE,
                addr_src: Some(PhysReg::int(1)),
            }],
            3,
        );
        let mut sink: Vec<DynInst> = Vec::new();
        Executor::new(&p).run(&mut sink);
        for inst in &sink {
            assert_eq!(inst.sources().collect::<Vec<_>>(), vec![PhysReg::int(1)]);
            assert_eq!(inst.dst(), Some(PhysReg::int(1)));
        }
    }

    #[test]
    fn fixed_pattern_repeats() {
        let p = one_block_program(
            vec![AddrPattern::Fixed { addr: 0xdead0 }],
            vec![MachineOp::Store {
                pattern: PatternId(0),
                data: Some(PhysReg::int(2)),
                addr_src: None,
            }],
            3,
        );
        assert_eq!(collect_addrs(&p), vec![0xdead0; 3]);
    }

    #[test]
    fn counting_sink_matches_static_count() {
        let p = one_block_program(
            vec![AddrPattern::Fixed { addr: 0 }],
            vec![
                MachineOp::Load {
                    dst: PhysReg::int(1),
                    pattern: PatternId(0),
                    format: LoadFormat::WORD,
                    addr_src: None,
                },
                MachineOp::Alu {
                    dst: PhysReg::int(2),
                    srcs: [Some(PhysReg::int(1)), None],
                },
                MachineOp::Branch { srcs: [None, None] },
            ],
            50,
        );
        let mut sink = CountingSink::default();
        Executor::new(&p).run(&mut sink);
        assert_eq!(sink.instructions, p.dynamic_instructions());
        assert_eq!(sink.loads, 50);
        assert_eq!(sink.stores, 0);
    }

    #[test]
    fn permutation_is_single_cycle() {
        for n in [1u64, 2, 3, 17, 256] {
            let succ = single_cycle_permutation(n, 42);
            let mut seen = HashSet::new();
            let mut cur = 0u32;
            for _ in 0..n {
                assert!(
                    seen.insert(cur),
                    "revisited node before completing the cycle"
                );
                cur = succ[cur as usize];
            }
            assert_eq!(cur, 0, "returns to start after exactly n steps");
        }
    }
}
