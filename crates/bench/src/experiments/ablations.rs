//! Ablation studies for the design choices DESIGN.md calls out — not
//! exhibits from the paper, but quantifications of modeling decisions the
//! paper's prose asserts qualitatively.
//!
//! 1. **Victim claiming time** (in-cache MSHR storage): §2.3 stores MSHR
//!    state in the line being fetched, so the victim dies at *miss* time.
//!    Comparing `InCache` against the otherwise-identical `fs=ways`
//!    register file isolates the cost of those early evictions.
//! 2. **Write-miss policy**: `mc=0 + wma` vs `mc=0` across the most
//!    store-heavy benchmarks — what the paper's top curve actually buys.
//! 3. **Secondary-miss merging**: one target field vs unlimited fields at
//!    unlimited entries — the pure value of merging, with fetch counts
//!    held equal.
//! 4. **Memory pipelining**: the paper assumes a fully pipelined memory;
//!    this sweep inserts a minimum gap between fetch completions (a
//!    bandwidth-limited bus) and measures how much of the non-blocking
//!    benefit depends on that assumption.
//!
//! Each section is a small benchmark × variant grid; the grids run on the
//! shared parallel engine and print from the input-ordered results.

use super::{mcpi_grid, programs_for, ExhibitError, RunScale};
use nbl_core::limit::Limit;
use nbl_core::mshr::TargetPolicy;
use nbl_sim::config::{HwConfig, SimConfig};
use std::io::Write;

/// Prints all the ablations.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let _ = writeln!(out, "== Ablations ==");

    // 1. In-cache storage vs discrete MSHRs at the same per-set limit.
    let _ = writeln!(
        out,
        "\n-- victim claimed at miss time (in-cache) vs fill time (fs=1) --"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>10}",
        "bench", "fs=1", "in-cache", "penalty"
    );
    let benches = ["su2cor", "doduc", "tomcatv"];
    let grid = mcpi_grid(
        &programs_for(&benches, scale)?,
        &[
            SimConfig::baseline(HwConfig::Fs(1)),
            SimConfig::baseline(HwConfig::InCache),
        ],
    )?;
    for (bench, row) in benches.iter().zip(&grid) {
        let (fs1, inc) = (row[0], row[1]);
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>10.3} {:>9.1}%",
            bench,
            fs1,
            inc,
            100.0 * (inc / fs1 - 1.0)
        );
    }

    // 1b. Narrow read port: extra fill cycles for in-cache storage.
    let _ = writeln!(
        out,
        "\n-- in-cache MSHR read-port width (su2cor, extra fill cycles) --"
    );
    let _ = writeln!(out, "{:>10} {:>9} {:>9} {:>9}", "", "+0cy", "+2cy", "+4cy");
    {
        let cfgs: Vec<SimConfig> = [0u32, 2, 4]
            .into_iter()
            .map(|k| SimConfig::baseline(HwConfig::InCacheNarrowPort(k)))
            .collect();
        let grid = mcpi_grid(&programs_for(&["su2cor"], scale)?, &cfgs)?;
        let _ = write!(out, "{:>10}", "MCPI");
        for m in &grid[0] {
            let _ = write!(out, " {m:>8.3}");
        }
        let _ = writeln!(out);
    }

    // 2. Write-miss allocate cost on store-heavy codes.
    let _ = writeln!(
        out,
        "\n-- write-around vs write-miss-allocate (blocking cache) --"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>12} {:>10}",
        "bench", "mc=0", "mc=0+wma", "overhead"
    );
    let benches = ["xlisp", "tomcatv", "compress"];
    let grid = mcpi_grid(
        &programs_for(&benches, scale)?,
        &[
            SimConfig::baseline(HwConfig::Mc0),
            SimConfig::baseline(HwConfig::Mc0Wma),
        ],
    )?;
    for (bench, row) in benches.iter().zip(&grid) {
        let (around, alloc) = (row[0], row[1]);
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>12.3} {:>9.1}%",
            bench,
            around,
            alloc,
            100.0 * (alloc / around - 1.0)
        );
    }

    // 3. Pure value of secondary-miss merging (entries unlimited).
    let _ = writeln!(
        out,
        "\n-- secondary-miss merging: 1 target field vs unlimited --"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>10} {:>10} {:>10}",
        "bench", "1 field", "unlimited", "gain"
    );
    let benches = ["doduc", "mdljdp2", "tomcatv"];
    let grid = mcpi_grid(
        &programs_for(&benches, scale)?,
        &[
            SimConfig::baseline(HwConfig::Targets(TargetPolicy::explicit(Limit::Finite(1)))),
            SimConfig::baseline(HwConfig::Targets(TargetPolicy::explicit(Limit::Unlimited))),
        ],
    )?;
    for (bench, row) in benches.iter().zip(&grid) {
        let (one, unl) = (row[0], row[1]);
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>10.3} {:>9.1}%",
            bench,
            one,
            unl,
            100.0 * (1.0 - unl / one)
        );
    }

    // 4. Bandwidth-limited memory.
    let _ = writeln!(
        out,
        "\n-- fully pipelined memory vs bandwidth-limited bus (no restrict) --"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>9} {:>9} {:>9} {:>9}",
        "bench", "gap=0", "gap=4", "gap=8", "gap=16"
    );
    let benches = ["tomcatv", "su2cor", "eqntott"];
    let cfgs: Vec<SimConfig> = [0u32, 4, 8, 16]
        .into_iter()
        .map(|gap| SimConfig::baseline(HwConfig::NoRestrict).with_memory_gap(gap))
        .collect();
    let grid = mcpi_grid(&programs_for(&benches, scale)?, &cfgs)?;
    for (bench, row) in benches.iter().zip(&grid) {
        let _ = write!(out, "{bench:>10}");
        for m in row {
            let _ = write!(out, " {m:>8.3}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(a 16-cycle completion gap serializes fetches entirely: the paper's\n\
         fully-pipelined assumption is what makes overlap possible at all)\n"
    );
    Ok(())
}
