//! `doduc` — Monte-Carlo simulation of a nuclear reactor component
//! (SPEC92 CFP). The paper's primary expository benchmark (Figs. 5–8, 14,
//! 16, 17).
//!
//! doduc is a mid-sized FP code with many medium basic blocks: cross-
//! section table lookups (scattered), particle-state array sweeps
//! (streaming), and long arithmetic stretches over a small resident
//! working set. Misses come in clusters of 2–4 — enough that `mc=2`
//! clearly beats hit-under-miss, and two primary misses in flight matter
//! more than unlimited secondaries (`mc=2` < `fc=1`, Fig. 5).
//!
//! Model: three alternating block shapes — a table-lookup kernel with
//! scattered loads over a region somewhat larger than the cache, a
//! particle-sweep kernel over two streams, and a compute kernel over a
//! resident lookup table.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program, ScriptNode};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("doduc");
    // Address layout note: doduc's whole working set (~57 KB) must stay
    // set-disjoint in a 64 KB direct-mapped cache for the Fig. 16
    // experiment, so every pattern gets an explicit offset; the 16 MB
    // region slots all alias at 64 KB granularity.
    //
    // Cross-section master table: 20 KB, genuinely uncacheable at 8 KB —
    // the source of doduc's clustered primary misses.
    let xsect = pb.pattern(AddrPattern::Gather {
        base: layout::region(0, 0),
        elem_bytes: 8,
        length: 2560, // 20 KB
        seed: 0xd0d0c,
    });
    // Per-isotope side table: small and hot.
    let xsect2 = pb.pattern(AddrPattern::Gather {
        base: layout::region(1, 20 * 1024 + 512),
        elem_bytes: 8,
        length: 384, // 3 KB: resident
        seed: 0xd0d0c + 1,
    });
    // Particle state: streaming at 8 KB, resident at 64 KB.
    let part_pos = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 26 * 1024),
        elem_bytes: 8,
        stride: 1,
        length: 2 * 1024, // 16 KB
    });
    let part_vel = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 43 * 1024),
        elem_bytes: 8,
        stride: 1,
        length: 2 * 1024, // 16 KB
    });
    let part_out = pb.pattern(AddrPattern::Strided {
        base: layout::region(4, 60 * 1024),
        elem_bytes: 8,
        stride: 1,
        length: 2 * 1024,
    });
    // Resident physics constants (2 KB: always hits after warmup).
    let lut = pb.pattern(AddrPattern::Strided {
        base: layout::region(5, 24 * 1024),
        elem_bytes: 8,
        stride: 7,
        length: 256,
    });
    let tally = pb.pattern(AddrPattern::Fixed {
        addr: layout::region(5, 63 * 1024),
    });

    // Kernel A: cross-section lookup — a cluster of scattered loads whose
    // results combine after some arithmetic.
    let mut b = pb.block();
    let e = b.carried(RegClass::Fp);
    let s1 = b.load(xsect, RegClass::Fp, LoadFormat::DOUBLE);
    let s2 = b.load(xsect2, RegClass::Fp, LoadFormat::DOUBLE);
    let s3 = b.load(xsect2, RegClass::Fp, LoadFormat::DOUBLE);
    let t1 = b.alu(RegClass::Fp, Some(s1), Some(s2));
    let t2 = b.alu(RegClass::Fp, Some(t1), Some(s3));
    let t3 = b.alu_chain(RegClass::Fp, t2, 12);
    b.alu_into(e, Some(t3), Some(e));
    let cmp = b.alu(RegClass::Int, None, None);
    b.branch(Some(cmp));
    let lookup = b.finish();

    // Kernel B: particle sweep — two streams in, one out, unrolled 4×
    // so one iteration touches all four words of each stream's cache
    // line: a line miss is one primary plus three secondary misses, the
    // cluster structure that separates the MSHR target layouts (Fig. 14).
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    for _ in 0..4 {
        let p1 = b.load(part_pos, RegClass::Fp, LoadFormat::DOUBLE);
        let v1 = b.load(part_vel, RegClass::Fp, LoadFormat::DOUBLE);
        let u1 = b.alu(RegClass::Fp, Some(p1), Some(v1));
        let u2 = b.alu_chain(RegClass::Fp, u1, 4);
        b.store(part_out, Some(u2));
    }
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let sweep = b.finish();

    // Kernel C: resident-table compute stretch (hits; dilutes the miss
    // density to doduc's moderate absolute MCPI).
    let mut b = pb.block();
    let acc = b.carried(RegClass::Fp);
    for _ in 0..4 {
        let c = b.load(lut, RegClass::Fp, LoadFormat::DOUBLE);
        let t = b.alu(RegClass::Fp, Some(c), Some(acc));
        let t2 = b.alu_chain(RegClass::Fp, t, 8);
        b.alu_into(acc, Some(t2), Some(acc));
    }
    b.store(tally, Some(acc));
    let cmp = b.alu(RegClass::Int, None, None);
    b.branch(Some(cmp));
    let compute = b.finish();

    // One "history" = a few lookups, a few sweep steps, a compute stretch.
    let unit = 2 * 19 + 30 + 2 * 43;
    let trips = scale.trips(unit as u64);
    pb.loop_of(
        trips,
        vec![
            ScriptNode::Run {
                block: lookup,
                times: 2,
            },
            ScriptNode::Run {
                block: sweep,
                times: 1,
            },
            ScriptNode::Run {
                block: compute,
                times: 2,
            },
        ],
    );
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_kernel_structure() {
        let p = build(Scale::quick());
        assert_eq!(p.blocks.len(), 3);
        let (l0, _, _) = p.blocks[0].op_mix();
        let (l1, s1, _) = p.blocks[1].op_mix();
        let (l2, _, _) = p.blocks[2].op_mix();
        assert_eq!(l0, 3, "lookup kernel: a cluster of scattered loads");
        assert_eq!((l1, s1), (8, 4), "sweep kernel: streams in/out");
        assert_eq!(l2, 4, "compute kernel: resident LUT");
    }

    #[test]
    fn gather_tables_compete_with_the_cache() {
        let p = build(Scale::quick());
        match p.patterns[0] {
            AddrPattern::Gather {
                elem_bytes, length, ..
            } => {
                // Far beyond cacheable: the master table misses often.
                assert!(u64::from(elem_bytes) * length > 2 * 8 * 1024);
            }
            _ => panic!("xsect should be a gather"),
        }
    }
}
