//! `mdljdp2` — molecular dynamics of 500 liquid-argon atoms, double
//! precision (SPEC92 CFP).
//!
//! The force loop walks a neighbour list: an index load, then the
//! neighbour's x/y/z coordinates — three loads that *share a cache line*
//! (adjacent fields of one particle record), so a missing particle record
//! produces one primary and two secondary misses. Organizations with
//! secondary-miss support benefit; the dependent indexing bounds the
//! overall gain (Fig. 13: 1.9× blocking, 1.1× with `fc=2`).

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("mdljdp2");
    // Neighbour list: streaming index array.
    let nlist = pb.pattern(AddrPattern::Strided {
        base: layout::region(0, 0),
        elem_bytes: 2, // 16-bit neighbour indices
        stride: 1,
        length: 128 * 1024,
    });
    // Particle records: 32 bytes (x, y, z, pad) scattered over 40 KB.
    // Three gathers sharing one LCG phase would diverge, so the x gather
    // drives and y/z ride the same record via dependent loads at +8/+16:
    // modeled as gathers with the same seed, offset by field position.
    let field = |off: u64| AddrPattern::Gather {
        base: layout::region(1, 2048) + off,
        elem_bytes: 32,
        length: 320, // 320 records × 32 B = 10 KB
        seed: 0x3d2,
    };
    let px = pb.pattern(field(0));
    let py = pb.pattern(field(8));
    let pz = pb.pattern(field(16));
    // Force accumulators: small and hot. Reads and writes advance
    // separate pattern state so the read stream is not double-stepped.
    let force = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 4096),
        elem_bytes: 8,
        stride: 1,
        length: 64,
    });
    let force_wr = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 4096),
        elem_bytes: 8,
        stride: 1,
        length: 64,
    });

    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    let idx = b.load(
        nlist,
        RegClass::Int,
        LoadFormat {
            size: nbl_core::types::AccessSize::B2,
            sign_extend: true,
        },
    );
    // Coordinates: dependent on the neighbour index, mutually sharing a
    // line (the y and z loads are secondary misses when x misses).
    let x = b.load_via(px, idx, RegClass::Fp, LoadFormat::DOUBLE);
    let y = b.load_via(py, idx, RegClass::Fp, LoadFormat::DOUBLE);
    let z = b.load_via(pz, idx, RegClass::Fp, LoadFormat::DOUBLE);
    let dx = b.alu(RegClass::Fp, Some(x), None);
    let dy = b.alu(RegClass::Fp, Some(y), None);
    let dz = b.alu(RegClass::Fp, Some(z), None);
    let r1 = b.alu(RegClass::Fp, Some(dx), Some(dy));
    let r2 = b.alu(RegClass::Fp, Some(r1), Some(dz));
    let f = b.alu_chain(RegClass::Fp, r2, 8);
    let facc = b.load(force, RegClass::Fp, LoadFormat::DOUBLE);
    let fnew = b.alu(RegClass::Fp, Some(facc), Some(f));
    b.store(force_wr, Some(fnew));
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let forces = b.finish();

    let trips = scale.trips(19);
    pb.run(forces, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinate_loads_share_a_record() {
        let p = build(Scale::quick());
        // The three field gathers use one seed: identical record sequence,
        // different field offsets within the 32-byte record.
        let seeds: Vec<u64> = p
            .patterns
            .iter()
            .filter_map(|pt| match pt {
                AddrPattern::Gather {
                    seed,
                    elem_bytes: 32,
                    ..
                } => Some(*seed),
                _ => None,
            })
            .collect();
        assert_eq!(seeds.len(), 3);
        assert!(seeds.windows(2).all(|w| w[0] == w[1]));
        let (loads, stores, _) = p.blocks[0].op_mix();
        assert_eq!(loads, 5);
        assert_eq!(stores, 1);
    }
}
