//! Fluent construction of workload [`Program`]s.
//!
//! Generators describe blocks in natural dataflow style; the builder takes
//! care of virtual-register bookkeeping and script assembly.

use crate::ir::{AddrPattern, Block, BlockId, IrOp, PatternId, Program, ScriptNode, VirtReg};
use nbl_core::types::{LoadFormat, RegClass};

/// Builder for a whole [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    patterns: Vec<AddrPattern>,
    blocks: Vec<Block>,
    script: Vec<ScriptNode>,
}

impl ProgramBuilder {
    /// Starts a program named `name`.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            patterns: Vec::new(),
            blocks: Vec::new(),
            script: Vec::new(),
        }
    }

    /// Registers an address pattern.
    pub fn pattern(&mut self, p: AddrPattern) -> PatternId {
        let id = PatternId(self.patterns.len() as u32);
        self.patterns.push(p);
        id
    }

    /// Starts building a basic block; call [`BlockBuilder::finish`] to get
    /// its id.
    pub fn block(&mut self) -> BlockBuilder<'_> {
        BlockBuilder {
            parent: self,
            block: Block::default(),
        }
    }

    /// Appends "run `block` `times` times" to the top-level script.
    pub fn run(&mut self, block: BlockId, times: u64) -> &mut Self {
        self.script.push(ScriptNode::Run { block, times });
        self
    }

    /// Appends a loop node built from `body` to the top-level script.
    pub fn loop_of(&mut self, trips: u64, body: Vec<ScriptNode>) -> &mut Self {
        self.script.push(ScriptNode::Loop { body, trips });
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program {
            name: self.name,
            patterns: self.patterns,
            blocks: self.blocks,
            script: self.script,
        }
    }
}

/// Builder for one basic [`Block`].
#[derive(Debug)]
pub struct BlockBuilder<'a> {
    parent: &'a mut ProgramBuilder,
    block: Block,
}

impl BlockBuilder<'_> {
    /// Allocates a fresh virtual register of `class`.
    pub fn vreg(&mut self, class: RegClass) -> VirtReg {
        let v = VirtReg(self.block.classes.len() as u32);
        self.block.classes.push(class);
        v
    }

    /// Allocates a loop-carried virtual register (live across iterations;
    /// never spilled).
    pub fn carried(&mut self, class: RegClass) -> VirtReg {
        let v = self.vreg(class);
        self.block.carried.push(v);
        v
    }

    /// Emits a load from `pattern` into a fresh register of `class`.
    pub fn load(&mut self, pattern: PatternId, class: RegClass, format: LoadFormat) -> VirtReg {
        let dst = self.vreg(class);
        self.block.ops.push(IrOp::Load {
            dst,
            pattern,
            format,
            addr_src: None,
        });
        dst
    }

    /// Emits a load into an existing register (e.g. a carried accumulator).
    pub fn load_into(&mut self, dst: VirtReg, pattern: PatternId, format: LoadFormat) {
        self.block.ops.push(IrOp::Load {
            dst,
            pattern,
            format,
            addr_src: None,
        });
    }

    /// Emits a dependent load: the effective address reads `addr_src`.
    pub fn load_via(
        &mut self,
        pattern: PatternId,
        addr_src: VirtReg,
        class: RegClass,
        format: LoadFormat,
    ) -> VirtReg {
        let dst = self.vreg(class);
        self.block.ops.push(IrOp::Load {
            dst,
            pattern,
            format,
            addr_src: Some(addr_src),
        });
        dst
    }

    /// Emits a pointer-chase step: load the next pointer *through* the
    /// current one, into the same carried register.
    pub fn chase(&mut self, pattern: PatternId, ptr: VirtReg, format: LoadFormat) {
        self.block.ops.push(IrOp::Load {
            dst: ptr,
            pattern,
            format,
            addr_src: Some(ptr),
        });
    }

    /// Emits a store of `data` to `pattern`.
    pub fn store(&mut self, pattern: PatternId, data: Option<VirtReg>) {
        self.block.ops.push(IrOp::Store {
            pattern,
            data,
            addr_src: None,
        });
    }

    /// Emits a store whose address depends on `addr_src`.
    pub fn store_via(&mut self, pattern: PatternId, data: Option<VirtReg>, addr_src: VirtReg) {
        self.block.ops.push(IrOp::Store {
            pattern,
            data,
            addr_src: Some(addr_src),
        });
    }

    /// Emits `dst <- op(a, b)` into a fresh register of `class`.
    pub fn alu(&mut self, class: RegClass, a: Option<VirtReg>, b: Option<VirtReg>) -> VirtReg {
        let dst = self.vreg(class);
        self.block.ops.push(IrOp::Alu { dst, srcs: [a, b] });
        dst
    }

    /// Emits `dst <- op(a, b)` into an existing register (accumulation /
    /// induction update).
    pub fn alu_into(&mut self, dst: VirtReg, a: Option<VirtReg>, b: Option<VirtReg>) {
        self.block.ops.push(IrOp::Alu { dst, srcs: [a, b] });
    }

    /// Emits a chain of `n` dependent ALU ops starting from `seed`,
    /// returning the final value — models a serial computation.
    pub fn alu_chain(&mut self, class: RegClass, seed: VirtReg, n: usize) -> VirtReg {
        let mut cur = seed;
        for _ in 0..n {
            cur = self.alu(class, Some(cur), None);
        }
        cur
    }

    /// Emits a branch reading `a` (loop back-edges, compare-and-branch).
    pub fn branch(&mut self, a: Option<VirtReg>) {
        self.block.ops.push(IrOp::Branch { srcs: [a, None] });
    }

    /// Finishes the block and returns its id.
    pub fn finish(self) -> BlockId {
        let id = BlockId(self.parent.blocks.len() as u32);
        self.parent.blocks.push(self.block);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_two_block_program() {
        let mut pb = ProgramBuilder::new("demo");
        let arr = pb.pattern(AddrPattern::Strided {
            base: 0,
            elem_bytes: 8,
            stride: 1,
            length: 64,
        });
        let out = pb.pattern(AddrPattern::Strided {
            base: 4096,
            elem_bytes: 8,
            stride: 1,
            length: 64,
        });

        let mut b = pb.block();
        let i = b.carried(RegClass::Int);
        let x = b.load(arr, RegClass::Fp, LoadFormat::DOUBLE);
        let y = b.alu(RegClass::Fp, Some(x), None);
        b.store(out, Some(y));
        b.alu_into(i, Some(i), None);
        b.branch(Some(i));
        let body = b.finish();

        let mut b2 = pb.block();
        let t = b2.vreg(RegClass::Int);
        b2.alu_into(t, None, None);
        let epilogue = b2.finish();

        pb.run(body, 100);
        pb.run(epilogue, 1);
        let p = pb.build();

        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.patterns.len(), 2);
        assert_eq!(p.blocks[0].ops.len(), 5);
        assert!(p.blocks[0].is_carried(VirtReg(0)));
        assert!(!p.blocks[0].is_carried(VirtReg(1)));
        assert_eq!(p.blocks[0].op_mix(), (1, 1, 3));
        assert_eq!(p.estimated_instructions(), 100 * 5 + 1);
    }

    #[test]
    fn chase_reads_and_writes_same_register() {
        let mut pb = ProgramBuilder::new("chase");
        let ring = pb.pattern(AddrPattern::Chase {
            base: 0,
            node_bytes: 16,
            nodes: 32,
            field_offset: 0,
            seed: 1,
        });
        let mut b = pb.block();
        let p = b.carried(RegClass::Int);
        b.chase(ring, p, LoadFormat::DOUBLE);
        let id = b.finish();
        pb.run(id, 10);
        let prog = pb.build();
        match prog.blocks[0].ops[0] {
            IrOp::Load { dst, addr_src, .. } => {
                assert_eq!(dst, p);
                assert_eq!(addr_src, Some(p));
            }
            _ => panic!("expected load"),
        }
    }

    #[test]
    fn alu_chain_is_serial() {
        let mut pb = ProgramBuilder::new("chain");
        let mut b = pb.block();
        let s = b.vreg(RegClass::Fp);
        b.alu_into(s, None, None);
        let end = b.alu_chain(RegClass::Fp, s, 4);
        b.branch(Some(end));
        let id = b.finish();
        pb.run(id, 1);
        let prog = pb.build();
        // 1 init + 4 chain + 1 branch.
        assert_eq!(prog.blocks[0].ops.len(), 6);
        // Each chain op reads the previous dst.
        for w in prog.blocks[0].ops[1..5].windows(2) {
            let prev_dst = w[0].dst().unwrap();
            assert!(w[1].srcs().contains(&prev_dst));
        }
    }
}
