//! # nbl-core — lockup-free caches and MSHR organizations
//!
//! Core library of the reproduction of Farkas & Jouppi,
//! *Complexity/Performance Tradeoffs with Non-Blocking Loads*
//! (WRL 94/3 / ISCA 1994).
//!
//! A *non-blocking* (lockup-free) cache lets the processor keep issuing
//! instructions — including further cache accesses — while one or more data
//! cache misses are outstanding. The hardware that makes this possible is a
//! set of **Miss Status Holding Registers** (MSHRs), and the paper's subject
//! is how much MSHR hardware is actually worth buying. This crate implements
//! the complete design space the paper studies:
//!
//! * [`mshr::targets`] — implicitly addressed, explicitly addressed and
//!   hybrid target-field layouts (paper Figs. 1, 2 and 14);
//! * [`mshr::file`] — discrete register MSHR files with limits on entries,
//!   total outstanding misses (`mc=N`), and fetches per cache set (`fs=N`);
//! * [`mshr::incache`] — in-cache MSHR storage via a transit bit per line
//!   (paper §2.3);
//! * [`mshr::inverted`] — the inverted, per-destination MSHR the paper
//!   introduces (§2.4), which realizes the "no restriction" configuration;
//! * [`mshr::cost`] — the storage cost model that reproduces the paper's
//!   bit counts (92/140/112/106 bits);
//! * [`tag_array`] — the policy-parameterized tag array ([`TagArray`] +
//!   the [`tag_array::ReplacementPolicy`] trait: LRU, FIFO, seeded-random
//!   and tree-PLRU) shared by every cache level in the workspace;
//! * [`cache`] — the lockup-free cache proper: a [`TagArray`] combined
//!   with MSHRs, write-through + write-around (or write-allocate) stores,
//!   and fills that wake every waiting load simultaneously.
//!
//! Timing lives elsewhere: the `nbl-cpu` crate drives this cache with an
//! in-order processor model, and `nbl-mem` provides the fully pipelined
//! constant-latency memory of the paper's §3.1.
//!
//! ## Quick example
//!
//! ```
//! use nbl_core::cache::{CacheConfig, LoadAccess, LockupFreeCache};
//! use nbl_core::mshr::MshrConfig;
//! use nbl_core::mshr::inverted::InvertedConfig;
//! use nbl_core::types::{Addr, Dest, LoadFormat, PhysReg};
//!
//! // An unrestricted lockup-free cache (the paper's "no restrict" curve).
//! let mut cache = LockupFreeCache::new(CacheConfig::baseline(
//!     MshrConfig::Inverted(InvertedConfig::typical()),
//! ));
//! let r = cache.access_load(Addr(0x1000), Dest::Reg(PhysReg::int(4)), LoadFormat::WORD);
//! assert!(matches!(r, LoadAccess::Miss(_)));
//! ```

/// The lockup-free L1 cache: tag array + MSHR bank behind one port.
pub mod cache;
/// Cross-process stable fingerprints for content-addressed artifacts.
pub mod fingerprint;
/// Cache geometry (size, line size, associativity) and its validation.
pub mod geometry;
/// Fixed-seed hashing: [`hash::FastMap`] keeps map iteration deterministic.
pub mod hash;
/// The dynamic instruction model shared by interpreter and tape replay.
pub mod inst;
/// Resource-limit counters (ports, outstanding fetches) and their errors.
pub mod limit;
/// The four MSHR organizations from the paper and their shared target store.
pub mod mshr;
/// In-tree SplitMix64 RNG — the workspace's only randomness source.
pub mod rng;
/// The policy-parameterized tag array shared by the L1 and L2 layers.
pub mod tag_array;
/// Core newtypes: addresses, blocks, cycles, registers, load formats.
pub mod types;

pub use cache::{CacheConfig, LoadAccess, LockupFreeCache, StoreAccess, WriteMissPolicy};
pub use fingerprint::{checksum_bytes, fingerprint_of, StableHasher, FINGERPRINT_VERSION};
pub use geometry::CacheGeometry;
pub use limit::Limit;
pub use mshr::{MissKind, MshrBank, MshrConfig, Rejection, TargetRecord};
pub use tag_array::{ReplacementKind, TagArray, WayAge};
pub use types::{Addr, BlockAddr, Cycle, Dest, LoadFormat, PhysReg, RegClass};
