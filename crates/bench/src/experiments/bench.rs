//! `bench` exhibit: wall-clock timing of the record-once/replay-many
//! pipeline on a pinned grid sweep.
//!
//! Five timed phases over the same 18 benchmarks × 8 configurations × 6
//! latencies grid (the full Fig. 13 roster), the first four on one fresh
//! [`SweepEngine`] (disk-backed store, empty memory tiers) so this
//! exhibit's counters are not mixed with other exhibits':
//!
//! 1. **cold** — empty memory tiers: every `(benchmark, latency)` pair
//!    is compiled and recorded to a tape (or, when a previous process
//!    populated the store, decoded from the disk tier), then all 864
//!    cells replay, writing tapes and results through to the store;
//! 2. **warm** — the same sweep again with both caches hot: pure fused
//!    replay (one tape walk advances all configurations of a
//!    `(benchmark, latency)` group in lockstep), best of `--bench-reps`
//!    passes;
//! 3. **warm unfused** — the same cells through
//!    [`SweepEngine::grid_sweep_unfused`], one independent replay per
//!    cell: the reference the fusion speedup and bit-identity are
//!    measured against;
//! 4. **interpreted** — the same cells through
//!    [`run_compiled_interpreted`] (warm compile cache, no tapes): the
//!    pre-tape pipeline, best of `--bench-reps` passes;
//! 5. **disk-warm** — a *fresh* engine (modelling a fresh process: cold
//!    memory tiers) in incremental mode over the store the cold pass
//!    just populated: every cell is answered from its content-addressed
//!    [`RunResult`] artifact without simulating (DESIGN.md §16).
//!
//! After the five phases, a **fusion check** measures the fused-vs-
//! unfused ratio at pinned worker counts (1 and 4 threads, each side
//! best of `--bench-reps`, on fresh engines reading the now-populated
//! store) so the ratio is comparable across machines regardless of
//! `NBL_THREADS`; fusion-aware row-span scheduling
//! ([`SweepEngine::grid_sweep`]) is what keeps the multi-thread ratio
//! above 1.0. The warm wall is also split into an estimated
//! `tape_scan_s` + `mem_step_s` pair by instruction/cycle attribution
//! (every tape entry ticks once; cycles beyond instructions are
//! memory-system stepping).
//!
//! The exhibit asserts nothing but verifies and reports that all passes
//! produce bit-identical [`RunResult`]s, and writes the measurements to
//! `BENCH_sweep.json` (path override: `NBL_BENCH_JSON`). The file is a
//! history, not a snapshot: each run appends one entry (threads, git
//! describe, caller-supplied ISO date, timings) to its `trajectory`
//! array, so speedups are tracked commit over commit. Entries where
//! fused replay *loses* to unfused at either pinned thread count are
//! flagged (`fusion_regressed`) — the gate `scripts/verify.sh` fails on.

use super::{bench_opts, programs_for, ExhibitError, RunScale, LATENCIES};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::{run_compiled_interpreted, RunResult};
use nbl_sim::pool::available_threads;
use nbl_sim::report;
use nbl_sim::store::{store_settings, ArtifactStore, StoreStats};
use nbl_sim::sweep::SweepEngine;
use nbl_sim::telemetry::Telemetry;
use nbl_trace::ir::Program;
use nbl_trace::workloads::ALL;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// The Fig. 13-style grid: the seven baseline configurations plus the
/// in-cache MSHR organization.
fn grid_configs() -> Vec<HwConfig> {
    let mut configs = HwConfig::baseline_seven();
    configs.push(HwConfig::InCache);
    configs
}

/// Runs the full grid once through the engine's fused sweep path (one
/// tape walk per `(benchmark, latency)` group); returns wall seconds and
/// the flat cell results.
fn sweep_pass(
    engine: &SweepEngine,
    programs: &[Program],
) -> Result<(f64, Vec<RunResult>), ExhibitError> {
    let refs: Vec<&Program> = programs.iter().collect();
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let t0 = Instant::now();
    let sweeps = engine
        .grid_sweep(&refs, &base, &grid_configs(), &LATENCIES)
        .map_err(|e| ExhibitError::new("bench grid sweep", e))?;
    let wall = t0.elapsed().as_secs_f64();
    let flat = sweeps
        .into_iter()
        .flat_map(|s| s.rows.into_iter().flatten())
        .collect();
    Ok((wall, flat))
}

/// Runs the same grid with fusion disabled: every cell replays the tape
/// independently as its own pool job.
fn unfused_pass(
    engine: &SweepEngine,
    programs: &[Program],
) -> Result<(f64, Vec<RunResult>), ExhibitError> {
    let refs: Vec<&Program> = programs.iter().collect();
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let t0 = Instant::now();
    let sweeps = engine
        .grid_sweep_unfused(&refs, &base, &grid_configs(), &LATENCIES)
        .map_err(|e| ExhibitError::new("bench unfused grid sweep", e))?;
    let wall = t0.elapsed().as_secs_f64();
    let flat = sweeps
        .into_iter()
        .flat_map(|s| s.rows.into_iter().flatten())
        .collect();
    Ok((wall, flat))
}

/// Runs the same cells, in the same order, through the interpreter path
/// (compilations served from the engine's warm cache, no tapes).
fn interpreted_pass(
    engine: &SweepEngine,
    programs: &[Program],
) -> Result<(f64, Vec<RunResult>), ExhibitError> {
    let configs = grid_configs();
    let (nl, nc) = (LATENCIES.len(), configs.len());
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let t0 = Instant::now();
    let results = engine
        .pool()
        .try_run(
            programs.len() * nl * nc,
            |idx| -> Result<RunResult, String> {
                let program = &programs[idx / (nl * nc)];
                let cfg = SimConfig {
                    hw: configs[idx % nc].clone(),
                    ..base.clone()
                }
                .at_latency(LATENCIES[(idx / nc) % nl]);
                let compiled = engine
                    .cache()
                    .get_or_compile(program, cfg.load_latency)
                    .map_err(|e| format!("{}: {e}", program.name))?;
                run_compiled_interpreted(&program.name, &compiled, &cfg)
                    .map_err(|e| format!("{}: {e}", program.name))
            },
        )
        .map_err(|e| ExhibitError::new("bench interpreted pass", e))?
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| ExhibitError::new("bench interpreted pass", e))?;
    Ok((t0.elapsed().as_secs_f64(), results))
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

fn json_str_list(items: &[String]) -> String {
    let body: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", body.join(","))
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git (or the repository) is unavailable. Identification only —
/// never on a result path.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Extracts the contents of the `"trajectory":[...]` array from a prior
/// `BENCH_sweep.json`, bracket-matching with string awareness so quoted
/// values cannot derail the scan. Returns the inner text (no brackets),
/// or `None` if the file has no trajectory yet.
fn prior_trajectory(json: &str) -> Option<&str> {
    let start = json.find("\"trajectory\":[")? + "\"trajectory\":[".len();
    let rest = &json[start..];
    let (mut depth, mut in_string, mut escaped) = (1usize, false, false);
    for (i, c) in rest.char_indices() {
        match (in_string, escaped, c) {
            (true, true, _) => escaped = false,
            (true, false, '\\') => escaped = true,
            (true, false, '"') => in_string = false,
            (false, _, '"') => in_string = true,
            (false, _, '[') => depth += 1,
            (false, _, ']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Prints the timing table and writes `BENCH_sweep.json`.
///
/// Pinned to quick scale regardless of `--quick`: this exhibit measures
/// the harness rather than the workloads, and the JSON it emits is
/// compared commit over commit, so the grid must not change shape with
/// command-line flags.
pub fn run(out: &mut dyn Write, _scale: RunScale) -> Result<(), ExhibitError> {
    let opts = bench_opts();
    let reps = opts.reps.max(1);
    let programs = programs_for(&ALL, RunScale::Quick)?;
    // The exhibit always runs on a disk-backed store (the configured one,
    // or the conventional default) so the disk-warm phase has artifacts
    // to read. Cross-process warm starts are the point: when a previous
    // process populated this store, the "cold" pass loads its tapes from
    // the disk tier instead of recording.
    let store_dir = store_settings()
        .dir
        .unwrap_or_else(|| PathBuf::from("results/store"));
    let engine = SweepEngine::with_store(
        available_threads(),
        ArtifactStore::with_disk(&store_dir, false),
    );
    let configs = grid_configs();
    let runs = ALL.len() * configs.len() * LATENCIES.len();
    let threads = engine.pool().threads();

    // Cold can only be timed once (the caches are warm afterwards); the
    // repeatable phases take the best of `reps` passes to damp scheduler
    // noise, after checking every pass agrees bit-for-bit with cold.
    let (cold_wall, cold) = sweep_pass(&engine, &programs)?;
    let mut identical = true;
    let mut warm_wall = f64::INFINITY;
    let tele_before = Telemetry::global().snapshot();
    for _ in 0..reps {
        let (wall, pass) = sweep_pass(&engine, &programs)?;
        warm_wall = warm_wall.min(wall);
        identical &= pass == cold;
    }
    // Per-phase attribution of the warm fused wall, estimated from the
    // telemetry counters: every tape entry ticks the core exactly once,
    // so the simulated instruction count tracks tape-scan work while the
    // cycles beyond it are memory-system stepping (miss stalls, fill
    // drains, hazard replays). The shares are per-pass invariant, so the
    // fraction over the whole reps interval applies to the best wall.
    let tele_warm = Telemetry::global().snapshot().since(tele_before);
    let scan_frac = if tele_warm.cycles > 0 {
        (tele_warm.instructions as f64 / tele_warm.cycles as f64).min(1.0)
    } else {
        0.0
    };
    let tape_scan_s = warm_wall * scan_frac;
    let mem_step_s = warm_wall - tape_scan_s;
    let (unfused_wall, unfused) = unfused_pass(&engine, &programs)?;
    identical &= unfused == cold;
    let mut interp_wall = f64::INFINITY;
    for _ in 0..reps {
        let (wall, pass) = interpreted_pass(&engine, &programs)?;
        interp_wall = interp_wall.min(wall);
        identical &= pass == cold;
    }
    // Disk-warm: a fresh engine models a fresh process — empty memory
    // tiers, incremental mode, same (now populated) store. Every cell's
    // inputs are unchanged, so the whole grid is answered from stored
    // results; bit-identity against the simulated passes checks the
    // result codec round-trip end to end.
    let disk_engine = SweepEngine::with_store(
        available_threads(),
        ArtifactStore::with_disk(&store_dir, true),
    );
    let (disk_warm_wall, disk_warm) = sweep_pass(&disk_engine, &programs)?;
    identical &= disk_warm == cold;
    // Fusion check at pinned worker counts: the fused-vs-unfused ratio is
    // measured at 1 and 4 threads on every invocation (regardless of
    // `NBL_THREADS`), each side best of `reps` passes so the comparison
    // is symmetric, and recorded in every trajectory entry — the
    // regression gate verify.sh enforces. Fresh engines on the populated
    // store model each shape; their warmup pass (loading tapes from the
    // disk tier) is untimed and bit-checked like every other pass.
    const FUSION_CHECK_THREADS: [usize; 2] = [1, 4];
    let mut fusion_speedups = [0.0f64; 2];
    for (slot, &t) in fusion_speedups.iter_mut().zip(&FUSION_CHECK_THREADS) {
        let check_engine = SweepEngine::with_store(t, ArtifactStore::with_disk(&store_dir, false));
        let (_, warmup) = sweep_pass(&check_engine, &programs)?;
        identical &= warmup == cold;
        let (mut fused_best, mut unfused_best) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let (wall, pass) = sweep_pass(&check_engine, &programs)?;
            fused_best = fused_best.min(wall);
            identical &= pass == cold;
            let (wall, pass) = unfused_pass(&check_engine, &programs)?;
            unfused_best = unfused_best.min(wall);
            identical &= pass == cold;
        }
        *slot = unfused_best / fused_best;
    }
    let [speedup_fused_vs_unfused_1t, speedup_fused_vs_unfused_4t] = fusion_speedups;
    let speedup_vs_interpreted = interp_wall / warm_wall;
    let speedup_vs_cold = cold_wall / warm_wall;
    let speedup_fused_vs_unfused = unfused_wall / warm_wall;
    let speedup_disk_warm_vs_cold = cold_wall / disk_warm_wall;
    let fusion_regressed = speedup_fused_vs_unfused_1t < 1.0 || speedup_fused_vs_unfused_4t < 1.0;
    let compile = engine.cache().stats();
    let tapes = engine.tapes().stats();
    let store = engine.store().disk_stats();
    let disk_store = disk_engine.store().disk_stats();
    let git = git_describe();

    let _ = writeln!(
        out,
        "== bench: record-once/replay-many pipeline timing (pinned quick scale) =="
    );
    let _ = writeln!(
        out,
        "{} cells: {} benchmarks x {} configs x {} latencies, {} worker thread{}, best of {} pass{}",
        runs,
        ALL.len(),
        configs.len(),
        LATENCIES.len(),
        threads,
        if threads == 1 { "" } else { "s" },
        reps,
        if reps == 1 { "" } else { "es" }
    );
    let _ = writeln!(out, "{:>24} {:>9} {:>9}", "phase", "wall (s)", "runs/s");
    for (name, wall) in [
        ("cold (compile+record)", cold_wall),
        ("warm (fused replay)", warm_wall),
        ("warm (unfused replay)", unfused_wall),
        ("interpreted (no tape)", interp_wall),
        ("disk-warm (incremental)", disk_warm_wall),
    ] {
        let _ = writeln!(
            out,
            "{:>24} {:>9.3} {:>9.1}",
            name,
            wall,
            runs as f64 / wall
        );
    }
    let _ = writeln!(
        out,
        "speedup: warm fused vs interpreted {speedup_vs_interpreted:.2}x, vs unfused {speedup_fused_vs_unfused:.2}x, vs cold {speedup_vs_cold:.2}x"
    );
    let _ = writeln!(
        out,
        "         disk-warm vs cold {speedup_disk_warm_vs_cold:.2}x (fresh process reading {})",
        store_dir.display()
    );
    let _ = writeln!(
        out,
        "fusion check (best of {reps} each side): 1 thread {speedup_fused_vs_unfused_1t:.2}x, \
         4 threads {speedup_fused_vs_unfused_4t:.2}x fused vs unfused"
    );
    let _ = writeln!(
        out,
        "warm phase estimate: tape scan {tape_scan_s:.3}s + mem step {mem_step_s:.3}s \
         (instruction/cycle attribution)"
    );
    if fusion_regressed {
        let _ = writeln!(
            out,
            "NOTE: fused replay LOST to unfused at a pinned thread count \
             (1t {speedup_fused_vs_unfused_1t:.2}x, 4t {speedup_fused_vs_unfused_4t:.2}x) — \
             row-span scheduling should keep fused ahead; investigate before trusting timings"
        );
    }
    let _ = writeln!(
        out,
        "caches: {} compiles + {} hits, {} tape records + {} replays ({:.2} MiB resident)",
        compile.compiles,
        compile.hits,
        tapes.records,
        tapes.hits,
        tapes.resident_bytes as f64 / (1024.0 * 1024.0)
    );
    let _ = writeln!(
        out,
        "store:  tapes {}h/{}m/{}w, results {}h/{}m/{}w (main) + {}h/{}m (disk-warm), {} corrupt, {} io errors",
        store.tape_hits,
        store.tape_misses,
        store.tape_writes,
        store.result_hits,
        store.result_misses,
        store.result_writes,
        disk_store.result_hits,
        disk_store.result_misses,
        store.corruptions + disk_store.corruptions,
        store.io_errors + disk_store.io_errors,
    );
    let _ = writeln!(
        out,
        "results bit-identical across all passes (fused/unfused/interpreted/disk-warm): {}",
        if identical { "yes" } else { "NO" }
    );

    // One trajectory entry per invocation; the file accumulates them so
    // BENCH_sweep.json reads as a perf history across commits.
    let entry = format!(
        concat!(
            "{{\"date\":\"{}\",\"git\":\"{}\",\"threads\":{},\"reps\":{},",
            "\"cold_wall_s\":{:.6},\"warm_wall_s\":{:.6},\"unfused_wall_s\":{:.6},",
            "\"interpreted_wall_s\":{:.6},\"disk_warm_wall_s\":{:.6},",
            "\"tape_scan_s\":{:.6},\"mem_step_s\":{:.6},",
            "\"warm_runs_per_sec\":{:.2},",
            "\"speedup_warm_vs_interpreted\":{:.3},\"speedup_fused_vs_unfused\":{:.3},",
            "\"speedup_fused_vs_unfused_1t\":{:.3},\"speedup_fused_vs_unfused_4t\":{:.3},",
            "\"speedup_disk_warm_vs_cold\":{:.3},\"fusion_regressed\":{},",
            "\"bit_identical\":{},\"oracle_checked\":{}}}"
        ),
        json_escape(&opts.date),
        json_escape(&git),
        threads,
        reps,
        cold_wall,
        warm_wall,
        unfused_wall,
        interp_wall,
        disk_warm_wall,
        tape_scan_s,
        mem_step_s,
        runs as f64 / warm_wall,
        speedup_vs_interpreted,
        speedup_fused_vs_unfused,
        speedup_fused_vs_unfused_1t,
        speedup_fused_vs_unfused_4t,
        speedup_disk_warm_vs_cold,
        fusion_regressed,
        identical,
        // Set by verify.sh once the oracle gate has passed in the same
        // verification run, so the perf history records whether each
        // entry's commit was also oracle-clean.
        std::env::var("NBL_ORACLE_CHECKED").is_ok_and(|v| v == "1"),
    );
    let path = std::env::var("NBL_BENCH_JSON").unwrap_or_else(|_| "BENCH_sweep.json".to_string());
    let trajectory = match std::fs::read_to_string(&path)
        .ok()
        .as_deref()
        .and_then(prior_trajectory)
    {
        Some(prior) if !prior.trim().is_empty() => format!("{prior},{entry}"),
        _ => entry,
    };

    // Both engines share one disk directory, so their counters combine
    // into a single per-process store telemetry object.
    let combined = StoreStats {
        tape_hits: store.tape_hits + disk_store.tape_hits,
        tape_misses: store.tape_misses + disk_store.tape_misses,
        tape_writes: store.tape_writes + disk_store.tape_writes,
        result_hits: store.result_hits + disk_store.result_hits,
        result_misses: store.result_misses + disk_store.result_misses,
        result_writes: store.result_writes + disk_store.result_writes,
        corruptions: store.corruptions + disk_store.corruptions,
        io_errors: store.io_errors + disk_store.io_errors,
    };
    let latencies_json = format!("[{}]", LATENCIES.map(|l| l.to_string()).join(","));
    let json = format!(
        concat!(
            "{{\"kind\":\"bench_sweep\",\"scale\":\"quick\",",
            "\"benchmarks\":{},\"configs\":{},\"load_latencies\":{},",
            "\"runs\":{},\"threads\":{},\"reps\":{},\"git\":\"{}\",\"date\":\"{}\",",
            "\"cold_wall_s\":{:.6},\"warm_wall_s\":{:.6},\"unfused_wall_s\":{:.6},",
            "\"interpreted_wall_s\":{:.6},\"disk_warm_wall_s\":{:.6},",
            "\"tape_scan_s\":{:.6},\"mem_step_s\":{:.6},",
            "\"warm_runs_per_sec\":{:.2},",
            "\"speedup_warm_vs_interpreted\":{:.3},\"speedup_fused_vs_unfused\":{:.3},",
            "\"speedup_fused_vs_unfused_1t\":{:.3},\"speedup_fused_vs_unfused_4t\":{:.3},",
            "\"speedup_warm_vs_cold\":{:.3},\"speedup_disk_warm_vs_cold\":{:.3},",
            "\"fusion_regressed\":{},",
            "\"bit_identical\":{},\"caches\":{},",
            "\"trajectory\":[{}]}}\n"
        ),
        json_str_list(&ALL.map(String::from)),
        json_str_list(&configs.iter().map(HwConfig::label).collect::<Vec<_>>()),
        latencies_json,
        runs,
        threads,
        reps,
        json_escape(&git),
        json_escape(&opts.date),
        cold_wall,
        warm_wall,
        unfused_wall,
        interp_wall,
        disk_warm_wall,
        tape_scan_s,
        mem_step_s,
        runs as f64 / warm_wall,
        speedup_vs_interpreted,
        speedup_fused_vs_unfused,
        speedup_fused_vs_unfused_1t,
        speedup_fused_vs_unfused_4t,
        speedup_vs_cold,
        speedup_disk_warm_vs_cold,
        fusion_regressed,
        identical,
        report::caches_json(&compile, &tapes, &combined),
        trajectory,
    );
    std::fs::write(&path, json).map_err(|e| ExhibitError::new(format!("writing {path}"), e))?;
    let n_entries = trajectory.matches("\"date\"").count();
    let _ = writeln!(out, "wrote {path} ({n_entries}-entry trajectory)");
    let _ = writeln!(out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::prior_trajectory;

    #[test]
    fn trajectory_extraction_handles_missing_empty_and_tricky_strings() {
        assert_eq!(prior_trajectory("{\"kind\":\"bench_sweep\"}"), None);
        assert_eq!(prior_trajectory("{\"trajectory\":[]}"), Some(""));
        let one = "{\"trajectory\":[{\"date\":\"2026-08-08\",\"x\":[1,2]}]}";
        assert_eq!(
            prior_trajectory(one),
            Some("{\"date\":\"2026-08-08\",\"x\":[1,2]}")
        );
        // Brackets and escaped quotes inside string values must not
        // derail the bracket matcher.
        let tricky = "{\"trajectory\":[{\"git\":\"v1-g0a]\\\"[\"}],\"z\":1}";
        assert_eq!(prior_trajectory(tricky), Some("{\"git\":\"v1-g0a]\\\"[\"}"));
    }
}
