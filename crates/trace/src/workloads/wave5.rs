//! `wave5` — 2-D particle-in-cell plasma simulation (SPEC92 CFP).
//!
//! Alternates field sweeps (streaming, overlap-friendly) with particle
//! pushes that gather field values at each particle's cell (scattered,
//! partially dependent). The blend puts it mid-pack in Fig. 13
//! (2.6× blocking → 1.2× at `mc=2`).

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program, ScriptNode};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("wave5");
    // Field arrays: streaming sweeps.
    let ex = pb.pattern(AddrPattern::Strided {
        base: layout::region(0, 0),
        elem_bytes: 4,
        stride: 1,
        length: 48 * 1024,
    });
    let ey = pb.pattern(AddrPattern::Strided {
        base: layout::region(1, 1056),
        elem_bytes: 4,
        stride: 1,
        length: 48 * 1024,
    });
    let ex_out = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 2112),
        elem_bytes: 8,
        stride: 1,
        length: 48 * 1024,
    });
    // Particle store: positions stream, field gathers scatter.
    let ppos = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 3168),
        elem_bytes: 4,
        stride: 1,
        length: 64 * 1024,
    });
    let ppos_wr = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 3168),
        elem_bytes: 4,
        stride: 1,
        length: 64 * 1024,
    });
    let grid = pb.pattern(AddrPattern::Gather {
        base: layout::region(4, 0),
        elem_bytes: 8,
        length: 768, // 6 KB field grid
        seed: 0x3a5e,
    });

    // Field sweep.
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    let a = b.load(ex, RegClass::Fp, LoadFormat::DOUBLE);
    let c = b.load(ey, RegClass::Fp, LoadFormat::DOUBLE);
    let t = b.alu(RegClass::Fp, Some(a), Some(c));
    let t2 = b.alu_chain(RegClass::Fp, t, 3);
    b.store(ex_out, Some(t2));
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let sweep = b.finish();

    // Particle push: position load drives a dependent field gather.
    let mut b = pb.block();
    let j = b.carried(RegClass::Int);
    let pos = b.load(ppos, RegClass::Fp, LoadFormat::WORD);
    let cell = b.alu(RegClass::Int, Some(pos), None);
    let f1 = b.load_via(grid, cell, RegClass::Fp, LoadFormat::DOUBLE);
    let acc = b.alu(RegClass::Fp, Some(f1), Some(pos));
    let vel = b.alu_chain(RegClass::Fp, acc, 9);
    b.store(ppos_wr, Some(vel));
    b.alu_into(j, Some(j), None);
    b.branch(Some(j));
    let push = b.finish();

    let unit = 2 * 9 + 16;
    let trips = scale.trips(unit);
    pb.loop_of(
        trips,
        vec![
            ScriptNode::Run {
                block: sweep,
                times: 2,
            },
            ScriptNode::Run {
                block: push,
                times: 1,
            },
        ],
    );
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_streaming_and_gather() {
        let p = build(Scale::quick());
        let gathers = p
            .patterns
            .iter()
            .filter(|pt| matches!(pt, AddrPattern::Gather { .. }))
            .count();
        let streams = p
            .patterns
            .iter()
            .filter(|pt| matches!(pt, AddrPattern::Strided { .. }))
            .count();
        assert!(gathers >= 1 && streams >= 4);
    }
}
