//! The shared execution engine underlying both processor models.
//!
//! [`Core`] owns the data cache, the pipelined memory, the write buffer,
//! the scoreboard and all timing state, and implements the event mechanics
//! the paper's model requires:
//!
//! * fills complete in issue order (the memory is a constant-latency pipe)
//!   and wake **all** waiting registers simultaneously (multi-write-port
//!   register file, §3.1);
//! * an instruction that reads (or rewrites) a pending register stalls
//!   until the fill that frees it — a *true data dependency* stall;
//! * a load miss rejected by the MSHRs stalls until the earliest
//!   outstanding fetch completes and then retries — a *structural* stall;
//! * under a blocking cache (or a write-allocate store miss) the whole
//!   miss penalty is exposed as a *blocking* stall.
//!
//! The single-issue [`crate::pipeline::Processor`] and the dual-issue
//! [`crate::dual::DualIssueProcessor`] are thin issue policies over this
//! engine.

use crate::scoreboard::Scoreboard;
use crate::stats::{CpuStats, InFlightSampler, StallCause};
use nbl_core::cache::{CacheConfig, LoadAccess, LockupFreeCache, StoreAccess, WriteMissPolicy};
use nbl_core::geometry::CacheGeometry;
use nbl_core::mshr::MshrConfig;
use nbl_core::types::BlockAddr;
use nbl_core::inst::{DynInst, DynKind};
use nbl_core::mshr::MissKind;
use nbl_core::types::{Addr, Cycle, Dest, LoadFormat, PhysReg};
use nbl_mem::memory::PipelinedMemory;
use nbl_mem::write_buffer::WriteBuffer;

/// A second-level cache between the L1 and main memory — an extension
/// beyond the paper, which studies only on-chip first-level caches and
/// cites two-level caching as adjacent work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Params {
    /// L2 geometry (must have the same line size as the L1).
    pub geometry: CacheGeometry,
    /// Cycles for an L1 miss that hits in the L2 (instead of the full
    /// miss penalty).
    pub hit_penalty: u32,
}

/// Configuration of the shared engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Data cache (geometry, write policy, MSHR organization).
    pub cache: CacheConfig,
    /// Miss penalty in cycles (paper baseline: 16).
    pub miss_penalty: u32,
    /// If `true`, every data access hits: used to measure each workload's
    /// ideal cycle count (dual-issue IPC for the paper's §6 scaling).
    pub perfect_cache: bool,
    /// Minimum cycles between successive fetch completions: 0 is the
    /// paper's fully pipelined memory; larger values model a
    /// bandwidth-limited bus (ablation only).
    pub memory_gap: u32,
    /// Optional second-level cache (extension; `None` reproduces the
    /// paper's flat L1 + memory hierarchy).
    pub l2: Option<L2Params>,
}

impl EngineConfig {
    /// Baseline memory (16-cycle penalty) over the given cache.
    pub fn with_cache(cache: CacheConfig) -> EngineConfig {
        EngineConfig { cache, miss_penalty: 16, perfect_cache: false, memory_gap: 0, l2: None }
    }
}

/// The shared execution engine. See the module docs.
#[derive(Debug, Clone)]
pub struct Core {
    cache: LockupFreeCache,
    /// Tag-only second-level cache (extension). Probed once per L1 fetch.
    l2: Option<(LockupFreeCache, u32)>,
    memory: PipelinedMemory,
    write_buffer: WriteBuffer,
    scoreboard: Scoreboard,
    now: Cycle,
    stats: CpuStats,
    sampler: InFlightSampler,
    perfect: bool,
}

impl Core {
    /// Creates an engine at cycle zero with a cold cache.
    pub fn new(config: EngineConfig) -> Core {
        // In-cache MSHR storage with a narrow read port pays extra cycles
        // to recover the MSHR state on every fill (§2.3); model it as
        // added fill latency.
        let effective_penalty = config.miss_penalty + config.cache.mshr.fill_extra_cycles();
        let l2 = config.l2.as_ref().map(|p| {
            assert_eq!(
                p.geometry.line_bytes(),
                config.cache.geometry.line_bytes(),
                "L1 and L2 must share a line size"
            );
            let tags = LockupFreeCache::new(CacheConfig {
                geometry: p.geometry,
                write_miss: WriteMissPolicy::WriteAround,
                mshr: MshrConfig::Blocking,
                victim_entries: 0,
            });
            (tags, p.hit_penalty + config.cache.mshr.fill_extra_cycles())
        });
        Core {
            memory: PipelinedMemory::with_gap(effective_penalty, config.memory_gap),
            l2,
            cache: LockupFreeCache::new(config.cache),
            write_buffer: WriteBuffer::free_retirement(),
            scoreboard: Scoreboard::new(),
            now: Cycle::ZERO,
            stats: CpuStats::default(),
            sampler: InFlightSampler::new(),
            perfect: config.perfect_cache,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// The in-flight occupancy sampler (Fig. 6 histograms).
    #[inline]
    pub fn sampler(&self) -> &InFlightSampler {
        &self.sampler
    }

    /// The data cache (for miss-rate counters).
    #[inline]
    pub fn cache(&self) -> &LockupFreeCache {
        &self.cache
    }

    /// The write buffer (occupancy statistics).
    #[inline]
    pub fn write_buffer(&self) -> &WriteBuffer {
        &self.write_buffer
    }

    /// The scoreboard (pending registers).
    #[inline]
    pub fn scoreboard(&self) -> &Scoreboard {
        &self.scoreboard
    }

    /// Latency of fetching `block`: the L2 hit penalty when an L2 is
    /// configured and holds the line, otherwise the full miss penalty.
    /// Probing also updates the (inclusive) L2 tags: a missing line is
    /// installed, modeling the fill on its way to the L1.
    fn fetch_latency(&mut self, block: BlockAddr) -> u32 {
        let Some((l2, hit_penalty)) = self.l2.as_mut() else {
            return self.memory.miss_penalty();
        };
        if l2.contains_block(block) {
            // Touch for LRU.
            let addr = block.first_byte(l2.config().geometry.block_bits());
            let _ = l2.access_load(addr, Dest::Pc, LoadFormat::DOUBLE);
            *hit_penalty
        } else {
            l2.fill(block);
            self.memory.miss_penalty()
        }
    }

    /// Advances time to `to` (clamped), charging the elapsed cycles to
    /// `cause`.
    fn stall_until(&mut self, to: Cycle, cause: StallCause) {
        if to <= self.now {
            return;
        }
        let cycles = to.since(self.now);
        self.stats.add_stall(cause, cycles);
        self.now = to;
    }

    /// Applies one completed fetch: installs the line, wakes every waiting
    /// register, updates the sampler at the fill's own timestamp.
    fn apply_fill(&mut self, block: nbl_core::types::BlockAddr, at: Cycle) {
        self.sampler.advance(at);
        let records = self.cache.fill(block);
        for r in &records {
            if let Dest::Reg(reg) = r.dest {
                self.scoreboard.clear(reg);
            }
        }
        self.sampler.on_fill(records.len());
    }

    /// Processes every fetch that has completed by the current time.
    pub fn drain_fills(&mut self) {
        while let Ok(at) = self.memory.next_completion() {
            if at > self.now {
                break;
            }
            let f = self.memory.pop_next().expect("next_completion said nonempty");
            self.apply_fill(f.block, f.at);
        }
    }

    /// Stalls (charging `cause`) until the earliest outstanding fetch
    /// completes, and applies it.
    ///
    /// # Panics
    ///
    /// Panics if no fetch is outstanding — the caller must only wait when
    /// a pending register or rejected miss guarantees one exists.
    fn wait_for_next_fill(&mut self, cause: StallCause) {
        let f = self
            .memory
            .pop_next()
            .expect("waiting for a fill requires an outstanding fetch");
        self.stall_until(f.at, cause);
        self.apply_fill(f.block, f.at);
    }

    /// Stalls until `reg` is valid (true-data-dependency stall).
    pub fn wait_for_reg(&mut self, reg: PhysReg) {
        while self.scoreboard.is_pending(reg) {
            self.wait_for_next_fill(StallCause::DataDependency);
        }
    }

    /// Resolves every register hazard of `inst`: sources (RAW) and
    /// destination (WAW — the fill of an earlier load must not clobber
    /// this instruction's result).
    pub fn resolve_hazards(&mut self, inst: &DynInst) {
        for src in inst.sources() {
            self.wait_for_reg(src);
        }
        if let Some(dst) = inst.dst() {
            self.wait_for_reg(dst);
        }
    }

    /// `true` if `inst` could issue right now without waiting on any
    /// pending register (used by the dual-issue pairing check).
    pub fn hazards_clear(&self, inst: &DynInst) -> bool {
        inst.sources().all(|s| !self.scoreboard.is_pending(s))
            && inst.dst().is_none_or(|d| !self.scoreboard.is_pending(d))
    }

    /// Executes the operation of `inst` at the current cycle, resolving
    /// structural stalls internally. Does **not** advance the issue clock;
    /// the issue policy does that (it may place two instructions in one
    /// cycle).
    pub fn execute(&mut self, inst: &DynInst) {
        match inst.kind {
            DynKind::Alu { .. } => {}
            DynKind::Load { addr, dst, format } => self.execute_load(addr, dst, format),
            DynKind::Store { addr } => self.execute_store(addr),
        }
        self.stats.instructions += 1;
        if inst.is_load() {
            self.stats.loads += 1;
        } else if inst.is_store() {
            self.stats.stores += 1;
        }
    }

    fn execute_load(&mut self, addr: Addr, dst: PhysReg, format: LoadFormat) {
        if self.perfect {
            return;
        }
        let mut stalled_structurally = false;
        loop {
            match self.cache.access_load(addr, Dest::Reg(dst), format) {
                LoadAccess::Hit => break,
                LoadAccess::VictimHit => {
                    // One cycle to swap the line back from the victim
                    // buffer; the data is then as good as a hit.
                    self.stall_until(self.now.plus(1), StallCause::Blocking);
                    break;
                }
                LoadAccess::Miss(kind) => {
                    self.sampler.advance(self.now);
                    let primary = kind == MissKind::Primary;
                    if primary {
                        let block = self.cache.block_of(addr);
                        let latency = self.fetch_latency(block);
                        self.memory.issue_fetch_after(block, self.now, latency);
                    }
                    self.sampler.on_miss(primary);
                    self.scoreboard.set_pending(dst);
                    break;
                }
                LoadAccess::Stalled(nbl_core::mshr::Rejection::Blocking) => {
                    // Lockup cache: expose the whole miss penalty, then the
                    // data is in the cache and the register is valid.
                    self.stats.blocking_load_misses += 1;
                    let block = self.cache.block_of(addr);
                    let latency = self.fetch_latency(block);
                    let done = self.now.plus(u64::from(latency));
                    self.stall_until(done, StallCause::Blocking);
                    self.sampler.advance(self.now);
                    let woken = self.cache.fill(self.cache.block_of(addr));
                    debug_assert!(woken.is_empty(), "blocking cache has no waiting targets");
                    break;
                }
                LoadAccess::Stalled(_reason) => {
                    // Structural hazard: wait for a fetch to complete, retry.
                    if !stalled_structurally {
                        stalled_structurally = true;
                        self.stats.structural_stall_misses += 1;
                    }
                    self.wait_for_next_fill(StallCause::Structural);
                }
            }
        }
    }

    fn execute_store(&mut self, addr: Addr) {
        if self.perfect {
            return;
        }
        match self.cache.access_store(addr) {
            StoreAccess::Hit | StoreAccess::MissAround => {
                self.write_buffer.push(addr, self.now);
            }
            StoreAccess::MissAllocate => {
                // `mc=0 + wma`: fetch the line, stalling for the full penalty.
                self.stats.blocking_store_misses += 1;
                let block = self.cache.block_of(addr);
                let latency = self.fetch_latency(block);
                let done = self.now.plus(u64::from(latency));
                self.stall_until(done, StallCause::Blocking);
                self.sampler.advance(self.now);
                self.cache.fill(self.cache.block_of(addr));
                self.write_buffer.push(addr, self.now);
            }
            StoreAccess::MissAllocateTracked(kind) => {
                // Non-blocking write allocate: the store data waits in the
                // write buffer for the line; the processor does not stall.
                self.stats.nonblocking_store_misses += 1;
                self.sampler.advance(self.now);
                let primary = kind == MissKind::Primary;
                if primary {
                    let block = self.cache.block_of(addr);
                    let latency = self.fetch_latency(block);
                    self.memory.issue_fetch_after(block, self.now, latency);
                }
                self.sampler.on_miss(primary);
                self.write_buffer.push(addr, self.now);
            }
        }
    }

    /// Advances the issue clock by one cycle (every instruction or
    /// co-issued group costs one cycle).
    pub fn tick(&mut self) {
        self.now = self.now.plus(1);
    }

    /// Finalizes the run: applies every outstanding fill (data that is
    /// still in flight when the program's last instruction issues wakes no
    /// one, so no stall is charged) and closes out the sampler.
    pub fn finish(&mut self) {
        while let Ok(f) = self.memory.pop_next() {
            if f.at > self.now {
                self.now = f.at;
            }
            self.apply_fill(f.block, f.at);
        }
        self.sampler.advance(self.now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::limit::Limit;
    use nbl_core::mshr::{MshrConfig, RegisterFileConfig, TargetPolicy};
    use nbl_core::types::LoadFormat;

    fn engine(mshr: MshrConfig) -> Core {
        Core::new(EngineConfig::with_cache(CacheConfig::baseline(mshr)))
    }

    fn mc1() -> MshrConfig {
        MshrConfig::Register(RegisterFileConfig {
            entries: Limit::Finite(1),
            targets: TargetPolicy::explicit(Limit::Finite(1)),
            max_outstanding_misses: Limit::Finite(1),
            max_fetches_per_set: Limit::Unlimited,
        })
    }

    #[test]
    fn load_use_stall_is_penalty_minus_distance() {
        let mut core = engine(mc1());
        let r1 = PhysReg::int(1);
        // Load (miss), one independent ALU op, then a use of the load.
        let ld = DynInst::load(Addr(0x1000), r1, LoadFormat::WORD);
        core.resolve_hazards(&ld);
        core.execute(&ld);
        core.tick();
        for _ in 0..3 {
            let op = DynInst::alu(PhysReg::int(2), [None, None]);
            core.resolve_hazards(&op);
            core.execute(&op);
            core.tick();
        }
        // Use issues after stalling until the fill at cycle 16.
        let use_i = DynInst::alu(PhysReg::int(3), [Some(r1), None]);
        core.resolve_hazards(&use_i);
        core.execute(&use_i);
        core.tick();
        // Load at cy0 (fill at 16), 3 ALU ops at cy1..3, use stalls 4..16.
        assert_eq!(core.stats().data_dep_stall_cycles, 12);
        assert_eq!(core.now(), Cycle(17));
    }

    #[test]
    fn blocking_cache_exposes_full_penalty() {
        let mut core = engine(MshrConfig::Blocking);
        let ld = DynInst::load(Addr(0x40), PhysReg::int(1), LoadFormat::WORD);
        core.resolve_hazards(&ld);
        core.execute(&ld);
        core.tick();
        assert_eq!(core.stats().blocking_stall_cycles, 16);
        assert_eq!(core.stats().blocking_load_misses, 1);
        assert_eq!(core.now(), Cycle(17));
        // The line is now resident: a reuse hits with no stall.
        let ld2 = DynInst::load(Addr(0x48), PhysReg::int(2), LoadFormat::WORD);
        core.resolve_hazards(&ld2);
        core.execute(&ld2);
        core.tick();
        assert_eq!(core.stats().total_stall_cycles(), 16);
    }

    #[test]
    fn structural_stall_waits_for_fill_then_retries() {
        let mut core = engine(mc1());
        let ld1 = DynInst::load(Addr(0x1000), PhysReg::int(1), LoadFormat::WORD);
        core.resolve_hazards(&ld1);
        core.execute(&ld1);
        core.tick();
        // Second load to a different line: mc=1 rejects; stalls until the
        // first fill (cycle 16), then becomes a fresh primary miss.
        let ld2 = DynInst::load(Addr(0x2000), PhysReg::int(2), LoadFormat::WORD);
        core.resolve_hazards(&ld2);
        core.execute(&ld2);
        core.tick();
        assert_eq!(core.stats().structural_stall_cycles, 15); // 1 -> 16
        assert_eq!(core.stats().structural_stall_misses, 1);
        assert_eq!(core.cache().counters().load_primary_misses, 2);
        assert!(!core.scoreboard().is_pending(PhysReg::int(1)));
        assert!(core.scoreboard().is_pending(PhysReg::int(2)));
    }

    #[test]
    fn secondary_miss_rides_the_same_fetch() {
        let fc1 = MshrConfig::Register(RegisterFileConfig {
            entries: Limit::Finite(1),
            targets: TargetPolicy::explicit(Limit::Unlimited),
            max_outstanding_misses: Limit::Unlimited,
            max_fetches_per_set: Limit::Unlimited,
        });
        let mut core = engine(fc1);
        let ld1 = DynInst::load(Addr(0x1000), PhysReg::int(1), LoadFormat::WORD);
        let ld2 = DynInst::load(Addr(0x1008), PhysReg::int(2), LoadFormat::WORD);
        core.resolve_hazards(&ld1);
        core.execute(&ld1);
        core.tick();
        core.resolve_hazards(&ld2);
        core.execute(&ld2);
        core.tick();
        assert_eq!(core.cache().counters().load_secondary_misses, 1);
        // Using the second register stalls only until the shared fill at 16.
        let use_i = DynInst::branch([Some(PhysReg::int(2)), None]);
        core.resolve_hazards(&use_i);
        core.execute(&use_i);
        core.tick();
        assert_eq!(core.stats().data_dep_stall_cycles, 14); // 2 -> 16
        assert!(!core.scoreboard().is_pending(PhysReg::int(1)), "fill wakes all targets at once");
    }

    #[test]
    fn waw_hazard_stalls() {
        let mut core = engine(mc1());
        let r = PhysReg::int(1);
        let ld = DynInst::load(Addr(0x1000), r, LoadFormat::WORD);
        core.resolve_hazards(&ld);
        core.execute(&ld);
        core.tick();
        // An ALU write to the same register must wait for the fill.
        let clobber = DynInst::alu(r, [None, None]);
        core.resolve_hazards(&clobber);
        core.execute(&clobber);
        core.tick();
        assert_eq!(core.stats().data_dep_stall_cycles, 15);
    }

    #[test]
    fn perfect_cache_never_stalls() {
        let mut cfg = EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Blocking));
        cfg.perfect_cache = true;
        let mut core = Core::new(cfg);
        for i in 0..100u64 {
            let ld = DynInst::load(Addr(i * 64), PhysReg::int((i % 30) as u8), LoadFormat::WORD);
            core.resolve_hazards(&ld);
            core.execute(&ld);
            core.tick();
        }
        assert_eq!(core.stats().total_stall_cycles(), 0);
        assert_eq!(core.now(), Cycle(100));
    }

    #[test]
    fn stores_never_stall_under_write_around() {
        let mut core = engine(mc1());
        for i in 0..50u64 {
            let st = DynInst::store(Addr(i * 4096), None);
            core.resolve_hazards(&st);
            core.execute(&st);
            core.tick();
        }
        assert_eq!(core.stats().total_stall_cycles(), 0);
        assert_eq!(core.stats().stores, 50);
        assert_eq!(core.write_buffer().stats().writes, 50);
    }

    #[test]
    fn nonblocking_write_allocate_never_stalls() {
        let mut cache_cfg = CacheConfig::baseline(MshrConfig::Register(RegisterFileConfig {
            entries: Limit::Finite(4),
            targets: TargetPolicy::explicit(Limit::Unlimited),
            max_outstanding_misses: Limit::Unlimited,
            max_fetches_per_set: Limit::Unlimited,
        }));
        cache_cfg.write_miss = nbl_core::cache::WriteMissPolicy::WriteAllocate;
        let mut core = Core::new(EngineConfig::with_cache(cache_cfg));
        // Distinct sets: one cache size + one line apart.
        for i in 0..4u64 {
            let st = DynInst::store(Addr(i * 8224), None);
            core.resolve_hazards(&st);
            core.execute(&st);
            core.tick();
        }
        assert_eq!(core.stats().total_stall_cycles(), 0, "tracked store misses do not stall");
        assert_eq!(core.stats().nonblocking_store_misses, 4);
        assert_eq!(core.stats().blocking_store_misses, 0);
        // A fifth store miss finds no free MSHR and falls back to blocking.
        let st = DynInst::store(Addr(5 * 8224), None);
        core.resolve_hazards(&st);
        core.execute(&st);
        core.tick();
        assert_eq!(core.stats().blocking_store_misses, 1);
        assert!(core.stats().blocking_stall_cycles > 0);
        core.finish();
        assert_eq!(core.sampler().fetches_now(), 0);
        // After the fills, the lines are resident: stores now hit.
        let st = DynInst::store(Addr(0), None);
        core.resolve_hazards(&st);
        core.execute(&st);
        assert_eq!(core.stats().nonblocking_store_misses, 4, "no new tracked miss");
    }

    #[test]
    fn l2_hits_shorten_the_penalty() {
        use nbl_core::geometry::CacheGeometry;
        let mk = |l2: Option<L2Params>| {
            let mut cfg = EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Blocking));
            cfg.miss_penalty = 30;
            cfg.l2 = l2;
            Core::new(cfg)
        };
        let l2 = L2Params {
            geometry: CacheGeometry::direct_mapped(256 * 1024, 32).unwrap(),
            hit_penalty: 6,
        };

        // Flat hierarchy: every blocking miss costs 30.
        let mut flat = mk(None);
        let a = Addr(0x10000);
        let b = Addr(0x20000); // conflicts with a in the 8KB L1, not in L2
        for addr in [a, b, a] {
            let ld = DynInst::load(addr, PhysReg::int(1), LoadFormat::WORD);
            flat.resolve_hazards(&ld);
            flat.execute(&ld);
            flat.tick();
        }
        assert_eq!(flat.stats().blocking_stall_cycles, 90);

        // Two-level: first touches miss L2 (30 each); the conflict re-miss
        // of `a` hits the L2 and costs only 6.
        let mut two = mk(Some(l2));
        for addr in [a, b, a] {
            let ld = DynInst::load(addr, PhysReg::int(1), LoadFormat::WORD);
            two.resolve_hazards(&ld);
            two.execute(&ld);
            two.tick();
        }
        assert_eq!(two.stats().blocking_stall_cycles, 30 + 30 + 6);
    }

    #[test]
    fn l2_hits_complete_out_of_order_under_nonblocking_l1() {
        use nbl_core::geometry::CacheGeometry;
        let mut cfg = EngineConfig::with_cache(CacheConfig::baseline(MshrConfig::Register(
            RegisterFileConfig {
                entries: Limit::Finite(4),
                targets: TargetPolicy::explicit(Limit::Unlimited),
                max_outstanding_misses: Limit::Unlimited,
                max_fetches_per_set: Limit::Unlimited,
            },
        )));
        cfg.miss_penalty = 30;
        cfg.l2 = Some(L2Params {
            geometry: CacheGeometry::direct_mapped(256 * 1024, 32).unwrap(),
            hit_penalty: 6,
        });
        let mut core = Core::new(cfg);
        let a = Addr(0x10000);
        let b = Addr(0x20000);
        // Warm the L2 with `a` (L1 conflict evicts it from L1 via `b`).
        for addr in [a, b] {
            let ld = DynInst::load(addr, PhysReg::int(1), LoadFormat::WORD);
            core.resolve_hazards(&ld);
            core.execute(&ld);
            core.tick();
        }
        core.finish();
        let t0 = core.now();
        // Now: `b` is L1-resident; `a` was evicted but lives in L2. Issue a
        // long L2-missing load (new line) then the L2-hitting reload of `a`:
        // the later fetch finishes first and wakes its register first.
        let c = DynInst::load(Addr(0x40000), PhysReg::int(2), LoadFormat::WORD);
        core.resolve_hazards(&c);
        core.execute(&c);
        core.tick();
        let r = DynInst::load(a, PhysReg::int(3), LoadFormat::WORD);
        core.resolve_hazards(&r);
        core.execute(&r);
        core.tick();
        // Use the L2-hit result: it arrives ~6 cycles after issue even
        // though the L2-missing fetch is still outstanding.
        let use_r = DynInst::branch([Some(PhysReg::int(3)), None]);
        core.resolve_hazards(&use_r);
        core.execute(&use_r);
        let waited = core.now().since(t0);
        assert!(waited < 12, "L2 hit must not wait behind the L2 miss (waited {waited})");
        assert!(core.scoreboard().is_pending(PhysReg::int(2)), "the long fetch is still in flight");
        core.finish();
    }

    #[test]
    fn finish_drains_outstanding_fills() {
        let mut core = engine(mc1());
        let ld = DynInst::load(Addr(0x1000), PhysReg::int(1), LoadFormat::WORD);
        core.resolve_hazards(&ld);
        core.execute(&ld);
        core.tick();
        core.finish();
        assert_eq!(core.sampler().misses_now(), 0);
        assert_eq!(core.sampler().fetches_now(), 0);
    }
}
