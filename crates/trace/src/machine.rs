//! The compiled (post-scheduling, post-register-allocation) program
//! representation that the executor runs.
//!
//! `nbl-sched` lowers each IR [`crate::ir::Block`] into a [`MachineBlock`]:
//! the same operations, reordered for a target load latency, rewritten over
//! *physical* registers, possibly with spill stores/reloads inserted.

use crate::ir::{AddrPattern, PatternId, ScriptNode};
use nbl_core::inst::DynInst;
use nbl_core::types::{LoadFormat, PhysReg};

/// One machine operation over physical registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineOp {
    /// Load the next address of `pattern` into `dst`.
    Load {
        /// Destination register.
        dst: PhysReg,
        /// Address stream.
        pattern: PatternId,
        /// Width / sign extension.
        format: LoadFormat,
        /// Register the address depends on, if any.
        addr_src: Option<PhysReg>,
    },
    /// Store to the next address of `pattern`.
    Store {
        /// Address stream.
        pattern: PatternId,
        /// Register holding the stored value, if any.
        data: Option<PhysReg>,
        /// Register the address depends on, if any.
        addr_src: Option<PhysReg>,
    },
    /// Single-cycle computation.
    Alu {
        /// Destination register.
        dst: PhysReg,
        /// Operands.
        srcs: [Option<PhysReg>; 2],
    },
    /// Branch / compare.
    Branch {
        /// Operands.
        srcs: [Option<PhysReg>; 2],
    },
}

impl MachineOp {
    /// `true` for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, MachineOp::Load { .. })
    }

    /// `true` for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, MachineOp::Store { .. })
    }

    /// The register written, if any.
    pub fn dst(&self) -> Option<PhysReg> {
        match self {
            MachineOp::Load { dst, .. } | MachineOp::Alu { dst, .. } => Some(*dst),
            _ => None,
        }
    }
}

/// A scheduled, register-allocated basic block.
#[derive(Debug, Clone, Default, Hash)]
pub struct MachineBlock {
    /// Operations in final schedule order.
    pub ops: Vec<MachineOp>,
    /// Spill operations inserted by register allocation (loads + stores),
    /// for reporting (the paper's Fig. 4 reference-count variation).
    pub spill_ops: usize,
}

impl MachineBlock {
    /// Counts (loads, stores, other) in one execution.
    pub fn op_mix(&self) -> (usize, usize, usize) {
        let loads = self.ops.iter().filter(|o| o.is_load()).count();
        let stores = self.ops.iter().filter(|o| o.is_store()).count();
        (loads, stores, self.ops.len() - loads - stores)
    }
}

/// A fully compiled program: machine blocks + (possibly extended) pattern
/// table + the unchanged script.
#[derive(Debug, Clone, Hash)]
pub struct CompiledProgram {
    /// Benchmark name.
    pub name: String,
    /// Scheduled load latency this program was compiled for.
    pub load_latency: u32,
    /// Pattern table (the IR table plus compiler-added spill slots).
    pub patterns: Vec<AddrPattern>,
    /// Compiled blocks, same indices as the IR program.
    pub blocks: Vec<MachineBlock>,
    /// Control structure.
    pub script: Vec<ScriptNode>,
}

impl CompiledProgram {
    /// Total dynamic instructions this program will execute.
    pub fn dynamic_instructions(&self) -> u64 {
        let per_block: Vec<u64> = self.blocks.iter().map(|b| b.ops.len() as u64).collect();
        fn walk(nodes: &[ScriptNode], per_block: &[u64], mult: u64) -> u64 {
            nodes
                .iter()
                .map(|n| match n {
                    ScriptNode::Run { block, times } => mult * times * per_block[block.0 as usize],
                    ScriptNode::Loop { body, trips } => walk(body, per_block, mult * trips),
                })
                .sum()
        }
        walk(&self.script, &per_block, 1)
    }

    /// Dynamic (loads, stores, other) across the whole run.
    pub fn dynamic_mix(&self) -> (u64, u64, u64) {
        let mixes: Vec<(u64, u64, u64)> = self
            .blocks
            .iter()
            .map(|b| {
                let (l, s, o) = b.op_mix();
                (l as u64, s as u64, o as u64)
            })
            .collect();
        fn walk(nodes: &[ScriptNode], mixes: &[(u64, u64, u64)], mult: u64) -> (u64, u64, u64) {
            let mut acc = (0, 0, 0);
            for n in nodes {
                let (l, s, o) = match n {
                    ScriptNode::Run { block, times } => {
                        let m = mixes[block.0 as usize];
                        (mult * times * m.0, mult * times * m.1, mult * times * m.2)
                    }
                    ScriptNode::Loop { body, trips } => walk(body, mixes, mult * trips),
                };
                acc.0 += l;
                acc.1 += s;
                acc.2 += o;
            }
            acc
        }
        walk(&self.script, &mixes, 1)
    }
}

/// Consumer of the dynamic instruction stream produced by the executor.
///
/// `nbl-sim` implements this for the single- and dual-issue processors;
/// tests implement it with plain collectors.
pub trait InstSink {
    /// Executes one dynamic instruction.
    fn exec(&mut self, inst: DynInst);
}

impl InstSink for Vec<DynInst> {
    fn exec(&mut self, inst: DynInst) {
        self.push(inst);
    }
}

/// An [`InstSink`] that only counts, for cheap dry runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Instructions observed.
    pub instructions: u64,
    /// Loads observed.
    pub loads: u64,
    /// Stores observed.
    pub stores: u64,
}

impl InstSink for CountingSink {
    fn exec(&mut self, inst: DynInst) {
        self.instructions += 1;
        if inst.is_load() {
            self.loads += 1;
        } else if inst.is_store() {
            self.stores += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BlockId;
    use nbl_core::types::Addr;

    #[test]
    fn machine_op_accessors() {
        let ld = MachineOp::Load {
            dst: PhysReg::int(1),
            pattern: PatternId(0),
            format: LoadFormat::WORD,
            addr_src: None,
        };
        assert!(ld.is_load());
        assert_eq!(ld.dst(), Some(PhysReg::int(1)));
        let st = MachineOp::Store {
            pattern: PatternId(0),
            data: None,
            addr_src: None,
        };
        assert!(st.is_store());
        assert_eq!(st.dst(), None);
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.exec(DynInst::load(Addr(0), PhysReg::int(0), LoadFormat::WORD));
        s.exec(DynInst::store(Addr(8), None));
        s.exec(DynInst::branch([None, None]));
        assert_eq!(
            s,
            CountingSink {
                instructions: 3,
                loads: 1,
                stores: 1
            }
        );
    }

    #[test]
    fn dynamic_counting() {
        let block = MachineBlock {
            ops: vec![
                MachineOp::Load {
                    dst: PhysReg::int(0),
                    pattern: PatternId(0),
                    format: LoadFormat::WORD,
                    addr_src: None,
                },
                MachineOp::Alu {
                    dst: PhysReg::int(1),
                    srcs: [Some(PhysReg::int(0)), None],
                },
                MachineOp::Branch { srcs: [None, None] },
            ],
            spill_ops: 0,
        };
        let p = CompiledProgram {
            name: "t".into(),
            load_latency: 1,
            patterns: vec![],
            blocks: vec![block],
            script: vec![ScriptNode::Loop {
                body: vec![ScriptNode::Run {
                    block: BlockId(0),
                    times: 2,
                }],
                trips: 10,
            }],
        };
        assert_eq!(p.dynamic_instructions(), 60);
        assert_eq!(p.dynamic_mix(), (20, 0, 40));
    }
}
