//! `ear` — human-ear (cochlea) model: cascaded second-order filters over
//! an audio stream (SPEC92 CFP).
//!
//! The filter state is small and hot; only the audio input streams.
//! Misses are therefore rare (the lowest MCPI of the FP suite) and what
//! few there are overlap easily (Fig. 13: 0.094 blocking → 0.048
//! unrestricted, with `mc=2` already optimal).

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("ear");
    // Audio samples: streaming, but only one load per filter cascade.
    let audio = pb.pattern(AddrPattern::Strided {
        base: layout::region(0, 0),
        elem_bytes: 4,
        stride: 1,
        length: 256 * 1024,
    });
    // Filter coefficient/state banks: 4 KB, resident.
    let coeffs = pb.pattern(AddrPattern::Strided {
        base: layout::region(1, 512),
        elem_bytes: 8,
        stride: 3,
        length: 256,
    });
    let state = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 5632),
        elem_bytes: 8,
        stride: 1,
        length: 256,
    });
    let state_wr = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 5632),
        elem_bytes: 8,
        stride: 1,
        length: 256,
    });
    let out = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 1024),
        elem_bytes: 8,
        stride: 1,
        length: 128 * 1024,
    });

    // One cascade stage: sample in, filter arithmetic over hot state,
    // state write-back.
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    let x = b.load(audio, RegClass::Fp, LoadFormat::WORD);
    for _ in 0..3 {
        let c1 = b.load(coeffs, RegClass::Fp, LoadFormat::DOUBLE);
        let c2 = b.load(coeffs, RegClass::Fp, LoadFormat::DOUBLE);
        let s = b.load(state, RegClass::Fp, LoadFormat::DOUBLE);
        let t1 = b.alu(RegClass::Fp, Some(x), Some(c1));
        let t2 = b.alu(RegClass::Fp, Some(t1), Some(s));
        let t3 = b.alu(RegClass::Fp, Some(t2), Some(c2));
        let t4 = b.alu_chain(RegClass::Fp, t3, 3);
        b.store(state_wr, Some(t4));
    }
    b.store(out, Some(x));
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let stage = b.finish();

    let trips = scale.trips(34);
    pb.run(stage, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_is_mostly_resident() {
        let p = build(Scale::quick());
        // Coefficient and state banks fit comfortably in 8 KB.
        let resident_bytes: u64 = p
            .patterns
            .iter()
            .filter_map(|pt| match pt {
                AddrPattern::Strided {
                    elem_bytes, length, ..
                } if *length <= 1024 => Some(u64::from(*elem_bytes) * length),
                _ => None,
            })
            .sum();
        assert!(resident_bytes < 8 * 1024);
        let (loads, stores, _) = p.blocks[0].op_mix();
        assert_eq!(loads, 10);
        assert_eq!(stores, 4);
    }
}
