//! `spice2g6` — analog circuit simulation (SPEC92 CFP).
//!
//! Dominated by sparse-matrix LU factorization over linked row/column
//! structures: each element's address comes from the *previous* element's
//! pointer, so the value loads form a serial chain that no MSHR
//! organization can overlap. Fig. 13: 1.092 blocking vs 0.891
//! unrestricted — only a 1.2× spread despite the high absolute MCPI.
//!
//! Model: a pointer chase through a sparse-matrix arena far larger than
//! the cache (the element chain), a dependent solution-vector probe, a
//! hitting column-index stream, and a short FP update per element.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("spice2g6");
    // Matrix elements: 512 KB of 32-byte (value + next-pointer) records,
    // chased in linked order — essentially always missing, always serial.
    let elements = pb.pattern(AddrPattern::Chase {
        base: layout::region(0, 0),
        node_bytes: 32,
        nodes: 16 * 1024,
        field_offset: 0,
        seed: 0x591c,
    });
    // Solution vector: 8 KB — exactly cache-sized, conflict-prone.
    let xvec = pb.pattern(AddrPattern::Gather {
        base: layout::region(1, 0),
        elem_bytes: 8,
        length: 512, // 4 KB
        seed: 0x591e,
    });
    // Column indices: streamed, mostly hitting.
    let colidx = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 2048),
        elem_bytes: 4,
        stride: 1,
        length: 128 * 1024,
    });
    let out = pb.pattern(AddrPattern::Strided {
        base: layout::region(3, 4096),
        elem_bytes: 8,
        stride: 1,
        length: 64 * 1024,
    });

    // One elimination step: follow the element chain, probe x[col], update
    // the row accumulator — all hanging off the chase pointer.
    let mut b = pb.block();
    let ptr = b.carried(RegClass::Int);
    let acc = b.carried(RegClass::Fp);
    b.chase(elements, ptr, LoadFormat::DOUBLE);
    let x = b.load_via(xvec, ptr, RegClass::Fp, LoadFormat::DOUBLE);
    let idx = b.load(colidx, RegClass::Int, LoadFormat::WORD);
    let prod = b.alu(RegClass::Fp, Some(x), Some(acc));
    let upd = b.alu(RegClass::Fp, Some(prod), Some(acc));
    b.alu_into(acc, Some(upd), Some(acc));
    let guard = b.alu(RegClass::Int, Some(idx), None);
    b.branch(Some(guard));
    let t = b.alu_chain(RegClass::Int, guard, 10);
    b.store(out, Some(acc));
    b.branch(Some(t));
    let eliminate = b.finish();

    let trips = scale.trips(21);
    pb.run(eliminate, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrOp;

    #[test]
    fn serial_chain_structure() {
        let p = build(Scale::quick());
        // First op is the chase; the x probe depends on its pointer.
        match p.blocks[0].ops[0] {
            IrOp::Load { dst, addr_src, .. } => assert_eq!(Some(dst), addr_src),
            _ => panic!("first op is the chase"),
        }
        match p.blocks[0].ops[1] {
            IrOp::Load { addr_src, .. } => assert!(addr_src.is_some()),
            _ => panic!("second op probes x via the pointer"),
        }
    }

    #[test]
    fn element_arena_never_fits() {
        let p = build(Scale::quick());
        match p.patterns[0] {
            AddrPattern::Chase {
                node_bytes, nodes, ..
            } => {
                assert!(u64::from(node_bytes) * nodes >= 64 * 8 * 1024);
            }
            _ => panic!(),
        }
    }
}
