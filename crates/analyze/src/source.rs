//! Source-file handling: loading, byte-offset → line/column mapping, and
//! the repo-relative paths diagnostics are reported against.

use std::path::{Path, PathBuf};

/// One loaded source file with a precomputed line index.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root, with `/` separators — the
    /// stable form used in diagnostics, scopes and the allowlist.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Full file contents.
    pub text: String,
    /// Byte offset of the start of each line (line 1 starts at offset 0).
    line_starts: Vec<usize>,
}

/// A 1-based line/column position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes; the sources are ASCII-dominated).
    pub col: u32,
}

impl SourceFile {
    /// Loads `abs` and remembers it under the repo-relative `rel`.
    pub fn load(root: &Path, abs: &Path) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(abs)?;
        Ok(SourceFile::from_text(root, abs, text))
    }

    /// Builds a source file from already-read text (used by the fixture
    /// tests to analyze in-memory snippets).
    pub fn from_text(root: &Path, abs: &Path, text: String) -> SourceFile {
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(abs)
            .to_string_lossy()
            .replace('\\', "/");
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            rel_path: rel,
            abs_path: abs.to_path_buf(),
            text,
            line_starts,
        }
    }

    /// The 1-based line/column of a byte offset.
    pub fn pos(&self, offset: usize) -> Pos {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Pos {
            line: (line + 1) as u32,
            col: (offset - self.line_starts[line] + 1) as u32,
        }
    }

    /// The 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> u32 {
        self.pos(offset).line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_are_one_based() {
        let f = SourceFile::from_text(
            Path::new("/r"),
            Path::new("/r/a.rs"),
            "ab\ncd\n".to_string(),
        );
        assert_eq!(f.rel_path, "a.rs");
        assert_eq!(f.pos(0), Pos { line: 1, col: 1 });
        assert_eq!(f.pos(1), Pos { line: 1, col: 2 });
        assert_eq!(f.pos(3), Pos { line: 2, col: 1 });
        assert_eq!(f.pos(5), Pos { line: 2, col: 3 });
    }
}
