//! Synthetic stand-ins for the 18 SPEC92 benchmarks the paper simulates.
//!
//! The paper ran the real SPEC92 suite through an object-code translation
//! system; we cannot (proprietary code, Multiflow compiler, 370 days of
//! simulation), so each benchmark is replaced by a generator that produces
//! a program with the same *qualitative* memory behaviour at the paper's
//! 8 KB-cache scale: the same kind of address streams (dense FP stencils,
//! pointer chasing, gathers, bit-vector scans), the same load/store/compute
//! mix, and the same dependence structure (which determines how much miss
//! latency scheduling can hide). See DESIGN.md §2 for the substitution
//! argument and §7 for the per-benchmark notes.
//!
//! Every generator is deterministic: a fixed seed per benchmark, no
//! ambient randomness.

mod alvinn;
mod compress;
mod doduc;
mod ear;
mod eqntott;
mod espresso;
mod fpppp;
mod hydro2d;
mod mdljdp2;
mod mdljsp2;
mod nasa7;
mod ora;
mod spice2g6;
mod su2cor;
mod swm256;
mod tomcatv;
mod wave5;
mod xlisp;

use crate::ir::Program;

/// All 18 benchmark names, in the order of the paper's Fig. 13.
pub const ALL: [&str; 18] = [
    "alvinn", "doduc", "ear", "fpppp", "hydro2d", "mdljdp2", "mdljsp2", "nasa7", "ora", "su2cor",
    "swm256", "spice2g6", "tomcatv", "wave5", "compress", "eqntott", "espresso", "xlisp",
];

/// The five benchmarks the paper discusses in detail (Fig. 4).
pub const DETAILED_FIVE: [&str; 5] = ["doduc", "eqntott", "su2cor", "tomcatv", "xlisp"];

/// The integer benchmarks (the bottom group of Fig. 13).
pub const INTEGER: [&str; 4] = ["compress", "eqntott", "espresso", "xlisp"];

/// `true` if `name` is one of the integer benchmarks.
pub fn is_integer(name: &str) -> bool {
    INTEGER.contains(&name)
}

/// Workload sizing. The real SPEC92 runs execute billions of instructions;
/// MCPI is a steady-state ratio, so scaled-down loop kernels converge to
/// the same per-configuration behaviour within a few hundred thousand
/// instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Approximate dynamic instructions the generated program executes.
    pub instr_target: u64,
}

impl Scale {
    /// Full experiment scale (~400 k instructions).
    pub fn full() -> Scale {
        Scale {
            instr_target: 400_000,
        }
    }

    /// Quick scale for tests (~40 k instructions).
    pub fn quick() -> Scale {
        Scale {
            instr_target: 40_000,
        }
    }

    /// Trip count that yields roughly `instr_target` instructions for a
    /// loop whose body executes `per_trip` instructions.
    pub(crate) fn trips(&self, per_trip: u64) -> u64 {
        (self.instr_target / per_trip.max(1)).max(1)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::full()
    }
}

/// Builds the named benchmark at the given scale.
///
/// Returns `None` for unknown names; `ALL` lists the valid ones.
pub fn build(name: &str, scale: Scale) -> Option<Program> {
    let p = match name {
        "alvinn" => alvinn::build(scale),
        "compress" => compress::build(scale),
        "doduc" => doduc::build(scale),
        "ear" => ear::build(scale),
        "eqntott" => eqntott::build(scale),
        "espresso" => espresso::build(scale),
        "fpppp" => fpppp::build(scale),
        "hydro2d" => hydro2d::build(scale),
        "mdljdp2" => mdljdp2::build(scale),
        "mdljsp2" => mdljsp2::build(scale),
        "nasa7" => nasa7::build(scale),
        "ora" => ora::build(scale),
        "spice2g6" => spice2g6::build(scale),
        "su2cor" => su2cor::build(scale),
        "swm256" => swm256::build(scale),
        "tomcatv" => tomcatv::build(scale),
        "wave5" => wave5::build(scale),
        "xlisp" => xlisp::build(scale),
        _ => return None,
    };
    Some(p)
}

/// Address-space layout shared by the generators: every data region lives
/// in its own 16 MB slot so regions never alias unless a generator aligns
/// them on purpose (su2cor does, to provoke same-set conflict fetches).
pub(crate) mod layout {
    /// Size of one region slot.
    pub const SLOT: u64 = 16 << 20;

    /// Base address of region `i`, offset by `align_offset` bytes.
    ///
    /// With the paper's 8 KB direct-mapped cache, two regions whose bases
    /// differ by a multiple of 8192 map their equal indices to the same
    /// cache set; `region(i, 0)` guarantees exactly that (SLOT is a
    /// multiple of 8 KB), so generators wanting conflict-free layouts pass
    /// distinct small `align_offset`s.
    pub const fn region(i: u64, align_offset: u64) -> u64 {
        // Keep clear of address 0 so no pattern produces a null-ish address.
        (i + 1) * SLOT + align_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::machine::{CountingSink, InstSink};
    use nbl_core::inst::DynInst;
    use std::collections::HashSet;

    /// Compile-free smoke execution: lower the IR blocks with a trivial
    /// in-order identity schedule for testing (real lowering lives in
    /// nbl-sched). Here we only check the *programs*: that they build,
    /// that they hit their instruction budget, and that their mixes are
    /// sane.
    fn naive_compile(p: &Program) -> crate::machine::CompiledProgram {
        use crate::ir::IrOp;
        use crate::machine::{MachineBlock, MachineOp};
        use nbl_core::types::{PhysReg, RegClass};
        let blocks = p
            .blocks
            .iter()
            .map(|b| {
                // Identity mapping: vreg i -> r(i%30)/f(i%30); fine for
                // structure tests (timing is not interpreted here).
                let map = |v: crate::ir::VirtReg| match b.class_of(v) {
                    RegClass::Int => PhysReg::int((v.0 % 30) as u8),
                    RegClass::Fp => PhysReg::fp((v.0 % 30) as u8),
                };
                let ops = b
                    .ops
                    .iter()
                    .map(|op| match *op {
                        IrOp::Load {
                            dst,
                            pattern,
                            format,
                            addr_src,
                        } => MachineOp::Load {
                            dst: map(dst),
                            pattern,
                            format,
                            addr_src: addr_src.map(map),
                        },
                        IrOp::Store {
                            pattern,
                            data,
                            addr_src,
                        } => MachineOp::Store {
                            pattern,
                            data: data.map(map),
                            addr_src: addr_src.map(map),
                        },
                        IrOp::Alu { dst, srcs } => MachineOp::Alu {
                            dst: map(dst),
                            srcs: srcs.map(|s| s.map(map)),
                        },
                        IrOp::Branch { srcs } => MachineOp::Branch {
                            srcs: srcs.map(|s| s.map(map)),
                        },
                    })
                    .collect();
                MachineBlock { ops, spill_ops: 0 }
            })
            .collect();
        crate::machine::CompiledProgram {
            name: p.name.clone(),
            load_latency: 1,
            patterns: p.patterns.clone(),
            blocks,
            script: p.script.clone(),
        }
    }

    #[test]
    fn all_benchmarks_build_and_run() {
        for name in ALL {
            let p = build(name, Scale::quick()).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(p.name, name);
            p.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let compiled = naive_compile(&p);
            let mut sink = CountingSink::default();
            Executor::new(&compiled).run(&mut sink);
            let target = Scale::quick().instr_target;
            assert!(
                sink.instructions >= target / 2 && sink.instructions <= target * 3,
                "{name}: {} instructions vs target {target}",
                sink.instructions
            );
            assert!(sink.loads > 0, "{name} has loads");
            assert!(
                sink.loads * 100 / sink.instructions >= 2,
                "{name}: load fraction too small"
            );
        }
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(build("nonesuch", Scale::quick()).is_none());
    }

    #[test]
    fn integer_classification() {
        assert!(is_integer("xlisp"));
        assert!(is_integer("eqntott"));
        assert!(!is_integer("tomcatv"));
        for b in INTEGER {
            assert!(ALL.contains(&b));
        }
        for b in DETAILED_FIVE {
            assert!(ALL.contains(&b));
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for name in ["doduc", "xlisp", "compress"] {
            let p1 = naive_compile(&build(name, Scale::quick()).unwrap());
            let p2 = naive_compile(&build(name, Scale::quick()).unwrap());
            let mut s1: Vec<DynInst> = Vec::new();
            let mut s2: Vec<DynInst> = Vec::new();
            Executor::new(&p1).run(&mut s1);
            Executor::new(&p2).run(&mut s2);
            assert_eq!(s1, s2, "{name} must replay identically");
        }
    }

    #[test]
    fn regions_do_not_alias() {
        let mut seen = HashSet::new();
        for i in 0..32 {
            let base = layout::region(i, 0);
            assert!(base > 0);
            assert!(seen.insert(base / layout::SLOT));
        }
    }

    /// Every address a workload generates must stay inside its region slot,
    /// otherwise two benchmarks' tuning would interact.
    #[test]
    fn workload_addresses_stay_in_regions() {
        for name in ALL {
            let p = build(name, Scale::quick()).unwrap();
            let compiled = naive_compile(&p);
            struct Checker {
                max: u64,
            }
            impl InstSink for Checker {
                fn exec(&mut self, inst: DynInst) {
                    if let nbl_core::inst::DynKind::Load { addr, .. }
                    | nbl_core::inst::DynKind::Store { addr } = inst.kind
                    {
                        self.max = self.max.max(addr.0);
                    }
                }
            }
            let mut c = Checker { max: 0 };
            Executor::new(&compiled).run(&mut c);
            assert!(c.max < 64 * layout::SLOT, "{name} escapes the layout");
        }
    }
}
