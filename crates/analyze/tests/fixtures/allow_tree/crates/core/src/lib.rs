//! Fixture: one carried doc-coverage finding and nothing else.

pub fn carried() {}
