//! Tape-replay equivalence guard for the record-once/replay-many backend.
//!
//! `run_compiled` serves the dynamic stream from a recorded [`TraceTape`]
//! instead of re-walking the compiled script through the `Executor`; this
//! suite pins that the swap is invisible: every metric of every
//! [`RunResult`] is bit-identical between the replay and interpreter
//! paths, on the same 72-cell golden grid `refactor_equivalence.rs` pins
//! against the pre-port engine, plus one workload per family and the
//! dual-issue driver.

use nonblocking_loads::sched::compile::compile;
use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::{
    run_compiled, run_compiled_interpreted, run_dual_compiled, run_dual_compiled_interpreted,
};
use nonblocking_loads::trace::machine::CompiledProgram;
use nonblocking_loads::trace::tape::{barrier_index, barrier_is_mem, TraceTape};
use nonblocking_loads::trace::workloads::{build, Scale};

/// The Fig. 13 hardware configurations of the 72-row golden grid.
const GOLDEN_CONFIGS: [HwConfig; 6] = [
    HwConfig::Mc0,
    HwConfig::Mc(1),
    HwConfig::Mc(2),
    HwConfig::Fc(1),
    HwConfig::Fc(2),
    HwConfig::NoRestrict,
];

/// The paper's scheduled load latencies.
const LATENCIES: [u32; 6] = [1, 2, 3, 6, 10, 20];

fn compiled(name: &str, latency: u32) -> CompiledProgram {
    let p = build(name, Scale::quick()).unwrap();
    compile(&p, latency).unwrap()
}

/// Replay must be indistinguishable from interpretation on the exact grid
/// the refactor-equivalence goldens pin: 2 benchmarks × 6 configurations
/// × 6 latencies, full `RunResult` equality (every field, bit for bit).
#[test]
fn tape_replay_matches_interpreter_on_every_golden_cell() {
    for bench in ["eqntott", "tomcatv"] {
        for lat in LATENCIES {
            let c = compiled(bench, lat);
            for hw in &GOLDEN_CONFIGS {
                let cfg = SimConfig::baseline(hw.clone()).at_latency(lat);
                let replayed = run_compiled(bench, &c, &cfg).unwrap();
                let interpreted = run_compiled_interpreted(bench, &c, &cfg).unwrap();
                assert_eq!(
                    replayed,
                    interpreted,
                    "{bench} [{}] latency {lat}: tape replay diverged",
                    hw.label()
                );
            }
        }
    }
}

/// One benchmark per workload family, run under the two configurations
/// the golden grid does not cover (blocking + write-miss allocate, and
/// the in-cache MSHR organization) as well as the unrestricted one.
#[test]
fn tape_replay_matches_interpreter_per_workload_family() {
    // integer / pointer-chase / FP-streaming / FP-mixed archetypes.
    for bench in ["eqntott", "xlisp", "tomcatv", "doduc"] {
        for lat in [2, 10] {
            let c = compiled(bench, lat);
            for hw in [HwConfig::Mc0Wma, HwConfig::InCache, HwConfig::NoRestrict] {
                let cfg = SimConfig::baseline(hw.clone()).at_latency(lat);
                let replayed = run_compiled(bench, &c, &cfg).unwrap();
                let interpreted = run_compiled_interpreted(bench, &c, &cfg).unwrap();
                assert_eq!(
                    replayed,
                    interpreted,
                    "{bench} [{}] latency {lat}: tape replay diverged",
                    hw.label()
                );
            }
        }
    }
}

/// The recorded tape's structure matches the program it came from: entry
/// count, load/store mix, ascending barrier indices, and a mem flag on
/// exactly the memory-operation barriers.
#[test]
fn recorded_tapes_are_structurally_sound_for_every_family() {
    for bench in ["eqntott", "xlisp", "tomcatv", "doduc"] {
        let c = compiled(bench, 6);
        let tape = TraceTape::record(&c);
        assert_eq!(tape.len() as u64, c.dynamic_instructions(), "{bench}");
        let (loads, stores, _) = c.dynamic_mix();
        assert_eq!(tape.loads(), loads, "{bench}");
        assert_eq!(tape.stores(), stores, "{bench}");
        let mut prev = None;
        for &entry in tape.barriers() {
            let i = barrier_index(entry);
            assert!(prev < Some(i), "{bench}: barrier indices must ascend");
            prev = Some(i);
            assert_eq!(
                barrier_is_mem(entry),
                tape.is_mem(i),
                "{bench}: barrier {i} mem flag disagrees with its kind"
            );
        }
        // Every memory operation must appear in the barrier index (a mem
        // op always touches the memory system, so replay may never skip
        // one in a bulk free-run).
        let mem_ops = (0..tape.len()).filter(|&i| tape.is_mem(i)).count() as u64;
        let mem_barriers = tape
            .barriers()
            .iter()
            .filter(|&&e| barrier_is_mem(e))
            .count() as u64;
        assert_eq!(mem_ops, loads + stores, "{bench}");
        assert_eq!(mem_barriers, mem_ops, "{bench}");
    }
}

/// The dual-issue driver replays both its passes (perfect-cache and real)
/// from one tape; the pair must match the interpreted reference exactly.
#[test]
fn dual_issue_tape_replay_matches_interpreter() {
    for bench in ["eqntott", "doduc"] {
        for hw in [HwConfig::Mc(1), HwConfig::NoRestrict] {
            let c = compiled(bench, 3);
            let cfg = SimConfig::baseline(hw.clone()).at_latency(3);
            let replayed = run_dual_compiled(bench, &c, &cfg).unwrap();
            let interpreted = run_dual_compiled_interpreted(bench, &c, &cfg).unwrap();
            assert_eq!(
                replayed,
                interpreted,
                "{bench} [{}]: dual tape replay diverged",
                hw.label()
            );
        }
    }
}
