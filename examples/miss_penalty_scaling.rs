//! How the memory gap changes the answer: MCPI vs miss penalty.
//!
//! Sweeps the miss penalty from 4 to 128 cycles (the paper's Fig. 18
//! range — effectively "1990 DRAM" through "the coming memory wall") on a
//! streaming workload, and shows that blocking-cache stall time is linear
//! in the penalty while non-blocking organizations start super-linear
//! growth once their overlap capacity is exhausted.
//!
//! ```text
//! cargo run --release --example miss_penalty_scaling [benchmark]
//! ```

use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::sweep::penalty_sweep;
use nonblocking_loads::trace::workloads::{build, Scale};

const PENALTIES: [u32; 6] = [4, 8, 16, 32, 64, 128];

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tomcatv".to_string());
    let program = build(&bench, Scale::full()).expect("known benchmark");
    let configs = [
        HwConfig::Mc0,
        HwConfig::Mc(1),
        HwConfig::Fc(2),
        HwConfig::NoRestrict,
    ];
    let sweep = penalty_sweep(
        &program,
        &SimConfig::baseline(HwConfig::NoRestrict),
        &configs,
        &PENALTIES,
    )
    .expect("workloads compile");

    println!("MCPI vs miss penalty for {bench} (load latency 10)\n");
    print!("{:>14}", "config");
    for p in PENALTIES {
        print!("{p:>9}");
    }
    println!("{:>16}", "growth 16->32");
    for (j, config) in sweep.configs.iter().enumerate() {
        print!("{config:>14}");
        for row in &sweep.rows {
            print!("{:>9.3}", row[j].mcpi);
        }
        let at16 = sweep.at(config, 16).unwrap().mcpi;
        let at32 = sweep.at(config, 32).unwrap().mcpi;
        println!("{:>15.2}x", at32 / at16.max(1e-9));
    }
    println!(
        "\nA growth factor of exactly 2x is linear scaling (the blocking cache);\n\
         anything above it means overlap capacity ran out mid-way — the paper's\n\
         warning that non-blocking gains shrink as the memory gap widens."
    );
}
