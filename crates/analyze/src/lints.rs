//! The token-level lint registry: each lint is a pure function from a
//! [`Scan`] to findings, with a stable ID and a path-prefix scope.
//!
//! Scopes are expressed as repo-relative path prefixes so the fixture
//! corpus under `crates/analyze/tests/fixtures/` (which deliberately
//! contains bad Rust) can never trip the real tree's analysis, and so
//! tests can run a lint against any file explicitly.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::scan::Scan;

/// All lint IDs the analyzer knows, in registry order. `bad-allow` and
/// `allowlist` are meta-lints produced by the driver rather than by a
/// per-file pass, but they are valid IDs for reporting purposes.
pub const LINT_IDS: &[&str] = &[
    "no-panic",
    "determinism",
    "exhaustiveness",
    "event-guard",
    "doc-coverage",
    "bad-allow",
    "allowlist",
];

/// Whether `id` names a known lint.
pub fn known_lint(id: &str) -> bool {
    LINT_IDS.contains(&id)
}

/// Path-prefix scopes for each per-file lint family.
pub mod scope {
    /// Hot-path crates where panicking is forbidden outside tests.
    pub const NO_PANIC: &[&str] = &[
        "crates/core/src/",
        "crates/mem/src/",
        "crates/cpu/src/",
        "crates/trace/src/",
    ];
    /// Crates feeding `RunResult`, JSON emitters or golden CSVs, where
    /// wall-clock reads and unordered iteration would break bit-identical
    /// goldens. `crates/bench` is deliberately excluded: wall-clock
    /// timing is its purpose.
    pub const DETERMINISM: &[&str] = &[
        "crates/core/src/",
        "crates/mem/src/",
        "crates/cpu/src/",
        "crates/trace/src/",
        "crates/sched/src/",
        "crates/sim/src/",
    ];
    /// Crates that may construct or record memory events.
    pub const EVENT_GUARD: &[&str] = &["crates/mem/src/", "crates/cpu/src/"];
    /// The event module itself defines the sink trait and recorders; the
    /// discipline applies everywhere else.
    pub const EVENT_GUARD_EXEMPT: &[&str] = &["crates/mem/src/event.rs"];
    /// Crates whose public API must be documented.
    pub const DOC_COVERAGE: &[&str] = &["crates/core/src/", "crates/mem/src/", "crates/sim/src/"];
}

/// Whether `rel_path` falls under any prefix in `prefixes`.
pub fn in_scope(rel_path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p))
}

/// Runs the given per-file lints on one scan, honoring test regions and
/// inline `nbl-allow` suppressions. `lints` uses the IDs in [`LINT_IDS`].
pub fn check_file(scan: &Scan<'_>, lints: &[&str]) -> Vec<Finding> {
    let mut out = Vec::new();
    for &lint in lints {
        match lint {
            "no-panic" => no_panic(scan, &mut out),
            "determinism" => determinism(scan, &mut out),
            "event-guard" => event_guard(scan, &mut out),
            "doc-coverage" => doc_coverage(scan, &mut out),
            _ => {}
        }
    }
    out
}

/// Pushes `finding` unless it is inside a test region or suppressed by a
/// reasoned `nbl-allow`.
fn push(
    scan: &Scan<'_>,
    out: &mut Vec<Finding>,
    lint: &'static str,
    off: usize,
    item: &str,
    message: String,
) {
    if scan.in_test(off) {
        return;
    }
    let pos = scan.file.pos(off);
    if scan.is_allowed(lint, pos.line) {
        return;
    }
    out.push(Finding {
        lint,
        file: scan.file.rel_path.clone(),
        line: pos.line,
        col: pos.col,
        item: item.to_string(),
        message,
    });
}

/// **no-panic**: forbids `panic!`/`todo!`/`unreachable!` macros and
/// `.unwrap()`/`.expect()` (plus their `_err` twins) in hot-path crates.
/// Errors must flow through `SimError`/`EngineError` so an 864-cell sweep
/// survives one bad cell.
fn no_panic(scan: &Scan<'_>, out: &mut Vec<Finding>) {
    let src = scan.src();
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let word = t.text(src);
        let next = toks.get(i + 1);
        match word {
            "panic" | "todo" | "unreachable" if next.is_some_and(|n| n.is_punct(src, '!')) => {
                push(
                    scan,
                    out,
                    "no-panic",
                    t.off,
                    word,
                    format!(
                        "`{word}!` in hot-path crate; return SimError/EngineError instead \
                             (or add `// nbl-allow(no-panic): <reason>`)"
                    ),
                );
            }
            "unwrap" | "expect" | "unwrap_err" | "expect_err" => {
                let is_method = i > 0
                    && toks[i - 1].is_punct(src, '.')
                    && next.is_some_and(|n| n.is_punct(src, '('));
                if is_method {
                    push(
                        scan,
                        out,
                        "no-panic",
                        t.off,
                        word,
                        format!(
                            "`.{word}()` in hot-path crate; propagate the error \
                             (or add `// nbl-allow(no-panic): <reason>`)"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// **determinism**: forbids wall-clock reads (`Instant`, `SystemTime`)
/// and un-seeded hashed collections (`HashMap`, `HashSet`) in code that
/// feeds `RunResult`, JSON emitters or golden CSVs. Use `FastMap`
/// (fixed-seed) or `BTreeMap` where iteration order can surface.
fn determinism(scan: &Scan<'_>, out: &mut Vec<Finding>) {
    let src = scan.src();
    for t in &scan.tokens {
        if t.kind != TokKind::Ident {
            continue;
        }
        let word = t.text(src);
        let (item, msg): (&str, &str) = match word {
            "Instant" | "SystemTime" => (
                word,
                "wall-clock read on a result path breaks bit-identical goldens; \
                 timing belongs in nbl-bench",
            ),
            "HashMap" | "HashSet" => (
                word,
                "un-seeded std hashing has nondeterministic iteration order; \
                 use nbl_core::hash::FastMap or BTreeMap/BTreeSet",
            ),
            _ => continue,
        };
        push(scan, out, "determinism", t.off, item, msg.to_string());
    }
}

/// **event-guard**: every `MemEvent` emission must go through the
/// zero-cost-when-disabled guard (`MemorySystem::emit`, which null-checks
/// the sink). Constructing a `MemEvent` outside an `emit(...)` argument
/// list, or calling `.record(...)` directly, bypasses the guard and puts
/// allocation/tracing cost on the disabled path.
fn event_guard(scan: &Scan<'_>, out: &mut Vec<Finding>) {
    let src = scan.src();
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let word = t.text(src);
        if word == "MemEvent" {
            // Only constructions (`MemEvent::…`) count; `use` paths and
            // type positions are fine.
            let is_path = toks.get(i + 1).is_some_and(|n| n.is_punct(src, ':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(src, ':'));
            if !is_path {
                continue;
            }
            // `use …::MemEvent::…` or a `match`-arm pattern would not be a
            // construction, but neither occurs at an expression position
            // with an enclosing call; the callee check below covers it.
            if scan.enclosing_callee(i) != Some("emit") {
                // Pattern positions (match arms) have no enclosing call
                // either — recognise them by the `=>` that follows the
                // variant's payload on the same arm. Cheap heuristic:
                // scan forward to the next `,`/`{`/`;`, and treat
                // `=>` before any of those as a pattern.
                let mut k = i + 3;
                let mut pattern = false;
                let mut depth = 0i32;
                while let Some(n) = toks.get(k) {
                    if n.kind == TokKind::Punct {
                        match n.text(src) {
                            "(" | "{" | "[" => depth += 1,
                            ")" | "}" | "]" => {
                                if depth == 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            ";" | "," if depth == 0 => break,
                            // `=>` (match arm) or `= expr` (if-let /
                            // while-let binding) after the payload means
                            // this was a pattern, not a construction.
                            "=" if depth == 0 => {
                                pattern = true;
                                break;
                            }
                            _ => {}
                        }
                    }
                    k += 1;
                }
                if !pattern {
                    push(
                        scan,
                        out,
                        "event-guard",
                        t.off,
                        "MemEvent",
                        "MemEvent constructed outside the `emit(…)` guard; route it \
                         through MemorySystem::emit so tracing stays zero-cost when disabled"
                            .to_string(),
                    );
                }
            }
        } else if word == "record" {
            let is_method = i > 0
                && toks[i - 1].is_punct(src, '.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct(src, '('));
            if is_method {
                push(
                    scan,
                    out,
                    "event-guard",
                    t.off,
                    "record",
                    "direct `.record(…)` on an event sink bypasses the \
                     zero-cost-when-disabled guard; call MemorySystem::emit"
                        .to_string(),
                );
            }
        }
    }
}

/// **doc-coverage**: every `pub` item (fn/struct/enum/trait/type/const/
/// static/mod/macro) in the covered crates needs a doc comment.
/// `pub(...)`-restricted items and `pub use` re-exports are exempt.
/// Existing debt is carried in `scripts/analyze-allow.toml`, which only
/// burns down.
fn doc_coverage(scan: &Scan<'_>, out: &mut Vec<Finding>) {
    let src = scan.src();
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident(src, "pub") {
            continue;
        }
        // Skip `pub(crate)` / `pub(super)` / `pub(in …)` — not public API.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct(src, '(')) {
            continue;
        }
        // The item keyword, skipping `unsafe`/`const`/`async`/`extern`
        // qualifiers (e.g. `pub const fn`, `pub unsafe trait`).
        let mut kw = None;
        while let Some(n) = toks.get(j) {
            if n.kind != TokKind::Ident {
                break;
            }
            let w = n.text(src);
            match w {
                "unsafe" | "async" | "extern" => j += 1,
                "const" | "static" => {
                    // `pub const fn f` → keep scanning; `pub const N` → item.
                    if toks.get(j + 1).is_some_and(|m| m.is_ident(src, "fn")) {
                        j += 1;
                    } else {
                        kw = Some(w);
                        break;
                    }
                }
                "fn" | "struct" | "enum" | "trait" | "type" | "mod" | "union" | "macro" => {
                    kw = Some(w);
                    break;
                }
                "use" | "crate" | "impl" => break,
                _ => break,
            }
        }
        let Some(kw) = kw else { continue };
        let Some(name_tok) = toks.get(j + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        let name = name_tok.text(src);
        // Walk backwards over attributes and ordinary comments looking
        // for a doc comment (or `#[doc…]`) attached to this item.
        let mut documented = false;
        let mut k = i;
        'back: while k > 0 {
            k -= 1;
            let p = toks[k];
            match p.kind {
                TokKind::Comment { doc } => {
                    // Only outer docs (`///`, `/**`) attach to the item;
                    // inner docs (`//!`, `/*!`) document the enclosing
                    // module and must not mask its first item.
                    let text = p.text(src);
                    if doc && !text.starts_with("//!") && !text.starts_with("/*!") {
                        documented = true;
                    }
                    // Ordinary comments between docs and the item are fine.
                    continue;
                }
                TokKind::Punct => {
                    // An attribute group ends with `]`; hop over it.
                    if p.is_punct(src, ']') {
                        let mut depth = 1i32;
                        while k > 0 && depth > 0 {
                            k -= 1;
                            if toks[k].is_punct(src, ']') {
                                depth += 1;
                            } else if toks[k].is_punct(src, '[') {
                                depth -= 1;
                            }
                        }
                        // Check for `#[doc = …]`.
                        if toks.get(k + 1).is_some_and(|n| n.is_ident(src, "doc")) {
                            documented = true;
                        }
                        // Skip the leading `#`.
                        if k > 0 && toks[k - 1].is_punct(src, '#') {
                            k -= 1;
                        }
                        continue;
                    }
                    break 'back;
                }
                _ => break 'back,
            }
        }
        if !documented {
            push(
                scan,
                out,
                "doc-coverage",
                t.off,
                name,
                format!("public {kw} `{name}` has no doc comment"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::Path;

    fn run(text: &str, lints: &[&str]) -> Vec<Finding> {
        let f = SourceFile::from_text(
            Path::new("/r"),
            Path::new("/r/crates/core/src/x.rs"),
            text.to_string(),
        );
        let s = Scan::new(&f);
        check_file(&s, lints)
    }

    #[test]
    fn no_panic_flags_macros_and_methods() {
        let found = run(
            "fn f(x: Option<u32>) -> u32 { if true { panic!(\"boom\") } x.unwrap() }",
            &["no-panic"],
        );
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].item, "panic");
        assert_eq!(found[1].item, "unwrap");
    }

    #[test]
    fn no_panic_ignores_unwrap_or_variants() {
        let found = run(
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default() }",
            &["no-panic"],
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn no_panic_ignores_tests_and_strings() {
        let found = run(
            "#[cfg(test)]\nmod t { fn g() { panic!() } }\nfn f() { let s = \"panic!\"; }",
            &["no-panic"],
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn determinism_flags_hashmap_not_fastmap() {
        let found = run(
            "use std::collections::HashMap;\nfn f() { let m: FastMap<u32, u32> = FastMap::default(); }",
            &["determinism"],
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].item, "HashMap");
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn event_guard_requires_emit() {
        let bad = run(
            "fn f(&mut self) { self.sink.record(&MemEvent::Issued { at: 0 }); }",
            &["event-guard"],
        );
        assert!(bad.iter().any(|f| f.item == "record"));
        let good = run(
            "fn f(&mut self) { self.emit(MemEvent::Issued { at: 0 }); }",
            &["event-guard"],
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn event_guard_skips_match_arms_and_use() {
        let found = run(
            "use nbl_mem::event::MemEvent;\nfn f(e: &MemEvent) { match e { MemEvent::Issued { .. } => {} _ => {} } }",
            &["event-guard"],
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn doc_coverage_flags_undocumented_pub() {
        let found = run(
            "/// Documented.\npub fn a() {}\npub fn b() {}\npub(crate) fn c() {}\npub use other::Thing;\n#[derive(Debug)]\npub struct S;\n",
            &["doc-coverage"],
        );
        let items: Vec<&str> = found.iter().map(|f| f.item.as_str()).collect();
        assert_eq!(items, vec!["b", "S"]);
    }

    #[test]
    fn doc_coverage_sees_docs_past_attributes() {
        let found = run(
            "/// Documented.\n#[derive(Debug, Clone)]\npub struct S { pub x: u32 }\n",
            &["doc-coverage"],
        );
        // The struct is documented; the field `x` is flagged separately
        // only if undocumented — fields are `pub` + ident with no item
        // keyword, so they are skipped entirely.
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let found = run(
            "fn f(x: Option<u32>) -> u32 { x.unwrap() /* nbl-allow(no-panic): invariant upheld by caller */ }",
            &["no-panic"],
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
