//! `alvinn` — neural-network training for autonomous driving (SPEC92 CFP).
//!
//! Forward/backward passes are dot products whose inner loop is *tiny*:
//! load a weight, multiply-accumulate, loop. With basic blocks of a
//! handful of instructions the compiler cannot move a use away from its
//! load no matter what latency it schedules for, so even the unrestricted
//! cache barely beats blocking (Fig. 13: `mc=0` is only 1.35× the
//! unrestricted MCPI) — a scheduling-freedom limit, not a hardware one.
//!
//! Model: a 6-instruction dot-product block (single-precision weight
//! stream + resident activation + serial accumulator) and a small
//! per-neuron epilogue.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program, ScriptNode};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("alvinn");
    // Weight matrix: streams through 512 KB of 4-byte weights.
    let weights = pb.pattern(AddrPattern::Strided {
        base: layout::region(0, 0),
        elem_bytes: 4,
        stride: 1,
        length: 128 * 1024,
    });
    // Input activations: 4 KB, resident.
    let acts = pb.pattern(AddrPattern::Strided {
        base: layout::region(1, 2048),
        elem_bytes: 4,
        stride: 1,
        length: 1024,
    });
    let hidden = pb.pattern(AddrPattern::Strided {
        base: layout::region(2, 4096),
        elem_bytes: 4,
        stride: 1,
        length: 1024,
    });

    // The dot-product inner loop: one element per block. The block is too
    // short for any schedule to separate the weight load from the MAC.
    let mut b = pb.block();
    let i = b.carried(RegClass::Int);
    let sum = b.carried(RegClass::Fp);
    let w = b.load(weights, RegClass::Fp, LoadFormat::WORD);
    let a = b.load(acts, RegClass::Fp, LoadFormat::WORD);
    let prod = b.alu(RegClass::Fp, Some(w), Some(a));
    b.alu_into(sum, Some(prod), Some(sum));
    b.alu_into(i, Some(i), None);
    b.branch(Some(i));
    let dot = b.finish();

    // Per-neuron epilogue: sigmoid + store.
    let mut b = pb.block();
    let sum2 = b.carried(RegClass::Fp);
    let s = b.alu_chain(RegClass::Fp, sum2, 6);
    b.store(hidden, Some(s));
    b.alu_into(sum2, None, None);
    let cmp = b.alu(RegClass::Int, None, None);
    b.branch(Some(cmp));
    let neuron = b.finish();

    let unit = 16 * 6 + 10;
    let trips = scale.trips(unit);
    pb.loop_of(
        trips,
        vec![
            ScriptNode::Run {
                block: dot,
                times: 16,
            },
            ScriptNode::Run {
                block: neuron,
                times: 1,
            },
        ],
    );
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_loop_is_tiny() {
        let p = build(Scale::quick());
        assert!(
            p.blocks[0].ops.len() <= 6,
            "no scheduling freedom in a dot-product step"
        );
        let (loads, _, _) = p.blocks[0].op_mix();
        assert_eq!(loads, 2);
        assert_eq!(p.blocks[0].carried.len(), 2);
    }
}
