//! In-cache MSHR storage (paper §2.3, after Franklin & Sohi).
//!
//! A *transit bit* is added to every cache line. While a line is being
//! fetched, the line's tag holds the fetched address and the line's data
//! array holds the MSHR target information. Consequences faithfully
//! modeled here:
//!
//! * In a direct-mapped cache only **one in-flight primary miss per cache
//!   set** is possible (the set's single line is the MSHR). In an `n`-way
//!   cache up to `n` fetches per set can be in flight.
//! * The victim line is claimed — and its previous contents lost — at
//!   **miss time**, not fill time (the line is needed to store the MSHR
//!   state). `MshrConfig::evicts_on_miss` exposes this to the cache.
//! * The number of MSHRs equals the number of cache lines, so there is no
//!   global entry limit worth modeling.

use super::targets::{TargetPolicy, TargetStorage};
use super::{MissKind, MissRequest, MshrResponse, Rejection, TargetRecord};
use crate::geometry::CacheGeometry;
use crate::hash::FastMap;
use crate::types::BlockAddr;

/// One line-resident in-flight fetch.
#[derive(Debug, Clone)]
struct TransitLine {
    block: BlockAddr,
    targets: TargetStorage,
}

/// Dynamic state of the in-cache MSHR organization.
#[derive(Debug, Clone)]
pub struct InCacheMshr {
    targets_policy: TargetPolicy,
    geometry: CacheGeometry,
    /// Transit lines per set (at most `ways` per set).
    per_set: FastMap<u32, Vec<TransitLine>>,
    /// Block → set reverse index for `fill`/`is_in_transit`.
    by_block: FastMap<BlockAddr, u32>,
    total_misses: usize,
    /// Recycled target storages: every fill returns its line's storage here
    /// and every new primary miss takes one back, so a warmed-up MSHR
    /// allocates nothing on the miss/fill path.
    spare: Vec<TargetStorage>,
}

impl InCacheMshr {
    /// Creates the organization for a cache of the given geometry.
    pub fn new(targets_policy: TargetPolicy, geometry: &CacheGeometry) -> InCacheMshr {
        InCacheMshr {
            targets_policy,
            geometry: *geometry,
            per_set: FastMap::default(),
            by_block: FastMap::default(),
            total_misses: 0,
            spare: Vec::new(),
        }
    }

    /// Clears all dynamic state while keeping every allocation (per-set
    /// vectors, hash-map capacity, recycled target storages) for reuse by
    /// the next run on the same worker.
    pub fn reset(&mut self) {
        for lines in self.per_set.values_mut() {
            for mut line in lines.drain(..) {
                line.targets.clear();
                self.spare.push(line.targets);
            }
        }
        self.by_block.clear();
        self.total_misses = 0;
    }

    /// The target-field layout stored in each transit line.
    pub fn targets_policy(&self) -> TargetPolicy {
        self.targets_policy
    }

    /// Presents a load miss.
    pub fn try_load_miss(&mut self, req: &MissRequest) -> MshrResponse {
        let record = TargetRecord {
            dest: req.dest,
            offset: req.offset,
            format: req.format,
        };
        let lines = self.per_set.entry(req.set).or_default();
        if let Some(line) = lines.iter_mut().find(|l| l.block == req.block) {
            return match line.targets.try_add(record) {
                Ok(()) => {
                    self.total_misses += 1;
                    MshrResponse::Accepted(MissKind::Secondary)
                }
                Err(reason) => MshrResponse::Rejected(reason),
            };
        }
        // A new primary miss needs a line in the set to live in. Lines
        // already in transit cannot be claimed.
        if lines.len() >= self.geometry.ways() as usize {
            return MshrResponse::Rejected(Rejection::PerSetFetchLimit);
        }
        let mut targets = self
            .spare
            .pop()
            .unwrap_or_else(|| TargetStorage::new(self.targets_policy, &self.geometry));
        match targets.try_add(record) {
            Ok(()) => {}
            Err(reason) => {
                self.spare.push(targets);
                return MshrResponse::Rejected(reason);
            }
        }
        lines.push(TransitLine {
            block: req.block,
            targets,
        });
        self.by_block.insert(req.block, req.set);
        self.total_misses += 1;
        MshrResponse::Accepted(MissKind::Primary)
    }

    /// Completes the fetch of `block`.
    pub fn fill(&mut self, block: BlockAddr) -> Vec<TargetRecord> {
        let mut records = Vec::new();
        self.fill_into(block, &mut records);
        records
    }

    /// Completes the fetch of `block`, appending the waiting targets to
    /// `out` — the allocation-free twin of [`InCacheMshr::fill`]: the
    /// line's target storage is recycled for the next primary miss.
    pub fn fill_into(&mut self, block: BlockAddr, out: &mut Vec<TargetRecord>) {
        let Some(set) = self.by_block.remove(&block) else {
            return;
        };
        debug_assert!(self.per_set.contains_key(&set), "by_block tracks per_set");
        let Some(lines) = self.per_set.get_mut(&set) else {
            return;
        };
        let Some(idx) = lines.iter().position(|l| l.block == block) else {
            debug_assert!(false, "by_block tracks per_set");
            return;
        };
        // The emptied per-set vector stays in the map: sets that miss once
        // miss again, and keeping the allocation avoids a free/alloc cycle
        // per fetch.
        let mut line = lines.swap_remove(idx);
        let before = out.len();
        line.targets.drain_into(out);
        self.total_misses -= out.len() - before;
        self.spare.push(line.targets);
    }

    /// `true` if a fetch for `block` is outstanding. Probed on every
    /// access (before the tag array can report a hit), so the common
    /// nothing-in-flight case short-circuits before hashing.
    #[inline]
    pub fn is_in_transit(&self, block: BlockAddr) -> bool {
        !self.by_block.is_empty() && self.by_block.contains_key(&block)
    }

    /// Number of in-flight fetches.
    #[inline]
    pub fn outstanding_fetches(&self) -> usize {
        self.by_block.len()
    }

    /// Number of waiting target records.
    #[inline]
    pub fn outstanding_misses(&self) -> usize {
        self.total_misses
    }

    /// In-flight fetches mapping to `set`.
    #[inline]
    pub fn fetches_in_set(&self, set: u32) -> usize {
        self.per_set.get(&set).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limit::Limit;
    use crate::types::{Dest, LoadFormat, PhysReg};

    fn req(block: u64, set: u32, offset: u32, reg: u8) -> MissRequest {
        MissRequest {
            block: BlockAddr(block),
            set,
            offset,
            dest: Dest::Reg(PhysReg::int(reg)),
            format: LoadFormat::WORD,
        }
    }

    #[test]
    fn direct_mapped_allows_one_fetch_per_set() {
        let geom = CacheGeometry::baseline();
        let mut m = InCacheMshr::new(TargetPolicy::explicit(Limit::Unlimited), &geom);
        assert_eq!(
            m.try_load_miss(&req(0x100, 0, 0, 1)),
            MshrResponse::Accepted(MissKind::Primary)
        );
        // Another block in the same set: the set's only line is in transit.
        assert_eq!(
            m.try_load_miss(&req(0x200, 0, 0, 2)),
            MshrResponse::Rejected(Rejection::PerSetFetchLimit)
        );
        // Secondary misses to the in-transit block merge freely.
        assert_eq!(
            m.try_load_miss(&req(0x100, 0, 8, 3)),
            MshrResponse::Accepted(MissKind::Secondary)
        );
        // A different set is independent.
        assert!(m.try_load_miss(&req(0x101, 1, 0, 4)).is_accepted());
        assert_eq!(m.outstanding_fetches(), 2);
        assert_eq!(m.outstanding_misses(), 3);
        assert_eq!(m.fetches_in_set(0), 1);
        let t = m.fill(BlockAddr(0x100));
        assert_eq!(t.len(), 2);
        assert!(m.try_load_miss(&req(0x200, 0, 0, 2)).is_accepted());
    }

    #[test]
    fn two_way_cache_allows_two_fetches_per_set() {
        let geom = CacheGeometry::new(8 * 1024, 32, 2).unwrap();
        let mut m = InCacheMshr::new(TargetPolicy::explicit(Limit::Unlimited), &geom);
        assert!(m.try_load_miss(&req(0x100, 0, 0, 1)).is_accepted());
        assert!(m.try_load_miss(&req(0x200, 0, 0, 2)).is_accepted());
        assert_eq!(
            m.try_load_miss(&req(0x300, 0, 0, 3)),
            MshrResponse::Rejected(Rejection::PerSetFetchLimit)
        );
        assert_eq!(m.fetches_in_set(0), 2);
    }

    #[test]
    fn limited_targets_reject_like_any_mshr() {
        let geom = CacheGeometry::baseline();
        let mut m = InCacheMshr::new(TargetPolicy::implicit_sub_blocks(4), &geom);
        assert!(m.try_load_miss(&req(0x100, 0, 0, 1)).is_accepted());
        assert_eq!(
            m.try_load_miss(&req(0x100, 0, 4, 2)),
            MshrResponse::Rejected(Rejection::TargetConflict)
        );
    }

    #[test]
    fn fill_unknown_block_is_empty() {
        let geom = CacheGeometry::baseline();
        let mut m = InCacheMshr::new(TargetPolicy::default(), &geom);
        assert!(m.fill(BlockAddr(12)).is_empty());
        assert!(!m.is_in_transit(BlockAddr(12)));
    }
}
