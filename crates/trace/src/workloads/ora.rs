//! `ora` — optical ray tracing through lens assemblies (SPEC92 CFP).
//!
//! Fig. 13's oddity: an MCPI of 1.000 under *every* organization — the
//! misses exist but are perfectly serial, so no amount of non-blocking
//! hardware helps and no load latency hides them. That happens when each
//! load's address depends on the previous load's result and the
//! intervening arithmetic chain consumes the loaded value immediately.
//!
//! Model: a pointer chase through a ring far larger than the cache (every
//! chase misses), with the inter-chase arithmetic forming a single
//! dependent chain seeded by the loaded value — the schedule cannot move
//! the next chase earlier, so the stall per miss is the full penalty
//! regardless of configuration or latency.

use super::{layout, Scale};
use crate::builder::ProgramBuilder;
use crate::ir::{AddrPattern, Program};
use nbl_core::types::{LoadFormat, RegClass};

pub(super) fn build(scale: Scale) -> Program {
    let mut pb = ProgramBuilder::new("ora");
    // Surface description ring: 512 KB of 32-byte nodes — one node per
    // line, never resident.
    let surfaces = pb.pattern(AddrPattern::Chase {
        base: layout::region(0, 0),
        node_bytes: 32,
        nodes: 16 * 1024,
        field_offset: 0,
        seed: 0x02a,
    });
    let tally = pb.pattern(AddrPattern::Fixed {
        addr: layout::region(1, 64),
    });

    let mut b = pb.block();
    let ray = b.carried(RegClass::Int); // current surface pointer
    b.chase(surfaces, ray, LoadFormat::DOUBLE);
    // Intersection arithmetic: a serial chain seeded by the loaded pointer.
    let t = b.alu(RegClass::Fp, Some(ray), None);
    let t2 = b.alu_chain(RegClass::Fp, t, 12);
    b.store(tally, Some(t2));
    b.branch(Some(t2));
    let trace = b.finish();

    let trips = scale.trips(16);
    pb.run(trace, trips);
    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::IrOp;

    #[test]
    fn everything_hangs_off_the_chase() {
        let p = build(Scale::quick());
        let ops = &p.blocks[0].ops;
        // One chase load per 16 instructions.
        assert_eq!(ops.len(), 16);
        let (loads, _, _) = p.blocks[0].op_mix();
        assert_eq!(loads, 1);
        // The first ALU op reads the chase destination directly.
        let chase_dst = ops[0].dst().unwrap();
        match &ops[1] {
            IrOp::Alu { srcs, .. } => assert!(srcs.contains(&Some(chase_dst))),
            _ => panic!(),
        }
    }

    #[test]
    fn ring_never_fits() {
        let p = build(Scale::quick());
        match p.patterns[0] {
            AddrPattern::Chase {
                node_bytes, nodes, ..
            } => {
                assert!(u64::from(node_bytes) * nodes >= 64 * 8 * 1024);
            }
            _ => panic!(),
        }
    }
}
