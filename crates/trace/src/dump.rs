//! Binary trace capture and replay.
//!
//! The paper's infrastructure produced long address traces as a byproduct
//! of object-code instrumentation (cf. Borg et al., "Long Address Traces
//! from RISC Machines"). This module provides the equivalent tooling for
//! our synthetic workloads: a [`TraceWriter`] is a
//! [`crate::machine::InstSink`] that captures the *exact*
//! dynamic instruction stream a processor would execute, and a
//! [`TraceReader`] replays it later — e.g. to drive the simulator from a
//! file, ship a workload without its generator, or diff two compilations.
//!
//! # Format
//!
//! Little-endian, streaming, no seeking required:
//!
//! ```text
//! magic    b"NBLT"
//! version  u16            (currently 1)
//! latency  u32            scheduled load latency the trace was compiled for
//! name     u16 len + utf8 benchmark name
//! records  1-byte opcode then fields:
//!   0x00 Load   dst:u8 src:u8|0xff fmt:u8 addr:u64
//!   0x01 Store  data:u8|0xff asrc:u8|0xff addr:u64
//!   0x02 Alu    dst:u8 src0:u8|0xff src1:u8|0xff
//!   0x03 Branch src0:u8|0xff src1:u8|0xff
//!   0xff End    (count:u64 follows, for integrity checking)
//! ```
//!
//! Registers are encoded by their dense index (0–63), `0xfe` for
//! non-register load destinations never appear (loads always target
//! registers in this machine model).

use crate::machine::InstSink;
use nbl_core::inst::{DynInst, DynKind};
use nbl_core::types::{AccessSize, Addr, LoadFormat, PhysReg};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"NBLT";
const VERSION: u16 = 1;
const OP_LOAD: u8 = 0x00;
const OP_STORE: u8 = 0x01;
const OP_ALU: u8 = 0x02;
const OP_BRANCH: u8 = 0x03;
const OP_END: u8 = 0xff;
const REG_NONE: u8 = 0xff;

/// Errors produced while reading a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not start with the `NBLT` magic.
    BadMagic,
    /// The version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// A record was malformed (bad opcode, bad register, bad format).
    Corrupt(&'static str),
    /// The end marker's instruction count disagrees with what was read.
    CountMismatch {
        /// Count claimed by the end marker.
        expected: u64,
        /// Records actually decoded.
        actual: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not an NBLT trace"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            TraceError::CountMismatch { expected, actual } => {
                write!(f, "trace count mismatch: header {expected}, read {actual}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn encode_reg(r: Option<PhysReg>) -> u8 {
    r.map_or(REG_NONE, |r| r.dense_index() as u8)
}

fn decode_reg(b: u8) -> Result<Option<PhysReg>, TraceError> {
    if b == REG_NONE {
        Ok(None)
    } else if (b as usize) < 64 {
        Ok(Some(PhysReg::from_dense(b as usize)))
    } else {
        Err(TraceError::Corrupt("register index out of range"))
    }
}

fn encode_format(f: LoadFormat) -> u8 {
    let size = match f.size {
        AccessSize::B1 => 0u8,
        AccessSize::B2 => 1,
        AccessSize::B4 => 2,
        AccessSize::B8 => 3,
    };
    size | (u8::from(f.sign_extend) << 2)
}

fn decode_format(b: u8) -> Result<LoadFormat, TraceError> {
    let size = match b & 0b11 {
        0 => AccessSize::B1,
        1 => AccessSize::B2,
        2 => AccessSize::B4,
        _ => AccessSize::B8,
    };
    if b & !0b111 != 0 {
        return Err(TraceError::Corrupt("format bits out of range"));
    }
    Ok(LoadFormat {
        size,
        sign_extend: b & 0b100 != 0,
    })
}

/// Streaming trace capture: plug it in wherever an `InstSink` goes.
///
/// Call [`TraceWriter::finish`] when the stream ends to write the end
/// marker; dropping without finishing leaves a truncated (detectably
/// incomplete) trace.
///
/// # Examples
///
/// ```
/// use nbl_trace::dump::{TraceReader, TraceWriter};
/// use nbl_trace::machine::InstSink;
/// use nbl_core::inst::DynInst;
/// use nbl_core::types::{Addr, LoadFormat, PhysReg};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bytes = Vec::new();
/// let mut writer = TraceWriter::new(&mut bytes, "demo", 10)?;
/// writer.exec(DynInst::load(Addr(0x40), PhysReg::int(1), LoadFormat::WORD));
/// writer.exec(DynInst::alu(PhysReg::int(2), [Some(PhysReg::int(1)), None]));
/// let written = writer.finish()?;
/// let reader = TraceReader::new(&bytes[..])?;
/// assert_eq!(reader.name(), "demo");
/// assert_eq!(reader.collect::<Result<Vec<_>, _>>()?.len() as u64, written);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut out: W, name: &str, load_latency: u32) -> io::Result<TraceWriter<W>> {
        out.write_all(MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        out.write_all(&load_latency.to_le_bytes())?;
        let name_bytes = name.as_bytes();
        let len = u16::try_from(name_bytes.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "name too long"))?;
        out.write_all(&len.to_le_bytes())?;
        out.write_all(name_bytes)?;
        Ok(TraceWriter {
            out,
            written: 0,
            error: None,
        })
    }

    fn write_inst(&mut self, inst: &DynInst) -> io::Result<()> {
        match inst.kind {
            DynKind::Load { addr, dst, format } => {
                self.out.write_all(&[
                    OP_LOAD,
                    encode_reg(Some(dst)),
                    encode_reg(inst.srcs[0]),
                    encode_format(format),
                ])?;
                self.out.write_all(&addr.0.to_le_bytes())?;
            }
            DynKind::Store { addr } => {
                self.out.write_all(&[
                    OP_STORE,
                    encode_reg(inst.srcs[0]),
                    encode_reg(inst.srcs[1]),
                ])?;
                self.out.write_all(&addr.0.to_le_bytes())?;
            }
            DynKind::Alu { dst: Some(d) } => {
                self.out.write_all(&[
                    OP_ALU,
                    encode_reg(Some(d)),
                    encode_reg(inst.srcs[0]),
                    encode_reg(inst.srcs[1]),
                ])?;
            }
            DynKind::Alu { dst: None } => {
                self.out.write_all(&[
                    OP_BRANCH,
                    encode_reg(inst.srcs[0]),
                    encode_reg(inst.srcs[1]),
                ])?;
            }
        }
        self.written += 1;
        Ok(())
    }

    /// Writes the end marker and returns the record count.
    ///
    /// # Errors
    ///
    /// Returns the first error encountered during streaming (writes after
    /// an error are skipped) or while flushing.
    pub fn finish(mut self) -> Result<u64, io::Error> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.write_all(&[OP_END])?;
        self.out.write_all(&self.written.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.written)
    }
}

impl<W: Write> InstSink for TraceWriter<W> {
    fn exec(&mut self, inst: DynInst) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.write_inst(&inst) {
            self.error = Some(e);
        }
    }
}

/// Streaming trace replay: an iterator of `Result<DynInst, TraceError>`.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    name: String,
    load_latency: u32,
    read: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`] for
    /// foreign input, or I/O errors.
    pub fn new(mut input: R) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut buf2 = [0u8; 2];
        input.read_exact(&mut buf2)?;
        let version = u16::from_le_bytes(buf2);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let mut buf4 = [0u8; 4];
        input.read_exact(&mut buf4)?;
        let load_latency = u32::from_le_bytes(buf4);
        input.read_exact(&mut buf2)?;
        let name_len = u16::from_le_bytes(buf2) as usize;
        let mut name_bytes = vec![0u8; name_len];
        input.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| TraceError::Corrupt("benchmark name is not utf-8"))?;
        Ok(TraceReader {
            input,
            name,
            load_latency,
            read: 0,
            done: false,
        })
    }

    /// Benchmark name recorded in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scheduled load latency the trace was compiled for.
    pub fn load_latency(&self) -> u32 {
        self.load_latency
    }

    /// The format is streaming; the count lives in the end marker, so
    /// there is no up-front hint. Always `None` (kept for API symmetry
    /// with formats that do know).
    pub fn count_hint(&self) -> Option<u64> {
        None
    }

    fn read_u8(&mut self) -> Result<u8, TraceError> {
        let mut b = [0u8; 1];
        self.input.read_exact(&mut b)?;
        Ok(b[0])
    }

    fn read_u64(&mut self) -> Result<u64, TraceError> {
        let mut b = [0u8; 8];
        self.input.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_record(&mut self) -> Result<Option<DynInst>, TraceError> {
        let op = self.read_u8()?;
        let inst = match op {
            OP_LOAD => {
                let dst = decode_reg(self.read_u8()?)?
                    .ok_or(TraceError::Corrupt("load without destination"))?;
                let src = decode_reg(self.read_u8()?)?;
                let format = decode_format(self.read_u8()?)?;
                let addr = Addr(self.read_u64()?);
                match src {
                    Some(s) => DynInst::load_via(addr, s, dst, format),
                    None => DynInst::load(addr, dst, format),
                }
            }
            OP_STORE => {
                let data = decode_reg(self.read_u8()?)?;
                let asrc = decode_reg(self.read_u8()?)?;
                let addr = Addr(self.read_u64()?);
                DynInst {
                    srcs: [data, asrc],
                    kind: DynKind::Store { addr },
                }
            }
            OP_ALU => {
                let dst = decode_reg(self.read_u8()?)?
                    .ok_or(TraceError::Corrupt("alu without destination"))?;
                let s0 = decode_reg(self.read_u8()?)?;
                let s1 = decode_reg(self.read_u8()?)?;
                DynInst::alu(dst, [s0, s1])
            }
            OP_BRANCH => {
                let s0 = decode_reg(self.read_u8()?)?;
                let s1 = decode_reg(self.read_u8()?)?;
                DynInst::branch([s0, s1])
            }
            OP_END => {
                let expected = self.read_u64()?;
                self.done = true;
                if expected != self.read {
                    return Err(TraceError::CountMismatch {
                        expected,
                        actual: self.read,
                    });
                }
                return Ok(None);
            }
            _ => return Err(TraceError::Corrupt("unknown opcode")),
        };
        self.read += 1;
        Ok(Some(inst))
    }

    /// Replays the whole trace into an [`InstSink`], validating the end
    /// marker.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] encountered while decoding.
    pub fn replay_into<S: InstSink>(mut self, sink: &mut S) -> Result<u64, TraceError> {
        while let Some(inst) = self.read_record()? {
            sink.exec(inst);
        }
        Ok(self.read)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<DynInst, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(inst)) => Some(Ok(inst)),
            Ok(None) => None,
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insts() -> Vec<DynInst> {
        vec![
            DynInst::load(Addr(0x1000), PhysReg::int(3), LoadFormat::WORD),
            DynInst::load_via(
                Addr(0x2000),
                PhysReg::int(3),
                PhysReg::fp(1),
                LoadFormat::DOUBLE,
            ),
            DynInst::store(Addr(0x3008), Some(PhysReg::fp(1))),
            DynInst::alu(PhysReg::int(4), [Some(PhysReg::int(3)), None]),
            DynInst::branch([Some(PhysReg::int(4)), None]),
            DynInst::load(
                Addr(0x00ff_ffff_ffff),
                PhysReg::fp(31),
                LoadFormat {
                    size: AccessSize::B1,
                    sign_extend: true,
                },
            ),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_instruction() {
        let insts = sample_insts();
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes, "demo", 6).unwrap();
        for i in &insts {
            w.exec(*i);
        }
        assert_eq!(w.finish().unwrap(), insts.len() as u64);

        let r = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(r.name(), "demo");
        assert_eq!(r.load_latency(), 6);
        let decoded: Vec<DynInst> = r.map(|x| x.unwrap()).collect();
        assert_eq!(decoded, insts);
    }

    #[test]
    fn replay_into_counts() {
        let insts = sample_insts();
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes, "demo", 1).unwrap();
        for i in &insts {
            w.exec(*i);
        }
        w.finish().unwrap();
        let mut sink = crate::machine::CountingSink::default();
        let n = TraceReader::new(&bytes[..])
            .unwrap()
            .replay_into(&mut sink)
            .unwrap();
        assert_eq!(n, insts.len() as u64);
        assert_eq!(sink.instructions, insts.len() as u64);
        assert_eq!(sink.loads, 3);
        assert_eq!(sink.stores, 1);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let r = TraceReader::new(&b"NOPE\x01\x00"[..]);
        assert!(matches!(r, Err(TraceError::BadMagic)));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u16.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            TraceReader::new(&bytes[..]),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let insts = sample_insts();
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes, "demo", 1).unwrap();
        for i in &insts {
            w.exec(*i);
        }
        w.finish().unwrap();
        // Chop off the end marker and part of the last record.
        bytes.truncate(bytes.len() - 12);
        let results: Vec<_> = TraceReader::new(&bytes[..]).unwrap().collect();
        assert!(
            results.iter().any(|r| r.is_err()),
            "truncation must surface an error"
        );
    }

    #[test]
    fn corrupt_count_is_detected() {
        let mut bytes = Vec::new();
        let w = TraceWriter::new(&mut bytes, "x", 1).unwrap();
        w.finish().unwrap();
        // Tamper with the trailing count.
        let n = bytes.len();
        bytes[n - 1] = 7;
        let results: Vec<_> = TraceReader::new(&bytes[..]).unwrap().collect();
        assert!(matches!(
            results.last(),
            Some(Err(TraceError::CountMismatch { .. }))
        ));
    }

    #[test]
    fn corrupt_opcode_is_detected() {
        let mut bytes = Vec::new();
        let mut w = TraceWriter::new(&mut bytes, "x", 1).unwrap();
        w.exec(DynInst::branch([None, None]));
        w.finish().unwrap();
        // Overwrite the branch opcode with garbage.
        let header_len = 4 + 2 + 4 + 2 + 1;
        bytes[header_len] = 0x77;
        let results: Vec<_> = TraceReader::new(&bytes[..]).unwrap().collect();
        assert!(matches!(results[0], Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            TraceError::BadMagic,
            TraceError::UnsupportedVersion(9),
            TraceError::Corrupt("x"),
            TraceError::CountMismatch {
                expected: 1,
                actual: 2,
            },
            TraceError::Io(io::Error::other("boom")),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn format_codes_roundtrip() {
        for size in [
            AccessSize::B1,
            AccessSize::B2,
            AccessSize::B4,
            AccessSize::B8,
        ] {
            for sign_extend in [false, true] {
                let f = LoadFormat { size, sign_extend };
                assert_eq!(decode_format(encode_format(f)).unwrap(), f);
            }
        }
        assert!(decode_format(0b1000).is_err());
    }
}
