//! Exact pins on the worker-arena allocation counters.
//!
//! These tests assert *equalities* on the process-wide telemetry
//! counters, so they need the process to themselves: this integration
//! binary holds only serial tests that account for every run they
//! trigger (unit tests in the library binary run concurrently and would
//! perturb the deltas).

use nbl_sim::{run_tape, run_tape_fused, CompileCache, HwConfig, SimConfig, TapeCache, Telemetry};
use nbl_trace::workloads::{build, Scale};
use std::sync::Mutex;

/// Serializes the tests in this binary: both pin deltas on the shared
/// global counters, so they must not interleave.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn warm_workers_serve_replays_without_building_processors() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let program = build("eqntott", Scale::quick()).unwrap();
    let base = SimConfig::baseline(HwConfig::Mc0);
    let compiled = CompileCache::global()
        .get_or_compile(&program, base.load_latency)
        .unwrap();
    let tape = TapeCache::global().get_or_record(&compiled);
    let configs = [
        SimConfig::baseline(HwConfig::Mc0),
        SimConfig::baseline(HwConfig::Mc(1)),
        SimConfig::baseline(HwConfig::Fc(4)),
        SimConfig::baseline(HwConfig::NoRestrict),
    ];

    // Cold pass: every configuration builds its processor.
    let mut cold = Vec::new();
    for cfg in &configs {
        cold.push(run_tape(&program.name, &tape, cfg).unwrap());
    }

    // Warm pass: every run must be served from the arena — the pinned
    // allocation counter. This is the model-level stand-in for a heap
    // profiler: a reset processor reuses all of its internal storage, so
    // zero builds means zero per-run simulator construction.
    let before = Telemetry::global().snapshot();
    let mut warm = Vec::new();
    for cfg in &configs {
        warm.push(run_tape(&program.name, &tape, cfg).unwrap());
    }
    let delta = Telemetry::global().snapshot().since(before);
    assert_eq!(delta.arena_builds, 0, "a warm worker builds no processors");
    assert_eq!(delta.arena_reuses, configs.len() as u64);

    // And reuse must be invisible in the results.
    assert_eq!(cold, warm, "pooled replay must be bit-identical");
}

#[test]
fn fused_replay_draws_from_and_refills_the_arena() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let program = build("compress", Scale::quick()).unwrap();
    let base = SimConfig::baseline(HwConfig::Mc0);
    let compiled = CompileCache::global()
        .get_or_compile(&program, base.load_latency)
        .unwrap();
    let tape = TapeCache::global().get_or_record(&compiled);
    let cfgs = vec![
        SimConfig::baseline(HwConfig::Mc0),
        SimConfig::baseline(HwConfig::Mc(2)),
        SimConfig::baseline(HwConfig::NoRestrict),
    ];

    let first = run_tape_fused(&program.name, &tape, &cfgs).unwrap();
    let before = Telemetry::global().snapshot();
    let second = run_tape_fused(&program.name, &tape, &cfgs).unwrap();
    let delta = Telemetry::global().snapshot().since(before);
    assert_eq!(delta.arena_builds, 0, "a warm fused walk builds nothing");
    assert_eq!(delta.arena_reuses, cfgs.len() as u64);
    assert_eq!(first, second);

    // Fused and unfused agree cell-for-cell.
    let solo: Vec<_> = cfgs
        .iter()
        .map(|cfg| run_tape(&program.name, &tape, cfg).unwrap())
        .collect();
    assert_eq!(first, solo, "fusion must not change any metric");
}
