#!/usr/bin/env bash
# Offline verification: the tier-1 gate plus lints. Everything here runs
# with no network access — the workspace has no external dependencies.
#
#   scripts/verify.sh            # build + tests + clippy + fmt + docs
#   NBL_THREADS=4 scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: cargo build --release =="
cargo build --release

echo "== tier 1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== clippy (warnings denied) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --all -- --check

echo "== rustdoc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== smoke: parallel figures run =="
cargo run --release -p nbl-bench -- fig5 --quick --out /dev/null >/dev/null

echo "verify: OK"
