//! A saturating resource limit used throughout the MSHR design space:
//! "at most N in flight" or "unlimited".

use std::fmt;

/// An upper bound on a hardware resource (number of MSHRs, outstanding
/// misses, fetches per set, target fields per MSHR, ...).
///
/// `Limit::Finite(0)` is a valid limit and means the resource does not exist
/// at all — e.g. a blocking cache has `Finite(0)` outstanding misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Limit {
    /// No bound: the paper's "infinite" / "no restriction" configurations.
    Unlimited,
    /// At most this many.
    Finite(u32),
}

impl Limit {
    /// Returns `true` if `in_use` additional-resource requests would still be
    /// within the limit, i.e. whether one more unit can be allocated when
    /// `in_use` are already allocated.
    #[inline]
    pub fn allows_one_more(self, in_use: usize) -> bool {
        match self {
            Limit::Unlimited => true,
            Limit::Finite(n) => in_use < n as usize,
        }
    }

    /// Returns `true` if this limit permits `count` simultaneous units.
    #[inline]
    pub fn allows(self, count: usize) -> bool {
        match self {
            Limit::Unlimited => true,
            Limit::Finite(n) => count <= n as usize,
        }
    }

    /// The finite bound, if any.
    #[inline]
    pub fn finite(self) -> Option<u32> {
        match self {
            Limit::Unlimited => None,
            Limit::Finite(n) => Some(n),
        }
    }

    /// Returns `true` for `Limit::Unlimited`.
    #[inline]
    pub fn is_unlimited(self) -> bool {
        matches!(self, Limit::Unlimited)
    }
}

impl fmt::Display for Limit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Limit::Unlimited => write!(f, "inf"),
            Limit::Finite(n) => write!(f, "{n}"),
        }
    }
}

impl From<u32> for Limit {
    fn from(n: u32) -> Self {
        Limit::Finite(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_limits_admit_up_to_n() {
        let l = Limit::Finite(2);
        assert!(l.allows_one_more(0));
        assert!(l.allows_one_more(1));
        assert!(!l.allows_one_more(2));
        assert!(!l.allows_one_more(100));
        assert!(l.allows(2));
        assert!(!l.allows(3));
    }

    #[test]
    fn zero_limit_admits_nothing() {
        let l = Limit::Finite(0);
        assert!(!l.allows_one_more(0));
        assert!(l.allows(0));
        assert!(!l.allows(1));
    }

    #[test]
    fn unlimited_admits_everything() {
        assert!(Limit::Unlimited.allows_one_more(usize::MAX - 1));
        assert!(Limit::Unlimited.allows(usize::MAX));
        assert!(Limit::Unlimited.is_unlimited());
        assert_eq!(Limit::Unlimited.finite(), None);
        assert_eq!(Limit::Finite(7).finite(), Some(7));
    }

    #[test]
    fn display_and_from() {
        assert_eq!(Limit::Unlimited.to_string(), "inf");
        assert_eq!(Limit::from(4).to_string(), "4");
    }
}
