//! Miss Status Holding Register (MSHR) organizations.
//!
//! This module implements the full hardware design space of the paper's §2:
//!
//! * [`targets`](crate::mshr::targets) — the target-field layouts of a single MSHR: implicitly
//!   addressed (Fig. 1), explicitly addressed (Fig. 2), and the hybrid
//!   organization of Fig. 14.
//! * `file` — a Kroft-style file of discrete register MSHRs with
//!   configurable entry count, total-miss cap and per-set fetch cap
//!   (the paper's `mc=`, `fc=` and `fs=` configurations).
//! * [`incache`](crate::mshr::incache) — in-cache MSHR storage (§2.3): a transit bit per cache
//!   line, MSHR state stored in the line being fetched.
//! * [`inverted`](crate::mshr::inverted) — the inverted MSHR (§2.4): one entry per possible
//!   destination of fetch data.
//! * [`cost`](crate::mshr::cost) — the storage cost model reproducing the paper's bit counts
//!   (92-bit basic MSHR, 140-bit implicit/4-byte, 112-bit explicit/4-field,
//!   106-bit hybrid 2×2).
//!
//! All organizations speak one protocol: the cache presents a load miss as a
//! [`MissRequest`](crate::mshr::MissRequest); the organization answers
//! with a [`MshrResponse`](crate::mshr::MshrResponse) that
//! classifies the miss as **primary** (a new fetch must be launched),
//! **secondary** (merged into an outstanding fetch), or rejected — in which
//! case the processor takes a **structural-stall** (the paper's
//! structural-stall miss). When fetch data returns, [`MshrBank::fill`]
//! surfaces every waiting [`TargetRecord`] so the register file can be
//! written — all at once, per the paper's multi-write-port assumption.

/// Hardware-cost model (comparators, storage bits) per MSHR organization.
pub mod cost;
/// The classic explicit MSHR file (Kroft): N entries, fully associative.
pub mod file;
/// In-cache MSHR storage: the missing line's own frame holds the bookkeeping.
pub mod incache;
/// The inverted MSHR organization: one entry per destination register.
pub mod inverted;
/// Per-miss target records and the bounded target-list storage.
pub mod targets;

use crate::geometry::CacheGeometry;
use crate::types::{BlockAddr, Dest, LoadFormat};
use std::fmt;

pub use file::{RegisterFileConfig, RegisterMshrFile};
pub use incache::InCacheMshr;
pub use inverted::{InvertedConfig, InvertedMshr};
pub use targets::{TargetPolicy, TargetStorage};

/// A load miss presented to an MSHR organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissRequest {
    /// The block being missed on.
    pub block: BlockAddr,
    /// The cache set the block maps to (needed for per-set fetch limits and
    /// in-cache MSHR storage).
    pub set: u32,
    /// Byte offset of the access within the block.
    pub offset: u32,
    /// Where the fetched data must be delivered.
    pub dest: Dest,
    /// Formatting information to complete the load (paper Fig. 1).
    pub format: LoadFormat,
}

/// How an accepted miss was classified (paper §2 taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissKind {
    /// First miss to the block: a fetch to the next memory level is launched.
    Primary,
    /// Merged into an already outstanding fetch for the same block.
    Secondary,
}

impl fmt::Display for MissKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissKind::Primary => write!(f, "primary"),
            MissKind::Secondary => write!(f, "secondary"),
        }
    }
}

/// Why an MSHR organization refused a miss, forcing a structural stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rejection {
    /// Every MSHR entry is in use and the miss is to a new block.
    NoFreeMshr,
    /// The configured cap on total outstanding misses (the paper's `mc=N`)
    /// is already reached.
    MissLimit,
    /// The configured cap on in-flight fetches to this cache set (the
    /// paper's `fs=N`, or the in-cache organization's one-per-line rule)
    /// is already reached.
    PerSetFetchLimit,
    /// The block is being fetched but no target field can hold this miss
    /// (e.g. a second miss to the same word of an implicitly addressed
    /// MSHR — the paper's canonical structural-stall miss).
    TargetConflict,
    /// The miss destination already has fetch data outstanding (inverted
    /// MSHR; cannot occur under the scoreboarded processor model).
    DestinationBusy,
    /// The organization supports no outstanding misses at all (blocking
    /// cache, `mc=0`).
    Blocking,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rejection::NoFreeMshr => "no free MSHR",
            Rejection::MissLimit => "outstanding-miss limit reached",
            Rejection::PerSetFetchLimit => "per-set fetch limit reached",
            Rejection::TargetConflict => "no target field available",
            Rejection::DestinationBusy => "destination already waiting",
            Rejection::Blocking => "blocking cache",
        };
        write!(f, "{s}")
    }
}

/// The MSHR organization's answer to a [`MissRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrResponse {
    /// The miss is tracked; if [`MissKind::Primary`], the caller must launch
    /// a fetch for the block.
    Accepted(MissKind),
    /// Structural stall: the processor must wait until resources free up
    /// (i.e. until an outstanding fetch completes) and retry.
    Rejected(Rejection),
}

impl MshrResponse {
    /// `true` if the miss was accepted.
    #[inline]
    pub fn is_accepted(self) -> bool {
        matches!(self, MshrResponse::Accepted(_))
    }
}

/// One waiting load recorded in an MSHR, returned by `fill`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TargetRecord {
    /// Destination of the fetched data.
    pub dest: Dest,
    /// Byte offset within the block (the explicit "address in block" field,
    /// or the implicit position of the word field).
    pub offset: u32,
    /// Load completion information.
    pub format: LoadFormat,
}

/// Static configuration choosing an MSHR organization.
///
/// Construct the paper's named configurations with the `nbl-sim` crate's
/// presets, or directly:
///
/// ```
/// use nbl_core::mshr::{MshrConfig, RegisterFileConfig, TargetPolicy};
/// use nbl_core::limit::Limit;
///
/// // "fc=2": two MSHRs, unlimited explicitly addressed target fields.
/// let cfg = MshrConfig::Register(RegisterFileConfig {
///     entries: Limit::Finite(2),
///     targets: TargetPolicy::explicit(Limit::Unlimited),
///     max_outstanding_misses: Limit::Unlimited,
///     max_fetches_per_set: Limit::Unlimited,
/// });
/// assert!(!cfg.is_blocking());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MshrConfig {
    /// No MSHRs: every load miss blocks the processor (`mc=0`).
    Blocking,
    /// A file of discrete register MSHRs (Kroft-style; `mc=`, `fc=`, `fs=`).
    Register(RegisterFileConfig),
    /// In-cache MSHR storage: transit bit per line, state stored in the
    /// line being fetched (§2.3). One in-flight fetch per cache line.
    InCache {
        /// Target-field layout stored in the transit line.
        targets: TargetPolicy,
        /// Extra cycles to read the MSHR state out of the line when fetch
        /// data arrives — §2.3: "if the read port width of the cache is
        /// much smaller than the line size ... it may take several cycles
        /// to read the entire cache line when fetch data arrives." 0
        /// models a full-line read port.
        read_extra_cycles: u32,
    },
    /// Inverted MSHR: one entry per destination of fetch data (§2.4).
    Inverted(InvertedConfig),
}

impl MshrConfig {
    /// `true` for the blocking (lockup) configuration.
    #[inline]
    pub fn is_blocking(&self) -> bool {
        matches!(self, MshrConfig::Blocking)
    }

    /// `true` if a primary miss must evict the victim line at miss time
    /// (in-cache MSHR storage reuses the line as MSHR state) rather than at
    /// fill time (discrete MSHRs).
    #[inline]
    pub fn evicts_on_miss(&self) -> bool {
        matches!(self, MshrConfig::InCache { .. })
    }

    /// Extra cycles added to every fill while MSHR state is read back out
    /// of the transit line (§2.3). Zero for all discrete organizations.
    #[inline]
    pub fn fill_extra_cycles(&self) -> u32 {
        match self {
            MshrConfig::InCache {
                read_extra_cycles, ..
            } => *read_extra_cycles,
            _ => 0,
        }
    }
}

/// A runtime MSHR bank: the dynamic state of whichever organization was
/// configured, behind one dispatching interface.
#[derive(Debug, Clone)]
pub enum MshrBank {
    /// No miss may be outstanding.
    Blocking,
    /// Discrete register MSHRs.
    Register(RegisterMshrFile),
    /// Transit-bit in-cache storage.
    InCache(InCacheMshr),
    /// Per-destination inverted organization.
    Inverted(InvertedMshr),
}

impl MshrBank {
    /// Instantiates the organization described by `config` for a cache of
    /// the given geometry.
    pub fn new(config: &MshrConfig, geometry: &CacheGeometry) -> MshrBank {
        match config {
            MshrConfig::Blocking => MshrBank::Blocking,
            MshrConfig::Register(cfg) => {
                MshrBank::Register(RegisterMshrFile::new(cfg.clone(), geometry))
            }
            MshrConfig::InCache { targets, .. } => {
                MshrBank::InCache(InCacheMshr::new(*targets, geometry))
            }
            MshrConfig::Inverted(cfg) => MshrBank::Inverted(InvertedMshr::new(*cfg)),
        }
    }

    /// Presents a load miss; classifies it or rejects it.
    pub fn try_load_miss(&mut self, req: &MissRequest) -> MshrResponse {
        match self {
            MshrBank::Blocking => MshrResponse::Rejected(Rejection::Blocking),
            MshrBank::Register(f) => f.try_load_miss(req),
            MshrBank::InCache(m) => m.try_load_miss(req),
            MshrBank::Inverted(m) => m.try_load_miss(req),
        }
    }

    /// Completes the fetch of `block`: releases the tracking resources and
    /// returns every waiting target so the caller can deliver data to all of
    /// them simultaneously.
    ///
    /// Returns an empty vector if no fetch for `block` was outstanding
    /// (e.g. a blocking-cache fill).
    pub fn fill(&mut self, block: BlockAddr) -> Vec<TargetRecord> {
        let mut records = Vec::new();
        self.fill_into(block, &mut records);
        records
    }

    /// Completes the fetch of `block`, appending every waiting target to
    /// `out` — the allocation-free twin of [`MshrBank::fill`] used by the
    /// cache's recycled-fill path.
    pub fn fill_into(&mut self, block: BlockAddr, out: &mut Vec<TargetRecord>) {
        match self {
            MshrBank::Blocking => {}
            MshrBank::Register(f) => f.fill_into(block, out),
            MshrBank::InCache(m) => m.fill_into(block, out),
            MshrBank::Inverted(m) => m.fill_into(block, out),
        }
    }

    /// Clears all dynamic state while keeping internal allocations for reuse
    /// by the next run on the same worker.
    pub fn reset(&mut self) {
        match self {
            MshrBank::Blocking => {}
            MshrBank::Register(f) => f.reset(),
            MshrBank::InCache(m) => m.reset(),
            MshrBank::Inverted(m) => m.reset(),
        }
    }

    /// `true` if a fetch for `block` is outstanding.
    pub fn is_in_transit(&self, block: BlockAddr) -> bool {
        match self {
            MshrBank::Blocking => false,
            MshrBank::Register(f) => f.is_in_transit(block),
            MshrBank::InCache(m) => m.is_in_transit(block),
            MshrBank::Inverted(m) => m.is_in_transit(block),
        }
    }

    /// Number of outstanding fetches (blocks in flight).
    pub fn outstanding_fetches(&self) -> usize {
        match self {
            MshrBank::Blocking => 0,
            MshrBank::Register(f) => f.outstanding_fetches(),
            MshrBank::InCache(m) => m.outstanding_fetches(),
            MshrBank::Inverted(m) => m.outstanding_fetches(),
        }
    }

    /// Number of outstanding misses (waiting target records, i.e. primary
    /// plus merged secondary misses).
    pub fn outstanding_misses(&self) -> usize {
        match self {
            MshrBank::Blocking => 0,
            MshrBank::Register(f) => f.outstanding_misses(),
            MshrBank::InCache(m) => m.outstanding_misses(),
            MshrBank::Inverted(m) => m.outstanding_misses(),
        }
    }

    /// Number of in-flight fetches whose block maps to `set`.
    pub fn fetches_in_set(&self, set: u32) -> usize {
        match self {
            MshrBank::Blocking => 0,
            MshrBank::Register(f) => f.fetches_in_set(set),
            MshrBank::InCache(m) => m.fetches_in_set(set),
            MshrBank::Inverted(m) => m.fetches_in_set(set),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limit::Limit;
    use crate::types::PhysReg;

    fn req(block: u64, set: u32, offset: u32, reg: u8) -> MissRequest {
        MissRequest {
            block: BlockAddr(block),
            set,
            offset,
            dest: Dest::Reg(PhysReg::int(reg)),
            format: LoadFormat::WORD,
        }
    }

    #[test]
    fn blocking_bank_rejects_everything() {
        let geom = CacheGeometry::baseline();
        let mut bank = MshrBank::new(&MshrConfig::Blocking, &geom);
        assert_eq!(
            bank.try_load_miss(&req(1, 1, 0, 0)),
            MshrResponse::Rejected(Rejection::Blocking)
        );
        assert_eq!(bank.outstanding_fetches(), 0);
        assert_eq!(bank.outstanding_misses(), 0);
        assert!(!bank.is_in_transit(BlockAddr(1)));
        assert!(bank.fill(BlockAddr(1)).is_empty());
    }

    #[test]
    fn config_predicates() {
        assert!(MshrConfig::Blocking.is_blocking());
        assert!(!MshrConfig::Blocking.evicts_on_miss());
        let incache = MshrConfig::InCache {
            targets: TargetPolicy::explicit(Limit::Unlimited),
            read_extra_cycles: 2,
        };
        assert!(incache.evicts_on_miss());
        assert!(!incache.is_blocking());
        assert_eq!(incache.fill_extra_cycles(), 2);
        assert_eq!(MshrConfig::Blocking.fill_extra_cycles(), 0);
    }

    #[test]
    fn response_and_kind_display() {
        assert!(MshrResponse::Accepted(MissKind::Primary).is_accepted());
        assert!(!MshrResponse::Rejected(Rejection::NoFreeMshr).is_accepted());
        assert_eq!(MissKind::Primary.to_string(), "primary");
        assert_eq!(MissKind::Secondary.to_string(), "secondary");
        for r in [
            Rejection::NoFreeMshr,
            Rejection::MissLimit,
            Rejection::PerSetFetchLimit,
            Rejection::TargetConflict,
            Rejection::DestinationBusy,
            Rejection::Blocking,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
