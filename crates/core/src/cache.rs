//! The lockup-free data cache (Kroft-style), combining a tag array with an
//! MSHR organization.
//!
//! Timing is owned by the caller (the processor model drives the cache and
//! the pipelined memory model): this type answers *what happened* to an
//! access — hit, primary miss, secondary miss, or structural stall — and
//! performs fills; the processor turns those answers into cycles.
//!
//! Policies follow the paper's memory model (§3.1): write-through with
//! write-around (no-write-allocate) by default, so stores never stall; the
//! `mc=0 + wma` configuration instead uses write-allocate with a blocking
//! fetch, which the paper uses as its worst-case comparison point.

use crate::geometry::{CacheGeometry, DecodedAddr};
use crate::mshr::{
    MissKind, MissRequest, MshrBank, MshrConfig, MshrResponse, Rejection, TargetRecord,
};
use crate::tag_array::{ReplacementKind, TagArray};
use crate::types::{Addr, BlockAddr, Dest, LoadFormat};
use std::fmt;

/// What happens on a store miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WriteMissPolicy {
    /// Write-around (no-write-allocate): the store bypasses the cache and is
    /// written to the next level; no fetch, no stall. Paper baseline.
    #[default]
    WriteAround,
    /// Write-miss allocate: the line is fetched and the processor stalls
    /// until the miss is serviced (the paper's `mc=0 + wma` curve).
    WriteAllocate,
}

impl fmt::Display for WriteMissPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteMissPolicy::WriteAround => write!(f, "write-around"),
            WriteMissPolicy::WriteAllocate => write!(f, "write-allocate"),
        }
    }
}

/// Full configuration of a lockup-free cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Size / line size / associativity.
    pub geometry: CacheGeometry,
    /// Store-miss handling.
    pub write_miss: WriteMissPolicy,
    /// MSHR organization.
    pub mshr: MshrConfig,
    /// Entries in a fully associative victim buffer next to the cache
    /// (Jouppi 1990) holding the last lines evicted; a load miss that hits
    /// the buffer swaps the line back in one cycle instead of fetching.
    /// 0 (the paper's configuration) disables it — an extension.
    pub victim_entries: usize,
    /// Replacement policy of the tag array. The paper's (and default)
    /// policy is true LRU.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Baseline geometry with write-around stores, LRU replacement and the
    /// given MSHRs.
    pub fn baseline(mshr: MshrConfig) -> CacheConfig {
        CacheConfig {
            geometry: CacheGeometry::baseline(),
            write_miss: WriteMissPolicy::WriteAround,
            mshr,
            victim_entries: 0,
            replacement: ReplacementKind::default(),
        }
    }
}

/// Outcome of a load access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadAccess {
    /// The line is present: data available after the 1-cycle hit latency.
    Hit,
    /// The line was found in the victim buffer and swapped back into the
    /// set: one extra cycle, no fetch (victim-cache extension).
    VictimHit,
    /// A tracked miss. For [`MissKind::Primary`] the caller must launch a
    /// fetch of the missing block's line; for secondary the data rides an
    /// existing fetch.
    Miss(MissKind),
    /// Structural stall: no MSHR resource could track the miss. The caller
    /// must wait for an outstanding fetch to complete and retry.
    Stalled(Rejection),
}

impl LoadAccess {
    /// `true` for [`LoadAccess::Hit`].
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, LoadAccess::Hit)
    }
}

/// Outcome of a store access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreAccess {
    /// Line present: written through; no stall.
    Hit,
    /// Write-around store miss: bypasses the cache; no stall.
    MissAround,
    /// Write-allocate store miss: the caller must perform a blocking fetch
    /// of the line (`mc=0 + wma`).
    MissAllocate,
    /// Write-allocate store miss tracked by an MSHR with a write-buffer
    /// destination (paper §2.4: "write buffer entries (for merging with
    /// write data when writing into a write-allocate cache)" are possible
    /// destinations of fetch data). No stall; for
    /// [`MissKind::Primary`] the caller must launch the fetch.
    MissAllocateTracked(MissKind),
}

/// Event counters maintained by the cache (final outcomes only; stall
/// cycles are accounted by the processor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Loads that hit.
    pub load_hits: u64,
    /// Loads classified as primary misses.
    pub load_primary_misses: u64,
    /// Loads classified as secondary misses.
    pub load_secondary_misses: u64,
    /// Stores that hit.
    pub store_hits: u64,
    /// Stores that missed (either policy).
    pub store_misses: u64,
    /// Load misses converted to one-cycle swaps by the victim buffer.
    pub victim_hits: u64,
    /// Lines filled.
    pub fills: u64,
}

impl CacheCounters {
    /// Total loads observed.
    pub fn loads(&self) -> u64 {
        self.load_hits + self.load_primary_misses + self.load_secondary_misses
    }

    /// Combined primary + secondary load miss rate, as a fraction of loads.
    pub fn load_miss_rate(&self) -> f64 {
        let loads = self.loads();
        if loads == 0 {
            0.0
        } else {
            (self.load_primary_misses + self.load_secondary_misses) as f64 / loads as f64
        }
    }

    /// Secondary-only load miss rate, as a fraction of loads.
    pub fn secondary_miss_rate(&self) -> f64 {
        let loads = self.loads();
        if loads == 0 {
            0.0
        } else {
            self.load_secondary_misses as f64 / loads as f64
        }
    }
}

/// A lockup-free data cache with a configurable MSHR organization.
///
/// # Examples
///
/// ```
/// use nbl_core::cache::{CacheConfig, LockupFreeCache, LoadAccess};
/// use nbl_core::mshr::{MshrConfig, MissKind, RegisterFileConfig, TargetPolicy};
/// use nbl_core::limit::Limit;
/// use nbl_core::types::{Addr, Dest, LoadFormat, PhysReg};
///
/// // A hit-under-miss ("mc=1") cache.
/// let cfg = CacheConfig::baseline(MshrConfig::Register(RegisterFileConfig {
///     entries: Limit::Finite(1),
///     targets: TargetPolicy::explicit(Limit::Finite(1)),
///     max_outstanding_misses: Limit::Finite(1),
///     max_fetches_per_set: Limit::Unlimited,
/// }));
/// let mut cache = LockupFreeCache::new(cfg);
/// let r1 = cache.access_load(Addr(0x1000), Dest::Reg(PhysReg::int(1)), LoadFormat::WORD);
/// assert_eq!(r1, LoadAccess::Miss(MissKind::Primary));
/// // While that miss is outstanding, other lines still hit or stall — the
/// // cache is not locked up.
/// let wakeups = cache.fill(cache.block_of(Addr(0x1000)));
/// assert_eq!(wakeups.len(), 1);
/// assert!(cache.access_load(Addr(0x1000), Dest::Reg(PhysReg::int(2)), LoadFormat::WORD).is_hit());
/// ```
/// Counting filter over the low bits of in-transit block addresses. Every
/// load and store probes the MSHRs for transit state before the tag array
/// may report a hit; a zero count here proves "not in transit" from one
/// array load, so the common un-aliased access never touches the MSHR
/// maps. Counts (not bits) make removal exact on fill.
#[derive(Debug, Clone)]
struct TransitFilter {
    counts: [u16; 64],
}

impl TransitFilter {
    fn new() -> TransitFilter {
        TransitFilter { counts: [0; 64] }
    }

    #[inline]
    fn slot(block: BlockAddr) -> usize {
        (block.0 as usize) & 63
    }

    /// `false` proves no fetch for `block` is outstanding.
    #[inline]
    fn maybe(&self, block: BlockAddr) -> bool {
        self.counts[Self::slot(block)] != 0
    }

    #[inline]
    fn inc(&mut self, block: BlockAddr) {
        self.counts[Self::slot(block)] += 1;
    }

    #[inline]
    fn dec(&mut self, block: BlockAddr) {
        debug_assert!(
            self.counts[Self::slot(block)] > 0,
            "transit filter underflow"
        );
        self.counts[Self::slot(block)] -= 1;
    }
}

/// The paper's lockup-free data cache: a [`TagArray`] fronted by one of
/// the four MSHR organizations, servicing loads/stores while up to
/// `MshrConfig`-many fetches are outstanding.
#[derive(Debug, Clone)]
pub struct LockupFreeCache {
    config: CacheConfig,
    /// The shared tag-array layer: valid/tag bits, resident-block index
    /// and replacement policy (see [`crate::tag_array`]).
    tags: TagArray,
    mshrs: MshrBank,
    /// Fast-path summary of the MSHRs' outstanding fetches.
    transit: TransitFilter,
    counters: CacheCounters,
    wb_slot: u8,
    /// Victim buffer: most recently evicted blocks, newest last.
    victims: Vec<BlockAddr>,
}

impl LockupFreeCache {
    /// Builds an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> LockupFreeCache {
        let geometry = config.geometry;
        let tags = TagArray::new(geometry, config.replacement);
        let mshrs = MshrBank::new(&config.mshr, &geometry);
        LockupFreeCache {
            config,
            tags,
            mshrs,
            transit: TransitFilter::new(),
            counters: CacheCounters::default(),
            wb_slot: 0,
            victims: Vec::new(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Returns the cache to its freshly-built (all-invalid, zero-counter)
    /// state while keeping every internal allocation — tag array, MSHR
    /// storages, victim buffer — for reuse by the next run on this worker.
    pub fn reset(&mut self) {
        self.tags.reset();
        self.mshrs.reset();
        self.transit = TransitFilter::new();
        self.counters = CacheCounters::default();
        self.wb_slot = 0;
        self.victims.clear();
    }

    /// Accumulated event counters.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Shorthand for the geometry's block mapping.
    #[inline]
    pub fn block_of(&self, addr: Addr) -> BlockAddr {
        self.config.geometry.block_of(addr)
    }

    /// Set index for an address.
    #[inline]
    pub fn set_of(&self, addr: Addr) -> u32 {
        self.config.geometry.set_of(addr)
    }

    /// Direct access to the MSHR bank (for occupancy statistics).
    pub fn mshrs(&self) -> &MshrBank {
        &self.mshrs
    }

    /// `true` if a fetch for `block` is outstanding, resolved through the
    /// [`TransitFilter`] first so the common un-aliased case never probes
    /// the MSHR maps.
    #[inline]
    fn in_transit(&self, block: BlockAddr) -> bool {
        self.transit.maybe(block) && self.mshrs.is_in_transit(block)
    }

    /// Records an evicted block in the victim buffer (if configured).
    fn remember_victim(&mut self, block: BlockAddr) {
        if self.config.victim_entries == 0 {
            return;
        }
        self.victims.retain(|v| *v != block);
        if self.victims.len() == self.config.victim_entries {
            self.victims.remove(0);
        }
        self.victims.push(block);
    }

    /// If `block` sits in the victim buffer, swaps it back into its set
    /// (the displaced occupant takes its place in the buffer) and returns
    /// `true`.
    fn try_victim_swap(&mut self, block: BlockAddr) -> bool {
        let Some(pos) = self.victims.iter().position(|v| *v == block) else {
            return false;
        };
        self.victims.remove(pos);
        if let Some(occupant) = self.tags.install(block) {
            // The classic victim-cache swap: displaced line enters the buffer.
            self.victims.push(occupant);
            if self.victims.len() > self.config.victim_entries {
                self.victims.remove(0);
            }
        }
        true
    }

    /// Performs a load access for `dest`.
    ///
    /// The cache classifies the access but does not advance time; on a
    /// primary miss the caller must launch the fetch and later call
    /// [`LockupFreeCache::fill`].
    pub fn access_load(&mut self, addr: Addr, dest: Dest, format: LoadFormat) -> LoadAccess {
        let decoded = self.config.geometry.decode(addr);
        self.access_load_decoded(&decoded, dest, format)
    }

    /// [`LockupFreeCache::access_load`] with the address already decoded
    /// under this cache's geometry ([`CacheGeometry::decode`]), so a fused
    /// group of caches sharing one geometry pays for the decode once.
    pub fn access_load_decoded(
        &mut self,
        decoded: &DecodedAddr,
        dest: Dest,
        format: LoadFormat,
    ) -> LoadAccess {
        let block = decoded.block;
        // A resident line is never in transit (a block misses to get in
        // transit and only re-enters the tags at fill time), so a tag hit
        // needs no MSHR probe at all.
        if let Some(slot) = self.tags.probe_decoded(block, decoded.set, decoded.tag) {
            self.tags.note_hit(slot);
            self.counters.load_hits += 1;
            return LoadAccess::Hit;
        }
        if !self.in_transit(block) && self.try_victim_swap(block) {
            self.counters.victim_hits += 1;
            return LoadAccess::VictimHit;
        }
        let req = MissRequest {
            block,
            set: decoded.set,
            offset: decoded.offset,
            dest,
            format,
        };
        match self.mshrs.try_load_miss(&req) {
            MshrResponse::Accepted(kind) => {
                match kind {
                    MissKind::Primary => {
                        self.transit.inc(block);
                        self.counters.load_primary_misses += 1;
                        if self.config.mshr.evicts_on_miss() {
                            self.claim_victim_for_transit(block);
                        }
                    }
                    MissKind::Secondary => self.counters.load_secondary_misses += 1,
                }
                LoadAccess::Miss(kind)
            }
            MshrResponse::Rejected(reason) => LoadAccess::Stalled(reason),
        }
    }

    /// Performs a store access. Stores are write-through; under write-around
    /// a miss simply bypasses the cache. Under write-allocate, the miss is
    /// tracked by an MSHR with a write-buffer destination when the
    /// organization can hold it (no stall); otherwise the caller must
    /// perform a blocking fetch.
    pub fn access_store(&mut self, addr: Addr) -> StoreAccess {
        let decoded = self.config.geometry.decode(addr);
        self.access_store_decoded(&decoded)
    }

    /// [`LockupFreeCache::access_store`] with the address already decoded
    /// under this cache's geometry ([`CacheGeometry::decode`]).
    pub fn access_store_decoded(&mut self, decoded: &DecodedAddr) -> StoreAccess {
        let block = decoded.block;
        // A store to a line in transit does not hit (and cannot tag-hit:
        // an in-transit block is never resident); under write-around it
        // goes around (the fetched line will be superseded in memory by the
        // write-through, which our tag-only model need not track).
        if let Some(slot) = self.tags.probe_decoded(block, decoded.set, decoded.tag) {
            self.tags.note_hit(slot);
            self.counters.store_hits += 1;
            return StoreAccess::Hit;
        }
        self.counters.store_misses += 1;
        match self.config.write_miss {
            WriteMissPolicy::WriteAround => StoreAccess::MissAround,
            WriteMissPolicy::WriteAllocate => {
                let req = MissRequest {
                    block,
                    set: decoded.set,
                    offset: decoded.offset,
                    dest: Dest::WriteBuffer(self.next_wb_slot()),
                    format: LoadFormat::DOUBLE,
                };
                match self.mshrs.try_load_miss(&req) {
                    MshrResponse::Accepted(kind) => {
                        if kind == MissKind::Primary {
                            self.transit.inc(block);
                            if self.config.mshr.evicts_on_miss() {
                                self.claim_victim_for_transit(block);
                            }
                        }
                        StoreAccess::MissAllocateTracked(kind)
                    }
                    // No MSHR resource (or a blocking cache): expose the
                    // fetch synchronously, like the paper's `mc=0 + wma`.
                    MshrResponse::Rejected(_) => StoreAccess::MissAllocate,
                }
            }
        }
    }

    /// Direct-mapped load-hit fast path with pre-decoded set and tag:
    /// bumps the hit counter and returns `true` exactly when
    /// [`LockupFreeCache::access_load`] would return [`LoadAccess::Hit`]
    /// for a `ways == 1` geometry (a resident line is never in transit,
    /// and a direct-mapped hit updates no replacement state). On `false`
    /// the caller must fall back to the full access path; nothing is
    /// counted.
    #[inline]
    pub fn load_hit_direct(&mut self, set: u32, tag: u64) -> bool {
        if self.tags.hit_direct(set, tag) {
            self.counters.load_hits += 1;
            return true;
        }
        false
    }

    /// Direct-mapped store-hit fast path: the [`StoreAccess::Hit`] twin of
    /// [`LockupFreeCache::load_hit_direct`], with the same fall-back
    /// contract on `false`.
    #[inline]
    pub fn store_hit_direct(&mut self, set: u32, tag: u64) -> bool {
        if self.tags.hit_direct(set, tag) {
            self.counters.store_hits += 1;
            return true;
        }
        false
    }

    /// Cycles through the write-buffer destination slots for tracked
    /// write-allocate misses.
    fn next_wb_slot(&mut self) -> u8 {
        let slot = self.wb_slot;
        self.wb_slot = (self.wb_slot + 1) % 16;
        slot
    }

    /// In-cache MSHR storage claims the victim line at miss time: invalidate
    /// the replacement candidate so the set's storage is the MSHR. The
    /// claimed line's data becomes MSHR state, so it deliberately does NOT
    /// enter the victim buffer.
    fn claim_victim_for_transit(&mut self, block: BlockAddr) {
        self.tags.claim_for_transit(block);
    }

    /// Installs the line for `block` (evicting the policy victim if the set
    /// is full, into the victim buffer when one is configured) and drains
    /// the MSHR targets waiting on it.
    ///
    /// Works for blocking-cache fills too, in which case the returned
    /// vector is empty.
    pub fn fill(&mut self, block: BlockAddr) -> Vec<TargetRecord> {
        let mut records = Vec::new();
        self.fill_into(block, &mut records);
        records
    }

    /// [`LockupFreeCache::fill`], but appending the drained targets to a
    /// caller-provided (typically recycled) vector instead of allocating.
    pub fn fill_into(&mut self, block: BlockAddr, out: &mut Vec<TargetRecord>) {
        if let Some(victim) = self.tags.install(block) {
            self.remember_victim(victim);
        }
        self.counters.fills += 1;
        let before = out.len();
        self.mshrs.fill_into(block, out);
        if out.len() > before {
            // Every tracked primary carries at least one target, so a
            // non-empty drain is exactly "a fetch was outstanding"; a
            // blocking-cache fill drains nothing and decrements nothing.
            self.transit.dec(block);
        }
    }

    /// `true` if `block` currently resides in the cache (ignoring transit).
    pub fn contains_block(&self, block: BlockAddr) -> bool {
        self.tags.contains(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limit::Limit;
    use crate::mshr::{InvertedConfig, RegisterFileConfig, TargetPolicy};
    use crate::types::PhysReg;

    fn dest(i: u8) -> Dest {
        Dest::Reg(PhysReg::int(i))
    }

    fn unrestricted() -> CacheConfig {
        CacheConfig::baseline(MshrConfig::Inverted(InvertedConfig::typical()))
    }

    fn fc(n: u32) -> CacheConfig {
        CacheConfig::baseline(MshrConfig::Register(RegisterFileConfig {
            entries: Limit::Finite(n),
            targets: TargetPolicy::explicit(Limit::Unlimited),
            max_outstanding_misses: Limit::Unlimited,
            max_fetches_per_set: Limit::Unlimited,
        }))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = LockupFreeCache::new(unrestricted());
        let a = Addr(0x4000);
        assert_eq!(
            c.access_load(a, dest(1), LoadFormat::WORD),
            LoadAccess::Miss(MissKind::Primary)
        );
        let t = c.fill(c.block_of(a));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].dest, dest(1));
        assert!(c.access_load(a, dest(2), LoadFormat::WORD).is_hit());
        assert_eq!(c.counters().load_hits, 1);
        assert_eq!(c.counters().load_primary_misses, 1);
    }

    #[test]
    fn in_transit_block_is_secondary_not_hit() {
        let mut c = LockupFreeCache::new(unrestricted());
        let a = Addr(0x4000);
        let b = Addr(0x4008); // same 32-byte line
        assert_eq!(
            c.access_load(a, dest(1), LoadFormat::WORD),
            LoadAccess::Miss(MissKind::Primary)
        );
        assert_eq!(
            c.access_load(b, dest(2), LoadFormat::WORD),
            LoadAccess::Miss(MissKind::Secondary)
        );
        let t = c.fill(c.block_of(a));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn conflict_eviction_direct_mapped() {
        let mut c = LockupFreeCache::new(unrestricted());
        let a = Addr(0x0000);
        let b = Addr(0x2000); // 8KB apart: same set, different tag
        c.access_load(a, dest(1), LoadFormat::WORD);
        c.fill(c.block_of(a));
        assert!(c.contains_block(c.block_of(a)));
        c.access_load(b, dest(2), LoadFormat::WORD);
        c.fill(c.block_of(b));
        assert!(c.contains_block(c.block_of(b)));
        assert!(
            !c.contains_block(c.block_of(a)),
            "direct-mapped fill evicts the conflicting line"
        );
        assert_eq!(
            c.access_load(a, dest(3), LoadFormat::WORD),
            LoadAccess::Miss(MissKind::Primary)
        );
    }

    #[test]
    fn fully_associative_keeps_conflicting_lines() {
        let mut cfg = unrestricted();
        cfg.geometry = CacheGeometry::fully_associative(8 * 1024, 32).unwrap();
        let mut c = LockupFreeCache::new(cfg);
        for i in 0..4u64 {
            let a = Addr(i * 0x2000); // all map to set 0 in a DM cache
            c.access_load(a, dest(i as u8), LoadFormat::WORD);
            c.fill(c.block_of(a));
        }
        for i in 0..4u64 {
            assert!(c
                .access_load(Addr(i * 0x2000), dest(9), LoadFormat::WORD)
                .is_hit());
        }
    }

    #[test]
    fn lru_eviction_in_fully_associative() {
        // A 64-byte, 32-byte-line fully associative cache has 2 ways.
        let mut cfg = unrestricted();
        cfg.geometry = CacheGeometry::fully_associative(64, 32).unwrap();
        let mut c = LockupFreeCache::new(cfg);
        for a in [0u64, 0x20, 0x40] {
            c.access_load(Addr(a), dest(1), LoadFormat::WORD);
            c.fill(c.block_of(Addr(a)));
        }
        // 0x00 was least recently used and should be gone; 0x20 remains.
        assert!(!c.contains_block(c.block_of(Addr(0))));
        assert!(c.contains_block(c.block_of(Addr(0x20))));
        assert!(c.contains_block(c.block_of(Addr(0x40))));
        // Touch 0x20, fill 0x60: victim should now be 0x40.
        assert!(c
            .access_load(Addr(0x20), dest(2), LoadFormat::WORD)
            .is_hit());
        c.access_load(Addr(0x60), dest(3), LoadFormat::WORD);
        c.fill(c.block_of(Addr(0x60)));
        assert!(c.contains_block(c.block_of(Addr(0x20))));
        assert!(!c.contains_block(c.block_of(Addr(0x40))));
    }

    #[test]
    fn structural_stall_surfaces_rejection() {
        let mut c = LockupFreeCache::new(fc(1));
        assert!(matches!(
            c.access_load(Addr(0x1000), dest(1), LoadFormat::WORD),
            LoadAccess::Miss(_)
        ));
        assert_eq!(
            c.access_load(Addr(0x2000), dest(2), LoadFormat::WORD),
            LoadAccess::Stalled(Rejection::NoFreeMshr)
        );
        // Stalled accesses are not counted as misses.
        assert_eq!(c.counters().load_primary_misses, 1);
        assert_eq!(c.counters().loads(), 1);
    }

    #[test]
    fn stores_write_around_without_stalling() {
        let mut c = LockupFreeCache::new(unrestricted());
        assert_eq!(c.access_store(Addr(0x5000)), StoreAccess::MissAround);
        // Store miss does not allocate: the next load still misses.
        assert!(matches!(
            c.access_load(Addr(0x5000), dest(1), LoadFormat::WORD),
            LoadAccess::Miss(_)
        ));
        c.fill(c.block_of(Addr(0x5000)));
        assert_eq!(c.access_store(Addr(0x5008)), StoreAccess::Hit);
        assert_eq!(c.counters().store_hits, 1);
        assert_eq!(c.counters().store_misses, 1);
    }

    #[test]
    fn write_allocate_with_mshrs_tracks_store_misses() {
        let mut cfg = fc(2);
        cfg.write_miss = WriteMissPolicy::WriteAllocate;
        let mut c = LockupFreeCache::new(cfg);
        // First store miss: tracked as a primary, no blocking fetch needed.
        assert_eq!(
            c.access_store(Addr(0x5000)),
            StoreAccess::MissAllocateTracked(MissKind::Primary)
        );
        // Second store to the same line merges as a secondary.
        assert_eq!(
            c.access_store(Addr(0x5008)),
            StoreAccess::MissAllocateTracked(MissKind::Secondary)
        );
        // A load to the in-transit line also merges.
        assert_eq!(
            c.access_load(Addr(0x5010), dest(1), LoadFormat::WORD),
            LoadAccess::Miss(MissKind::Secondary)
        );
        // The fill wakes all three targets: two write-buffer slots + a reg.
        let t = c.fill(c.block_of(Addr(0x5000)));
        assert_eq!(t.len(), 3);
        let regs = t.iter().filter(|r| matches!(r.dest, Dest::Reg(_))).count();
        let wbs = t
            .iter()
            .filter(|r| matches!(r.dest, Dest::WriteBuffer(_)))
            .count();
        assert_eq!((regs, wbs), (1, 2));
        assert_eq!(c.access_store(Addr(0x5000)), StoreAccess::Hit);
    }

    #[test]
    fn write_allocate_falls_back_to_blocking_when_mshrs_are_full() {
        let mut cfg = fc(1);
        cfg.write_miss = WriteMissPolicy::WriteAllocate;
        let mut c = LockupFreeCache::new(cfg);
        assert!(matches!(
            c.access_store(Addr(0x5000)),
            StoreAccess::MissAllocateTracked(MissKind::Primary)
        ));
        // The single MSHR is busy: a store to a different line must block.
        assert_eq!(c.access_store(Addr(0x9000)), StoreAccess::MissAllocate);
    }

    #[test]
    fn write_allocate_store_miss_requests_blocking_fetch() {
        let mut cfg = CacheConfig::baseline(MshrConfig::Blocking);
        cfg.write_miss = WriteMissPolicy::WriteAllocate;
        let mut c = LockupFreeCache::new(cfg);
        assert_eq!(c.access_store(Addr(0x5000)), StoreAccess::MissAllocate);
        c.fill(c.block_of(Addr(0x5000)));
        assert_eq!(c.access_store(Addr(0x5008)), StoreAccess::Hit);
    }

    #[test]
    fn in_cache_mshr_claims_victim_at_miss_time() {
        let cfg = CacheConfig::baseline(MshrConfig::InCache {
            targets: TargetPolicy::explicit(Limit::Unlimited),
            read_extra_cycles: 0,
        });
        let mut c = LockupFreeCache::new(cfg);
        let old = Addr(0x0000);
        let new = Addr(0x2000); // same set
        c.access_load(old, dest(1), LoadFormat::WORD);
        c.fill(c.block_of(old));
        assert!(c.contains_block(c.block_of(old)));
        // Primary miss on the conflicting line: the old line is claimed NOW.
        assert_eq!(
            c.access_load(new, dest(2), LoadFormat::WORD),
            LoadAccess::Miss(MissKind::Primary)
        );
        assert!(
            !c.contains_block(c.block_of(old)),
            "in-cache MSHR storage reuses the victim line as MSHR state"
        );
        // And a third line in the same set must structurally stall (fs=1).
        assert_eq!(
            c.access_load(Addr(0x4000), dest(3), LoadFormat::WORD),
            LoadAccess::Stalled(Rejection::PerSetFetchLimit)
        );
        c.fill(c.block_of(new));
        assert!(c.contains_block(c.block_of(new)));
    }

    #[test]
    fn victim_buffer_catches_conflict_evictions() {
        let mut cfg = unrestricted();
        cfg.victim_entries = 4;
        let mut c = LockupFreeCache::new(cfg);
        let a = Addr(0x0000);
        let b = Addr(0x2000); // same set as a
        c.access_load(a, dest(1), LoadFormat::WORD);
        c.fill(c.block_of(a));
        c.access_load(b, dest(2), LoadFormat::WORD);
        c.fill(c.block_of(b)); // evicts a -> victim buffer
                               // The reload of `a` is a victim hit, not a miss.
        assert_eq!(
            c.access_load(a, dest(3), LoadFormat::WORD),
            LoadAccess::VictimHit
        );
        assert_eq!(c.counters().victim_hits, 1);
        // The swap displaced `b` into the buffer: it victim-hits too.
        assert_eq!(
            c.access_load(b, dest(4), LoadFormat::WORD),
            LoadAccess::VictimHit
        );
        // And now `a` is back in the buffer again.
        assert_eq!(
            c.access_load(a, dest(5), LoadFormat::WORD),
            LoadAccess::VictimHit
        );
        assert_eq!(
            c.counters().load_primary_misses,
            2,
            "no extra fetches occurred"
        );
    }

    #[test]
    fn victim_buffer_capacity_is_bounded() {
        let mut cfg = unrestricted();
        cfg.victim_entries = 2;
        let mut c = LockupFreeCache::new(cfg);
        // Evict three conflicting lines through a 2-entry buffer: the
        // oldest victim is forgotten.
        for i in 0..4u64 {
            let a = Addr(i * 0x2000);
            c.access_load(a, dest(1), LoadFormat::WORD);
            c.fill(c.block_of(a));
        }
        // Lines 0x2000 and 0x4000 were evicted most recently (0x6000 is
        // resident); 0x0000 fell out of the buffer.
        assert!(matches!(
            c.access_load(Addr(0), dest(2), LoadFormat::WORD),
            LoadAccess::Miss(_)
        ));
        assert_eq!(c.counters().victim_hits, 0);
        // 0x4000 is still buffered.
        assert_eq!(
            c.access_load(Addr(0x4000), dest(3), LoadFormat::WORD),
            LoadAccess::VictimHit
        );
    }

    #[test]
    fn eviction_while_a_fetch_to_the_set_is_outstanding() {
        let mut cfg = unrestricted();
        cfg.victim_entries = 4;
        let mut c = LockupFreeCache::new(cfg);
        let resident = Addr(0x0000);
        let in_flight = Addr(0x2000); // same set
        let third = Addr(0x4000); // same set again
        c.access_load(resident, dest(1), LoadFormat::WORD);
        c.fill(c.block_of(resident));
        // Launch a fetch into the set and leave it outstanding.
        assert_eq!(
            c.access_load(in_flight, dest(2), LoadFormat::WORD),
            LoadAccess::Miss(MissKind::Primary)
        );
        // A third conflicting fill lands while that fetch is in flight:
        // the resident line must be displaced into the victim buffer.
        c.access_load(third, dest(3), LoadFormat::WORD);
        c.fill(c.block_of(third));
        assert_eq!(
            c.access_load(resident, dest(4), LoadFormat::WORD),
            LoadAccess::VictimHit
        );
        // The in-flight block is a secondary miss, never a victim hit —
        // transit is checked before the buffer.
        assert_eq!(
            c.access_load(in_flight, dest(5), LoadFormat::WORD),
            LoadAccess::Miss(MissKind::Secondary)
        );
        // Its fill still drains both targets and installs the line.
        let t = c.fill(c.block_of(in_flight));
        assert_eq!(t.len(), 2);
        assert!(c.contains_block(c.block_of(in_flight)));
        assert!(c.access_load(in_flight, dest(6), LoadFormat::WORD).is_hit());
    }

    #[test]
    fn in_cache_claim_does_not_feed_the_victim_buffer() {
        // In-cache MSHR storage invalidates the victim at miss time to hold
        // transit state; that line's data is gone, so it must NOT become a
        // victim-buffer hit.
        let mut cfg = CacheConfig::baseline(MshrConfig::InCache {
            targets: TargetPolicy::explicit(Limit::Unlimited),
            read_extra_cycles: 0,
        });
        cfg.victim_entries = 4;
        let mut c = LockupFreeCache::new(cfg);
        let old = Addr(0x0000);
        let new = Addr(0x2000); // same set
        c.access_load(old, dest(1), LoadFormat::WORD);
        c.fill(c.block_of(old));
        assert_eq!(
            c.access_load(new, dest(2), LoadFormat::WORD),
            LoadAccess::Miss(MissKind::Primary)
        );
        assert!(
            !c.contains_block(c.block_of(old)),
            "victim claimed as MSHR state"
        );
        c.fill(c.block_of(new));
        assert!(
            matches!(
                c.access_load(old, dest(3), LoadFormat::WORD),
                LoadAccess::Miss(_)
            ),
            "a claimed victim's data was reused through the buffer"
        );
    }

    #[test]
    fn zero_victim_entries_disables_the_buffer() {
        let mut c = LockupFreeCache::new(unrestricted());
        let a = Addr(0x0000);
        let b = Addr(0x2000);
        for addr in [a, b] {
            c.access_load(addr, dest(1), LoadFormat::WORD);
            c.fill(c.block_of(addr));
        }
        assert!(matches!(
            c.access_load(a, dest(2), LoadFormat::WORD),
            LoadAccess::Miss(_)
        ));
        assert_eq!(c.counters().victim_hits, 0);
    }

    #[test]
    fn counters_and_rates() {
        let mut c = LockupFreeCache::new(unrestricted());
        c.access_load(Addr(0x100), dest(1), LoadFormat::WORD); // primary
        c.access_load(Addr(0x108), dest(2), LoadFormat::WORD); // secondary
        c.fill(c.block_of(Addr(0x100)));
        c.access_load(Addr(0x110), dest(3), LoadFormat::WORD); // hit
        let k = c.counters();
        assert_eq!(k.loads(), 3);
        assert!((k.load_miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((k.secondary_miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(k.fills, 1);
    }

    #[test]
    fn empty_cache_rates_are_zero() {
        let c = LockupFreeCache::new(unrestricted());
        assert_eq!(c.counters().load_miss_rate(), 0.0);
        assert_eq!(c.counters().secondary_miss_rate(), 0.0);
    }
}
