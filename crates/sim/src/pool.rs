//! A scoped-thread job pool for embarrassingly parallel sweep cells.
//!
//! The paper's studies are thousands of independent `(benchmark, latency,
//! configuration)` simulations; this pool runs them across OS threads with
//! no external dependencies: [`std::thread::scope`] plus a chunked atomic
//! work queue. Results are placed in **input order** — `run(n, f)` returns
//! exactly `[f(0), f(1), …, f(n-1)]` regardless of which worker computed
//! each job — so parallel sweeps are bit-identical to serial ones.
//!
//! Thread count comes from the `NBL_THREADS` environment variable when set
//! (any value ≥ 1), else from [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Jobs claimed per queue transaction, per worker. Small enough to keep
/// workers load-balanced when cell costs vary by benchmark, large enough
/// that the shared counter is not contended.
const MAX_CHUNK: usize = 64;

/// Parses an `NBL_THREADS`-style override. `None` (unset, empty, garbage,
/// or zero) means "no override".
fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The worker count to use by default: `NBL_THREADS` if set to a positive
/// integer, else the machine's available parallelism, else 1.
pub fn available_threads() -> usize {
    parse_threads(std::env::var("NBL_THREADS").ok().as_deref())
        .or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .ok()
        })
        .unwrap_or(1)
}

/// A fixed-width pool of scoped workers. Creating one is free — threads
/// are spawned per [`JobPool::run`] call and joined before it returns, so
/// borrowed state (`&Program`, `&SimConfig`) flows into jobs without
/// `'static` bounds or `Arc`.
#[derive(Debug, Clone)]
pub struct JobPool {
    threads: usize,
}

impl JobPool {
    /// A pool that will use `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`available_threads`].
    pub fn with_default_threads() -> Self {
        Self::new(available_threads())
    }

    /// Worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(jobs-1)` across the pool's workers and
    /// returns the results in input order.
    ///
    /// With one worker (or ≤ 1 job) this degenerates to a plain serial
    /// loop on the calling thread — no threads are spawned, so the serial
    /// and parallel paths share one code path for determinism tests.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job after all workers have drained.
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads <= 1 || jobs <= 1 {
            return (0..jobs).map(f).collect();
        }
        let chunk = (jobs / (self.threads * 4)).clamp(1, MAX_CHUNK);
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(jobs);
        let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= jobs {
                                break;
                            }
                            for i in start..(start + chunk).min(jobs) {
                                local.push((i, f(i)));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        // Merge worker-local results back into input order.
        let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        for part in parts {
            for (i, t) in part {
                debug_assert!(slots[i].is_none(), "job {i} produced twice");
                slots[i] = Some(t);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job produces exactly one result"))
            .collect()
    }
}

impl Default for JobPool {
    fn default() -> Self {
        Self::with_default_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_input_ordered_with_more_jobs_than_threads() {
        // 4 workers, 257 jobs (not a multiple of the chunk size): every
        // slot must hold its own job's value, in input order.
        let pool = JobPool::new(4);
        let out = pool.run(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let pool = JobPool::new(3);
        let out = pool.run(100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_and_serial_fallback() {
        assert!(JobPool::new(8).run(0, |i| i).is_empty());
        assert_eq!(JobPool::new(1).run(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
        // threads=0 is clamped up to a serial pool rather than deadlocking.
        assert_eq!(JobPool::new(0).threads(), 1);
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_threads(Some("8")), Some(8));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None, "zero means no override");
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
        assert!(available_threads() >= 1);
    }
}
