//! Ablation studies for the design choices DESIGN.md calls out — not
//! exhibits from the paper, but quantifications of modeling decisions the
//! paper's prose asserts qualitatively.
//!
//! 1. **Victim claiming time** (in-cache MSHR storage): §2.3 stores MSHR
//!    state in the line being fetched, so the victim dies at *miss* time.
//!    Comparing `InCache` against the otherwise-identical `fs=ways`
//!    register file isolates the cost of those early evictions.
//! 2. **Write-miss policy**: `mc=0 + wma` vs `mc=0` across the most
//!    store-heavy benchmarks — what the paper's top curve actually buys.
//! 3. **Secondary-miss merging**: one target field vs unlimited fields at
//!    unlimited entries — the pure value of merging, with fetch counts
//!    held equal.
//! 4. **Memory pipelining**: the paper assumes a fully pipelined memory;
//!    this sweep inserts a minimum gap between fetch completions (a
//!    bandwidth-limited bus) and measures how much of the non-blocking
//!    benefit depends on that assumption.

use super::{program, RunScale};
use nbl_core::limit::Limit;
use nbl_core::mshr::TargetPolicy;
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::run_program;
use std::io::Write;

/// Prints all three ablations.
pub fn run(out: &mut dyn Write, scale: RunScale) {
    let _ = writeln!(out, "== Ablations ==");

    // 1. In-cache storage vs discrete MSHRs at the same per-set limit.
    let _ = writeln!(out, "\n-- victim claimed at miss time (in-cache) vs fill time (fs=1) --");
    let _ = writeln!(out, "{:>10} {:>10} {:>10} {:>10}", "bench", "fs=1", "in-cache", "penalty");
    for bench in ["su2cor", "doduc", "tomcatv"] {
        let p = program(bench, scale);
        let fs1 = run_program(&p, &SimConfig::baseline(HwConfig::Fs(1))).unwrap().mcpi;
        let inc = run_program(&p, &SimConfig::baseline(HwConfig::InCache)).unwrap().mcpi;
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>10.3} {:>9.1}%",
            bench,
            fs1,
            inc,
            100.0 * (inc / fs1 - 1.0)
        );
    }

    // 1b. Narrow read port: extra fill cycles for in-cache storage.
    let _ = writeln!(out, "\n-- in-cache MSHR read-port width (su2cor, extra fill cycles) --");
    let _ = writeln!(out, "{:>10} {:>9} {:>9} {:>9}", "", "+0cy", "+2cy", "+4cy");
    {
        let p = program("su2cor", scale);
        let _ = write!(out, "{:>10}", "MCPI");
        for k in [0u32, 2, 4] {
            let m = run_program(&p, &SimConfig::baseline(HwConfig::InCacheNarrowPort(k)))
                .unwrap()
                .mcpi;
            let _ = write!(out, " {m:>8.3}");
        }
        let _ = writeln!(out);
    }

    // 2. Write-miss allocate cost on store-heavy codes.
    let _ = writeln!(out, "\n-- write-around vs write-miss-allocate (blocking cache) --");
    let _ = writeln!(out, "{:>10} {:>10} {:>12} {:>10}", "bench", "mc=0", "mc=0+wma", "overhead");
    for bench in ["xlisp", "tomcatv", "compress"] {
        let p = program(bench, scale);
        let around = run_program(&p, &SimConfig::baseline(HwConfig::Mc0)).unwrap().mcpi;
        let alloc = run_program(&p, &SimConfig::baseline(HwConfig::Mc0Wma)).unwrap().mcpi;
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>12.3} {:>9.1}%",
            bench,
            around,
            alloc,
            100.0 * (alloc / around - 1.0)
        );
    }

    // 3. Pure value of secondary-miss merging (entries unlimited).
    let _ = writeln!(out, "\n-- secondary-miss merging: 1 target field vs unlimited --");
    let _ = writeln!(out, "{:>10} {:>10} {:>10} {:>10}", "bench", "1 field", "unlimited", "gain");
    for bench in ["doduc", "mdljdp2", "tomcatv"] {
        let p = program(bench, scale);
        let one = run_program(
            &p,
            &SimConfig::baseline(HwConfig::Targets(TargetPolicy::explicit(Limit::Finite(1)))),
        )
        .unwrap()
        .mcpi;
        let unl = run_program(
            &p,
            &SimConfig::baseline(HwConfig::Targets(TargetPolicy::explicit(Limit::Unlimited))),
        )
        .unwrap()
        .mcpi;
        let _ = writeln!(
            out,
            "{:>10} {:>10.3} {:>10.3} {:>9.1}%",
            bench,
            one,
            unl,
            100.0 * (1.0 - unl / one)
        );
    }
    // 4. Bandwidth-limited memory.
    let _ = writeln!(out, "\n-- fully pipelined memory vs bandwidth-limited bus (no restrict) --");
    let _ = writeln!(out, "{:>10} {:>9} {:>9} {:>9} {:>9}", "bench", "gap=0", "gap=4", "gap=8", "gap=16");
    for bench in ["tomcatv", "su2cor", "eqntott"] {
        let p = program(bench, scale);
        let _ = write!(out, "{bench:>10}");
        for gap in [0u32, 4, 8, 16] {
            let m = run_program(
                &p,
                &SimConfig::baseline(HwConfig::NoRestrict).with_memory_gap(gap),
            )
            .unwrap()
            .mcpi;
            let _ = write!(out, " {m:>8.3}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(a 16-cycle completion gap serializes fetches entirely: the paper's\n\
         fully-pipelined assumption is what makes overlap possible at all)\n"
    );
}
