//! The paper's published numbers, used by the `compare` subcommand and the
//! shape assertions in EXPERIMENTS.md: Fig. 13's baseline MCPI per
//! benchmark (load latency 10, 8 KB direct-mapped cache, 32 B lines,
//! 16-cycle penalty).

/// One Fig. 13 row: MCPI under `mc=0, mc=1, mc=2, fc=1, fc=2, ∞`.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Benchmark name.
    pub name: &'static str,
    /// MCPI under the six configurations, unrestricted last.
    pub mcpi: [f64; 6],
}

/// Fig. 13 of the paper, transcribed.
pub const FIG13: [PaperRow; 18] = [
    PaperRow {
        name: "alvinn",
        mcpi: [0.494, 0.398, 0.371, 0.394, 0.367, 0.365],
    },
    PaperRow {
        name: "doduc",
        mcpi: [0.346, 0.245, 0.147, 0.197, 0.109, 0.084],
    },
    PaperRow {
        name: "ear",
        mcpi: [0.094, 0.067, 0.050, 0.067, 0.050, 0.048],
    },
    PaperRow {
        name: "fpppp",
        mcpi: [0.434, 0.234, 0.119, 0.197, 0.091, 0.062],
    },
    PaperRow {
        name: "hydro2d",
        mcpi: [0.708, 0.466, 0.246, 0.457, 0.242, 0.189],
    },
    PaperRow {
        name: "mdljdp2",
        mcpi: [0.314, 0.231, 0.193, 0.227, 0.190, 0.167],
    },
    PaperRow {
        name: "mdljsp2",
        mcpi: [0.154, 0.088, 0.057, 0.070, 0.052, 0.046],
    },
    PaperRow {
        name: "nasa7",
        mcpi: [1.865, 1.452, 0.753, 1.360, 0.670, 0.519],
    },
    PaperRow {
        name: "ora",
        mcpi: [1.000, 1.000, 1.000, 1.000, 1.000, 1.000],
    },
    PaperRow {
        name: "su2cor",
        mcpi: [1.266, 1.055, 0.437, 1.002, 0.394, 0.093],
    },
    PaperRow {
        name: "swm256",
        mcpi: [0.297, 0.110, 0.070, 0.109, 0.069, 0.067],
    },
    PaperRow {
        name: "spice2g6",
        mcpi: [1.092, 0.958, 0.903, 0.945, 0.896, 0.891],
    },
    PaperRow {
        name: "tomcatv",
        mcpi: [1.140, 0.714, 0.310, 0.649, 0.219, 0.066],
    },
    PaperRow {
        name: "wave5",
        mcpi: [0.277, 0.194, 0.132, 0.183, 0.126, 0.107],
    },
    PaperRow {
        name: "compress",
        mcpi: [0.453, 0.354, 0.349, 0.351, 0.348, 0.348],
    },
    PaperRow {
        name: "eqntott",
        mcpi: [0.108, 0.078, 0.073, 0.078, 0.073, 0.073],
    },
    PaperRow {
        name: "espresso",
        mcpi: [0.209, 0.176, 0.170, 0.174, 0.170, 0.169],
    },
    PaperRow {
        name: "xlisp",
        mcpi: [0.211, 0.185, 0.176, 0.181, 0.176, 0.176],
    },
];

/// Looks up a paper row by name.
pub fn fig13_row(name: &str) -> Option<&'static PaperRow> {
    FIG13.iter().find(|r| r.name == name)
}

/// Fig. 18 of the paper: tomcatv MCPI vs miss penalty at latency 10,
/// rows = `mc=0+wma, mc=0, mc=1, fc=1, mc=2, fc=2, no restrict`,
/// columns = penalties 4, 8, 16, 32, 64, 128.
pub const FIG18_PENALTIES: [u32; 6] = [4, 8, 16, 32, 64, 128];

/// Paper Fig. 18 rows (same config order as the table in the paper).
pub const FIG18: [(&str, [f64; 6]); 7] = [
    ("mc=0 + wma", [0.483, 0.967, 1.934, 3.868, 7.736, 15.472]),
    ("mc=0", [0.285, 0.570, 1.140, 2.280, 4.561, 9.122]),
    ("mc=1", [0.127, 0.300, 0.714, 1.596, 3.494, 7.469]),
    ("fc=1", [0.111, 0.258, 0.649, 1.511, 3.408, 7.381]),
    ("mc=2", [0.030, 0.097, 0.310, 0.803, 1.939, 4.376]),
    ("fc=2", [0.021, 0.069, 0.219, 0.641, 1.676, 3.866]),
    ("no restrict", [0.001, 0.013, 0.066, 0.300, 0.928, 2.226]),
];
