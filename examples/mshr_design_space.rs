//! Cost/performance frontier of MSHR target-field layouts.
//!
//! For a fixed workload, sweeps the implicit/explicit/hybrid design space
//! of a single MSHR's target fields (paper Figs. 1, 2, 14) and prints
//! MCPI against the storage bits each layout costs — the actual
//! engineering tradeoff a cache designer faces.
//!
//! ```text
//! cargo run --release --example mshr_design_space [benchmark]
//! ```

use nonblocking_loads::core::geometry::CacheGeometry;
use nonblocking_loads::core::limit::Limit;
use nonblocking_loads::core::mshr::cost::MshrCostModel;
use nonblocking_loads::core::mshr::TargetPolicy;
use nonblocking_loads::sim::config::{HwConfig, SimConfig};
use nonblocking_loads::sim::driver::run_program;
use nonblocking_loads::trace::workloads::{build, Scale};

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "doduc".to_string());
    let program = build(&bench, Scale::full()).expect("known benchmark");
    let geometry = CacheGeometry::baseline();
    let costs = MshrCostModel::default();

    let layouts: Vec<(String, TargetPolicy)> = vec![
        (
            "explicit, 1 field".into(),
            TargetPolicy::explicit(Limit::Finite(1)),
        ),
        (
            "explicit, 2 fields".into(),
            TargetPolicy::explicit(Limit::Finite(2)),
        ),
        (
            "explicit, 4 fields".into(),
            TargetPolicy::explicit(Limit::Finite(4)),
        ),
        ("hybrid 2x2".into(), TargetPolicy::hybrid(2, 2)),
        (
            "implicit, 8B words".into(),
            TargetPolicy::implicit_sub_blocks(4),
        ),
        (
            "implicit, 4B words".into(),
            TargetPolicy::implicit_sub_blocks(8),
        ),
    ];

    let unrestricted = run_program(&program, &SimConfig::baseline(HwConfig::NoRestrict))
        .expect("workloads compile")
        .mcpi;

    println!("target-field design space for {bench} (unlimited MSHR entries)\n");
    println!(
        "{:>20} {:>10} {:>8} {:>10} {:>12}",
        "layout", "bits/MSHR", "MCPI", "vs best", "bits per 1%"
    );
    for (name, policy) in layouts {
        let r = run_program(&program, &SimConfig::baseline(HwConfig::Targets(policy)))
            .expect("workloads compile");
        let bits = costs
            .register_mshr(policy, &geometry)
            .expect("finite layouts have costs")
            .bits;
        let overhead_pct = 100.0 * (r.mcpi / unrestricted - 1.0);
        // Storage spent per percentage point of MCPI still unrecovered
        // ("-" once the layout already matches the unrestricted cache).
        let efficiency = if overhead_pct > 0.5 {
            format!("{:.0}", bits as f64 / overhead_pct)
        } else {
            "-".into()
        };
        println!(
            "{:>20} {:>10} {:>8.3} {:>9.2}x {:>12}",
            name,
            bits,
            r.mcpi,
            r.mcpi / unrestricted,
            efficiency
        );
    }
    println!("\nidealized unrestricted cache: MCPI {unrestricted:.3}");
    println!(
        "(the paper's Fig. 14: four explicit fields or one implicit field per word\n\
         recover essentially all of it; a single field per MSHR does not)"
    );
}
