//! Figure 6: histogram of in-flight misses and fetches for doduc, per
//! scheduled load latency, measured on the unrestricted configuration
//! with the baseline system.

use super::{engine, program, ExhibitError, RunScale, LATENCIES};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::report;
use nbl_trace::ir::Program;
use std::io::Write;

/// Prints the Fig. 6 table.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let p = program("doduc", scale)?;
    let base = SimConfig::baseline(HwConfig::NoRestrict);
    let jobs: Vec<(&Program, SimConfig)> = LATENCIES
        .into_iter()
        .map(|lat| (&p, base.clone().at_latency(lat)))
        .collect();
    let results = engine()
        .run_many(&jobs)
        .map_err(|e| ExhibitError::new("doduc @ Fig. 6 latencies", e))?;
    let rows: Vec<(u32, &nbl_sim::driver::RunResult)> =
        LATENCIES.into_iter().zip(results.iter()).collect();
    let _ = writeln!(
        out,
        "== Figure 6: in-flight misses and fetches for doduc =="
    );
    let _ = writeln!(out, "{}", report::inflight_table("doduc", &rows));
    Ok(())
}
