//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! The MSHR organizations key their in-flight state by
//! [`BlockAddr`](crate::types::BlockAddr) (and
//! small integers), and the cache probes those maps on **every** memory
//! access — `is_in_transit` runs before the tag array can even report a
//! hit. `std`'s default SipHash is keyed for HashDoS resistance the
//! simulator does not need (all keys come from the trace, not a network),
//! and its setup cost dominates a probe of a map holding a handful of
//! block addresses. This module provides the classic Fibonacci
//! multiply-xor construction instead: a couple of arithmetic instructions
//! per word, no per-map random state, identical across runs and machines.
//!
//! Determinism is a feature beyond speed: map iteration order (e.g. the
//! inverted MSHR's match-encoder scan in its `fill`) becomes a pure
//! function of the access sequence, so replays and golden tests can never
//! diverge on hasher seeding.

// nbl-allow(determinism): this module builds the fixed-seed wrapper everyone else uses
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the 64-bit Fibonacci hashing constant (2^64 / φ),
/// forced odd — the same diffusion constant splitmix64 derives from.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// A multiply-xor hasher over 64-bit words. Not collision-resistant
/// against adversarial keys; the simulator only hashes block addresses,
/// set indices and destination ids it generated itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(26) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low-entropy keys (aligned addresses) spread
        // into the table-index bits HashMap actually uses.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(K);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            // nbl-allow(no-panic): chunks_exact(8) yields exactly 8-byte slices
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Zero-state `BuildHasher`: every map hashes identically, every run.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`] — drop-in for the hot-path maps.
/// `FastMap::default()` replaces `HashMap::new()` (the std constructor is
/// only defined for the SipHash build hasher).
// nbl-allow(determinism): std HashMap is deterministic under FastBuildHasher's zero seed
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BlockAddr;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(hash_of(&BlockAddr(key)), hash_of(&BlockAddr(key)));
        }
    }

    #[test]
    fn aligned_block_addresses_spread() {
        // Cache blocks differ only in low-ish bits; the table index uses
        // the hash's low bits, so nearby blocks must not collide there.
        let mut low_bits: Vec<u64> = (0..256u64).map(|b| hash_of(&b) & 0xff).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(
            low_bits.len() > 128,
            "sequential keys collapse to {} distinct low bytes",
            low_bits.len()
        );
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FastMap<BlockAddr, u32> = FastMap::default();
        for b in 0..100u64 {
            m.insert(BlockAddr(b), b as u32);
        }
        assert_eq!(m.len(), 100);
        for b in 0..100u64 {
            assert_eq!(m.get(&BlockAddr(b)), Some(&(b as u32)));
        }
        assert_eq!(m.remove(&BlockAddr(50)), Some(50));
        assert!(!m.contains_key(&BlockAddr(50)));
    }

    #[test]
    fn byte_streams_include_length() {
        // Tail handling must distinguish [1] from [1, 0].
        let mut a = FastHasher::default();
        a.write(&[1]);
        let mut b = FastHasher::default();
        b.write(&[1, 0]);
        assert_ne!(a.finish(), b.finish());
    }
}
