//! # nbl-sim — simulation driver and experiment infrastructure
//!
//! Glues the substrates together into the paper's experimental setup:
//!
//! * [`config`] — the named hardware configurations of the paper's figure
//!   legends (`mc=0 + wma`, `mc=N`, `fc=N`, `fs=N`, in-cache, targets,
//!   "no restrict") and complete [`config::SimConfig`]s;
//! * [`driver`] — compile-and-run of one workload under one configuration,
//!   producing a [`driver::RunResult`] with every metric the paper plots
//!   (MCPI, stall breakdown, miss rates, in-flight histograms);
//! * [`sweep`] — configuration × latency and configuration × penalty
//!   sweeps with compilation shared across configurations, serially or on
//!   the parallel [`sweep::SweepEngine`];
//! * [`pool`] — the scoped-thread job pool behind the parallel sweeps
//!   (`NBL_THREADS` overrides the worker count);
//! * [`compile_cache`] — exactly-once compilation per `(benchmark,
//!   latency)` pair, shared by reference across configurations and sweeps;
//! * [`telemetry`] — process-wide counters of simulated work, for
//!   throughput reporting;
//! * [`report`] — fixed-width text rendering in the shape of the paper's
//!   figures and tables.

pub mod compile_cache;
pub mod config;
pub mod driver;
pub mod pool;
pub mod report;
pub mod sweep;
pub mod telemetry;

pub use compile_cache::{CacheStats, CompileCache};
pub use config::{HwConfig, IssueWidth, SimConfig};
pub use driver::{
    run_compiled, run_compiled_traced, run_dual, run_dual_cached, run_dual_compiled, run_program,
    run_program_cached, run_program_traced, DualRunResult, RunResult, SimError,
};
pub use pool::{available_threads, JobPool};
pub use sweep::{latency_sweep, penalty_sweep, LatencySweep, PenaltySweep, SweepEngine};
pub use telemetry::{Telemetry, TelemetrySnapshot};
