//! The register scoreboard: which architectural registers are waiting for
//! outstanding load data.
//!
//! With non-blocking loads, a load miss does not stall the processor; the
//! *use* of the load's destination register does ("a data-miss induced
//! stall will only occur if the register target of the load is used by an
//! instruction before the register is filled", paper §1). The scoreboard
//! tracks exactly that pending state.

use nbl_core::types::PhysReg;

/// Pending-register tracking for the 64 architectural registers, packed
/// into one `u64` bitmask word (bit `i` = register with dense index `i`):
/// `any_pending` is a zero test, `pending_count` a popcount, and the whole
/// state clones/resets as one machine word.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    pending: u64,
}

impl Scoreboard {
    /// A scoreboard with every register valid.
    pub fn new() -> Scoreboard {
        Scoreboard { pending: 0 }
    }

    #[inline]
    fn bit(reg: PhysReg) -> u64 {
        1u64 << reg.dense_index()
    }

    /// `true` if `reg` is waiting for load data.
    #[inline]
    pub fn is_pending(&self, reg: PhysReg) -> bool {
        self.pending & Self::bit(reg) != 0
    }

    /// Marks `reg` as waiting for load data.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the register is already pending — the
    /// in-order pipeline must stall WAW hazards before reissuing a load to
    /// a pending register.
    #[inline]
    pub fn set_pending(&mut self, reg: PhysReg) {
        debug_assert!(
            self.pending & Self::bit(reg) == 0,
            "register {reg} already pending (unstalled WAW hazard)"
        );
        self.pending |= Self::bit(reg);
    }

    /// Marks `reg` valid (its load data arrived). Idempotent, because a
    /// fill may name destinations (PC, write buffer) that were never marked.
    #[inline]
    pub fn clear(&mut self, reg: PhysReg) {
        self.pending &= !Self::bit(reg);
    }

    /// Number of registers currently pending (one popcount of the word).
    #[inline]
    pub fn pending_count(&self) -> usize {
        self.pending.count_ones() as usize
    }

    /// `true` if any register is pending (a zero test, O(1)).
    #[inline]
    pub fn any_pending(&self) -> bool {
        self.pending != 0
    }
}

impl Default for Scoreboard {
    fn default() -> Self {
        Scoreboard::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_roundtrip() {
        let mut sb = Scoreboard::new();
        let r = PhysReg::int(5);
        let f = PhysReg::fp(5);
        assert!(!sb.is_pending(r));
        sb.set_pending(r);
        assert!(sb.is_pending(r));
        assert!(!sb.is_pending(f), "int and fp files are distinct");
        sb.set_pending(f);
        assert_eq!(sb.pending_count(), 2);
        sb.clear(r);
        assert!(!sb.is_pending(r));
        assert!(sb.is_pending(f));
        sb.clear(f);
        assert!(!sb.any_pending());
    }

    #[test]
    fn clear_is_idempotent() {
        let mut sb = Scoreboard::new();
        sb.set_pending(PhysReg::int(0));
        sb.clear(PhysReg::int(0));
        sb.clear(PhysReg::int(0));
        assert_eq!(sb.pending_count(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "already pending")]
    fn double_set_panics_in_debug() {
        let mut sb = Scoreboard::new();
        sb.set_pending(PhysReg::int(1));
        sb.set_pending(PhysReg::int(1));
    }
}
