//! Figure 19 (table): dual- and single-issue MCPI scaling comparison
//! (paper §6).
//!
//! Method, as in the paper: simulate each benchmark on the dual-issue
//! machine (load latency 10, miss penalty 16); measure its average IPC on
//! the same machine with a perfect cache; then predict the dual-issue MCPI
//! from a *single-issue* simulation whose load latency and miss penalty
//! are scaled by that IPC — the load latency snapped to the compiled set
//! {1,2,3,6,10,20}, the penalty rounded to the nearest integer, exactly
//! like the paper ("it was not convenient to compile the code for all
//! values of the load latency").

use super::{engine, programs_for, ExhibitError, RunScale, LATENCIES};
use nbl_sim::config::{HwConfig, SimConfig};
use nbl_sim::driver::{run_dual_cached, run_program_cached};
use std::io::Write;

/// The four configurations the paper compares.
pub fn configs() -> Vec<HwConfig> {
    vec![
        HwConfig::Mc0,
        HwConfig::Mc(1),
        HwConfig::Fc(2),
        HwConfig::NoRestrict,
    ]
}

/// The benchmarks of the Fig. 19 table.
pub const BENCHMARKS: [&str; 5] = ["doduc", "eqntott", "su2cor", "tomcatv", "xlisp"];

/// Snaps a scaled latency to the nearest compiled value.
pub fn snap_latency(scaled: f64) -> u32 {
    LATENCIES
        .into_iter()
        .min_by(|a, b| {
            (f64::from(*a) - scaled)
                .abs()
                .partial_cmp(&(f64::from(*b) - scaled).abs())
                .expect("finite")
        })
        .expect("non-empty latency set")
}

/// Prints the Fig. 19 comparison.
pub fn run(out: &mut dyn Write, scale: RunScale) -> Result<(), ExhibitError> {
    let programs = programs_for(&BENCHMARKS, scale)?;
    let pool = engine().pool();

    // Stage 1: each benchmark's IPC probe (perfect-cache dual run), in
    // parallel across benchmarks.
    let probes = pool
        .run(programs.len(), |b| {
            run_dual_cached(&programs[b], &SimConfig::baseline(HwConfig::NoRestrict))
                .map_err(|e| e.to_string())
        })
        .into_iter()
        .zip(BENCHMARKS)
        .map(|(r, name)| r.map_err(|e| ExhibitError::new(format!("{name} @ Fig. 19 IPC probe"), e)))
        .collect::<Result<Vec<_>, _>>()?;

    // Stage 2: every (benchmark, configuration) cell — a dual-issue run
    // and the IPC-scaled single-issue prediction — as one flat grid.
    let hws = configs();
    let nc = hws.len();
    let cells = pool
        .run(programs.len() * nc, |idx| -> Result<(f64, f64), String> {
            let (b, c) = (idx / nc, idx % nc);
            let p = &programs[b];
            let ipc = probes[b].ipc;
            let hw = hws[c].clone();
            let dual =
                run_dual_cached(p, &SimConfig::baseline(hw.clone())).map_err(|e| e.to_string())?;
            let single_cfg = SimConfig::baseline(hw)
                .at_latency(snap_latency(10.0 * ipc))
                .with_penalty((16.0 * ipc).round().max(1.0) as u32);
            let single = run_program_cached(p, &single_cfg).map_err(|e| e.to_string())?;
            // The scaled single-issue MCPI is per *scaled* cycle; mapping
            // back to dual-issue cycles divides by the IPC.
            Ok((dual.mcpi, single.mcpi / ipc))
        })
        .into_iter()
        .enumerate()
        .map(|(idx, r)| {
            r.map_err(|e| ExhibitError::new(format!("{} @ Fig. 19 grid", BENCHMARKS[idx / nc]), e))
        })
        .collect::<Result<Vec<_>, _>>()?;

    let _ = writeln!(out, "== Figure 19: dual vs IPC-scaled single-issue MCPI ==");
    let _ = writeln!(
        out,
        "{:>10} {:>6} {:>8} {:>8} | per config: dual MCPI, scaled-single MCPI, % diff",
        "bench", "IPC", "s.lat", "s.pen"
    );
    for (b, name) in BENCHMARKS.iter().enumerate() {
        let ipc = probes[b].ipc;
        let scaled_lat = snap_latency(10.0 * ipc);
        let scaled_pen = (16.0 * ipc).round().max(1.0) as u32;
        let _ = write!(
            out,
            "{name:>10} {ipc:>6.2} {scaled_lat:>8} {scaled_pen:>8} |"
        );
        for (dual_mcpi, predicted) in &cells[b * nc..(b + 1) * nc] {
            let diff = if *dual_mcpi > 0.0 {
                100.0 * (predicted - dual_mcpi) / dual_mcpi
            } else {
                0.0
            };
            let _ = write!(out, "  {dual_mcpi:>6.3} {predicted:>6.3} {diff:>5.0}%");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    Ok(())
}
