//! A scoped-thread job pool for embarrassingly parallel sweep cells.
//!
//! The paper's studies are thousands of independent `(benchmark, latency,
//! configuration)` simulations; this pool runs them across OS threads with
//! no external dependencies: [`std::thread::scope`] plus a chunked atomic
//! work queue. Results are placed in **input order** — `run(n, f)` returns
//! exactly `[f(0), f(1), …, f(n-1)]` regardless of which worker computed
//! each job — so parallel sweeps are bit-identical to serial ones.
//!
//! Thread count comes from the `NBL_THREADS` environment variable when set
//! (any value ≥ 1), else from [`std::thread::available_parallelism`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Jobs claimed per queue transaction, per worker. Small enough to keep
/// workers load-balanced when cell costs vary by benchmark, large enough
/// that the shared counter is not contended.
const MAX_CHUNK: usize = 64;

/// Parses an `NBL_THREADS`-style override. `None` (unset, empty, garbage,
/// or zero) means "no override".
fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The worker count to use by default: `NBL_THREADS` if set to a positive
/// integer, else the machine's available parallelism, else 1.
pub fn available_threads() -> usize {
    parse_threads(std::env::var("NBL_THREADS").ok().as_deref())
        .or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .ok()
        })
        .unwrap_or(1)
}

/// A panic captured from one pool job, identifying which job blew up.
/// Returned by [`JobPool::try_run`] so a sweep can fail as an error
/// instead of tearing down the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Input index of the panicking job (the smallest observed index when
    /// several jobs panic).
    pub job: usize,
    /// The panic payload, if it was a string (the common `panic!` /
    /// `assert!` case).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job {} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Renders a caught panic payload (`&str` and `String` are the payloads
/// `panic!` and the assert macros produce).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-width pool of scoped workers. Creating one is free — threads
/// are spawned per [`JobPool::run`] call and joined before it returns, so
/// borrowed state (`&Program`, `&SimConfig`) flows into jobs without
/// `'static` bounds or `Arc`.
#[derive(Debug, Clone)]
pub struct JobPool {
    threads: usize,
}

impl JobPool {
    /// A pool that will use `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized by [`available_threads`].
    pub fn with_default_threads() -> Self {
        Self::new(available_threads())
    }

    /// Worker count this pool runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(jobs-1)` across the pool's workers and
    /// returns the results in input order.
    ///
    /// With one worker (or ≤ 1 job) this degenerates to a plain serial
    /// loop on the calling thread — no threads are spawned, so the serial
    /// and parallel paths share one code path for determinism tests.
    ///
    /// # Panics
    ///
    /// Re-raises the first (lowest-index) job panic after all workers have
    /// drained. Use [`JobPool::try_run`] to receive it as an error instead.
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_run(jobs, f) {
            Ok(out) => out,
            Err(p) => panic!("{p}"),
        }
    }

    /// [`JobPool::run`], except that a panicking job is caught and
    /// reported as a [`JobPanic`] instead of unwinding through the pool:
    /// the sweep that submitted the jobs fails, not the process. When
    /// several jobs panic, the smallest observed input index is reported;
    /// remaining workers stop claiming new chunks once a panic is
    /// observed.
    ///
    /// # Errors
    ///
    /// [`JobPanic`] if any job panicked.
    pub fn try_run<T, F>(&self, jobs: usize, f: F) -> Result<Vec<T>, JobPanic>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let guarded = |i: usize| {
            catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| JobPanic {
                job: i,
                message: panic_message(payload.as_ref()),
            })
        };
        if self.threads <= 1 || jobs <= 1 {
            return (0..jobs).map(guarded).collect();
        }
        let chunk = (jobs / (self.threads * 4)).clamp(1, MAX_CHUNK);
        let next = AtomicUsize::new(0);
        let bailed = AtomicBool::new(false);
        let first_panic: Mutex<Option<JobPanic>> = Mutex::new(None);
        let workers = self.threads.min(jobs);
        let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        while !bailed.load(Ordering::Relaxed) {
                            let start = next.fetch_add(chunk, Ordering::Relaxed);
                            if start >= jobs {
                                break;
                            }
                            for i in start..(start + chunk).min(jobs) {
                                match guarded(i) {
                                    Ok(t) => local.push((i, t)),
                                    Err(p) => {
                                        bailed.store(true, Ordering::Relaxed);
                                        let mut slot =
                                            first_panic.lock().expect("panic slot poisoned");
                                        if slot.as_ref().is_none_or(|prev| p.job < prev.job) {
                                            *slot = Some(p);
                                        }
                                        return local;
                                    }
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker itself never panics"))
                .collect()
        });
        if let Some(p) = first_panic.into_inner().expect("panic slot poisoned") {
            return Err(p);
        }
        // Merge worker-local results back into input order.
        let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        for part in parts {
            for (i, t) in part {
                debug_assert!(slots[i].is_none(), "job {i} produced twice");
                slots[i] = Some(t);
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every job produces exactly one result"))
            .collect())
    }

    /// [`JobPool::try_run`] with an explicit claim order: workers claim
    /// **one job at a time** following `order` (a permutation of
    /// `0..jobs`), so a caller that knows per-job weights can schedule
    /// longest-first and avoid a heavy job landing last on an otherwise
    /// drained pool. Results are still placed in **input order** — the
    /// claim order changes wall-clock balance, never the output. Meant
    /// for pre-coarsened work units (the claim counter is taken per job,
    /// not per chunk).
    ///
    /// With one worker (or ≤ 1 job) this runs serially in input order,
    /// byte-identical to [`JobPool::try_run`].
    ///
    /// # Panics
    ///
    /// In debug builds, if `order` is not a permutation of `0..jobs`.
    ///
    /// # Errors
    ///
    /// [`JobPanic`] if any job panicked (smallest input index wins).
    pub fn try_run_order<T, F>(
        &self,
        jobs: usize,
        order: &[usize],
        f: F,
    ) -> Result<Vec<T>, JobPanic>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        debug_assert_eq!(order.len(), jobs, "order must be a permutation of 0..jobs");
        debug_assert!(
            {
                let mut seen = vec![false; jobs];
                order
                    .iter()
                    .all(|&i| i < jobs && !std::mem::replace(&mut seen[i], true))
            },
            "order must be a permutation of 0..jobs"
        );
        let guarded = |i: usize| {
            catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| JobPanic {
                job: i,
                message: panic_message(payload.as_ref()),
            })
        };
        if self.threads <= 1 || jobs <= 1 {
            return (0..jobs).map(guarded).collect();
        }
        let next = AtomicUsize::new(0);
        let bailed = AtomicBool::new(false);
        let first_panic: Mutex<Option<JobPanic>> = Mutex::new(None);
        let workers = self.threads.min(jobs);
        let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        while !bailed.load(Ordering::Relaxed) {
                            let pos = next.fetch_add(1, Ordering::Relaxed);
                            if pos >= jobs {
                                break;
                            }
                            let i = order[pos];
                            match guarded(i) {
                                Ok(t) => local.push((i, t)),
                                Err(p) => {
                                    bailed.store(true, Ordering::Relaxed);
                                    let mut slot = first_panic.lock().expect("panic slot poisoned");
                                    if slot.as_ref().is_none_or(|prev| p.job < prev.job) {
                                        *slot = Some(p);
                                    }
                                    return local;
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker itself never panics"))
                .collect()
        });
        if let Some(p) = first_panic.into_inner().expect("panic slot poisoned") {
            return Err(p);
        }
        let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        for part in parts {
            for (i, t) in part {
                debug_assert!(slots[i].is_none(), "job {i} produced twice");
                slots[i] = Some(t);
            }
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every job produces exactly one result"))
            .collect())
    }
}

impl Default for JobPool {
    fn default() -> Self {
        Self::with_default_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_input_ordered_with_more_jobs_than_threads() {
        // 4 workers, 257 jobs (not a multiple of the chunk size): every
        // slot must hold its own job's value, in input order.
        let pool = JobPool::new(4);
        let out = pool.run(257, |i| i * i);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let pool = JobPool::new(3);
        let out = pool.run(100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_and_serial_fallback() {
        assert!(JobPool::new(8).run(0, |i| i).is_empty());
        assert_eq!(JobPool::new(1).run(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
        // threads=0 is clamped up to a serial pool rather than deadlocking.
        assert_eq!(JobPool::new(0).threads(), 1);
    }

    #[test]
    fn try_run_reports_a_job_panic_as_an_error() {
        for threads in [1, 4] {
            let pool = JobPool::new(threads);
            let err = pool
                .try_run(40, |i| {
                    assert!(i != 17, "job 17 is bad");
                    i
                })
                .unwrap_err();
            assert_eq!(err.job, 17, "{threads} threads");
            assert!(err.message.contains("job 17 is bad"), "{}", err.message);
            assert!(err.to_string().contains("pool job 17 panicked"));
        }
    }

    #[test]
    fn try_run_without_panics_matches_run() {
        let pool = JobPool::new(4);
        assert_eq!(
            pool.try_run(257, |i| i * 3).unwrap(),
            pool.run(257, |i| i * 3)
        );
        assert!(pool.try_run(0, |i| i).unwrap().is_empty());
    }

    #[test]
    fn run_still_panics_on_a_job_panic() {
        let pool = JobPool::new(2);
        let caught = std::panic::catch_unwind(|| {
            pool.run(8, |i| {
                assert!(i != 3, "boom");
                i
            })
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("pool job 3 panicked"), "{msg}");
    }

    #[test]
    fn try_run_order_matches_try_run_for_any_claim_order() {
        // Reversed and identity claim orders, serial and parallel pools:
        // the output must always be input-ordered and identical.
        for threads in [1, 4] {
            let pool = JobPool::new(threads);
            let reversed: Vec<usize> = (0..97).rev().collect();
            let identity: Vec<usize> = (0..97).collect();
            let want: Vec<usize> = (0..97).map(|i| i * 7).collect();
            for order in [&reversed, &identity] {
                let got = pool.try_run_order(97, order, |i| i * 7).unwrap();
                assert_eq!(got, want, "{threads} threads");
            }
            assert!(pool.try_run_order(0, &[], |i| i).unwrap().is_empty());
        }
    }

    #[test]
    fn try_run_order_runs_every_job_once_and_reports_panics() {
        let counter = AtomicU64::new(0);
        let pool = JobPool::new(3);
        let order: Vec<usize> = (0..50).rev().collect();
        let out = pool
            .try_run_order(50, &order, |i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            })
            .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(out, (0..50).collect::<Vec<_>>());
        let err = pool
            .try_run_order(50, &order, |i| assert!(i != 9, "job 9 is bad"))
            .unwrap_err();
        assert_eq!(err.job, 9);
        assert!(err.message.contains("job 9 is bad"));
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_threads(Some("8")), Some(8));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None, "zero means no override");
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(None), None);
        assert!(available_threads() >= 1);
    }
}
