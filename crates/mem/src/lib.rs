//! # nbl-mem — memory-system substrate
//!
//! The parts of the paper's memory model (§3.1) that live below the data
//! cache:
//!
//! * [`memory`] — the fully pipelined, constant-latency main memory, plus
//!   the §5.2 line-size-dependent penalty formula (14 cycles for the first
//!   16 bytes, 2 per additional 16);
//! * [`write_buffer`] — the free-retirement write buffer (with a throttled
//!   variant for ablation studies).

pub mod memory;
pub mod write_buffer;

pub use memory::{CompletedFetch, MemoryError, PipelinedMemory};
pub use write_buffer::{RetirePolicy, WriteBuffer, WriteBufferStats};
