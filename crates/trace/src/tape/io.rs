//! Versioned, checksummed binary (de)serialization of [`TraceTape`]s —
//! the byte format the artifact store persists under `results/store/`
//! (DESIGN.md §16).
//!
//! The encoding mirrors the in-memory struct-of-arrays layout so a tape
//! loads with **one contiguous read** and no per-entry decoding:
//!
//! ```text
//! magic "NBLT" | format_version u32
//! header: name_len u32 | load_latency u32 | static_spill_ops u64
//!         | len u64 | barriers u64 | flag_words u64
//!         | loads u64 | stores u64 | load_written u64
//! name bytes (UTF-8, name_len)
//! flag plane: mem_flags  (flag_words × 8 B)
//! streams:   kinds (len) | dsts (len) | srcs (2·len)
//!            | addrs (8·len) | formats (len) | barriers (4·barriers)
//! checksum u64 over every preceding byte
//! ```
//!
//! All integers are little-endian; multi-byte streams serialize value by
//! value, so the bytes are identical across host endianness. The
//! trailing checksum is [`checksum_bytes`](nbl_core::fingerprint::checksum_bytes)
//! — the same pinned mixing as
//! the store's content fingerprints — so truncation and bit flips are
//! detected before a corrupt tape can reach a replay. Decoding
//! additionally re-validates the structural invariants replay relies on
//! (barrier indices in range, flag plane sized and populated
//! consistently with the barrier index), because a checksum only
//! protects against *accidental* damage after a correct encode.
//!
//! Every failure is a typed [`TapeCodecError`](crate::tape::io::TapeCodecError);
//! the store maps any of
//! them to "quarantine the file and re-record" (never a panic, never a
//! wrong replay).

use super::{TapeKind, TraceTape};
use nbl_core::fingerprint::checksum_bytes;
use std::fmt;

/// Leading magic of a serialized tape.
pub const TAPE_MAGIC: [u8; 4] = *b"NBLT";

/// Current tape format version. Bump on any change to the byte layout
/// (or to the checksum/fingerprint scheme, see
/// [`nbl_core::fingerprint::FINGERPRINT_VERSION`]); the store embeds the
/// version in artifact filenames, so old files are ignored rather than
/// misparsed.
pub const TAPE_FORMAT_VERSION: u32 = 1;

/// Why a serialized tape failed to decode. The artifact store treats
/// every variant the same way — quarantine and re-record — but the
/// variant names the failure for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapeCodecError {
    /// The buffer does not start with [`TAPE_MAGIC`].
    BadMagic,
    /// The format version is not [`TAPE_FORMAT_VERSION`] (a newer or
    /// older writer); the payload is not decodable by this build.
    UnsupportedVersion(u32),
    /// The buffer ends before the structure it declares (a cut-short
    /// write or a length field the buffer cannot satisfy).
    Truncated,
    /// The buffer is longer than the structure it declares.
    TrailingBytes,
    /// The trailing checksum does not match the payload (bit rot, torn
    /// write, or any in-place mutation).
    ChecksumMismatch,
    /// A kind byte is outside the [`TapeKind`] encoding.
    BadKind(u8),
    /// Header fields are mutually inconsistent (flag plane sized or
    /// populated out of step with the barrier index, barrier entry out
    /// of range, non-UTF-8 name) — the invariants replay relies on.
    HeaderMismatch,
}

impl fmt::Display for TapeCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapeCodecError::BadMagic => write!(f, "not a tape artifact (bad magic)"),
            TapeCodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported tape format version {v} (this build reads v{TAPE_FORMAT_VERSION})"
                )
            }
            TapeCodecError::Truncated => write!(f, "tape artifact truncated"),
            TapeCodecError::TrailingBytes => write!(f, "tape artifact has trailing bytes"),
            TapeCodecError::ChecksumMismatch => write!(f, "tape artifact checksum mismatch"),
            TapeCodecError::BadKind(b) => write!(f, "tape artifact has invalid kind byte {b}"),
            TapeCodecError::HeaderMismatch => {
                write!(f, "tape artifact header is internally inconsistent")
            }
        }
    }
}

impl std::error::Error for TapeCodecError {}

/// Fixed bytes before the name: magic + version + 2 `u32` + 7 `u64`.
const FIXED_HEADER_BYTES: usize = 4 + 4 + 4 + 4 + 7 * 8;

/// Bytes of the whole artifact for a tape of `n` entries, `nb` barriers,
/// `nf` flag words and a `name_len`-byte name (including the checksum).
fn artifact_len(n: usize, nb: usize, nf: usize, name_len: usize) -> Option<usize> {
    // 13 B/inst + 4 B/barrier + 8 B/flag word, same arithmetic as
    // `TraceTape::bytes`, plus header and checksum.
    let streams = n
        .checked_mul(13)?
        .checked_add(nb.checked_mul(4)?)?
        .checked_add(nf.checked_mul(8)?)?;
    FIXED_HEADER_BYTES
        .checked_add(name_len)?
        .checked_add(streams)?
        .checked_add(8)
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked cursor over the serialized buffer.
struct Reader<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TapeCodecError> {
        let end = self.off.checked_add(n).ok_or(TapeCodecError::Truncated)?;
        let slice = self
            .buf
            .get(self.off..end)
            .ok_or(TapeCodecError::Truncated)?;
        self.off = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, TapeCodecError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, TapeCodecError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn len_u64(&mut self) -> Result<usize, TapeCodecError> {
        usize::try_from(self.u64()?).map_err(|_| TapeCodecError::Truncated)
    }
}

impl TraceTape {
    /// Serializes the tape into the versioned, checksummed byte format
    /// (see the [module docs](self) for the layout). The encoding is a
    /// pure function of the tape's content — no clocks, paths or
    /// process state — so equal tapes always produce equal bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let (n, nb, nf) = (self.kinds.len(), self.barriers.len(), self.mem_flags.len());
        let name = self.name.as_bytes();
        let cap = artifact_len(n, nb, nf, name.len()).unwrap_or(FIXED_HEADER_BYTES);
        let mut out = Vec::with_capacity(cap);
        out.extend_from_slice(&TAPE_MAGIC);
        push_u32(&mut out, TAPE_FORMAT_VERSION);
        push_u32(&mut out, name.len() as u32);
        push_u32(&mut out, self.load_latency);
        push_u64(&mut out, self.static_spill_ops as u64);
        push_u64(&mut out, n as u64);
        push_u64(&mut out, nb as u64);
        push_u64(&mut out, nf as u64);
        push_u64(&mut out, self.loads);
        push_u64(&mut out, self.stores);
        push_u64(&mut out, self.load_written);
        out.extend_from_slice(name);
        for &w in &self.mem_flags {
            push_u64(&mut out, w);
        }
        for &k in &self.kinds {
            out.push(k as u8);
        }
        out.extend_from_slice(&self.dsts);
        for &[a, b] in &self.srcs {
            out.push(a);
            out.push(b);
        }
        for &a in &self.addrs {
            push_u64(&mut out, a);
        }
        out.extend_from_slice(&self.formats);
        for &b in &self.barriers {
            push_u32(&mut out, b);
        }
        let sum = checksum_bytes(&out);
        push_u64(&mut out, sum);
        out
    }

    /// Decodes a serialized tape, verifying the magic, version, declared
    /// sizes, trailing checksum, and the structural invariants replay
    /// relies on. The result is [`PartialEq`]-equal to the tape that was
    /// encoded (every field round-trips, including the recording-state
    /// bitmap), so a replay from a loaded tape is bit-identical to a
    /// replay from the original recording.
    ///
    /// # Errors
    ///
    /// [`TapeCodecError`] on any damage or version skew; the caller
    /// (the artifact store) quarantines the file and re-records.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceTape, TapeCodecError> {
        let mut r = Reader { buf: bytes, off: 0 };
        if r.take(4)? != TAPE_MAGIC {
            return Err(TapeCodecError::BadMagic);
        }
        let version = r.u32()?;
        if version != TAPE_FORMAT_VERSION {
            return Err(TapeCodecError::UnsupportedVersion(version));
        }
        let name_len = usize::try_from(r.u32()?).map_err(|_| TapeCodecError::Truncated)?;
        let load_latency = r.u32()?;
        let static_spill_ops = r.len_u64()?;
        let n = r.len_u64()?;
        let nb = r.len_u64()?;
        let nf = r.len_u64()?;
        let loads = r.u64()?;
        let stores = r.u64()?;
        let load_written = r.u64()?;

        // The declared structure must account for the buffer exactly;
        // checking before the checksum distinguishes truncation from rot.
        match artifact_len(n, nb, nf, name_len) {
            Some(total) if total == bytes.len() => {}
            Some(total) if total > bytes.len() => return Err(TapeCodecError::Truncated),
            Some(_) => return Err(TapeCodecError::TrailingBytes),
            None => return Err(TapeCodecError::Truncated),
        }
        let body_len = bytes.len() - 8;
        let stored = {
            let mut b = [0u8; 8];
            b.copy_from_slice(bytes.get(body_len..).ok_or(TapeCodecError::Truncated)?);
            u64::from_le_bytes(b)
        };
        let body = bytes.get(..body_len).ok_or(TapeCodecError::Truncated)?;
        if checksum_bytes(body) != stored {
            return Err(TapeCodecError::ChecksumMismatch);
        }
        if nf != nb.div_ceil(64) {
            return Err(TapeCodecError::HeaderMismatch);
        }

        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| TapeCodecError::HeaderMismatch)?
            .to_string();
        let mut mem_flags = Vec::with_capacity(nf);
        for _ in 0..nf {
            mem_flags.push(r.u64()?);
        }
        let mut kinds = Vec::with_capacity(n);
        for &b in r.take(n)? {
            kinds.push(match b {
                0 => TapeKind::Alu,
                1 => TapeKind::Branch,
                2 => TapeKind::Load,
                3 => TapeKind::Store,
                other => return Err(TapeCodecError::BadKind(other)),
            });
        }
        let dsts = r.take(n)?.to_vec();
        let mut srcs = Vec::with_capacity(n);
        for pair in r
            .take(n.checked_mul(2).ok_or(TapeCodecError::Truncated)?)?
            .chunks_exact(2)
        {
            let mut s = [0u8; 2];
            s.copy_from_slice(pair);
            srcs.push(s);
        }
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            addrs.push(r.u64()?);
        }
        let formats = r.take(n)?.to_vec();
        let mut barriers = Vec::with_capacity(nb);
        for _ in 0..nb {
            barriers.push(r.u32()?);
        }

        // Structural invariants behind the replay loop's unchecked
        // indexing: every barrier names a real entry, and the flag plane
        // sets bits only at real barrier slots, exactly where the
        // barrier index is flagged as memory.
        for (slot, &entry) in barriers.iter().enumerate() {
            if super::barrier_index(entry) >= n {
                return Err(TapeCodecError::HeaderMismatch);
            }
            let word = mem_flags.get(slot / 64).copied().unwrap_or(0);
            if (word >> (slot % 64)) & 1 != u64::from(super::barrier_is_mem(entry)) {
                return Err(TapeCodecError::HeaderMismatch);
            }
        }
        if let Some(last) = mem_flags.last() {
            let used = nb - (nf - 1) * 64;
            if used < 64 && last >> used != 0 {
                return Err(TapeCodecError::HeaderMismatch);
            }
        }

        Ok(TraceTape {
            name,
            load_latency,
            static_spill_ops,
            kinds,
            dsts,
            srcs,
            addrs,
            formats,
            barriers,
            mem_flags,
            load_written,
            loads,
            stores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbl_core::inst::DynInst;
    use nbl_core::types::{Addr, LoadFormat, PhysReg};

    /// A small mixed tape: loads, stores, ALU chains, barriers spanning
    /// more than one flag word.
    fn sample_tape() -> TraceTape {
        let mut tape = TraceTape::with_capacity("sample", 6, 2, 400);
        for i in 0..400u64 {
            let r = PhysReg::from_dense((i % 48) as usize);
            let r2 = PhysReg::from_dense(((i + 7) % 48) as usize);
            match i % 5 {
                0 => tape.push(DynInst::load(Addr(0x1000 + i * 8), r, LoadFormat::WORD)),
                1 => tape.push(DynInst::alu(r2, [Some(r), None])),
                2 => tape.push(DynInst::store(Addr(0x9000 + i * 4), Some(r2))),
                3 => tape.push(DynInst::branch([Some(r2), None])),
                _ => tape.push(DynInst::alu(r, [None, None])),
            }
        }
        tape
    }

    #[test]
    fn round_trip_preserves_equality() {
        let tape = sample_tape();
        let bytes = tape.to_bytes();
        let back = TraceTape::from_bytes(&bytes).unwrap();
        assert_eq!(back, tape, "decode must invert encode exactly");
        assert_eq!(back.name(), "sample");
        assert_eq!(back.load_latency(), 6);
        assert_eq!(back.static_spill_ops(), 2);
        assert_eq!(back.loads(), tape.loads());
        assert_eq!(back.stores(), tape.stores());
        // Encoding is a pure function of content.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn empty_tape_round_trips() {
        let tape = TraceTape::with_capacity("empty", 1, 0, 0);
        let back = TraceTape::from_bytes(&tape.to_bytes()).unwrap();
        assert_eq!(back, tape);
        assert!(back.is_empty());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample_tape().to_bytes();
        for cut in 0..bytes.len() {
            let err = TraceTape::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample_tape().to_bytes();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            assert!(
                TraceTape::from_bytes(&bad).is_err(),
                "bit flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn specific_failure_modes_name_themselves() {
        let bytes = sample_tape().to_bytes();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            TraceTape::from_bytes(&bad_magic),
            Err(TapeCodecError::BadMagic)
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xfe;
        assert!(matches!(
            TraceTape::from_bytes(&bad_version),
            Err(TapeCodecError::UnsupportedVersion(_))
        ));
        let mut flipped_payload = bytes.clone();
        let mid = bytes.len() / 2;
        flipped_payload[mid] ^= 0x40;
        assert_eq!(
            TraceTape::from_bytes(&flipped_payload),
            Err(TapeCodecError::ChecksumMismatch)
        );
        assert_eq!(
            TraceTape::from_bytes(&bytes[..bytes.len() - 3]),
            Err(TapeCodecError::Truncated)
        );
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0, 0, 0]);
        assert_eq!(
            TraceTape::from_bytes(&trailing),
            Err(TapeCodecError::TrailingBytes)
        );
        assert_eq!(TraceTape::from_bytes(b""), Err(TapeCodecError::Truncated));
        // Errors render.
        for e in [
            TapeCodecError::BadMagic,
            TapeCodecError::UnsupportedVersion(9),
            TapeCodecError::Truncated,
            TapeCodecError::TrailingBytes,
            TapeCodecError::ChecksumMismatch,
            TapeCodecError::BadKind(7),
            TapeCodecError::HeaderMismatch,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

/// Property suite for the codec, gated behind the off-by-default
/// `codec-prop` feature (run with
/// `cargo test -p nbl-trace --features codec-prop`), mirroring the
/// `scan-prop` suite: randomized tapes from the in-tree
/// [`SplitMix64`](nbl_core::rng::SplitMix64), zero external deps.
#[cfg(all(test, feature = "codec-prop"))]
mod codec_prop {
    use super::*;
    use nbl_core::inst::DynInst;
    use nbl_core::rng::SplitMix64;
    use nbl_core::types::{Addr, LoadFormat, PhysReg};

    /// One random instruction; `mem_bias`/1000 is the memory-op rate.
    fn random_inst(rng: &mut SplitMix64, mem_bias: u64) -> DynInst {
        let reg = |rng: &mut SplitMix64| PhysReg::from_dense(rng.next_below(64) as usize);
        let maybe_reg = |rng: &mut SplitMix64| {
            if rng.next_below(2) == 0 {
                None
            } else {
                Some(reg(rng))
            }
        };
        if rng.next_below(1000) < mem_bias {
            if rng.next_below(2) == 0 {
                DynInst::load(Addr(rng.next_below(1 << 40)), reg(rng), LoadFormat::WORD)
            } else {
                DynInst::store(Addr(rng.next_below(1 << 40)), maybe_reg(rng))
            }
        } else if rng.next_below(4) == 0 {
            DynInst::branch([maybe_reg(rng), maybe_reg(rng)])
        } else {
            DynInst::alu(reg(rng), [maybe_reg(rng), maybe_reg(rng)])
        }
    }

    #[test]
    fn random_tapes_round_trip_bit_identically() {
        let mut rng = SplitMix64::new(0xc0dec);
        for &mem_bias in &[0, 40, 500, 1000] {
            for case in 0..24 {
                let len = rng.next_below(700) as usize;
                let mut tape = TraceTape::with_capacity("prop", 1 + case % 20, 0, len);
                for _ in 0..len {
                    let inst = random_inst(&mut rng, mem_bias);
                    tape.push(inst);
                }
                let bytes = tape.to_bytes();
                let back = TraceTape::from_bytes(&bytes)
                    .unwrap_or_else(|e| panic!("bias {mem_bias} case {case}: {e}"));
                assert_eq!(back, tape, "bias {mem_bias} case {case}");
                assert_eq!(bytes, back.to_bytes());
            }
        }
    }

    #[test]
    fn random_corruption_never_decodes_to_a_different_tape() {
        let mut rng = SplitMix64::new(0xdeadc0de);
        let mut tape = TraceTape::with_capacity("prop", 3, 1, 300);
        for _ in 0..300 {
            let inst = random_inst(&mut rng, 400);
            tape.push(inst);
        }
        let bytes = tape.to_bytes();
        for _ in 0..600 {
            let mut bad = bytes.clone();
            let pos = rng.next_below(bytes.len() as u64) as usize;
            let bit = rng.next_below(8) as u32;
            bad[pos] ^= 1 << bit;
            // Either a typed error, or (if the flip hit nothing the
            // checksum covers — impossible here, everything is covered)
            // the identical tape. Never a silently different tape.
            match TraceTape::from_bytes(&bad) {
                Err(_) => {}
                Ok(t) => assert_eq!(
                    t, tape,
                    "corruption at byte {pos} bit {bit} went undetected"
                ),
            }
        }
        // Random truncations, too.
        for _ in 0..200 {
            let cut = rng.next_below(bytes.len() as u64) as usize;
            assert!(TraceTape::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
