//! Miss-lifecycle event tracing for the memory system.
//!
//! Every access that enters the miss pipeline of a
//! [`crate::system::MemorySystem`] moves through an explicit transaction
//! lifecycle:
//!
//! ```text
//! Issued ──► Merged              (secondary miss rides an in-flight fetch)
//!        ├─► Rejected            (structural hazard; the access retries)
//!        └─► FetchLaunched ──► Filled ──► TargetsWoken
//! ```
//!
//! Plain hits terminate at access time and produce no events. Tracing is
//! **off by default**: the memory system holds an `Option<Box<MemTrace>>`
//! and the only cost when disabled is one pointer null check per access —
//! no event is even constructed.
//!
//! The observer side is the [`MemEventSink`] trait; [`RingRecorder`] keeps
//! the last N raw events for inspection, and [`MissLifecycleStats`]
//! aggregates the per-run summary the paper-adjacent delayed-hits analyses
//! need: merge depth per fetch, fill-to-wake fan-out, and time-in-flight
//! histograms. [`MemTrace`] bundles both.

use nbl_core::mshr::Rejection;
use nbl_core::types::{BlockAddr, Cycle};
use std::collections::BTreeMap;

/// Which port the traced access came in on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load (register or other read destination).
    Load,
    /// A store (write-allocate misses enter the miss pipeline too).
    Store,
}

/// Which hierarchy level services a launched fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// The optional second-level cache holds the line (short penalty).
    L2Hit,
    /// The pipelined main memory (full miss penalty).
    Memory,
}

/// Why a speculatively issued load was thrown back into the replay queue
/// instead of completing — the subset of XiangShan's `LoadReplayCauses`
/// this model implements, declared in priority order (an access that
/// qualifies for several causes reports the first): store-to-load
/// forwarding failure (`C_FF`), a data-cache resource NACK (`C_DR`), a
/// real data-cache miss (`C_DM`, which waits for the fill rather than
/// spinning), and a load-pipeline bank conflict (`C_BC`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayCause {
    /// Store-to-load forwarding failed: the load overlaps a store still
    /// in flight and the data could not be forwarded — a *slow* replay
    /// (the load re-executes from the replay queue after the store
    /// resolves).
    ForwardFail,
    /// The data cache NACKed the access (no MSHR/resource to track it) —
    /// a *fast* replay; a second NACK falls back to waiting for a fill.
    DcacheReplay,
    /// The access genuinely missed: the load completes out of order when
    /// the fill arrives, and any consumer stall is attributed here.
    DcacheMiss,
    /// Two accesses hit the same data-array bank in the same busy window —
    /// a *fast* replay through the load pipeline.
    BankConflict,
}

impl ReplayCause {
    /// Number of modeled causes (array dimension for per-cause counters).
    pub const COUNT: usize = 4;

    /// Every cause, in priority order.
    pub const ALL: [ReplayCause; ReplayCause::COUNT] = [
        ReplayCause::ForwardFail,
        ReplayCause::DcacheReplay,
        ReplayCause::DcacheMiss,
        ReplayCause::BankConflict,
    ];

    /// Dense index of this cause (its position in [`ReplayCause::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ReplayCause::ForwardFail => 0,
            ReplayCause::DcacheReplay => 1,
            ReplayCause::DcacheMiss => 2,
            ReplayCause::BankConflict => 3,
        }
    }

    /// Stable short label for CSV/JSON emitters.
    pub fn label(self) -> &'static str {
        match self {
            ReplayCause::ForwardFail => "fwd_fail",
            ReplayCause::DcacheReplay => "dcache_rep",
            ReplayCause::DcacheMiss => "dcache_miss",
            ReplayCause::BankConflict => "bank_conflict",
        }
    }
}

/// One step of a memory transaction's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemEvent {
    /// A non-hit access entered the miss pipeline. `txn` identifies this
    /// access among the trace's events; a structurally rejected access that
    /// retries re-enters with a fresh id.
    Issued {
        /// Transaction id.
        txn: u64,
        /// Load or store.
        kind: AccessKind,
        /// The missing block.
        block: BlockAddr,
        /// Access time.
        at: Cycle,
    },
    /// The transaction merged into an already in-flight fetch of its block
    /// (a secondary miss — the "delayed hit" of Manohar et al.).
    Merged {
        /// Transaction id.
        txn: u64,
        /// The in-transit block.
        block: BlockAddr,
        /// Merge time.
        at: Cycle,
    },
    /// No MSHR resource could track the transaction; the processor must
    /// wait for a fill and retry.
    Rejected {
        /// Transaction id.
        txn: u64,
        /// The missing block.
        block: BlockAddr,
        /// Why the MSHR organization refused it.
        reason: Rejection,
        /// Rejection time.
        at: Cycle,
    },
    /// A primary miss launched a fetch down the hierarchy.
    FetchLaunched {
        /// Transaction id.
        txn: u64,
        /// The fetched block.
        block: BlockAddr,
        /// Launch time.
        at: Cycle,
        /// When the data will arrive.
        fill_at: Cycle,
        /// Which level services it.
        level: ServiceLevel,
    },
    /// Fetch data arrived and the line was installed in the L1.
    Filled {
        /// The filled block.
        block: BlockAddr,
        /// Fill time.
        at: Cycle,
    },
    /// The fill woke its waiting targets (registers / write-buffer slots),
    /// all simultaneously.
    TargetsWoken {
        /// The filled block.
        block: BlockAddr,
        /// Fill time.
        at: Cycle,
        /// How many targets were waiting.
        targets: u32,
    },
    /// A speculatively issued load was thrown back for replay (or, for
    /// [`ReplayCause::DcacheMiss`], completed out of order behind a fill) —
    /// only the replaying pipeline model emits this.
    LoadReplayed {
        /// The accessed block.
        block: BlockAddr,
        /// Why the load replayed.
        cause: ReplayCause,
        /// Replay time.
        at: Cycle,
    },
}

impl MemEvent {
    /// The cycle the event occurred at.
    pub fn at(&self) -> Cycle {
        match *self {
            MemEvent::Issued { at, .. }
            | MemEvent::Merged { at, .. }
            | MemEvent::Rejected { at, .. }
            | MemEvent::FetchLaunched { at, .. }
            | MemEvent::Filled { at, .. }
            | MemEvent::TargetsWoken { at, .. }
            | MemEvent::LoadReplayed { at, .. } => at,
        }
    }
}

/// An observer of memory-system lifecycle events.
pub trait MemEventSink {
    /// Records one event. Called in simulation order.
    fn record(&mut self, event: &MemEvent);
}

/// Keeps the most recent events in a fixed-capacity ring.
#[derive(Debug, Clone, PartialEq)]
pub struct RingRecorder {
    buf: Vec<MemEvent>,
    head: usize,
    total: u64,
    capacity: usize,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` events (the oldest are
    /// overwritten). A zero capacity records nothing but still counts.
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder {
            buf: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            total: 0,
            capacity,
        }
    }

    /// Total events observed (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &MemEvent> {
        let (wrapped, recent) = self.buf.split_at(self.head.min(self.buf.len()));
        recent.iter().chain(wrapped.iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl MemEventSink for RingRecorder {
    fn record(&mut self, event: &MemEvent) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(*event);
        } else {
            self.buf[self.head] = *event;
            self.head = (self.head + 1) % self.capacity;
        }
    }
}

/// Bucket count for the lifecycle histograms (`merge depth`, `fan-out`);
/// the final bucket saturates.
pub const DEPTH_BUCKETS: usize = 17;

/// Bucket count for the time-in-flight histogram; the final bucket
/// saturates.
pub const FLIGHT_BUCKETS: usize = 65;

/// Per-run summary of the miss lifecycle: how often misses merge, how many
/// targets each fill wakes, and how long fetches stay in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct MissLifecycleStats {
    /// Transactions that entered the miss pipeline.
    pub issued: u64,
    /// Transactions that merged into an in-flight fetch.
    pub merged: u64,
    /// Transactions structurally rejected.
    pub rejected: u64,
    /// Fetches launched.
    pub fetches: u64,
    /// Fetches launched that the L2 serviced (0 without an L2).
    pub l2_serviced: u64,
    /// Lines filled.
    pub fills: u64,
    /// Total targets woken by fills.
    pub targets_woken: u64,
    /// `merge_depth[d]` = fetches whose line absorbed `d` secondary misses
    /// while in flight (last bucket saturates).
    pub merge_depth: [u64; DEPTH_BUCKETS],
    /// `fanout[n]` = fills that woke exactly `n` targets (last bucket
    /// saturates).
    pub fanout: [u64; DEPTH_BUCKETS],
    /// `time_in_flight[c]` = fetches that spent `c` cycles between launch
    /// and fill (last bucket saturates).
    pub time_in_flight: [u64; FLIGHT_BUCKETS],
    /// Sum of in-flight cycles across filled fetches (for the mean).
    pub flight_cycles: u64,
    /// Longest observed launch-to-fill time.
    pub max_flight: u64,
    /// `replays[ReplayCause::index()]` = loads replayed for that cause
    /// (all zero outside the replaying pipeline model).
    pub replays: [u64; ReplayCause::COUNT],
    /// Fetches in flight at the moment of observation (launch time and
    /// merges absorbed so far).
    in_flight: BTreeMap<BlockAddr, (Cycle, u32)>,
}

impl Default for MissLifecycleStats {
    fn default() -> Self {
        MissLifecycleStats {
            issued: 0,
            merged: 0,
            rejected: 0,
            fetches: 0,
            l2_serviced: 0,
            fills: 0,
            targets_woken: 0,
            merge_depth: [0; DEPTH_BUCKETS],
            fanout: [0; DEPTH_BUCKETS],
            time_in_flight: [0; FLIGHT_BUCKETS],
            flight_cycles: 0,
            max_flight: 0,
            replays: [0; ReplayCause::COUNT],
            in_flight: BTreeMap::new(),
        }
    }
}

impl MissLifecycleStats {
    /// A fresh, empty summary.
    pub fn new() -> MissLifecycleStats {
        MissLifecycleStats::default()
    }

    /// Total events observed.
    pub fn total_events(&self) -> u64 {
        self.issued
            + self.merged
            + self.rejected
            + self.fetches
            + 2 * self.fills
            + self.total_replays()
    }

    /// Loads replayed across every cause.
    pub fn total_replays(&self) -> u64 {
        self.replays.iter().sum()
    }

    /// Mean secondary misses absorbed per fetch.
    pub fn mean_merge_depth(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.merged as f64 / self.fetches as f64
        }
    }

    /// Mean targets woken per fill.
    pub fn mean_fanout(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.targets_woken as f64 / self.fills as f64
        }
    }

    /// Mean launch-to-fill time in cycles.
    pub fn mean_time_in_flight(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.flight_cycles as f64 / self.fills as f64
        }
    }
}

impl MemEventSink for MissLifecycleStats {
    fn record(&mut self, event: &MemEvent) {
        match *event {
            MemEvent::Issued { .. } => self.issued += 1,
            MemEvent::Merged { block, .. } => {
                self.merged += 1;
                if let Some((_, merges)) = self.in_flight.get_mut(&block) {
                    *merges += 1;
                }
            }
            MemEvent::Rejected { .. } => self.rejected += 1,
            MemEvent::FetchLaunched {
                block, at, level, ..
            } => {
                self.fetches += 1;
                if level == ServiceLevel::L2Hit {
                    self.l2_serviced += 1;
                }
                self.in_flight.insert(block, (at, 0));
            }
            MemEvent::Filled { block, at } => {
                self.fills += 1;
                if let Some((launched, merges)) = self.in_flight.remove(&block) {
                    let flight = at.since(launched);
                    self.flight_cycles += flight;
                    self.max_flight = self.max_flight.max(flight);
                    self.time_in_flight[(flight as usize).min(FLIGHT_BUCKETS - 1)] += 1;
                    self.merge_depth[(merges as usize).min(DEPTH_BUCKETS - 1)] += 1;
                }
            }
            MemEvent::TargetsWoken { targets, .. } => {
                self.targets_woken += u64::from(targets);
                self.fanout[(targets as usize).min(DEPTH_BUCKETS - 1)] += 1;
            }
            MemEvent::LoadReplayed { cause, .. } => {
                self.replays[cause.index()] += 1;
            }
        }
    }
}

/// The memory system's built-in observer: a [`RingRecorder`] of the most
/// recent raw events plus the [`MissLifecycleStats`] aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct MemTrace {
    /// The last-N raw events.
    pub ring: RingRecorder,
    /// The per-run aggregate.
    pub stats: MissLifecycleStats,
}

impl MemTrace {
    /// A trace retaining the last `ring_capacity` raw events.
    pub fn new(ring_capacity: usize) -> MemTrace {
        MemTrace {
            ring: RingRecorder::new(ring_capacity),
            stats: MissLifecycleStats::new(),
        }
    }
}

impl Default for MemTrace {
    fn default() -> Self {
        MemTrace::new(0)
    }
}

impl MemEventSink for MemTrace {
    fn record(&mut self, event: &MemEvent) {
        self.ring.record(event);
        self.stats.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(block: u64, at: u64, fill_at: u64) -> [MemEvent; 2] {
        [
            MemEvent::Issued {
                txn: block,
                kind: AccessKind::Load,
                block: BlockAddr(block),
                at: Cycle(at),
            },
            MemEvent::FetchLaunched {
                txn: block,
                block: BlockAddr(block),
                at: Cycle(at),
                fill_at: Cycle(fill_at),
                level: ServiceLevel::Memory,
            },
        ]
    }

    fn fill(block: u64, at: u64, targets: u32) -> [MemEvent; 2] {
        [
            MemEvent::Filled {
                block: BlockAddr(block),
                at: Cycle(at),
            },
            MemEvent::TargetsWoken {
                block: BlockAddr(block),
                at: Cycle(at),
                targets,
            },
        ]
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut ring = RingRecorder::new(3);
        for i in 0..5u64 {
            ring.record(&MemEvent::Filled {
                block: BlockAddr(i),
                at: Cycle(i),
            });
        }
        assert_eq!(ring.total(), 5);
        assert_eq!(ring.len(), 3);
        let kept: Vec<u64> = ring
            .events()
            .map(|e| match e {
                MemEvent::Filled { block, .. } => block.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest first, oldest overwritten");
    }

    #[test]
    fn zero_capacity_ring_only_counts() {
        let mut ring = RingRecorder::new(0);
        ring.record(&MemEvent::Filled {
            block: BlockAddr(1),
            at: Cycle(1),
        });
        assert_eq!(ring.total(), 1);
        assert!(ring.is_empty());
    }

    #[test]
    fn stats_track_merge_depth_and_flight_time() {
        let mut s = MissLifecycleStats::new();
        for e in launch(7, 0, 16) {
            s.record(&e);
        }
        // Two secondary misses merge into the fetch of block 7.
        for txn in [10, 11] {
            s.record(&MemEvent::Issued {
                txn,
                kind: AccessKind::Load,
                block: BlockAddr(7),
                at: Cycle(txn),
            });
            s.record(&MemEvent::Merged {
                txn,
                block: BlockAddr(7),
                at: Cycle(txn),
            });
        }
        for e in fill(7, 16, 3) {
            s.record(&e);
        }
        assert_eq!(s.issued, 3);
        assert_eq!(s.merged, 2);
        assert_eq!(s.fetches, 1);
        assert_eq!(s.fills, 1);
        assert_eq!(s.targets_woken, 3);
        assert_eq!(s.merge_depth[2], 1);
        assert_eq!(s.fanout[3], 1);
        assert_eq!(s.time_in_flight[16], 1);
        assert_eq!(s.max_flight, 16);
        assert!((s.mean_merge_depth() - 2.0).abs() < 1e-12);
        assert!((s.mean_fanout() - 3.0).abs() < 1e-12);
        assert!((s.mean_time_in_flight() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn histograms_saturate() {
        let mut s = MissLifecycleStats::new();
        for e in launch(1, 0, 500) {
            s.record(&e);
        }
        for e in fill(1, 500, 99) {
            s.record(&e);
        }
        assert_eq!(s.time_in_flight[FLIGHT_BUCKETS - 1], 1);
        assert_eq!(s.fanout[DEPTH_BUCKETS - 1], 1);
        assert_eq!(s.max_flight, 500);
    }

    #[test]
    fn rejection_counts() {
        let mut s = MissLifecycleStats::new();
        s.record(&MemEvent::Issued {
            txn: 0,
            kind: AccessKind::Load,
            block: BlockAddr(1),
            at: Cycle(0),
        });
        s.record(&MemEvent::Rejected {
            txn: 0,
            block: BlockAddr(1),
            reason: Rejection::NoFreeMshr,
            at: Cycle(0),
        });
        assert_eq!(s.rejected, 1);
        assert_eq!(s.total_events(), 2);
    }

    #[test]
    fn trace_bundles_ring_and_stats() {
        let mut t = MemTrace::new(8);
        for e in launch(3, 2, 18) {
            t.record(&e);
        }
        for e in fill(3, 18, 1) {
            t.record(&e);
        }
        assert_eq!(t.ring.total(), 4);
        assert_eq!(t.stats.fetches, 1);
        assert_eq!(t.stats.total_events(), 4);
        assert_eq!(t.ring.events().last().unwrap().at(), Cycle(18));
    }
}
