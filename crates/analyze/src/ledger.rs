//! The exhaustiveness ledger: declared enums / registries whose variants
//! must appear in each of their consumer surfaces. Adding a
//! `ReplacementKind` policy, a `MemEvent` lifecycle stage, a `SimError`
//! case or a new exhibit without wiring its outputs (JSON emitter,
//! report table, docs, exhibit help) fails `nbl-analyze --deny`.
//!
//! The contract (documented in DESIGN.md §13): for every [`LedgerEntry`],
//! the analyzer lexes the declaring file, extracts the variant list (or
//! the `name: "…"` strings of the exhibit registry), and checks each
//! variant appears — as a word-boundary token — in every surface file.
//! Entries whose declaring file is absent under the analysis root are
//! skipped, so fixture trees exercise only what they stage.

use crate::lexer::{lex, TokKind};
use crate::report::Finding;
use crate::scan::match_brace;
use std::path::Path;

/// How variants are extracted from the declaring file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerKind {
    /// `enum <name> { … }` — variant identifiers.
    Enum,
    /// The exhibit registry — every `name: "…"` string literal.
    ExhibitNames,
    /// A fixed list of entry-point identifiers. Each must exist in the
    /// declaring file (as a word-boundary token) and in every surface —
    /// used to pin the fused group-step API to its consumers and docs.
    EntryPoints(&'static [&'static str]),
}

/// One ledger entry: a declaration plus the surfaces that must mention
/// every variant.
#[derive(Debug, Clone, Copy)]
pub struct LedgerEntry {
    /// The enum name (or registry const name, for display).
    pub name: &'static str,
    /// Repo-relative path of the declaring file.
    pub decl_file: &'static str,
    /// Extraction mode.
    pub kind: LedgerKind,
    /// Repo-relative paths of the consumer surfaces.
    pub surfaces: &'static [&'static str],
}

/// The ledger itself. Surfaces are deliberately the places a reviewer
/// would check by hand: the policy test suite and design doc for
/// replacement policies, the emit sites and design doc for events, the
/// design doc's error table for `SimError`, the issue-policy mapping and
/// replay-penalty table for the processor-model and replay-cause enums,
/// the design doc's artifact-store section (§16) for the store and
/// codec error enums, the design doc's fusion section (§17) for the
/// group-step entry points and `GroupError`, and the experiments guide
/// for the exhibit registry.
pub const LEDGER: &[LedgerEntry] = &[
    LedgerEntry {
        name: "ReplacementKind",
        decl_file: "crates/core/src/tag_array.rs",
        kind: LedgerKind::Enum,
        surfaces: &["tests/replacement_policies.rs", "DESIGN.md"],
    },
    LedgerEntry {
        name: "MemEvent",
        decl_file: "crates/mem/src/event.rs",
        kind: LedgerKind::Enum,
        surfaces: &["crates/mem/src/system.rs", "DESIGN.md"],
    },
    LedgerEntry {
        name: "SimError",
        decl_file: "crates/sim/src/driver.rs",
        kind: LedgerKind::Enum,
        surfaces: &["DESIGN.md"],
    },
    LedgerEntry {
        name: "ProcessorKind",
        decl_file: "crates/sim/src/config.rs",
        kind: LedgerKind::Enum,
        surfaces: &["crates/cpu/src/issue.rs", "DESIGN.md"],
    },
    LedgerEntry {
        name: "ReplayCause",
        decl_file: "crates/mem/src/event.rs",
        kind: LedgerKind::Enum,
        surfaces: &["crates/cpu/src/core_engine.rs", "DESIGN.md"],
    },
    LedgerEntry {
        name: "TapeCodecError",
        decl_file: "crates/trace/src/tape/io.rs",
        kind: LedgerKind::Enum,
        surfaces: &["DESIGN.md"],
    },
    LedgerEntry {
        name: "ArtifactError",
        decl_file: "crates/sim/src/store.rs",
        kind: LedgerKind::Enum,
        surfaces: &["DESIGN.md"],
    },
    LedgerEntry {
        name: "GroupError",
        decl_file: "crates/mem/src/system.rs",
        kind: LedgerKind::Enum,
        surfaces: &["DESIGN.md"],
    },
    // The fused group-step API, one entry per layer: each layer's entry
    // point must be consumed by the layer above it (and documented), so
    // renaming or orphaning a rung of the fusion ladder is a finding.
    LedgerEntry {
        name: "GroupStepMem",
        decl_file: "crates/mem/src/system.rs",
        kind: LedgerKind::EntryPoints(&["access_load_group"]),
        surfaces: &["DESIGN.md"],
    },
    LedgerEntry {
        name: "GroupStepCpu",
        decl_file: "crates/cpu/src/core_engine.rs",
        kind: LedgerKind::EntryPoints(&["replay_fused"]),
        surfaces: &["crates/sim/src/driver.rs", "DESIGN.md"],
    },
    LedgerEntry {
        name: "GroupStepSim",
        decl_file: "crates/sim/src/driver.rs",
        kind: LedgerKind::EntryPoints(&["run_tape_fused"]),
        surfaces: &["crates/sim/src/sweep.rs", "DESIGN.md"],
    },
    // The static cache oracle (DESIGN.md §18): its verdict enum, its
    // cross-check violation enum, its refusal enum, and the pipeline's
    // three entry points — tape projection, abstract walk, cross-check —
    // each pinned to the design doc so a renamed or added case without a
    // documented meaning is a finding.
    LedgerEntry {
        name: "Classification",
        decl_file: "crates/oracle/src/domain.rs",
        kind: LedgerKind::Enum,
        surfaces: &["crates/oracle/src/check.rs", "DESIGN.md"],
    },
    LedgerEntry {
        name: "CrossCheckViolation",
        decl_file: "crates/oracle/src/check.rs",
        kind: LedgerKind::Enum,
        surfaces: &["DESIGN.md"],
    },
    LedgerEntry {
        name: "OracleError",
        decl_file: "crates/oracle/src/lib.rs",
        kind: LedgerKind::Enum,
        surfaces: &["DESIGN.md"],
    },
    LedgerEntry {
        name: "OraclePipeline",
        decl_file: "crates/oracle/src/lib.rs",
        kind: LedgerKind::EntryPoints(&["mem_ops", "analyze_tape", "cross_check"]),
        surfaces: &["DESIGN.md"],
    },
    LedgerEntry {
        name: "EXHIBITS",
        decl_file: "crates/bench/src/experiments/mod.rs",
        kind: LedgerKind::ExhibitNames,
        surfaces: &["EXPERIMENTS.md"],
    },
];

/// Extracts the variant identifiers of `enum <name> { … }` from `src`.
/// Attributes, doc comments and variant payloads (tuple or struct) are
/// skipped; only depth-1 variant names are returned.
pub fn enum_variants(src: &str, name: &str) -> Option<Vec<String>> {
    let toks = lex(src);
    let mut i = 0;
    let open = loop {
        if i + 2 >= toks.len() {
            return None;
        }
        if toks[i].is_ident(src, "enum") && toks[i + 1].is_ident(src, name) {
            // Skip generics up to the opening brace.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(src, '{') {
                if toks[j].is_punct(src, ';') {
                    return None;
                }
                j += 1;
            }
            if j < toks.len() {
                break j;
            }
            return None;
        }
        i += 1;
    };
    let close = match_brace(src, &toks, open)?;
    let body = &toks[open + 1..close];
    let mut variants = Vec::new();
    let mut expect_variant = true;
    let mut k = 0;
    while k < body.len() {
        let t = body[k];
        match t.kind {
            TokKind::Comment { .. } => {}
            TokKind::Punct => match t.text(src) {
                // Attribute on the next variant: hop the group.
                "#" if body.get(k + 1).is_some_and(|n| n.is_punct(src, '[')) => {
                    let mut depth = 0i32;
                    k += 1;
                    while k < body.len() {
                        if body[k].is_punct(src, '[') {
                            depth += 1;
                        } else if body[k].is_punct(src, ']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                // Payload or discriminant: skip to the variant separator.
                "{" | "(" => {
                    let mut depth = 0i32;
                    while k < body.len() {
                        let u = body[k];
                        if u.is_punct(src, '{') || u.is_punct(src, '(') {
                            depth += 1;
                        } else if u.is_punct(src, '}') || u.is_punct(src, ')') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                "," => expect_variant = true,
                _ => {}
            },
            TokKind::Ident if expect_variant => {
                variants.push(t.text(src).to_string());
                expect_variant = false;
            }
            _ => {}
        }
        k += 1;
    }
    Some(variants)
}

/// Extracts every `name: "…"` string from the exhibit registry source.
pub fn exhibit_names(src: &str) -> Vec<String> {
    let toks = lex(src);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident(src, "name")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(src, ':'))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Str)
        {
            let lit = toks[i + 2].text(src);
            let inner = lit.trim_start_matches(|c| c != '"');
            let inner = inner.trim_start_matches('"').trim_end_matches('"');
            out.push(inner.to_string());
        }
    }
    out
}

/// Word-boundary containment: `needle` appears in `hay` not flanked by
/// identifier characters.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = hay[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !hay.as_bytes()[at - 1].is_ascii_alphanumeric() && hay.as_bytes()[at - 1] != b'_';
        let end = at + needle.len();
        let after_ok = end >= hay.len()
            || !hay.as_bytes()[end].is_ascii_alphanumeric() && hay.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Checks the whole ledger against files under `root`. Missing declaring
/// files are skipped (fixture roots); missing surface files are findings
/// (a declared surface must exist).
pub fn check_ledger(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    for entry in LEDGER {
        let decl_path = root.join(entry.decl_file);
        let Ok(decl_src) = std::fs::read_to_string(&decl_path) else {
            continue;
        };
        let variants: Vec<String> = match entry.kind {
            LedgerKind::Enum => match enum_variants(&decl_src, entry.name) {
                Some(v) => v,
                None => {
                    out.push(Finding {
                        lint: "exhaustiveness",
                        file: entry.decl_file.to_string(),
                        line: 0,
                        col: 0,
                        item: entry.name.to_string(),
                        message: format!(
                            "ledger enum `{}` not found in its declaring file",
                            entry.name
                        ),
                    });
                    continue;
                }
            },
            LedgerKind::ExhibitNames => exhibit_names(&decl_src),
            LedgerKind::EntryPoints(names) => {
                let mut present = Vec::new();
                for n in names {
                    if contains_word(&decl_src, n) {
                        present.push((*n).to_string());
                    } else {
                        out.push(Finding {
                            lint: "exhaustiveness",
                            file: entry.decl_file.to_string(),
                            line: 0,
                            col: 0,
                            item: (*n).to_string(),
                            message: format!(
                                "ledger entry point `{n}` not found in its declaring file"
                            ),
                        });
                    }
                }
                present
            }
        };
        if variants.is_empty() {
            out.push(Finding {
                lint: "exhaustiveness",
                file: entry.decl_file.to_string(),
                line: 0,
                col: 0,
                item: entry.name.to_string(),
                message: format!("ledger entry `{}` yielded no variants", entry.name),
            });
            continue;
        }
        for surface in entry.surfaces {
            let Ok(surface_text) = std::fs::read_to_string(root.join(surface)) else {
                out.push(Finding {
                    lint: "exhaustiveness",
                    file: surface.to_string(),
                    line: 0,
                    col: 0,
                    item: entry.name.to_string(),
                    message: format!("declared consumer surface for `{}` is missing", entry.name),
                });
                continue;
            };
            for v in &variants {
                if !contains_word(&surface_text, v) {
                    out.push(Finding {
                        lint: "exhaustiveness",
                        file: surface.to_string(),
                        line: 0,
                        col: 0,
                        item: format!("{}::{v}", entry.name),
                        message: format!(
                            "`{}::{v}` is not mentioned in consumer surface `{surface}`; \
                             wire the new variant through (see DESIGN.md §13)",
                            entry.name
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_variants_skip_payloads_and_attrs() {
        let src = r#"
            /// Policy selector.
            #[derive(Debug, Default)]
            pub enum ReplacementKind {
                /// Least recently used.
                #[default]
                Lru,
                Fifo,
                Random { seed: u64 },
                TreePlru,
            }
        "#;
        assert_eq!(
            enum_variants(src, "ReplacementKind").unwrap(),
            vec!["Lru", "Fifo", "Random", "TreePlru"]
        );
    }

    #[test]
    fn enum_variants_tuple_payloads() {
        let src = "enum E { A(u32, String), B, C { x: Vec<(u8, u8)> } }";
        assert_eq!(enum_variants(src, "E").unwrap(), vec!["A", "B", "C"]);
    }

    #[test]
    fn missing_enum_is_none() {
        assert!(enum_variants("struct S;", "E").is_none());
    }

    #[test]
    fn exhibit_names_extracts_strings() {
        let src = r#"
            pub const EXHIBITS: &[Exhibit] = &[
                Exhibit { name: "fig4", about: "x", run: fig4 },
                Exhibit { name: "replsens", about: "y", run: replsens },
            ];
        "#;
        assert_eq!(exhibit_names(src), vec!["fig4", "replsens"]);
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_word("uses Lru here", "Lru"));
        assert!(!contains_word("TreePlru only", "Lru"));
        assert!(contains_word("MemEvent::Filled,", "Filled"));
        assert!(!contains_word("Filled_x", "Filled"));
    }
}
